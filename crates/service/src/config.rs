//! Service tuning knobs: flush triggers, queue bounds, overflow policy.

use std::time::Duration;

use panda_core::{PandaError, QueryOrder, Result};

/// What `submit` does when the bounded queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the submitting thread until queue space frees up — natural
    /// backpressure for in-process clients that can afford to wait.
    #[default]
    Block,
    /// Fail fast with [`PandaError::Overloaded`] so the caller can shed
    /// load, retry with backoff, or divert traffic.
    Reject,
}

/// Builder-style configuration for a [`crate::QueryService`].
///
/// The two flush triggers implement dynamic micro-batching: a batch is
/// dispatched as soon as **either** `max_batch` query points have
/// accumulated **or** the oldest queued submission has waited
/// `max_delay`. Small `max_delay` bounds tail latency under light load;
/// `max_batch` bounds memory and keeps heavy load flowing in
/// locality-friendly chunks.
///
/// ```
/// use panda_service::{OverflowPolicy, ServiceConfig};
/// use std::time::Duration;
///
/// let cfg = ServiceConfig::default()
///     .with_max_batch(128)
///     .with_max_delay(Duration::from_micros(200))
///     .with_queue_capacity(4096)
///     .with_overflow(OverflowPolicy::Reject);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Flush as soon as this many query points are queued, and cap
    /// each dispatched batch at this size (a single submission larger
    /// than the cap still dispatches whole).
    pub max_batch: usize,
    /// Flush once the oldest queued submission has waited this long.
    pub max_delay: Duration,
    /// Bounded-queue capacity in query points; `submit` applies the
    /// [`OverflowPolicy`] beyond it.
    pub queue_capacity: usize,
    /// Behavior when the queue is full.
    pub overflow: OverflowPolicy,
    /// Execution order for each coalesced batch. The default `Morton`
    /// re-sorts every micro-batch along the Z-order curve — the whole
    /// point of coalescing: queries from unrelated clients share tree
    /// paths and cached leaves. Results are scattered back per client
    /// regardless, so the knob never changes values.
    pub order: QueryOrder,
    /// Per-batch override of the backend's thread-parallel execution
    /// (`None` keeps whatever the backend was built with).
    pub parallel: Option<bool>,
    /// **Per-shard** capacity (in submissions) of the hot-query result
    /// cache; `0` (the default) disables caching entirely. When
    /// enabled, `submit` resolves repeated submissions — same
    /// coordinate bit patterns, `k`, radius, and bound mode — straight
    /// from an LRU memo without touching the queue or the backend. The
    /// effective capacity is `cache_capacity ×
    /// [`shard_count`](panda_core::engine::NnBackend::shard_count)`, so
    /// the same config serves a single-tree index and a many-shard
    /// engine without starving the latter's proportionally larger hot
    /// set. Unless [`cache_ttl`](Self::cache_ttl) is set, the cache is
    /// invalidated whenever the backend's
    /// [`data_epoch`](panda_core::engine::NnBackend::data_epoch) moves,
    /// so mutable backends never serve stale answers. Hits and misses
    /// are counted in [`crate::ServiceStats`].
    pub cache_capacity: usize,
    /// Optional per-entry time-to-live for the result cache. `None`
    /// (the default) keeps epoch invalidation: any backend write clears
    /// the whole cache, guaranteeing zero staleness but also zeroing
    /// the hit rate under a steady write trickle. `Some(ttl)` switches
    /// to per-entry expiry instead — epoch moves are ignored, and each
    /// memo serves for at most `ttl` after insertion. Choose it when
    /// the workload tolerates answers up to `ttl` stale (monitoring
    /// probes, dashboards) in exchange for cache hits that survive
    /// writes. Ignored while `cache_capacity` is 0.
    pub cache_ttl: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_batch: 256,
            max_delay: Duration::from_micros(500),
            queue_capacity: 8192,
            overflow: OverflowPolicy::Block,
            order: QueryOrder::Morton,
            parallel: None,
            cache_capacity: 0,
            cache_ttl: None,
        }
    }
}

impl ServiceConfig {
    /// Set the size flush trigger (query points per micro-batch).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Set the deadline flush trigger.
    #[must_use]
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Set the bounded-queue capacity (query points).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the overflow policy.
    #[must_use]
    pub fn with_overflow(mut self, overflow: OverflowPolicy) -> Self {
        self.overflow = overflow;
        self
    }

    /// Set the per-batch execution order.
    #[must_use]
    pub fn with_order(mut self, order: QueryOrder) -> Self {
        self.order = order;
        self
    }

    /// Override the backend's thread-parallel batch execution.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Set the hot-query result-cache capacity in submissions **per
    /// backend shard** (`0` disables the cache, the default); see
    /// [`cache_capacity`](Self::cache_capacity).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Give cache entries a per-entry time-to-live instead of epoch
    /// invalidation; see [`cache_ttl`](Self::cache_ttl) for the
    /// staleness trade.
    #[must_use]
    pub fn with_cache_ttl(mut self, ttl: Duration) -> Self {
        self.cache_ttl = Some(ttl);
        self
    }

    /// Validate: `max_batch ≥ 1`, `queue_capacity ≥ max_batch` (a full
    /// batch must be queueable), non-zero `max_delay`.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(PandaError::BadConfig("max_batch must be ≥ 1".into()));
        }
        if self.queue_capacity < self.max_batch {
            return Err(PandaError::BadConfig(format!(
                "queue_capacity ({}) must be at least max_batch ({})",
                self.queue_capacity, self.max_batch
            )));
        }
        if self.max_delay.is_zero() {
            return Err(PandaError::BadConfig(
                "max_delay must be non-zero (use e.g. 1µs for near-immediate flushes)".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates_and_builders_compose() {
        let cfg = ServiceConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.overflow, OverflowPolicy::Block);
        assert_eq!(cfg.order, QueryOrder::Morton);
        let cfg = cfg
            .with_max_batch(64)
            .with_max_delay(Duration::from_millis(2))
            .with_queue_capacity(64)
            .with_overflow(OverflowPolicy::Reject)
            .with_order(QueryOrder::Input)
            .with_parallel(true);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.max_batch, 64);
        assert_eq!(cfg.parallel, Some(true));
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(ServiceConfig::default()
            .with_max_batch(0)
            .validate()
            .is_err());
        assert!(ServiceConfig::default()
            .with_max_batch(100)
            .with_queue_capacity(10)
            .validate()
            .is_err());
        assert!(ServiceConfig::default()
            .with_max_delay(Duration::ZERO)
            .validate()
            .is_err());
    }
}
