//! Service observability: lock-free counters (including the robustness
//! set: deadline sheds, cancellations, scheduler restarts, abandoned
//! tickets), a batch-size histogram, and latency histograms with
//! quantile readout — overall and split per batch-size bucket — all
//! surfaced as a [`ServiceStats`] snapshot the way distributed
//! responses surface `QueryBreakdown`.
//!
//! Since the `panda_obs` unification the live cells are shared
//! [`panda_obs`] handles registered under `service.*` names in the
//! service's own [`Registry`] — [`ServiceStats`] is a cheap view over
//! the same cells that `ServiceHandle::telemetry` exposes, so there is
//! exactly one source of truth.

use std::time::Duration;

use panda_obs::{pow2_bucket, Counter, Gauge, Histogram, HistogramSnapshot, Registry};

/// Power-of-two batch-size buckets: bucket `i` counts batches of
/// `2^i ..= 2^(i+1) - 1` query points (bucket 0 is size 1).
pub const BATCH_BUCKETS: usize = 21;

/// Power-of-two latency buckets: bucket `i` counts requests that
/// resolved in `2^i ..= 2^(i+1) - 1` nanoseconds (~36 minutes tops).
pub const LATENCY_BUCKETS: usize = 41;

/// Live metric handles updated by submitters and the scheduler, all
/// registered in the service's `panda_obs` [`Registry`].
#[derive(Debug)]
pub(crate) struct Metrics {
    pub registry: Registry,
    pub submitted: Counter,
    pub queries: Counter,
    pub rejected: Counter,
    pub batches: Counter,
    pub deadline_exceeded: Counter,
    pub cancelled: Counter,
    pub scheduler_restarts: Counter,
    pub abandoned: Counter,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub queue_depth: Gauge,
    pub max_queue_depth: Gauge,
    batch_hist: Histogram,
    latency_hist: Histogram,
    /// Latency split by batch-size bucket. Deliberately *not* registered
    /// (21 × 41 buckets would drown an exposition page); served through
    /// [`ServiceStats`] only.
    latency_by_batch: Vec<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    pub(crate) fn new() -> Self {
        let registry = Registry::new();
        Self {
            submitted: registry.counter("service.submitted"),
            queries: registry.counter("service.queries"),
            rejected: registry.counter("service.rejected"),
            batches: registry.counter("service.batches"),
            deadline_exceeded: registry.counter("service.deadline_exceeded"),
            cancelled: registry.counter("service.cancelled"),
            scheduler_restarts: registry.counter("service.scheduler_restarts"),
            abandoned: registry.counter("service.abandoned"),
            cache_hits: registry.counter("service.cache.hits"),
            cache_misses: registry.counter("service.cache.misses"),
            queue_depth: registry.gauge("service.queue_depth"),
            max_queue_depth: registry.gauge("service.queue_depth_max"),
            batch_hist: registry.histogram("service.batch_size", BATCH_BUCKETS),
            latency_hist: registry.histogram("service.latency_ns", LATENCY_BUCKETS),
            latency_by_batch: (0..BATCH_BUCKETS)
                .map(|_| Histogram::new(LATENCY_BUCKETS))
                .collect(),
            registry,
        }
    }

    pub(crate) fn record_batch(&self, queries: usize) {
        self.batches.inc();
        self.batch_hist.record(queries as u64);
    }

    /// Record a submit→resolve latency. `batch_queries` is the size of
    /// the coalesced batch the submission executed in — `None` for
    /// requests that never reached a backend (shed, cancelled, repaired
    /// after a scheduler panic), which therefore appear in the overall
    /// histogram but not the per-batch-size ones.
    pub(crate) fn record_latency(&self, waited: Duration, batch_queries: Option<usize>) {
        let ns = waited.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.latency_hist.record(ns);
        if let Some(q) = batch_queries {
            self.latency_by_batch[pow2_bucket(q as u64, BATCH_BUCKETS)].record(ns);
        }
    }

    /// Track the current queued query-point count; remembers the high
    /// water mark.
    pub(crate) fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as u64);
        self.max_queue_depth.set_max(depth as u64);
    }

    pub(crate) fn snapshot(&self) -> ServiceStats {
        let batch = self.batch_hist.snapshot();
        let latency = self.latency_hist.snapshot();
        ServiceStats {
            submitted: self.submitted.get(),
            queries: self.queries.get(),
            rejected: self.rejected.get(),
            batches: self.batches.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            cancelled: self.cancelled.get(),
            scheduler_restarts: self.scheduler_restarts.get(),
            abandoned: self.abandoned.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            queue_depth: self.queue_depth.get() as usize,
            max_queue_depth: self.max_queue_depth.get() as usize,
            batch_hist: std::array::from_fn(|i| batch.counts[i]),
            latency_hist: std::array::from_fn(|i| latency.counts[i]),
            latency_by_batch: std::array::from_fn(|b| {
                let s = self.latency_by_batch[b].snapshot();
                std::array::from_fn(|i| s.counts[i])
            }),
            latency_sum_seconds: latency.sum as f64 * 1e-9,
        }
    }
}

/// Point-in-time snapshot of a service's counters (cheap to take; the
/// live counters are relaxed atomics).
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceStats {
    /// Accepted `submit` calls.
    pub submitted: u64,
    /// Query points accepted across all submissions.
    pub queries: u64,
    /// Submissions rejected with `Overloaded`.
    pub rejected: u64,
    /// Micro-batches dispatched to the backend.
    pub batches: u64,
    /// Submissions shed at flush time because their
    /// [`deadline`](panda_core::engine::QueryRequest::with_deadline) had
    /// already expired; resolved with `PandaError::DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Submissions detached via `Ticket::cancel` and reclaimed at flush
    /// time; resolved with `PandaError::Cancelled`.
    pub cancelled: u64,
    /// Times the supervisor restarted the scheduler thread after a
    /// panic escaped the scheduler loop.
    pub scheduler_restarts: u64,
    /// Tickets whose client dropped the handle before the reply arrived
    /// (e.g. after a `wait_timeout` miss); the reply was discarded.
    pub abandoned: u64,
    /// Submissions answered straight from the hot-query result cache
    /// (counted in [`submitted`](Self::submitted) but not in
    /// [`queries`](Self::queries) — a hit never joins a batch, so batch
    /// statistics stay honest). Always `0` when
    /// [`crate::ServiceConfig::cache_capacity`] is `0`.
    pub cache_hits: u64,
    /// Cache probes that missed and fell through to the normal queue
    /// path. `0` when the cache is disabled (disabled ≠ missing).
    pub cache_misses: u64,
    /// Query points queued at snapshot time.
    pub queue_depth: usize,
    /// Largest queued query-point count ever observed.
    pub max_queue_depth: usize,
    /// Batch-size histogram: bucket `i` counts batches of
    /// `2^i ..= 2^(i+1) - 1` query points.
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Request-latency histogram (submit → ticket resolved): bucket `i`
    /// counts requests in `2^i ..= 2^(i+1) - 1` nanoseconds.
    pub latency_hist: [u64; LATENCY_BUCKETS],
    /// Latency histograms split by the batch size a request executed in:
    /// `latency_by_batch[b]` is the latency histogram of requests whose
    /// coalesced batch fell in batch-size bucket `b`. Shed / cancelled /
    /// repaired requests never executed, so they appear only in
    /// [`latency_hist`](Self::latency_hist).
    pub latency_by_batch: [[u64; LATENCY_BUCKETS]; BATCH_BUCKETS],
    /// Sum of all request latencies, for means.
    pub latency_sum_seconds: f64,
}

impl ServiceStats {
    /// Requests resolved so far (latency histogram total).
    pub fn resolved(&self) -> u64 {
        self.latency_hist.iter().sum()
    }

    /// Mean query points per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.queries as f64 / self.batches as f64
        }
    }

    /// Mean submit→resolve latency in seconds.
    pub fn mean_latency_seconds(&self) -> f64 {
        let n = self.resolved();
        if n == 0 {
            0.0
        } else {
            self.latency_sum_seconds / n as f64
        }
    }

    /// Latency quantile in seconds (`q` in `[0, 1]`), reported as the
    /// upper edge of the histogram bucket containing the quantile —
    /// conservative to within the 2× bucket resolution.
    pub fn latency_quantile_seconds(&self, q: f64) -> f64 {
        hist_quantile_seconds(&self.latency_hist, q)
    }

    /// Latency quantile restricted to requests whose coalesced batch
    /// held `batch_size` query points (same power-of-two bucketing as
    /// [`batch_hist`](Self::batch_hist)). Returns `0.0` when no request
    /// has resolved in that batch-size bucket yet.
    pub fn latency_quantile_for_batch_seconds(&self, batch_size: usize, q: f64) -> f64 {
        hist_quantile_seconds(
            &self.latency_by_batch[pow2_bucket(batch_size as u64, BATCH_BUCKETS)],
            q,
        )
    }

    /// Median submit→resolve latency (seconds, bucket-resolution).
    pub fn p50_latency_seconds(&self) -> f64 {
        self.latency_quantile_seconds(0.50)
    }

    /// 99th-percentile submit→resolve latency (seconds,
    /// bucket-resolution).
    pub fn p99_latency_seconds(&self) -> f64 {
        self.latency_quantile_seconds(0.99)
    }

    /// 99.9th-percentile submit→resolve latency (seconds,
    /// bucket-resolution) — the tail the robustness work watches.
    pub fn p999_latency_seconds(&self) -> f64 {
        self.latency_quantile_seconds(0.999)
    }
}

/// Walk a power-of-two latency histogram to the bucket containing
/// quantile `q` and report that bucket's upper edge in seconds (the
/// shared `panda_obs` quantile math).
fn hist_quantile_seconds(hist: &[u64], q: f64) -> f64 {
    HistogramSnapshot {
        counts: hist.to_vec(),
        sum: 0,
    }
    .quantile_seconds(q.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_buckets_cover_the_range() {
        assert_eq!(pow2_bucket(0, 8), 0);
        assert_eq!(pow2_bucket(1, 8), 0);
        assert_eq!(pow2_bucket(2, 8), 1);
        assert_eq!(pow2_bucket(3, 8), 1);
        assert_eq!(pow2_bucket(4, 8), 2);
        assert_eq!(pow2_bucket(u64::MAX, 8), 7, "clamped to the last bucket");
    }

    #[test]
    fn batch_and_latency_metrics_accumulate() {
        let m = Metrics::new();
        m.record_batch(1);
        m.record_batch(64);
        m.record_batch(65);
        m.record_latency(Duration::from_micros(10), Some(64));
        m.record_latency(Duration::from_micros(10), Some(64));
        m.record_latency(Duration::from_millis(5), None);
        m.set_queue_depth(7);
        m.set_queue_depth(3);
        let s = m.snapshot();
        assert_eq!(s.batches, 3);
        assert_eq!(s.batch_hist[0], 1); // size 1
        assert_eq!(s.batch_hist[6], 2); // sizes 64..=127
        assert_eq!(s.resolved(), 3);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.max_queue_depth, 7);
        assert!(s.mean_latency_seconds() > 0.0);
        // the two batched requests landed in the size-64 bucket's
        // histogram; the batch-less one only in the overall histogram
        let per_batch: u64 = s.latency_by_batch[6].iter().sum();
        assert_eq!(per_batch, 2);
        let all_batched: u64 = s.latency_by_batch.iter().flatten().sum();
        assert_eq!(all_batched, 2);
    }

    #[test]
    fn per_batch_quantiles_are_isolated_by_bucket() {
        let m = Metrics::new();
        // singleton batches resolve fast, big batches slowly
        for _ in 0..10 {
            m.record_latency(Duration::from_nanos(1000), Some(1));
            m.record_latency(Duration::from_micros(100), Some(1000));
        }
        let s = m.snapshot();
        let fast = s.latency_quantile_for_batch_seconds(1, 0.99);
        let slow = s.latency_quantile_for_batch_seconds(1000, 0.99);
        assert!((fast - 1023e-9).abs() < 1e-12, "fast={fast}");
        assert!(slow > 50e-6, "slow={slow}");
        // the overall p99 is dominated by the slow half
        assert!(s.p99_latency_seconds() > 50e-6);
        // an untouched bucket reads zero
        assert_eq!(s.latency_quantile_for_batch_seconds(32, 0.99), 0.0);
    }

    #[test]
    fn p999_separates_the_extreme_tail() {
        let m = Metrics::new();
        // 1 straggler in 501: beyond the 99.9th percentile, inside 99th
        for _ in 0..500 {
            m.record_latency(Duration::from_nanos(1000), None);
        }
        m.record_latency(Duration::from_millis(8), None);
        let s = m.snapshot();
        assert!((s.p99_latency_seconds() - 1023e-9).abs() < 1e-12);
        assert!(s.p999_latency_seconds() >= 8e-3, "p999 sees the straggler");
    }

    #[test]
    fn robustness_counters_round_trip_through_snapshots() {
        let m = Metrics::new();
        m.deadline_exceeded.add(2);
        m.cancelled.add(3);
        m.scheduler_restarts.inc();
        m.abandoned.add(4);
        let s = m.snapshot();
        assert_eq!(s.deadline_exceeded, 2);
        assert_eq!(s.cancelled, 3);
        assert_eq!(s.scheduler_restarts, 1);
        assert_eq!(s.abandoned, 4);
    }

    #[test]
    fn quantiles_are_conservative_bucket_edges() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record_latency(Duration::from_nanos(1000), None); // bucket 9 (512..1023)
        }
        m.record_latency(Duration::from_nanos(1 << 20), None);
        let s = m.snapshot();
        let p50 = s.p50_latency_seconds();
        // upper edge of the 1000ns bucket: 2^10 - 1 ns
        assert!((p50 - 1023e-9).abs() < 1e-12, "p50={p50}");
        let p99 = s.p99_latency_seconds();
        assert!(
            (p99 - 1023e-9).abs() < 1e-12,
            "p99 stays in the fast bucket"
        );
        assert!(
            s.latency_quantile_seconds(1.0) >= 1e-3,
            "max sees the slow one"
        );
        // empty histogram
        assert_eq!(Metrics::new().snapshot().p99_latency_seconds(), 0.0);
    }

    #[test]
    fn registry_view_matches_stats_view() {
        let m = Metrics::new();
        m.submitted.add(5);
        m.cache_hits.add(2);
        m.record_batch(16);
        m.record_latency(Duration::from_micros(3), Some(16));
        let snap = m.registry.snapshot();
        let stats = m.snapshot();
        assert_eq!(snap.counter("service.submitted"), Some(stats.submitted));
        assert_eq!(snap.counter("service.cache.hits"), Some(stats.cache_hits));
        assert_eq!(
            snap.histogram("service.batch_size").unwrap().total(),
            stats.batches
        );
        assert_eq!(
            snap.histogram("service.latency_ns").unwrap().total(),
            stats.resolved()
        );
    }
}
