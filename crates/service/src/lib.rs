//! # `panda_service` — concurrent query serving with dynamic micro-batching
//!
//! PANDA's throughput comes from **batching**: queries executed together
//! share tree paths and cached leaves (the Morton-ordered batch engine),
//! and per-call dispatch overhead amortizes across the batch. But a
//! process serving many independent clients sees queries one at a time —
//! calling [`NnBackend::query`](panda_core::engine::NnBackend) per
//! client forfeits all of it.
//!
//! This crate closes that gap with an in-process service:
//!
//! * [`QueryService::new`] wraps any thread-safe backend
//!   (`Arc<dyn NnBackend + Send + Sync>`) and starts one scheduler
//!   thread;
//! * clients clone a cheap [`ServiceHandle`] and call
//!   [`ServiceHandle::submit`], which enqueues the request and returns a
//!   [`Ticket`] immediately;
//! * the scheduler **coalesces** the queue into micro-batches — flushed
//!   as soon as [`ServiceConfig::max_batch`] query points accumulate
//!   *or* the oldest submission has waited
//!   [`ServiceConfig::max_delay`] — Morton-orders each batch, and
//!   executes it on the persistent worker pool behind the engine's
//!   parallel path;
//! * each [`Ticket`] resolves to a [`TicketReply`]: a **zero-copy**
//!   row-slice into the shared batch response (`Arc`ed CSR
//!   `NeighborTable`), so scatter-back copies no neighbors;
//! * the submission queue is **bounded** ([`ServiceConfig::queue_capacity`]);
//!   beyond it `submit` blocks or fails fast with
//!   [`PandaError::Overloaded`](panda_core::PandaError::Overloaded)
//!   ([`OverflowPolicy`]);
//! * [`QueryService::drain`] flushes everything outstanding,
//!   [`QueryService::shutdown`] additionally stops intake and joins the
//!   scheduler, and [`QueryService::stats`] surfaces queue depth, a
//!   batch-size histogram, p50/p99/p999 submit→resolve latency (overall
//!   and per batch-size bucket), and the robustness counters
//!   ([`ServiceStats`]).
//!
//! ## Degrading gracefully
//!
//! The service is built to lose work loudly, never hang:
//!
//! * **Deadlines** — a submission carrying
//!   [`QueryRequest::with_deadline`](panda_core::engine::QueryRequest::with_deadline)
//!   that is still queued when the deadline passes is **shed at flush
//!   time**: its ticket resolves with
//!   [`PandaError::DeadlineExceeded`](panda_core::PandaError::DeadlineExceeded)
//!   instead of occupying a backend slot, and `ServiceStats::deadline_exceeded`
//!   counts it.
//! * **Cancellation** — [`Ticket::cancel`] detaches a submission; an
//!   unflushed one gives its queue slot back at the next flush
//!   (`ServiceStats::cancelled`).
//! * **Abandonment** — dropping a pending ticket (e.g. after a
//!   [`Ticket::wait_timeout`] miss) discards the eventual reply and is
//!   counted in `ServiceStats::abandoned`; the full lifecycle contract
//!   is documented on [`Ticket`].
//! * **Supervision** — the scheduler thread runs under a supervisor: a
//!   panic that escapes the scheduler loop (backend panics are already
//!   caught per batch) resolves every in-flight ticket with
//!   [`PandaError::BackendPanicked`](panda_core::PandaError::BackendPanicked),
//!   repairs the queue, and restarts the loop after a bounded
//!   exponential backoff (`ServiceStats::scheduler_restarts`). The
//!   service keeps accepting and serving work across crashes.
//!
//! The chaos suite (`tests/chaos.rs` at the workspace root) drives all
//! of these through `panda_core::faultpoint`.
//!
//! Exactness is untouched: coalescing and Morton ordering are locality
//! plays — every client gets bit-identical neighbors to a direct
//! `query_session` call (pinned by `tests/service_parity.rs`).
//!
//! ## Caching hot queries
//!
//! Serving workloads repeat themselves; with
//! [`ServiceConfig::with_cache_capacity`] the service memoizes resolved
//! submissions in an LRU keyed on the coordinate **bit patterns**, `k`,
//! radius, and bound mode — a repeat resolves straight from the memo
//! (zero-copy, no queue, no backend) and is counted in
//! [`ServiceStats::cache_hits`]. The cache invalidates itself whenever
//! the backend's
//! [`data_epoch`](panda_core::engine::NnBackend::data_epoch) moves, so
//! mutable backends (`panda-store`) never serve stale answers. Off by
//! default.
//!
//! ## Serving the distributed engine
//!
//! The sharded engine is a first-class backend here:
//! [`ShardedIndex`](panda_core::engine::ShardedIndex) is `Send + Sync`
//! (a front handle over long-lived shard worker threads, each owning
//! its communicator exclusively), so
//! `QueryService::new(Arc::new(sharded), cfg)` serves a whole
//! distributed tree behind the same ticket API — see the
//! `sharded_service` example. Only the SPMD entry points
//! (`query_distributed` under `run_cluster`, used by the virtual-time
//! scaling studies) remain outside the service, since every simulated
//! rank must enter those collectives in lockstep.
//!
//! ```
//! use std::sync::Arc;
//! use panda_core::engine::QueryRequest;
//! use panda_core::knn::KnnIndex;
//! use panda_core::{PointSet, TreeConfig};
//! use panda_service::{QueryService, ServiceConfig};
//!
//! let points = PointSet::from_coords(1, vec![0.0, 1.0, 2.0, 10.0])?;
//! let index = Arc::new(KnnIndex::build(&points, &TreeConfig::default())?);
//! let service = QueryService::new(index, ServiceConfig::default())?;
//!
//! // clients submit concurrently through cheap clonable handles
//! let handle = service.handle();
//! let worker = std::thread::spawn(move || {
//!     let q = PointSet::from_coords(1, vec![1.2]).unwrap();
//!     let ticket = handle.submit(&QueryRequest::knn(&q, 2)).unwrap();
//!     let reply = ticket.wait().unwrap();
//!     reply.row(0)[0].id // nearest to 1.2 is x = 1.0 → id 1
//! });
//! assert_eq!(worker.join().unwrap(), 1);
//!
//! let stats = service.stats();
//! assert_eq!(stats.queries, 1);
//! service.shutdown(); // graceful: flushes, resolves, joins
//! # Ok::<(), panda_core::PandaError>(())
//! ```

#![warn(missing_docs)]

mod cache;
mod config;
mod metrics;
mod service;
mod ticket;

pub use config::{OverflowPolicy, ServiceConfig};
pub use metrics::{ServiceStats, BATCH_BUCKETS, LATENCY_BUCKETS};
pub use service::{QueryService, ServiceHandle};
pub use ticket::{Ticket, TicketReply};
