//! Hot-query result cache: an LRU memo of whole submissions, keyed on
//! everything that determines a submission's answer.
//!
//! Serving workloads repeat themselves — the same probe points, health
//! checks, and popular queries arrive over and over. When the cache is
//! enabled ([`crate::ServiceConfig::with_cache_capacity`]), `submit`
//! checks it before queueing: a hit resolves the ticket immediately with
//! a zero-copy clone of the memoized reply (the `Arc`'d batch response),
//! skipping the queue, the scheduler, and the backend entirely.
//!
//! # Exactness
//!
//! The key is [`CacheKey`]: the submission's coordinate **bit patterns**
//! (not float equality — `-0.0` and `NaN` payloads are distinct keys,
//! so no float-comparison edge case can alias two submissions), `k`,
//! the radius limit's bit pattern, and the traversal bound mode. Two
//! submissions with equal keys are answered identically by every
//! backend in the workspace, so serving the memo is bit-for-bit
//! indistinguishable from re-executing.
//!
//! # Invalidation
//!
//! Two modes, chosen at construction:
//!
//! * **Epoch-guarded** (default): every probe carries the backend's
//!   current [`data_epoch`](panda_core::engine::NnBackend::data_epoch),
//!   and an epoch change clears the whole cache before the probe
//!   (mutable backends advance their epoch on every write). Entries are
//!   inserted with the epoch sampled **before** their batch executed;
//!   an insert whose epoch is already stale is dropped rather than
//!   poisoning the cache with a result that may predate a write. Zero
//!   staleness, but a steady write trickle keeps the cache permanently
//!   empty.
//! * **Per-entry TTL** ([`crate::ServiceConfig::with_cache_ttl`]): each
//!   entry expires individually, `ttl` after insertion, and epoch moves
//!   are ignored — a write no longer wipes every memo, it just bounds
//!   how long the answer computed before it may keep serving. This
//!   trades *bounded* staleness (at most `ttl`) for a hit rate that
//!   survives mutable-backend write traffic; capacity-sizing interacts
//!   with the backend's shard count (see
//!   [`crate::ServiceConfig::with_cache_capacity`]).
//!
//! Capacity is sized by the *service* as `cache_capacity ×
//! backend.shard_count()`: a sharded backend fields proportionally more
//! distinct hot keys, so per-shard sizing keeps the configured knob
//! meaningful from one node to a fleet.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use panda_core::{BoundMode, PointSet};

use crate::ticket::TicketReply;

/// Everything that determines a submission's answer, hashed bitwise.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// Bit patterns of the submission's query coordinates, in order.
    coords_bits: Box<[u32]>,
    k: usize,
    radius_bits: Option<u32>,
    /// [`BoundMode`] as a stable tag (the enum itself has no `Hash`).
    bound_tag: u8,
}

impl CacheKey {
    pub(crate) fn new(queries: &PointSet, k: usize, radius_bits: Option<u32>) -> Self {
        Self {
            coords_bits: queries.coords().iter().map(|c| c.to_bits()).collect(),
            k,
            radius_bits,
            bound_tag: 0,
        }
    }

    pub(crate) fn with_bound_mode(mut self, mode: BoundMode) -> Self {
        self.bound_tag = match mode {
            BoundMode::Exact => 0,
            BoundMode::PaperScalar => 1,
        };
        self
    }
}

const NIL: usize = usize::MAX;

/// One resident entry, intrusively linked into the recency list.
struct Slot {
    key: Arc<CacheKey>,
    reply: TicketReply,
    /// `Some` only in TTL mode: the instant this entry stops serving.
    expires_at: Option<Instant>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from [`CacheKey`] to a memoized
/// [`TicketReply`]. Recency is an intrusive doubly-linked list threaded
/// through a slab of slots — hits and inserts are O(1) with no
/// per-operation allocation beyond the key itself.
pub(crate) struct ResultCache {
    capacity: usize,
    /// `Some` switches invalidation from epoch-clearing to per-entry
    /// expiry (see the module docs).
    ttl: Option<Duration>,
    /// Backend data epoch the resident entries were computed against
    /// (unused in TTL mode).
    epoch: u64,
    map: HashMap<Arc<CacheKey>, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    /// Most recently used slot (`NIL` when empty).
    head: usize,
    /// Least recently used slot (`NIL` when empty) — the eviction end.
    tail: usize,
}

impl ResultCache {
    /// `capacity` must be ≥ 1 (capacity 0 means the service holds no
    /// cache at all). `ttl: Some(d)` selects per-entry expiry instead
    /// of epoch invalidation.
    pub(crate) fn new(capacity: usize, ttl: Option<Duration>) -> Self {
        assert!(capacity >= 1, "cache capacity must be ≥ 1");
        Self {
            capacity,
            ttl,
            epoch: 0,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Probe for `key` against the backend's current data epoch. In
    /// epoch mode an epoch change invalidates everything resident (the
    /// data moved under the memos) before the probe; in TTL mode the
    /// epoch is ignored and an expired entry is reclaimed as a miss.
    /// A hit refreshes recency.
    pub(crate) fn lookup(&mut self, key: &CacheKey, now_epoch: u64) -> Option<TicketReply> {
        if self.ttl.is_none() && now_epoch != self.epoch {
            self.clear();
            self.epoch = now_epoch;
            return None;
        }
        let idx = *self.map.get(key)?;
        if let Some(expires_at) = self.slots[idx].as_ref().expect("mapped slot").expires_at {
            if Instant::now() >= expires_at {
                self.remove(idx);
                return None;
            }
        }
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slots[idx].as_ref().expect("mapped slot").reply.clone())
    }

    /// Memoize `reply` for `key`. `sampled_epoch` is the backend epoch
    /// read when the submission was accepted — in epoch mode, if the
    /// cache has since synced to a newer epoch, the result may predate
    /// a write and is dropped instead of inserted. In TTL mode every
    /// insert lands and simply carries its own expiry.
    pub(crate) fn insert(&mut self, key: Arc<CacheKey>, reply: TicketReply, sampled_epoch: u64) {
        if self.ttl.is_none() && sampled_epoch != self.epoch {
            return;
        }
        let expires_at = self.ttl.map(|t| Instant::now() + t);
        if let Some(&idx) = self.map.get(&key) {
            // A concurrent identical submission raced us here. In epoch
            // mode both computed against the same data (same key ⇒ same
            // answer), so keep the resident entry; in TTL mode ours may
            // be fresher, so replace the reply and restart its clock.
            let slot = self.slots[idx].as_mut().expect("dup slot");
            if expires_at.is_some() {
                slot.reply = reply;
                slot.expires_at = expires_at;
            }
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.remove(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[idx] = Some(Slot {
            key: Arc::clone(&key),
            reply,
            expires_at,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Unlink `idx` and return its slot to the free list.
    fn remove(&mut self, idx: usize) {
        self.unlink(idx);
        let slot = self.slots[idx].take().expect("removed slot occupied");
        self.map.remove(&slot.key);
        self.free.push(idx);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slots[idx].as_ref().expect("linked slot");
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("prev slot").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("next slot").prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let s = self.slots[idx].as_mut().expect("pushed slot");
            s.prev = NIL;
            s.next = old_head;
        }
        match old_head {
            NIL => self.tail = idx,
            h => self.slots[h].as_mut().expect("head slot").prev = idx,
        }
        self.head = idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::engine::QueryResponse;
    use panda_core::{NeighborTable, QueryCounters};

    fn reply(tag: u32) -> TicketReply {
        let resp = Arc::new(QueryResponse::local(
            NeighborTable::new(),
            QueryCounters::default(),
            0.0,
        ));
        TicketReply::new(resp, tag, 0)
    }

    fn key(x: f32, k: usize) -> CacheKey {
        let ps = PointSet::from_coords(1, vec![x]).unwrap();
        CacheKey::new(&ps, k, None).with_bound_mode(BoundMode::Exact)
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut c = ResultCache::new(2, None);
        assert!(c.lookup(&key(1.0, 4), 0).is_none());
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        c.insert(Arc::new(key(2.0, 4)), reply(2), 0);
        assert_eq!(c.len(), 2);
        // touch 1.0 so 2.0 becomes the LRU
        assert!(c.lookup(&key(1.0, 4), 0).is_some());
        c.insert(Arc::new(key(3.0, 4)), reply(3), 0);
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&key(2.0, 4), 0).is_none(), "LRU evicted");
        assert!(c.lookup(&key(1.0, 4), 0).is_some());
        assert!(c.lookup(&key(3.0, 4), 0).is_some());
    }

    #[test]
    fn distinct_parameters_are_distinct_keys() {
        let mut c = ResultCache::new(8, None);
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        assert!(c.lookup(&key(1.0, 5), 0).is_none(), "different k");
        let r = key(1.0, 4); // same coords+k, radius differs
        let with_radius = {
            let ps = PointSet::from_coords(1, vec![1.0]).unwrap();
            CacheKey::new(&ps, 4, Some(2.0f32.to_bits())).with_bound_mode(BoundMode::Exact)
        };
        assert!(c.lookup(&with_radius, 0).is_none());
        let paper = {
            let ps = PointSet::from_coords(1, vec![1.0]).unwrap();
            CacheKey::new(&ps, 4, None).with_bound_mode(BoundMode::PaperScalar)
        };
        assert!(c.lookup(&paper, 0).is_none(), "different bound mode");
        assert!(c.lookup(&r, 0).is_some());
    }

    #[test]
    fn negative_zero_is_not_positive_zero() {
        let mut c = ResultCache::new(4, None);
        c.insert(Arc::new(key(0.0, 4)), reply(1), 0);
        assert!(
            c.lookup(&key(-0.0, 4), 0).is_none(),
            "bitwise keying keeps -0.0 distinct"
        );
    }

    #[test]
    fn epoch_change_invalidates_everything() {
        let mut c = ResultCache::new(4, None);
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        assert!(c.lookup(&key(1.0, 4), 0).is_some());
        assert!(c.lookup(&key(1.0, 4), 7).is_none(), "epoch moved");
        assert_eq!(c.len(), 0);
        // a straggling insert sampled under the old epoch is dropped
        c.insert(Arc::new(key(2.0, 4)), reply(2), 0);
        assert_eq!(c.len(), 0);
        // current-epoch inserts land
        c.insert(Arc::new(key(2.0, 4)), reply(2), 7);
        assert!(c.lookup(&key(2.0, 4), 7).is_some());
    }

    #[test]
    fn ttl_mode_ignores_epoch_churn() {
        let mut c = ResultCache::new(4, Some(Duration::from_secs(3600)));
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        // epoch moves on every backend write; TTL memos ride them out
        assert!(c.lookup(&key(1.0, 4), 5).is_some());
        assert!(c.lookup(&key(1.0, 4), 99).is_some());
        assert_eq!(c.len(), 1);
        // and a "stale"-epoch insert still lands — the TTL bounds its
        // staleness, not the epoch
        c.insert(Arc::new(key(2.0, 4)), reply(2), 0);
        assert!(c.lookup(&key(2.0, 4), 123).is_some());
    }

    #[test]
    fn expired_entries_are_reclaimed_on_probe() {
        let mut c = ResultCache::new(4, Some(Duration::ZERO));
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        assert_eq!(c.len(), 1);
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.lookup(&key(1.0, 4), 0).is_none(), "expired ⇒ miss");
        assert_eq!(c.len(), 0, "expired slot returned to the free list");
        // the freed slot is reusable
        c.insert(Arc::new(key(2.0, 4)), reply(2), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ttl_duplicate_insert_replaces_the_reply() {
        let mut c = ResultCache::new(2, Some(Duration::from_secs(3600)));
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        c.insert(Arc::new(key(1.0, 4)), reply(9), 0);
        assert_eq!(c.len(), 1);
        // in TTL mode the later answer may be fresher: it wins
        let got = c.lookup(&key(1.0, 4), 0).unwrap();
        assert_eq!(got.rows().start, 9);
    }

    #[test]
    fn duplicate_insert_keeps_the_resident_entry() {
        let mut c = ResultCache::new(2, None);
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        c.insert(Arc::new(key(1.0, 4)), reply(9), 0);
        assert_eq!(c.len(), 1);
        // same key ⇒ same answer: the resident reply (start row 1) wins
        let resident = c.lookup(&key(1.0, 4), 0).unwrap();
        assert_eq!(resident.rows().start, 1);
        // and the duplicate refreshed recency: 2.0 becomes the LRU
        c.insert(Arc::new(key(2.0, 4)), reply(2), 0);
        assert!(c.lookup(&key(1.0, 4), 0).is_some());
        c.insert(Arc::new(key(3.0, 4)), reply(3), 0);
        assert!(c.lookup(&key(2.0, 4), 0).is_none());
        assert!(c.lookup(&key(1.0, 4), 0).is_some());
    }
}
