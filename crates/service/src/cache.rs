//! Hot-query result cache: an LRU memo of whole submissions, keyed on
//! everything that determines a submission's answer.
//!
//! Serving workloads repeat themselves — the same probe points, health
//! checks, and popular queries arrive over and over. When the cache is
//! enabled ([`crate::ServiceConfig::with_cache_capacity`]), `submit`
//! checks it before queueing: a hit resolves the ticket immediately with
//! a zero-copy clone of the memoized reply (the `Arc`'d batch response),
//! skipping the queue, the scheduler, and the backend entirely.
//!
//! # Exactness
//!
//! The key is [`CacheKey`]: the submission's coordinate **bit patterns**
//! (not float equality — `-0.0` and `NaN` payloads are distinct keys,
//! so no float-comparison edge case can alias two submissions), `k`,
//! the radius limit's bit pattern, and the traversal bound mode. Two
//! submissions with equal keys are answered identically by every
//! backend in the workspace, so serving the memo is bit-for-bit
//! indistinguishable from re-executing.
//!
//! # Invalidation
//!
//! The cache is epoch-guarded: every probe carries the backend's
//! current [`data_epoch`](panda_core::engine::NnBackend::data_epoch),
//! and an epoch change clears the whole cache before the probe
//! (mutable backends advance their epoch on every write). Entries are
//! inserted with the epoch sampled **before** their batch executed; an
//! insert whose epoch is already stale is dropped rather than poisoning
//! the cache with a result that may predate a write.

use std::collections::HashMap;
use std::sync::Arc;

use panda_core::{BoundMode, PointSet};

use crate::ticket::TicketReply;

/// Everything that determines a submission's answer, hashed bitwise.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// Bit patterns of the submission's query coordinates, in order.
    coords_bits: Box<[u32]>,
    k: usize,
    radius_bits: Option<u32>,
    /// [`BoundMode`] as a stable tag (the enum itself has no `Hash`).
    bound_tag: u8,
}

impl CacheKey {
    pub(crate) fn new(queries: &PointSet, k: usize, radius_bits: Option<u32>) -> Self {
        Self {
            coords_bits: queries.coords().iter().map(|c| c.to_bits()).collect(),
            k,
            radius_bits,
            bound_tag: 0,
        }
    }

    pub(crate) fn with_bound_mode(mut self, mode: BoundMode) -> Self {
        self.bound_tag = match mode {
            BoundMode::Exact => 0,
            BoundMode::PaperScalar => 1,
        };
        self
    }
}

const NIL: usize = usize::MAX;

/// One resident entry, intrusively linked into the recency list.
struct Slot {
    key: Arc<CacheKey>,
    reply: TicketReply,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from [`CacheKey`] to a memoized
/// [`TicketReply`]. Recency is an intrusive doubly-linked list threaded
/// through a slab of slots — hits and inserts are O(1) with no
/// per-operation allocation beyond the key itself.
pub(crate) struct ResultCache {
    capacity: usize,
    /// Backend data epoch the resident entries were computed against.
    epoch: u64,
    map: HashMap<Arc<CacheKey>, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    /// Most recently used slot (`NIL` when empty).
    head: usize,
    /// Least recently used slot (`NIL` when empty) — the eviction end.
    tail: usize,
}

impl ResultCache {
    /// `capacity` must be ≥ 1 (capacity 0 means the service holds no
    /// cache at all).
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be ≥ 1");
        Self {
            capacity,
            epoch: 0,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Probe for `key` against the backend's current data epoch. An
    /// epoch change invalidates everything resident (the data moved
    /// under the memos) before the probe. A hit refreshes recency.
    pub(crate) fn lookup(&mut self, key: &CacheKey, now_epoch: u64) -> Option<TicketReply> {
        if now_epoch != self.epoch {
            self.clear();
            self.epoch = now_epoch;
            return None;
        }
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slots[idx].as_ref().expect("mapped slot").reply.clone())
    }

    /// Memoize `reply` for `key`. `sampled_epoch` is the backend epoch
    /// read when the submission was accepted — if the cache has since
    /// synced to a newer epoch, the result may predate a write and is
    /// dropped instead of inserted.
    pub(crate) fn insert(&mut self, key: Arc<CacheKey>, reply: TicketReply, sampled_epoch: u64) {
        if sampled_epoch != self.epoch {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            // A concurrent identical submission raced us here; keep the
            // resident entry (same key ⇒ same answer) and refresh it.
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            let slot = self.slots[lru].take().expect("lru slot occupied");
            self.map.remove(&slot.key);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[idx] = Some(Slot {
            key: Arc::clone(&key),
            reply,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slots[idx].as_ref().expect("linked slot");
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("prev slot").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("next slot").prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let s = self.slots[idx].as_mut().expect("pushed slot");
            s.prev = NIL;
            s.next = old_head;
        }
        match old_head {
            NIL => self.tail = idx,
            h => self.slots[h].as_mut().expect("head slot").prev = idx,
        }
        self.head = idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::engine::QueryResponse;
    use panda_core::{NeighborTable, QueryCounters};

    fn reply(tag: u32) -> TicketReply {
        let resp = Arc::new(QueryResponse::local(
            NeighborTable::new(),
            QueryCounters::default(),
            0.0,
        ));
        TicketReply::new(resp, tag, 0)
    }

    fn key(x: f32, k: usize) -> CacheKey {
        let ps = PointSet::from_coords(1, vec![x]).unwrap();
        CacheKey::new(&ps, k, None).with_bound_mode(BoundMode::Exact)
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut c = ResultCache::new(2);
        assert!(c.lookup(&key(1.0, 4), 0).is_none());
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        c.insert(Arc::new(key(2.0, 4)), reply(2), 0);
        assert_eq!(c.len(), 2);
        // touch 1.0 so 2.0 becomes the LRU
        assert!(c.lookup(&key(1.0, 4), 0).is_some());
        c.insert(Arc::new(key(3.0, 4)), reply(3), 0);
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&key(2.0, 4), 0).is_none(), "LRU evicted");
        assert!(c.lookup(&key(1.0, 4), 0).is_some());
        assert!(c.lookup(&key(3.0, 4), 0).is_some());
    }

    #[test]
    fn distinct_parameters_are_distinct_keys() {
        let mut c = ResultCache::new(8);
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        assert!(c.lookup(&key(1.0, 5), 0).is_none(), "different k");
        let r = key(1.0, 4); // same coords+k, radius differs
        let with_radius = {
            let ps = PointSet::from_coords(1, vec![1.0]).unwrap();
            CacheKey::new(&ps, 4, Some(2.0f32.to_bits())).with_bound_mode(BoundMode::Exact)
        };
        assert!(c.lookup(&with_radius, 0).is_none());
        let paper = {
            let ps = PointSet::from_coords(1, vec![1.0]).unwrap();
            CacheKey::new(&ps, 4, None).with_bound_mode(BoundMode::PaperScalar)
        };
        assert!(c.lookup(&paper, 0).is_none(), "different bound mode");
        assert!(c.lookup(&r, 0).is_some());
    }

    #[test]
    fn negative_zero_is_not_positive_zero() {
        let mut c = ResultCache::new(4);
        c.insert(Arc::new(key(0.0, 4)), reply(1), 0);
        assert!(
            c.lookup(&key(-0.0, 4), 0).is_none(),
            "bitwise keying keeps -0.0 distinct"
        );
    }

    #[test]
    fn epoch_change_invalidates_everything() {
        let mut c = ResultCache::new(4);
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        assert!(c.lookup(&key(1.0, 4), 0).is_some());
        assert!(c.lookup(&key(1.0, 4), 7).is_none(), "epoch moved");
        assert_eq!(c.len(), 0);
        // a straggling insert sampled under the old epoch is dropped
        c.insert(Arc::new(key(2.0, 4)), reply(2), 0);
        assert_eq!(c.len(), 0);
        // current-epoch inserts land
        c.insert(Arc::new(key(2.0, 4)), reply(2), 7);
        assert!(c.lookup(&key(2.0, 4), 7).is_some());
    }

    #[test]
    fn duplicate_insert_keeps_the_resident_entry() {
        let mut c = ResultCache::new(2);
        c.insert(Arc::new(key(1.0, 4)), reply(1), 0);
        c.insert(Arc::new(key(1.0, 4)), reply(9), 0);
        assert_eq!(c.len(), 1);
        // same key ⇒ same answer: the resident reply (start row 1) wins
        let resident = c.lookup(&key(1.0, 4), 0).unwrap();
        assert_eq!(resident.rows().start, 1);
        // and the duplicate refreshed recency: 2.0 becomes the LRU
        c.insert(Arc::new(key(2.0, 4)), reply(2), 0);
        assert!(c.lookup(&key(1.0, 4), 0).is_some());
        c.insert(Arc::new(key(3.0, 4)), reply(3), 0);
        assert!(c.lookup(&key(2.0, 4), 0).is_none());
        assert!(c.lookup(&key(1.0, 4), 0).is_some());
    }
}
