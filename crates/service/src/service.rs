//! The service proper: bounded submission queue, scheduler thread,
//! micro-batch assembly, and zero-copy scatter-back.

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use panda_core::engine::{NnBackend, QueryRequest, QueryResponse};
use panda_core::{BoundMode, NeighborTable, PandaError, PointSet, QueryCounters, Result};

use crate::config::{OverflowPolicy, ServiceConfig};
use crate::metrics::{Metrics, ServiceStats};
use crate::ticket::{Ticket, TicketReply, TicketShared, WakeHub};

/// Requests can only be coalesced into one engine batch when they agree
/// on everything that changes answers: `k`, the radius limit, and the
/// traversal bound mode. Submissions with distinct keys flush as
/// separate batches of the same drain cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BatchKey {
    k: usize,
    radius_bits: Option<u32>,
    bound_mode: BoundMode,
}

/// One queued submission: owned coordinates plus the ticket to resolve.
struct Pending {
    coords: Vec<f32>,
    n_queries: usize,
    key: BatchKey,
    ticket: Arc<TicketShared>,
    enqueued_at: Instant,
}

/// Queue state guarded by the service mutex.
struct QueueState {
    pending: Vec<Pending>,
    /// Total query points across `pending`.
    queued_queries: usize,
    /// Submissions taken by the scheduler but not yet resolved.
    in_flight: usize,
    /// Drain callers currently waiting (forces immediate flushes).
    drain_waiters: usize,
    stopped: bool,
}

struct ServiceInner {
    backend: Arc<dyn NnBackend + Send + Sync>,
    cfg: ServiceConfig,
    dims: usize,
    state: Mutex<QueueState>,
    /// Scheduler wake-up: new work, a drain, or shutdown.
    not_empty: Condvar,
    /// Blocked submitters wake-up: queue space freed (or shutdown).
    space: Condvar,
    /// Drain wake-up: queue empty and nothing in flight.
    idle: Condvar,
    /// Ticket wake-up: one broadcast per resolved micro-batch.
    wake: Arc<WakeHub>,
    metrics: Metrics,
}

impl ServiceInner {
    fn submit(&self, req: &QueryRequest<'_>) -> Result<Ticket> {
        req.validate()?;
        let queries = req.queries();
        if queries.dims() != self.dims {
            return Err(PandaError::DimsMismatch {
                expected: self.dims,
                got: queries.dims(),
            });
        }
        let n = queries.len();
        if n == 0 {
            // Nothing to schedule: resolve immediately with an empty
            // slice of an empty response.
            self.metrics
                .submitted
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let empty = Arc::new(QueryResponse::local(
                NeighborTable::new(),
                QueryCounters::default(),
                0.0,
            ));
            return Ok(Ticket {
                shared: TicketShared::resolved(
                    Arc::clone(&self.wake),
                    Ok(TicketReply::new(empty, 0, 0)),
                ),
            });
        }
        if n > self.cfg.queue_capacity {
            return Err(PandaError::BadConfig(format!(
                "one submission of {n} queries exceeds the queue capacity {}; \
                 split it or raise the capacity",
                self.cfg.queue_capacity
            )));
        }
        let key = BatchKey {
            k: req.k(),
            radius_bits: req.radius().map(f32::to_bits),
            bound_mode: req.bound_mode(),
        };
        let ticket = TicketShared::pending(Arc::clone(&self.wake));
        // Stamped before any capacity wait, so the latency histogram
        // reflects what the client observed — including time parked on
        // a full queue under the Block policy.
        let enqueued_at = Instant::now();
        // Copied outside the state lock: the memcpy of a large
        // submission must not serialize other submitters/the scheduler.
        let coords = queries.coords().to_vec();
        let wake_scheduler;
        {
            let mut st = self.state.lock().expect("service state");
            loop {
                if st.stopped {
                    return Err(PandaError::ServiceStopped);
                }
                if st.queued_queries + n <= self.cfg.queue_capacity {
                    break;
                }
                match self.cfg.overflow {
                    OverflowPolicy::Reject => {
                        self.metrics
                            .rejected
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        return Err(PandaError::Overloaded {
                            depth: st.queued_queries,
                            capacity: self.cfg.queue_capacity,
                        });
                    }
                    OverflowPolicy::Block => {
                        st = self.space.wait(st).expect("space wait");
                    }
                }
            }
            st.pending.push(Pending {
                coords,
                n_queries: n,
                key,
                ticket: Arc::clone(&ticket),
                enqueued_at,
            });
            st.queued_queries += n;
            self.metrics
                .submitted
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.metrics
                .queries
                .fetch_add(n as u64, std::sync::atomic::Ordering::Relaxed);
            self.metrics.set_queue_depth(st.queued_queries);
            // Wake the scheduler only when this submission changes what
            // it is waiting for: the queue just became non-empty (a new
            // deadline exists) or the size trigger fired. Intermediate
            // submissions leave the deadline untouched — waking the
            // scheduler for each one is a context-switch per request.
            wake_scheduler = st.pending.len() == 1 || st.queued_queries >= self.cfg.max_batch;
        }
        if wake_scheduler {
            self.not_empty.notify_one();
        }
        Ok(Ticket { shared: ticket })
    }

    /// Block until every queued and in-flight submission has resolved.
    fn drain(&self) {
        let mut st = self.state.lock().expect("service state");
        if st.pending.is_empty() && st.in_flight == 0 {
            return;
        }
        st.drain_waiters += 1;
        self.not_empty.notify_one();
        while !(st.pending.is_empty() && st.in_flight == 0) {
            st = self.idle.wait(st).expect("idle wait");
        }
        st.drain_waiters -= 1;
    }

    fn stop(&self) {
        let mut st = self.state.lock().expect("service state");
        st.stopped = true;
        drop(st);
        self.not_empty.notify_all();
        self.space.notify_all();
    }

    /// Resolve one submission and record its end-to-end latency. The
    /// waiter is *not* woken here — [`Self::execute`] broadcasts once
    /// per drain cycle.
    fn resolve(&self, pending: Pending, result: Result<TicketReply>) {
        self.metrics.record_latency(pending.enqueued_at.elapsed());
        pending.ticket.resolve(result);
    }

    /// Group one drained queue by [`BatchKey`] (stable order) and run
    /// each group as a single coalesced engine batch. Each group's
    /// clients are woken with one broadcast as soon as *their* group
    /// resolves — a fast group must not sleep through a slow group's
    /// backend execution.
    fn execute(&self, taken: Vec<Pending>) {
        let mut groups: Vec<(BatchKey, Vec<Pending>)> = Vec::new();
        for p in taken {
            match groups.iter_mut().find(|(k, _)| *k == p.key) {
                Some((_, members)) => members.push(p),
                None => groups.push((p.key, vec![p])),
            }
        }
        for (key, members) in groups {
            self.execute_group(key, members);
            self.wake.wake_all();
        }
    }

    fn execute_group(&self, key: BatchKey, members: Vec<Pending>) {
        let total: usize = members.iter().map(|m| m.n_queries).sum();
        let mut coords = Vec::with_capacity(total * self.dims);
        for m in &members {
            coords.extend_from_slice(&m.coords);
        }
        let points = match PointSet::from_coords(self.dims, coords) {
            Ok(p) => p,
            Err(e) => {
                for m in members {
                    self.resolve(m, Err(e.clone()));
                }
                return;
            }
        };
        let mut req = QueryRequest::knn(&points, key.k)
            .with_order(self.cfg.order)
            .with_bound_mode(key.bound_mode);
        if let Some(bits) = key.radius_bits {
            req = req.with_radius(f32::from_bits(bits));
        }
        if let Some(parallel) = self.cfg.parallel {
            req = req.with_parallel(parallel);
        }
        self.metrics.record_batch(total);
        // A panicking backend must not strand tickets in Pending —
        // clients blocked in `wait` would hang forever. Catch, resolve
        // everyone with an error, and let the scheduler keep serving.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| self.backend.query(&req)));
        match outcome {
            Ok(Ok(response)) => {
                let shared = Arc::new(response);
                let mut row = 0u32;
                for m in members {
                    let n = m.n_queries as u32;
                    let reply = TicketReply::new(Arc::clone(&shared), row, n);
                    row += n;
                    self.resolve(m, Ok(reply));
                }
            }
            Ok(Err(e)) => {
                for m in members {
                    self.resolve(m, Err(e.clone()));
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                for m in members {
                    self.resolve(m, Err(PandaError::BackendPanicked(msg.clone())));
                }
            }
        }
    }
}

fn scheduler_loop(inner: &ServiceInner) {
    loop {
        let taken: Vec<Pending>;
        {
            let mut st = inner.state.lock().expect("service state");
            loop {
                if st.pending.is_empty() {
                    if st.stopped {
                        return;
                    }
                    st = inner.not_empty.wait(st).expect("scheduler wait");
                    continue;
                }
                // Flush triggers: size, shutdown/drain pressure, or the
                // oldest submission's deadline.
                if st.stopped || st.drain_waiters > 0 || st.queued_queries >= inner.cfg.max_batch {
                    break;
                }
                let waited = st.pending[0].enqueued_at.elapsed();
                if waited >= inner.cfg.max_delay {
                    break;
                }
                let remaining = inner.cfg.max_delay - waited;
                let (guard, _timeout) = inner
                    .not_empty
                    .wait_timeout(st, remaining)
                    .expect("scheduler wait");
                st = guard;
            }
            // `max_batch` is a cap as well as a trigger: dispatch whole
            // submissions until the next one would overflow it (always
            // at least one, so an oversized multi-query submission still
            // flows). Anything left stays queued — its head is already
            // past its deadline, so the next cycle flushes immediately.
            let mut take_n = 0usize;
            let mut take_q = 0usize;
            for p in &st.pending {
                if take_n > 0 && take_q + p.n_queries > inner.cfg.max_batch {
                    break;
                }
                take_q += p.n_queries;
                take_n += 1;
            }
            taken = st.pending.drain(..take_n).collect();
            st.queued_queries -= take_q;
            st.in_flight += take_n;
            inner.metrics.set_queue_depth(st.queued_queries);
        }
        // Queue space freed: wake any blocked submitters before the
        // (possibly long) batch execution.
        inner.space.notify_all();
        let n_taken = taken.len();
        inner.execute(taken);
        {
            let mut st = inner.state.lock().expect("service state");
            st.in_flight -= n_taken;
            if st.in_flight == 0 && st.pending.is_empty() {
                inner.idle.notify_all();
            }
        }
    }
}

/// A cheap clonable submission handle onto a [`QueryService`].
///
/// Handles share the service's queue and scheduler; clone one per
/// client thread. Handles do not keep the service alive — once the
/// owning [`QueryService`] is shut down (or dropped), `submit` returns
/// [`PandaError::ServiceStopped`].
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<ServiceInner>,
}

impl ServiceHandle {
    /// Queue a batch of queries described by `req`; returns immediately
    /// with a [`Ticket`] unless the bounded queue is full (then the
    /// configured [`OverflowPolicy`] applies). The request's `k`,
    /// radius, and bound mode are honored; its order/parallel knobs are
    /// service-level configuration and are ignored here.
    pub fn submit(&self, req: &QueryRequest<'_>) -> Result<Ticket> {
        self.inner.submit(req)
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.metrics.snapshot()
    }
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("backend", &self.inner.backend.name())
            .finish()
    }
}

/// An in-process concurrent query service over one thread-safe
/// [`NnBackend`].
///
/// See the crate docs for the execution model; in short: `submit`
/// enqueues, a dedicated scheduler coalesces the queue into
/// Morton-ordered micro-batches (flushing on size *or* deadline),
/// batches execute on the persistent worker pool, and each client's
/// ticket resolves to a zero-copy slice of the shared batch response.
pub struct QueryService {
    inner: Arc<ServiceInner>,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl QueryService {
    /// Start a service over `backend`. Validates `cfg` and spawns the
    /// scheduler thread.
    pub fn new(backend: Arc<dyn NnBackend + Send + Sync>, cfg: ServiceConfig) -> Result<Self> {
        cfg.validate()?;
        let dims = backend.dims();
        let inner = Arc::new(ServiceInner {
            backend,
            cfg,
            dims,
            state: Mutex::new(QueueState {
                pending: Vec::new(),
                queued_queries: 0,
                in_flight: 0,
                drain_waiters: 0,
                stopped: false,
            }),
            not_empty: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            wake: WakeHub::new(),
            metrics: Metrics::default(),
        });
        let scheduler = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("panda-service".into())
                .spawn(move || scheduler_loop(&inner))
                .map_err(|e| PandaError::BadConfig(format!("spawn scheduler: {e}")))?
        };
        Ok(Self {
            inner,
            scheduler: Some(scheduler),
        })
    }

    /// A clonable submission handle (one per client thread).
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Submit directly on the service (same as going through a handle).
    pub fn submit(&self, req: &QueryRequest<'_>) -> Result<Ticket> {
        self.inner.submit(req)
    }

    /// Block until every queued and in-flight submission has resolved
    /// (their tickets are ready). New submissions remain welcome; this
    /// only flushes what was accepted before and during the call.
    pub fn drain(&self) {
        self.inner.drain();
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.metrics.snapshot()
    }

    /// The backend's stable name (e.g. `"panda-local"`).
    pub fn backend_name(&self) -> &'static str {
        self.inner.backend.name()
    }

    /// Graceful shutdown: stop accepting submissions, flush everything
    /// already queued (all outstanding tickets resolve), and join the
    /// scheduler thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.inner.stop();
        if let Some(handle) = self.scheduler.take() {
            // A scheduler panic has already resolved or abandoned its
            // tickets; nothing useful to do beyond not propagating.
            let _ = handle.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock().expect("service state");
        f.debug_struct("QueryService")
            .field("backend", &self.inner.backend.name())
            .field("queued_queries", &st.queued_queries)
            .field("in_flight", &st.in_flight)
            .field("stopped", &st.stopped)
            .finish()
    }
}
