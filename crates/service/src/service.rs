//! The service proper: bounded submission queue, supervised scheduler
//! thread, micro-batch assembly with deadline/cancellation shedding,
//! and zero-copy scatter-back.

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use panda_core::engine::{NnBackend, QueryRequest, QueryResponse};
use panda_core::{
    faultpoint, BoundMode, NeighborTable, PandaError, PointSet, QueryCounters, Result,
};
use panda_obs::trace::{self, Stage};
use panda_obs::{Snapshot, TraceId};

use crate::cache::{CacheKey, ResultCache};
use crate::config::{OverflowPolicy, ServiceConfig};
use crate::metrics::{Metrics, ServiceStats};
use crate::ticket::{Ticket, TicketReply, TicketShared, WakeHub};

/// First restart delay after a scheduler panic; doubles per consecutive
/// panic up to [`RESTART_BACKOFF_MAX`].
const RESTART_BACKOFF_BASE: Duration = Duration::from_millis(5);
/// Upper bound on the supervisor's restart backoff.
const RESTART_BACKOFF_MAX: Duration = Duration::from_millis(250);
/// A scheduler incarnation that survives this long resets the
/// consecutive-panic count (the fault was transient, not systemic).
const RESTART_HEALTHY_RESET: Duration = Duration::from_secs(5);

/// Requests can only be coalesced into one engine batch when they agree
/// on everything that changes answers: `k`, the radius limit, and the
/// traversal bound mode. Submissions with distinct keys flush as
/// separate batches of the same drain cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BatchKey {
    k: usize,
    radius_bits: Option<u32>,
    bound_mode: BoundMode,
}

/// One queued submission: owned coordinates plus the ticket to resolve.
struct Pending {
    coords: Vec<f32>,
    n_queries: usize,
    key: BatchKey,
    ticket: Arc<TicketShared>,
    enqueued_at: Instant,
    /// Relative deadline from `QueryRequest::with_deadline`: if the
    /// submission is still queued when `enqueued_at + deadline` passes,
    /// the scheduler sheds it at flush time instead of executing it.
    deadline: Option<Duration>,
    /// Result-cache key plus the backend data epoch sampled at probe
    /// time; `Some` only when the cache is enabled and this submission
    /// missed it (a successful execution memoizes the reply here).
    cache_key: Option<(Arc<CacheKey>, u64)>,
    /// Sampled pipeline trace id minted at submit ([`TraceId::NONE`] for
    /// the unsampled majority).
    trace: TraceId,
}

/// Queue state guarded by the service mutex.
struct QueueState {
    pending: Vec<Pending>,
    /// Total query points across `pending`.
    queued_queries: usize,
    /// Submissions taken by the scheduler but not yet resolved.
    in_flight: usize,
    /// Tickets of the batch currently executing, registered before the
    /// state lock is released so a panicking scheduler iteration leaves
    /// the supervisor enough to resolve every stranded client.
    in_flight_tickets: Vec<Arc<TicketShared>>,
    /// Drain callers currently waiting (forces immediate flushes).
    drain_waiters: usize,
    stopped: bool,
}

struct ServiceInner {
    backend: Arc<dyn NnBackend + Send + Sync>,
    cfg: ServiceConfig,
    dims: usize,
    state: Mutex<QueueState>,
    /// Scheduler wake-up: new work, a drain, or shutdown.
    not_empty: Condvar,
    /// Blocked submitters wake-up: queue space freed (or shutdown).
    space: Condvar,
    /// Drain wake-up: queue empty and nothing in flight.
    idle: Condvar,
    /// Ticket wake-up: one broadcast per resolved micro-batch.
    wake: Arc<WakeHub>,
    metrics: Metrics,
    /// Hot-query result cache (`None` when
    /// [`ServiceConfig::cache_capacity`] is `0`). Guarded by its own
    /// mutex, not the queue lock: probes and populates never serialize
    /// submitters against the scheduler.
    cache: Option<Mutex<ResultCache>>,
}

impl ServiceInner {
    /// Poison-tolerant state lock: a panicking scheduler iteration must
    /// degrade the service, not brick it. The supervisor restores the
    /// queue invariants in `repair_after_panic` before anyone relies on
    /// them again.
    fn state_lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn submit(&self, req: &QueryRequest<'_>) -> Result<Ticket> {
        req.validate()?;
        let queries = req.queries();
        if queries.dims() != self.dims {
            return Err(PandaError::DimsMismatch {
                expected: self.dims,
                got: queries.dims(),
            });
        }
        let n = queries.len();
        if n == 0 {
            // Nothing to schedule: resolve immediately with an empty
            // slice of an empty response.
            self.metrics.submitted.inc();
            let empty = Arc::new(QueryResponse::local(
                NeighborTable::new(),
                QueryCounters::default(),
                0.0,
            ));
            return Ok(Ticket {
                shared: TicketShared::resolved(
                    Arc::clone(&self.wake),
                    Ok(TicketReply::new(empty, 0, 0)),
                ),
            });
        }
        if n > self.cfg.queue_capacity {
            return Err(PandaError::BadConfig(format!(
                "one submission of {n} queries exceeds the queue capacity {}; \
                 split it or raise the capacity",
                self.cfg.queue_capacity
            )));
        }
        let key = BatchKey {
            k: req.k(),
            radius_bits: req.radius().map(f32::to_bits),
            bound_mode: req.bound_mode(),
        };
        // Pipeline trace id: NONE unless this submission wins the 1-in-N
        // sampling lottery (a single relaxed load when disarmed). A
        // request-carried id (e.g. from an upstream tier) takes priority.
        let trace_id = if req.trace().is_sampled() {
            req.trace()
        } else {
            trace::maybe_sample()
        };
        // Hot-query cache probe: a repeated submission resolves right
        // here with a zero-copy clone of the memoized reply — no queue,
        // no scheduler, no backend. The backend data epoch is sampled
        // at probe time; `lookup` clears the cache if it moved, and the
        // same sample guards the eventual insert on the miss path.
        let cache_key = match &self.cache {
            Some(cache) => {
                let ck = Arc::new(
                    CacheKey::new(queries, key.k, key.radius_bits).with_bound_mode(key.bound_mode),
                );
                let now_epoch = self.backend.data_epoch();
                let probe_start = Instant::now();
                let hit = cache
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .lookup(&ck, now_epoch);
                if let Some(reply) = hit {
                    self.metrics.submitted.inc();
                    self.metrics.cache_hits.inc();
                    self.metrics.record_latency(probe_start.elapsed(), None);
                    // A cache hit is the whole pipeline: one Resolve span.
                    trace::record(trace_id, Stage::Resolve, probe_start);
                    return Ok(Ticket {
                        shared: TicketShared::resolved(Arc::clone(&self.wake), Ok(reply)),
                    });
                }
                self.metrics.cache_misses.inc();
                Some((ck, now_epoch))
            }
            None => None,
        };
        let ticket = TicketShared::pending(Arc::clone(&self.wake));
        // Stamped before any capacity wait, so the latency histogram
        // reflects what the client observed — including time parked on
        // a full queue under the Block policy. The deadline clock starts
        // here too: time spent blocked on a full queue counts against it.
        let enqueued_at = Instant::now();
        // Copied outside the state lock: the memcpy of a large
        // submission must not serialize other submitters/the scheduler.
        let coords = queries.coords().to_vec();
        let wake_scheduler;
        {
            let mut st = self.state_lock();
            loop {
                if st.stopped {
                    return Err(PandaError::ServiceStopped);
                }
                if st.queued_queries + n <= self.cfg.queue_capacity {
                    break;
                }
                match self.cfg.overflow {
                    OverflowPolicy::Reject => {
                        self.metrics.rejected.inc();
                        return Err(PandaError::Overloaded {
                            depth: st.queued_queries,
                            capacity: self.cfg.queue_capacity,
                        });
                    }
                    OverflowPolicy::Block => {
                        st = self.space.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
            st.pending.push(Pending {
                coords,
                n_queries: n,
                key,
                ticket: Arc::clone(&ticket),
                enqueued_at,
                deadline: req.deadline(),
                cache_key,
                trace: trace_id,
            });
            st.queued_queries += n;
            self.metrics.submitted.inc();
            self.metrics.queries.add(n as u64);
            self.metrics.set_queue_depth(st.queued_queries);
            // Wake the scheduler only when this submission changes what
            // it is waiting for: the queue just became non-empty (a new
            // deadline exists) or the size trigger fired. Intermediate
            // submissions leave the deadline untouched — waking the
            // scheduler for each one is a context-switch per request.
            wake_scheduler = st.pending.len() == 1 || st.queued_queries >= self.cfg.max_batch;
        }
        if wake_scheduler {
            self.not_empty.notify_one();
        }
        Ok(Ticket { shared: ticket })
    }

    /// Block until every queued and in-flight submission has resolved.
    fn drain(&self) {
        let mut st = self.state_lock();
        if st.pending.is_empty() && st.in_flight == 0 {
            return;
        }
        st.drain_waiters += 1;
        self.not_empty.notify_one();
        while !(st.pending.is_empty() && st.in_flight == 0) {
            st = self.idle.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.drain_waiters -= 1;
    }

    fn stop(&self) {
        let mut st = self.state_lock();
        st.stopped = true;
        drop(st);
        self.not_empty.notify_all();
        self.space.notify_all();
    }

    /// Resolve one submission and record its end-to-end latency.
    /// `batch_queries` is the coalesced batch size it executed in
    /// (`None` when it never reached a backend). The waiter is *not*
    /// woken here — callers broadcast once per drain cycle. A client
    /// that already walked away (dropped its ticket while pending) is
    /// counted as abandoned.
    fn resolve(&self, pending: Pending, result: Result<TicketReply>, batch_queries: Option<usize>) {
        self.metrics
            .record_latency(pending.enqueued_at.elapsed(), batch_queries);
        pending.ticket.resolve(result);
        if pending.ticket.is_abandoned() {
            self.metrics.abandoned.inc();
        }
    }

    /// Resolve a submission that was shed before execution (cancelled or
    /// past its deadline), bumping the matching counter.
    fn resolve_shed(&self, pending: Pending, err: PandaError) {
        match &err {
            PandaError::Cancelled => {
                self.metrics.cancelled.inc();
            }
            PandaError::DeadlineExceeded { .. } => {
                self.metrics.deadline_exceeded.inc();
            }
            _ => {}
        }
        self.resolve(pending, Err(err), None);
    }

    /// Group one drained queue by [`BatchKey`] (stable order) and run
    /// each group as a single coalesced engine batch. Each group's
    /// clients are woken with one broadcast as soon as *their* group
    /// resolves — a fast group must not sleep through a slow group's
    /// backend execution.
    fn execute(&self, taken: Vec<Pending>) {
        // Chaos hook on the drain path. `Fail`/`Timeout` degrade the
        // whole flush to typed errors (clients see them, the service
        // keeps serving); `Panic` escapes to the supervisor, which
        // resolves these tickets via the in-flight registry.
        if let Err(e) = faultpoint::maybe_fail(faultpoint::points::SERVICE_DRAIN) {
            for m in taken {
                self.resolve(m, Err(e.clone()), None);
            }
            self.wake.wake_all();
            return;
        }
        let mut groups: Vec<(BatchKey, Vec<Pending>)> = Vec::new();
        for p in taken {
            match groups.iter_mut().find(|(k, _)| *k == p.key) {
                Some((_, members)) => members.push(p),
                None => groups.push((p.key, vec![p])),
            }
        }
        for (key, members) in groups {
            self.execute_group(key, members);
            self.wake.wake_all();
        }
    }

    fn execute_group(&self, key: BatchKey, members: Vec<Pending>) {
        let total: usize = members.iter().map(|m| m.n_queries).sum();
        // Queue span closes for every sampled member the moment its
        // group starts assembling; the whole coalesced batch then rides
        // the first sampled member's id through the backend.
        let flush_start = Instant::now();
        let batch_trace = members
            .iter()
            .map(|m| m.trace)
            .find(|t| t.is_sampled())
            .unwrap_or(TraceId::NONE);
        for m in &members {
            trace::record_between(m.trace, Stage::Queue, m.enqueued_at, flush_start);
        }
        let mut coords = Vec::with_capacity(total * self.dims);
        for m in &members {
            coords.extend_from_slice(&m.coords);
        }
        let points = match PointSet::from_coords(self.dims, coords) {
            Ok(p) => p,
            Err(e) => {
                for m in members {
                    self.resolve(m, Err(e.clone()), None);
                }
                return;
            }
        };
        let mut req = QueryRequest::knn(&points, key.k)
            .with_order(self.cfg.order)
            .with_bound_mode(key.bound_mode);
        if let Some(bits) = key.radius_bits {
            req = req.with_radius(f32::from_bits(bits));
        }
        if let Some(parallel) = self.cfg.parallel {
            req = req.with_parallel(parallel);
        }
        req = req.with_trace(batch_trace);
        self.metrics.record_batch(total);
        // Flush span: coords assembly + request construction.
        trace::record(batch_trace, Stage::Flush, flush_start);
        // A panicking backend must not strand tickets in Pending —
        // clients blocked in `wait` would hang forever. Catch, resolve
        // everyone with an error, and let the scheduler keep serving.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| self.backend.query(&req)));
        match outcome {
            Ok(Ok(response)) => {
                let shared = Arc::new(response);
                let resolve_start = Instant::now();
                let mut row = 0u32;
                let mut memos: Vec<(Arc<CacheKey>, TicketReply, u64)> = Vec::new();
                for mut m in members {
                    let n = m.n_queries as u32;
                    let reply = TicketReply::new(Arc::clone(&shared), row, n);
                    row += n;
                    if let Some((ck, epoch)) = m.cache_key.take() {
                        memos.push((ck, reply.clone(), epoch));
                    }
                    let member_trace = m.trace;
                    self.resolve(m, Ok(reply), Some(total));
                    trace::record(member_trace, Stage::Resolve, resolve_start);
                }
                if !memos.is_empty() {
                    if let Some(cache) = &self.cache {
                        let mut c = cache.lock().unwrap_or_else(PoisonError::into_inner);
                        for (ck, reply, epoch) in memos {
                            c.insert(ck, reply, epoch);
                        }
                    }
                }
            }
            Ok(Err(e)) => {
                for m in members {
                    self.resolve(m, Err(e.clone()), Some(total));
                }
            }
            Err(panic) => {
                let msg = panic_message(panic);
                for m in members {
                    self.resolve(
                        m,
                        Err(PandaError::BackendPanicked(msg.clone())),
                        Some(total),
                    );
                }
            }
        }
    }

    /// Post-panic repair, run by the supervisor before restarting the
    /// scheduler: resolve every ticket the dead incarnation had in
    /// flight with [`PandaError::BackendPanicked`], rebuild the queue
    /// accounting from what is still pending, and release anyone blocked
    /// on queue space or idleness.
    fn repair_after_panic(&self, msg: &str) {
        let stranded: Vec<Arc<TicketShared>>;
        {
            let mut st = self.state_lock();
            stranded = std::mem::take(&mut st.in_flight_tickets);
            st.in_flight = 0;
            st.queued_queries = st.pending.iter().map(|p| p.n_queries).sum();
            self.metrics.set_queue_depth(st.queued_queries);
            if st.pending.is_empty() {
                self.idle.notify_all();
            }
        }
        self.space.notify_all();
        let mut resolved_any = false;
        for ticket in stranded {
            // Anything the dying iteration already resolved stays as it
            // was; only still-pending tickets get the panic error.
            if !ticket.is_done() {
                ticket.resolve(Err(PandaError::BackendPanicked(format!(
                    "scheduler panicked mid-batch: {msg}"
                ))));
                if ticket.is_abandoned() {
                    self.metrics.abandoned.inc();
                }
                resolved_any = true;
            }
        }
        if resolved_any {
            self.wake.wake_all();
        }
    }

    /// One coherent telemetry snapshot for the whole stack: the
    /// service's own registry, the backend's registry when it keeps one
    /// (shard/comm/store metrics), and the process-lifetime fault-point
    /// trip counts as `fault.<point>.fired` counters.
    fn telemetry(&self) -> Snapshot {
        let mut snap = self.metrics.registry.snapshot();
        if let Some(reg) = self.backend.registry() {
            snap.merge(&reg.snapshot());
        }
        for (point, n) in faultpoint::fired_counts() {
            snap.push_counter(&format!("fault.{point}.fired"), n);
        }
        snap
    }
}

/// Best-effort human-readable payload of a caught panic.
fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

fn scheduler_loop(inner: &ServiceInner) {
    loop {
        let taken: Vec<Pending>;
        let shed: Vec<(Pending, PandaError)>;
        {
            let mut st = inner.state_lock();
            loop {
                if st.pending.is_empty() {
                    if st.stopped {
                        return;
                    }
                    st = inner
                        .not_empty
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                    continue;
                }
                // Flush triggers: size, shutdown/drain pressure, or the
                // oldest submission's batching delay.
                if st.stopped || st.drain_waiters > 0 || st.queued_queries >= inner.cfg.max_batch {
                    break;
                }
                let waited = st.pending[0].enqueued_at.elapsed();
                if waited >= inner.cfg.max_delay {
                    break;
                }
                let remaining = inner.cfg.max_delay - waited;
                let (guard, _timeout) = inner
                    .not_empty
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
            // Shed before assembling the batch: cancelled submissions
            // and ones whose request deadline already expired give their
            // queue slots back here instead of wasting backend work.
            // (Resolved outside the lock, below.)
            let mut shed_acc: Vec<(Pending, PandaError)> = Vec::new();
            let mut i = 0;
            while i < st.pending.len() {
                if st.pending[i].ticket.is_cancelled() {
                    let p = st.pending.remove(i);
                    st.queued_queries -= p.n_queries;
                    shed_acc.push((p, PandaError::Cancelled));
                    continue;
                }
                if let Some(deadline) = st.pending[i].deadline {
                    let waited = st.pending[i].enqueued_at.elapsed();
                    if waited >= deadline {
                        let p = st.pending.remove(i);
                        st.queued_queries -= p.n_queries;
                        shed_acc.push((p, PandaError::DeadlineExceeded { deadline, waited }));
                        continue;
                    }
                }
                i += 1;
            }
            shed = shed_acc;
            // `max_batch` is a cap as well as a trigger: dispatch whole
            // submissions until the next one would overflow it (always
            // at least one, so an oversized multi-query submission still
            // flows). Anything left stays queued — its head is already
            // past its deadline, so the next cycle flushes immediately.
            let mut take_n = 0usize;
            let mut take_q = 0usize;
            for p in &st.pending {
                if take_n > 0 && take_q + p.n_queries > inner.cfg.max_batch {
                    break;
                }
                take_q += p.n_queries;
                take_n += 1;
            }
            taken = st.pending.drain(..take_n).collect();
            st.queued_queries -= take_q;
            st.in_flight += take_n;
            // Register the batch's tickets while still holding the lock:
            // if this iteration panics mid-execute, the supervisor finds
            // them here and resolves every stranded client.
            st.in_flight_tickets = taken.iter().map(|p| Arc::clone(&p.ticket)).collect();
            inner.metrics.set_queue_depth(st.queued_queries);
            if taken.is_empty() && st.pending.is_empty() && st.in_flight == 0 {
                // Everything queued was shed; drain waiters are idle.
                inner.idle.notify_all();
            }
        }
        // Queue space freed: wake any blocked submitters before the
        // (possibly long) batch execution.
        inner.space.notify_all();
        if !shed.is_empty() {
            for (p, e) in shed {
                inner.resolve_shed(p, e);
            }
            inner.wake.wake_all();
        }
        if taken.is_empty() {
            continue;
        }
        let n_taken = taken.len();
        inner.execute(taken);
        {
            let mut st = inner.state_lock();
            st.in_flight -= n_taken;
            st.in_flight_tickets.clear();
            if st.in_flight == 0 && st.pending.is_empty() {
                inner.idle.notify_all();
            }
        }
    }
}

/// Supervised scheduler entry point: run [`scheduler_loop`]; when a
/// panic escapes it (an injected fault, or a bug outside the backend
/// `catch_unwind`), repair the queue state, resolve stranded tickets,
/// and restart the loop after a bounded exponential backoff. A clean
/// return (shutdown) ends supervision. The service therefore keeps
/// accepting and serving work across scheduler crashes instead of
/// silently dying with clients blocked forever.
fn supervisor_loop(inner: &ServiceInner) {
    let mut consecutive = 0u32;
    loop {
        let started = Instant::now();
        match std::panic::catch_unwind(AssertUnwindSafe(|| scheduler_loop(inner))) {
            Ok(()) => return,
            Err(panic) => {
                let msg = panic_message(panic);
                inner.metrics.scheduler_restarts.inc();
                inner.repair_after_panic(&msg);
                if started.elapsed() >= RESTART_HEALTHY_RESET {
                    consecutive = 0;
                }
                let backoff = RESTART_BACKOFF_BASE
                    .saturating_mul(1u32 << consecutive.min(16))
                    .min(RESTART_BACKOFF_MAX);
                consecutive = consecutive.saturating_add(1);
                // Restart even when stopped: a shutdown-concurrent panic
                // still leaves queued submissions to flush, and the loop
                // exits cleanly once the queue is empty. Progress is
                // guaranteed — every incarnation takes at least one
                // submission out of the queue.
                std::thread::sleep(backoff);
            }
        }
    }
}

/// A cheap clonable submission handle onto a [`QueryService`].
///
/// Handles share the service's queue and scheduler; clone one per
/// client thread. Handles do not keep the service alive — once the
/// owning [`QueryService`] is shut down (or dropped), `submit` returns
/// [`PandaError::ServiceStopped`].
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<ServiceInner>,
}

impl ServiceHandle {
    /// Queue a batch of queries described by `req`; returns immediately
    /// with a [`Ticket`] unless the bounded queue is full (then the
    /// configured [`OverflowPolicy`] applies). The request's `k`,
    /// radius, and bound mode are honored; its order/parallel knobs are
    /// service-level configuration and are ignored here.
    pub fn submit(&self, req: &QueryRequest<'_>) -> Result<Ticket> {
        self.inner.submit(req)
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.metrics.snapshot()
    }

    /// One coherent [`Snapshot`] across the whole stack — service
    /// counters, the backend's shard/comm/store metrics (when it keeps a
    /// registry), and fault-point trip counts. Feed it to
    /// [`panda_obs::render_prometheus`] or [`panda_obs::render_json`].
    pub fn telemetry(&self) -> Snapshot {
        self.inner.telemetry()
    }
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("backend", &self.inner.backend.name())
            .finish()
    }
}

/// An in-process concurrent query service over one thread-safe
/// [`NnBackend`].
///
/// See the crate docs for the execution model; in short: `submit`
/// enqueues, a dedicated scheduler coalesces the queue into
/// Morton-ordered micro-batches (flushing on size *or* deadline),
/// batches execute on the persistent worker pool, and each client's
/// ticket resolves to a zero-copy slice of the shared batch response.
pub struct QueryService {
    inner: Arc<ServiceInner>,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl QueryService {
    /// Start a service over `backend`. Validates `cfg` and spawns the
    /// scheduler thread.
    pub fn new(backend: Arc<dyn NnBackend + Send + Sync>, cfg: ServiceConfig) -> Result<Self> {
        cfg.validate()?;
        let dims = backend.dims();
        // Per-shard capacity knob → effective capacity: a sharded
        // backend fields proportionally more distinct hot keys.
        let cache_slots = cfg
            .cache_capacity
            .saturating_mul(backend.shard_count().max(1));
        let inner = Arc::new(ServiceInner {
            backend,
            cfg,
            dims,
            state: Mutex::new(QueueState {
                pending: Vec::new(),
                queued_queries: 0,
                in_flight: 0,
                in_flight_tickets: Vec::new(),
                drain_waiters: 0,
                stopped: false,
            }),
            not_empty: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            wake: WakeHub::new(),
            metrics: Metrics::default(),
            cache: (cache_slots > 0)
                .then(|| Mutex::new(ResultCache::new(cache_slots, cfg.cache_ttl))),
        });
        let scheduler = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("panda-service".into())
                .spawn(move || supervisor_loop(&inner))
                .map_err(|e| PandaError::BadConfig(format!("spawn scheduler: {e}")))?
        };
        Ok(Self {
            inner,
            scheduler: Some(scheduler),
        })
    }

    /// A clonable submission handle (one per client thread).
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Submit directly on the service (same as going through a handle).
    pub fn submit(&self, req: &QueryRequest<'_>) -> Result<Ticket> {
        self.inner.submit(req)
    }

    /// Block until every queued and in-flight submission has resolved
    /// (their tickets are ready). New submissions remain welcome; this
    /// only flushes what was accepted before and during the call.
    pub fn drain(&self) {
        self.inner.drain();
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.metrics.snapshot()
    }

    /// One coherent [`Snapshot`] across the whole stack (see
    /// [`ServiceHandle::telemetry`]).
    pub fn telemetry(&self) -> Snapshot {
        self.inner.telemetry()
    }

    /// The backend's stable name (e.g. `"panda-local"`).
    pub fn backend_name(&self) -> &'static str {
        self.inner.backend.name()
    }

    /// Graceful shutdown: stop accepting submissions, flush everything
    /// already queued (all outstanding tickets resolve), and join the
    /// scheduler thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.inner.stop();
        if let Some(handle) = self.scheduler.take() {
            // The supervisor absorbs scheduler panics (restarting after
            // repair), so a normal join returns once the queue is
            // flushed; `let _` only guards against panics in the
            // supervisor itself.
            let _ = handle.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state_lock();
        f.debug_struct("QueryService")
            .field("backend", &self.inner.backend.name())
            .field("queued_queries", &st.queued_queries)
            .field("in_flight", &st.in_flight)
            .field("stopped", &st.stopped)
            .finish()
    }
}
