//! Tickets: the future-like handle a client holds between `submit` and
//! the scheduler resolving its micro-batch.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use panda_core::engine::QueryResponse;
use panda_core::{Neighbor, Result};

/// A client's view of its slice of a coalesced batch response.
///
/// The neighbor storage is the **shared** batch
/// [`QueryResponse`] behind an `Arc` — `row` hands out slices into the
/// one CSR arena the engine produced, so scattering a batch back to its
/// clients copies no [`Neighbor`] at all.
#[derive(Clone, Debug)]
pub struct TicketReply {
    response: Arc<QueryResponse>,
    start: u32,
    len: u32,
}

impl TicketReply {
    pub(crate) fn new(response: Arc<QueryResponse>, start: u32, len: u32) -> Self {
        Self {
            response,
            start,
            len,
        }
    }

    /// Number of queries this submission asked (and rows it owns).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the submission had no queries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Neighbors of this submission's query `i` (ascending distance) —
    /// a zero-copy slice into the shared batch arena. Panics when `i >=
    /// len()`.
    pub fn row(&self, i: usize) -> &[Neighbor] {
        assert!(i < self.len(), "reply row {i} out of {}", self.len());
        self.response.neighbors.row(self.start as usize + i)
    }

    /// Iterate this submission's rows in submission order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Neighbor]> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// This submission's row range inside the shared batch response.
    pub fn rows(&self) -> Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }

    /// The whole coalesced batch response this reply slices into
    /// (counters and timings there are **batch-wide**, shared by every
    /// client coalesced into it).
    pub fn response(&self) -> &QueryResponse {
        &self.response
    }
}

/// One wake-up channel per service, shared by every ticket.
///
/// Resolving a micro-batch of `n` submissions stores `n` results and
/// then broadcasts **once** — one `notify_all` instead of `n` per-ticket
/// notifies, so the scheduler's hand-back costs O(1) syscalls per batch
/// rather than one per client. Waiters from a batch that has not
/// resolved yet observe a spurious wake, recheck their `done` flag, and
/// sleep again.
pub(crate) struct WakeHub {
    lock: Mutex<()>,
    cv: Condvar,
}

impl WakeHub {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    /// Broadcast to every waiting ticket of this service. Must be
    /// called after the `done` flags it is announcing are stored (the
    /// flag stores happen-before this lock acquisition, and waiters
    /// check the flag under the same lock — no lost wake-ups).
    pub(crate) fn wake_all(&self) {
        let _guard = self.lock.lock().expect("wake hub");
        self.cv.notify_all();
    }
}

pub(crate) struct TicketShared {
    /// Set (release) after `result` is stored; checked by waiters.
    done: AtomicBool,
    result: Mutex<Option<Result<TicketReply>>>,
    wake: Arc<WakeHub>,
}

impl TicketShared {
    pub(crate) fn pending(wake: Arc<WakeHub>) -> Arc<Self> {
        Arc::new(Self {
            done: AtomicBool::new(false),
            result: Mutex::new(None),
            wake,
        })
    }

    pub(crate) fn resolved(wake: Arc<WakeHub>, result: Result<TicketReply>) -> Arc<Self> {
        Arc::new(Self {
            done: AtomicBool::new(true),
            result: Mutex::new(Some(result)),
            wake,
        })
    }

    /// Store the outcome. Does **not** wake the waiter — the scheduler
    /// resolves the whole batch and then broadcasts once through the
    /// [`WakeHub`].
    pub(crate) fn resolve(&self, result: Result<TicketReply>) {
        let mut slot = self.result.lock().expect("ticket result");
        debug_assert!(slot.is_none(), "double resolve");
        *slot = Some(result);
        drop(slot);
        self.done.store(true, Ordering::Release);
    }

    fn take(&self) -> Result<TicketReply> {
        self.result
            .lock()
            .expect("ticket result")
            .take()
            .expect("resolved ticket has a result")
    }
}

/// The pending side of one `submit` call. Resolved exactly once by the
/// service scheduler; consumed by [`Ticket::wait`].
pub struct Ticket {
    pub(crate) shared: Arc<TicketShared>,
}

impl Ticket {
    /// Block until the micro-batch containing this submission has been
    /// executed, then return this client's slice of it.
    pub fn wait(self) -> Result<TicketReply> {
        if !self.shared.done.load(Ordering::Acquire) {
            let hub = Arc::clone(&self.shared.wake);
            let mut guard = hub.lock.lock().expect("wake hub");
            while !self.shared.done.load(Ordering::Acquire) {
                guard = hub.cv.wait(guard).expect("ticket wait");
            }
        }
        self.shared.take()
    }

    /// Like [`Self::wait`] but give up after `timeout`; `Err(self)`
    /// hands the ticket back so the caller can keep waiting.
    pub fn wait_timeout(self, timeout: Duration) -> std::result::Result<Result<TicketReply>, Self> {
        let deadline = std::time::Instant::now() + timeout;
        if !self.shared.done.load(Ordering::Acquire) {
            let hub = Arc::clone(&self.shared.wake);
            let mut guard = hub.lock.lock().expect("wake hub");
            while !self.shared.done.load(Ordering::Acquire) {
                let now = std::time::Instant::now();
                if now >= deadline {
                    drop(guard);
                    return Err(self);
                }
                let (g, _) = hub
                    .cv
                    .wait_timeout(guard, deadline - now)
                    .expect("ticket wait");
                guard = g;
            }
        }
        Ok(self.shared.take())
    }

    /// True once the scheduler has resolved this ticket ([`Self::wait`]
    /// will not block).
    pub fn is_ready(&self) -> bool {
        self.shared.done.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}
