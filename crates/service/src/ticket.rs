//! Tickets: the future-like handle a client holds between `submit` and
//! the scheduler resolving its micro-batch.
//!
//! # Lifecycle contract
//!
//! A ticket ends in exactly one of three ways:
//!
//! * **Consumed** — [`Ticket::wait`] / [`Ticket::wait_timeout`] returns
//!   the result. The normal path.
//! * **Cancelled** — [`Ticket::cancel`] detaches the submission. If the
//!   scheduler has not flushed it yet, the queued slot is reclaimed at
//!   flush time and the ticket is resolved with `PandaError::Cancelled`
//!   (nobody observes that resolution — the handle is gone).
//! * **Abandoned** — the ticket is dropped while still pending (most
//!   commonly after a [`Ticket::wait_timeout`] miss hands it back and
//!   the caller lets it fall). The scheduler still executes the work and
//!   resolves the ticket; the reply is silently discarded, and the
//!   service counts it in `ServiceStats::abandoned` so walked-away
//!   clients are visible instead of vanishing.
//!
//! Dropping a ticket *after* it resolved (without taking the reply) is
//! none of these — the client raced the scheduler and chose not to look;
//! nothing is counted.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use panda_core::engine::QueryResponse;
use panda_core::{Neighbor, Result};

/// A client's view of its slice of a coalesced batch response.
///
/// The neighbor storage is the **shared** batch
/// [`QueryResponse`] behind an `Arc` — `row` hands out slices into the
/// one CSR arena the engine produced, so scattering a batch back to its
/// clients copies no [`Neighbor`] at all.
#[derive(Clone, Debug)]
pub struct TicketReply {
    response: Arc<QueryResponse>,
    start: u32,
    len: u32,
}

impl TicketReply {
    pub(crate) fn new(response: Arc<QueryResponse>, start: u32, len: u32) -> Self {
        Self {
            response,
            start,
            len,
        }
    }

    /// Number of queries this submission asked (and rows it owns).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the submission had no queries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Neighbors of this submission's query `i` (ascending distance) —
    /// a zero-copy slice into the shared batch arena. Panics when `i >=
    /// len()`.
    pub fn row(&self, i: usize) -> &[Neighbor] {
        assert!(i < self.len(), "reply row {i} out of {}", self.len());
        self.response.neighbors.row(self.start as usize + i)
    }

    /// Iterate this submission's rows in submission order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Neighbor]> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// This submission's row range inside the shared batch response.
    pub fn rows(&self) -> Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }

    /// The whole coalesced batch response this reply slices into
    /// (counters and timings there are **batch-wide**, shared by every
    /// client coalesced into it).
    pub fn response(&self) -> &QueryResponse {
        &self.response
    }
}

/// One wake-up channel per service, shared by every ticket.
///
/// Resolving a micro-batch of `n` submissions stores `n` results and
/// then broadcasts **once** — one `notify_all` instead of `n` per-ticket
/// notifies, so the scheduler's hand-back costs O(1) syscalls per batch
/// rather than one per client. Waiters from a batch that has not
/// resolved yet observe a spurious wake, recheck their `done` flag, and
/// sleep again.
///
/// All hub locking is poison-tolerant: the guarded state is the empty
/// tuple, so a panicking holder leaves nothing inconsistent behind and
/// waiters must keep working after a scheduler panic (the supervisor
/// resolves their tickets through this same hub).
pub(crate) struct WakeHub {
    lock: Mutex<()>,
    cv: Condvar,
}

impl WakeHub {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    /// Broadcast to every waiting ticket of this service. Must be
    /// called after the `done` flags it is announcing are stored (the
    /// flag stores happen-before this lock acquisition, and waiters
    /// check the flag under the same lock — no lost wake-ups).
    pub(crate) fn wake_all(&self) {
        let _guard = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
        self.cv.notify_all();
    }
}

pub(crate) struct TicketShared {
    /// Set (release) after `result` is stored; checked by waiters.
    done: AtomicBool,
    /// Set by [`Ticket::cancel`]; the scheduler skips execution for
    /// flushed-but-cancelled submissions.
    cancelled: AtomicBool,
    /// Set by `Ticket`'s `Drop` when the handle dies before resolution;
    /// the scheduler counts it when it later resolves the ticket.
    abandoned: AtomicBool,
    result: Mutex<Option<Result<TicketReply>>>,
    wake: Arc<WakeHub>,
}

impl TicketShared {
    pub(crate) fn pending(wake: Arc<WakeHub>) -> Arc<Self> {
        Arc::new(Self {
            done: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            abandoned: AtomicBool::new(false),
            result: Mutex::new(None),
            wake,
        })
    }

    pub(crate) fn resolved(wake: Arc<WakeHub>, result: Result<TicketReply>) -> Arc<Self> {
        Arc::new(Self {
            done: AtomicBool::new(true),
            cancelled: AtomicBool::new(false),
            abandoned: AtomicBool::new(false),
            result: Mutex::new(Some(result)),
            wake,
        })
    }

    /// Store the outcome. Does **not** wake the waiter — the scheduler
    /// resolves the whole batch and then broadcasts once through the
    /// [`WakeHub`].
    pub(crate) fn resolve(&self, result: Result<TicketReply>) {
        let mut slot = self.result.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(slot.is_none(), "double resolve");
        *slot = Some(result);
        drop(slot);
        self.done.store(true, Ordering::Release);
    }

    pub(crate) fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    pub(crate) fn is_abandoned(&self) -> bool {
        self.abandoned.load(Ordering::Acquire)
    }

    fn take(&self) -> Result<TicketReply> {
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("resolved ticket has a result")
    }
}

/// The pending side of one `submit` call. Resolved exactly once by the
/// service scheduler.
///
/// # Lifecycle contract
///
/// A ticket ends in exactly one of three ways:
///
/// * **Consumed** — [`Ticket::wait`] / [`Ticket::wait_timeout`] returns
///   the result. The normal path.
/// * **Cancelled** — [`Ticket::cancel`] detaches the submission; an
///   unflushed one has its queue slot reclaimed at the next flush.
/// * **Abandoned** — dropped while still pending (most commonly after a
///   [`Ticket::wait_timeout`] miss hands it back and the caller lets it
///   fall). The scheduler still executes and resolves it; the reply is
///   silently discarded, and the service counts it in
///   `ServiceStats::abandoned` so walked-away clients are visible.
///
/// Dropping a ticket *after* it resolved (without taking the reply) is
/// none of these — the client raced the scheduler and chose not to
/// look; nothing is counted.
pub struct Ticket {
    pub(crate) shared: Arc<TicketShared>,
}

impl Ticket {
    /// Block until the micro-batch containing this submission has been
    /// executed, then return this client's slice of it.
    pub fn wait(self) -> Result<TicketReply> {
        if !self.shared.done.load(Ordering::Acquire) {
            let hub = Arc::clone(&self.shared.wake);
            let mut guard = hub.lock.lock().unwrap_or_else(PoisonError::into_inner);
            while !self.shared.done.load(Ordering::Acquire) {
                guard = hub.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
            }
        }
        self.shared.take()
    }

    /// Like [`Self::wait`] but give up after `timeout`; `Err(self)`
    /// hands the ticket back so the caller can keep waiting.
    ///
    /// # Contract after a timeout
    ///
    /// A timeout does **not** withdraw the submission — the scheduler
    /// still executes it. The caller owns the returned ticket and must
    /// choose: keep waiting (call `wait`/`wait_timeout` again),
    /// [`cancel`](Self::cancel) it so an unflushed submission's queue
    /// slot is reclaimed, or drop it — in which case the eventual reply
    /// is discarded and the service counts the ticket in
    /// `ServiceStats::abandoned`.
    pub fn wait_timeout(self, timeout: Duration) -> std::result::Result<Result<TicketReply>, Self> {
        let deadline = std::time::Instant::now() + timeout;
        if !self.shared.done.load(Ordering::Acquire) {
            let hub = Arc::clone(&self.shared.wake);
            let mut guard = hub.lock.lock().unwrap_or_else(PoisonError::into_inner);
            while !self.shared.done.load(Ordering::Acquire) {
                let now = std::time::Instant::now();
                if now >= deadline {
                    drop(guard);
                    return Err(self);
                }
                let (g, _) = hub
                    .cv
                    .wait_timeout(guard, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                guard = g;
            }
        }
        Ok(self.shared.take())
    }

    /// Detach this submission and discard any result.
    ///
    /// Returns `true` when the cancellation was registered while the
    /// submission was still pending: if the scheduler has not flushed it
    /// into a micro-batch yet, its queue slot is reclaimed at the next
    /// flush (it is resolved internally with `PandaError::Cancelled` and
    /// counted in `ServiceStats::cancelled`) — the backend never sees
    /// it. Returns `false` when the result was already available; it is
    /// simply discarded (and not counted as abandoned).
    ///
    /// Cancellation is advisory about *work*: a submission already
    /// flushed into an executing batch still runs, but its reply is
    /// dropped.
    pub fn cancel(self) -> bool {
        self.shared.cancelled.store(true, Ordering::SeqCst);
        !self.shared.done.load(Ordering::SeqCst)
    }

    /// True once the scheduler has resolved this ticket ([`Self::wait`]
    /// will not block).
    pub fn is_ready(&self) -> bool {
        self.shared.done.load(Ordering::Acquire)
    }
}

impl Drop for Ticket {
    /// A ticket dropped while still pending (and not cancelled) is
    /// *abandoned*: the scheduler will still resolve it, notice the
    /// flag, and count the discarded reply in `ServiceStats::abandoned`.
    fn drop(&mut self) {
        if !self.shared.done.load(Ordering::Acquire)
            && !self.shared.cancelled.load(Ordering::Acquire)
        {
            self.shared.abandoned.store(true, Ordering::SeqCst);
        }
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}
