//! # panda-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! Criterion micro-benchmarks in `benches/`. This library holds the
//! shared machinery:
//!
//! * [`args`] — minimal CLI flag parsing (`--scale`, `--ranks`, `--seed`,
//!   `--csv`, ...);
//! * [`table`] — aligned table / CSV printing;
//! * [`runner`] — the distributed build+query experiment driver with
//!   rank-aggregated metrics;
//! * [`calibrate`] — host microbenchmarks for the cost-model constants.
//!
//! ## Scale convention
//!
//! Every harness accepts `--scale` (default 1/1000): datasets are
//! generated at `scale ×` the paper's particle counts, and rank counts are
//! capped at `--max-ranks` (default 64). Timings printed as "model s" are
//! **virtual seconds** from the simulated cluster (see `panda-comm`);
//! they are not expected to match the paper's absolute numbers — the
//! *shape* (ratios, scaling exponents, breakdown percentages, who wins)
//! is the reproduction target. `EXPERIMENTS.md` records both.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod calibrate;
pub mod runner;
pub mod table;

pub use args::Args;
pub use runner::{run_distributed, DistMetrics};
pub use table::Table;
