//! Figure 5(b) — construction time breakdown.
//!
//! Paper (at 6144 / 12288 / 768 cores): global kd-tree construction +
//! particle redistribution dominate (>75% for the 3-D cosmo/plasma
//! datasets); the 10-D dayabay spends more in local split-dimension
//! selection, pulling the global share down to ~58%.

use panda_bench::runner::{run_distributed, RunConfig};
use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_core::timers::BuildBreakdown;
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();

    println!("Fig 5(b) — construction breakdown (% of total)\n");
    let mut table = Table::new(&["Phase", "cosmo_large", "plasma_large", "dayabay_large"]);

    let mut columns: Vec<[f64; 5]> = Vec::new();
    for (ds, ranks) in [
        (Dataset::CosmoLarge, 16usize),
        (Dataset::PlasmaLarge, 16),
        (Dataset::DayabayLarge, 16),
    ] {
        let row = ds.paper_row();
        let eff_scale =
            scale.min(args.usize("max-points", 8_000_000) as f64 / row.particles as f64);
        let points = ds.generate(eff_scale, seed);
        let queries = queries_from(&points, 64, 0.01, seed + 1);
        let mut cfg = RunConfig::edison(args.usize("ranks", ranks));
        cfg.query.k = row.k;
        let m = run_distributed(&points, &queries, &cfg, false);
        columns.push(m.build_breakdown.percentages());
        eprintln!("  {}: total {:.3} model s", row.name, m.construct_s);
    }

    for (i, label) in BuildBreakdown::LABELS.iter().enumerate() {
        table.row(&[
            label.to_string(),
            f(columns[0][i], 1),
            f(columns[1][i], 1),
            f(columns[2][i], 1),
        ]);
    }
    table.print();

    let global_share: Vec<f64> = columns.iter().map(|c| c[0] + c[1]).collect();
    println!(
        "\nglobal construction + redistribution share: cosmo {:.0}%, plasma {:.0}%, dayabay {:.0}%",
        global_share[0], global_share[1], global_share[2]
    );
    println!("paper: >75% for cosmo/plasma, ~58% for dayabay (10-D)");
}
