//! Table I — dataset attributes with construction/query times.
//!
//! Paper: 8 datasets from 27 M to 188.8 B particles on 24–49,152 cores.
//! Reproduction: same datasets at `--scale` (default 1/1000) with rank
//! counts `paper_cores / 24` capped at `--max-ranks`; times are virtual
//! seconds from the simulated Edison cluster. Run:
//!
//! ```text
//! cargo run --release -p panda-bench --bin table1 [--scale 1e-3] [--csv t1.csv]
//! ```

use panda_bench::runner::{run_distributed, RunConfig};
use panda_bench::table::{count, f, Table};
use panda_bench::Args;
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();
    let max_ranks = args.max_ranks();
    let max_points = args.usize("max-points", 20_000_000);

    println!("Table I (reproduction) — scale {scale}, ranks capped at {max_ranks}, points capped at {max_points}");
    println!("(C) = kd-tree construction, (Q) = querying; model s = virtual seconds\n");

    let mut table = Table::new(&[
        "Name",
        "Particles",
        "Dims",
        "Paper C(s)",
        "Model C(s)",
        "k",
        "Queries(%)",
        "Paper Q(s)",
        "Model Q(s)",
        "Ranks",
        "Cores(model)",
    ]);

    for ds in Dataset::TABLE1 {
        let row = ds.paper_row();
        let ranks = (row.cores / 24).clamp(1, max_ranks);
        let eff_scale = scale.min(max_points as f64 / row.particles as f64);
        let points = ds.generate(eff_scale, seed);
        let n_queries = ((points.len() as f64 * row.query_fraction) as usize).max(16);
        let queries = queries_from(&points, n_queries, 0.01, seed + 1);

        let mut cfg = RunConfig::edison(ranks);
        cfg.query.k = row.k;
        // verification on the smaller rows only (brute force over all
        // points per sampled query gets slow beyond ~10M points)
        let verify = points.len() <= 2_000_000;
        let m = run_distributed(&points, &queries, &cfg, verify);

        table.row(&[
            row.name.to_string(),
            count(points.len() as u64),
            row.dims.to_string(),
            row.time_construct_s.map_or("-".into(), |t| f(t, 1)),
            f(m.construct_s, 4),
            row.k.to_string(),
            f(row.query_fraction * 100.0, 1),
            row.time_query_s.map_or("-".into(), |t| f(t, 1)),
            f(m.query_s, 4),
            ranks.to_string(),
            cfg.cores().to_string(),
        ]);
        eprintln!(
            "  {}: done ({} pts, {} queries, imbalance {:.2}, remote fanout {:.2})",
            row.name,
            points.len(),
            queries.len(),
            m.max_load_imbalance,
            m.remote.avg_remote_fanout()
        );
    }

    table.print();
    let csv = args.string("csv", "");
    if !csv.is_empty() {
        table.write_csv(&csv).expect("write csv");
        println!("\nwrote {csv}");
    }
}
