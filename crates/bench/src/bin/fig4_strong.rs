//! Figure 4 — multinode strong scaling of construction and querying.
//!
//! Paper: cosmo_large 6144→49152 cores (constr 4.3×, query 5.2×),
//! plasma_large 12288→49152 (2.7× / 4.4×), dayabay_large 768→6144
//! (6.5× / 6.6×). Querying scales better than construction because
//! construction must move the whole dataset while querying ships only
//! per-query traffic.
//!
//! Reproduction: same datasets at `--scale`, rank sweep ×8 starting at
//! `--base-ranks` (default 8). Speedups normalized to the smallest rank
//! count, ideal column printed alongside.

use panda_bench::runner::{run_distributed, RunConfig};
use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();
    let base = args.usize("base-ranks", 8);
    let steps = args.usize("steps", 4);

    for (ds, paper_c, paper_q, paper_span) in [
        (Dataset::CosmoLarge, 4.3, 5.2, 8.0),
        (Dataset::PlasmaLarge, 2.7, 4.4, 4.0),
        (Dataset::DayabayLarge, 6.5, 6.6, 8.0),
    ] {
        let row = ds.paper_row();
        let eff_scale =
            scale.min(args.usize("max-points", 8_000_000) as f64 / row.particles as f64);
        let points = ds.generate(eff_scale, seed);
        let n_queries = ((points.len() as f64 * row.query_fraction) as usize).max(64);
        let queries = queries_from(&points, n_queries, 0.01, seed + 1);
        println!(
            "\nFig 4 — {} ({} pts, {} queries); paper: constr {paper_c}x, query {paper_q}x over {paper_span}x cores",
            row.name,
            points.len(),
            queries.len()
        );

        let mut table = Table::new(&[
            "Ranks",
            "Cores",
            "Constr(s)",
            "Constr speedup",
            "Query(s)",
            "Query speedup",
            "Ideal",
        ]);
        let mut base_c = 0.0;
        let mut base_q = 0.0;
        for step in 0..steps {
            let ranks = base << step;
            let mut cfg = RunConfig::edison(ranks);
            cfg.query.k = row.k;
            let m = run_distributed(&points, &queries, &cfg, false);
            if step == 0 {
                base_c = m.construct_s;
                base_q = m.query_s;
            }
            table.row(&[
                ranks.to_string(),
                cfg.cores().to_string(),
                f(m.construct_s, 3),
                f(base_c / m.construct_s, 2),
                f(m.query_s, 3),
                f(base_q / m.query_s, 2),
                f((1 << step) as f64, 0),
            ]);
        }
        table.print();
    }
}
