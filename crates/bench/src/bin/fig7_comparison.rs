//! Figure 7 — PANDA vs FLANN vs ANN on the thin datasets.
//!
//! Paper: (a) construction — PANDA 2.2× / 2.6× faster than FLANN / ANN
//! at one thread, 39× / 59× at 24 threads; (b) query at 1 thread — up to
//! 48× vs FLANN and 3× vs ANN, with ~2× / 12× fewer node traversals;
//! (c) query at 24 threads — up to 22× vs FLANN (ANN is not
//! parallelizable).
//!
//! Reproduction: real single-thread wall-clock for all three
//! implementations (this is an apples-to-apples Rust comparison), plus
//! the traversal-count ratios (hardware-independent), plus modeled
//! 24-thread numbers under the Edison profile.

use std::time::Instant;

use panda_baselines::{AnnLikeTree, FlannLikeTree, UNPACKED_DIST_PENALTY};
use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_comm::MachineProfile;
use panda_core::engine::{NnBackend, QueryRequest};
use panda_core::knn::KnnIndex;
use panda_core::{QueryCounters, TreeConfig};
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    // Default one decade above the global harness scale: the asymptotic
    // differences the paper measures need ≥ a few hundred k points.
    let scale = args.f64("scale", 1e-2);
    let seed = args.seed();
    let cost = MachineProfile::EdisonNode.cost_model();

    for ds in [
        Dataset::CosmoThin,
        Dataset::PlasmaThin,
        Dataset::DayabayThin,
    ] {
        let row = ds.paper_row();
        let points = ds.generate(scale, seed);
        let n_queries = ((points.len() as f64 * row.query_fraction) as usize).clamp(256, 100_000);
        let queries = queries_from(&points, n_queries, 0.01, seed + 1);
        println!(
            "\nFig 7 — {} ({} pts, {} queries, k={})",
            row.name,
            points.len(),
            queries.len(),
            row.k
        );

        // --- real single-threaded construction (warm pass first so page
        //     faults and allocator growth don't pollute the comparison) --
        let _warm = FlannLikeTree::build(&points).expect("warm");
        let t0 = Instant::now();
        let flann = FlannLikeTree::build(&points).expect("flann build");
        let t_flann_build = t0.elapsed().as_secs_f64();
        let _warm = AnnLikeTree::build(&points).expect("warm");
        let t0 = Instant::now();
        let ann = AnnLikeTree::build(&points).expect("ann build");
        let t_ann_build = t0.elapsed().as_secs_f64();
        let panda_cfg = TreeConfig {
            threads: 24,
            ..TreeConfig::default()
        };
        let _warm = KnnIndex::build(&points, &panda_cfg).expect("warm");
        let t0 = Instant::now();
        let panda = KnnIndex::build(&points, &panda_cfg).expect("panda build");
        let t_panda_build = t0.elapsed().as_secs_f64();

        // modeled 24-thread PANDA construction: measured 1T wall time /
        // modeled speedup (the modeled thread pool applied to real work)
        let model = panda.tree();
        let speedup_24 = model.modeled_build_at(&cost, 1, false).total()
            / model.modeled_build_at(&cost, 24, false).total();
        let t_panda_build_24 = t_panda_build / speedup_24;

        let mut t = Table::new(&["Training", "seconds", "vs PANDA-1", "vs PANDA-24"]);
        for (name, secs) in [
            ("FLANN-like (1T)", t_flann_build),
            ("ANN-like (1T)", t_ann_build),
            ("PANDA-1", t_panda_build),
            ("PANDA-24 (model)", t_panda_build_24),
        ] {
            t.row(&[
                name.to_string(),
                f(secs, 3),
                f(secs / t_panda_build, 2),
                f(secs / t_panda_build_24, 1),
            ]);
        }
        t.print();
        println!(
            "paper: PANDA 2.2x/2.6x faster @1T; 39x/59x @24T | depths: flann {} ann {} panda {}",
            flann.stats().max_depth,
            ann.stats().max_depth,
            panda.tree().stats().max_depth
        );

        // --- real single-threaded querying (warmed) ---------------------
        // One request, one loop: every engine sits behind `NnBackend`.
        let req = QueryRequest::knn(&queries, row.k);
        let backends: [&dyn NnBackend; 3] = [&flann, &ann, &panda];
        let mut measured = Vec::with_capacity(backends.len());
        for backend in backends {
            let _ = backend.query(&req).expect("warm");
            let t0 = Instant::now();
            let res = backend.query(&req).expect("query");
            measured.push((t0.elapsed().as_secs_f64(), res.counters));
        }
        let (t_flann_q, c_flann) = measured[0];
        let (t_ann_q, c_ann) = measured[1];
        let (t_panda_q, c_panda) = measured[2];

        let q24 = |counters: &QueryCounters, penalty: f64| {
            let cpu = counters.cpu_seconds(&cost.ops, points.dims()) * penalty;
            let mem = counters.mem_bytes(points.dims());
            cost.thread.parallel_time_at(cpu, mem, 24, false)
        };
        let t_flann_q24 = q24(&c_flann, UNPACKED_DIST_PENALTY);
        let t_panda_q24 = q24(&c_panda, 1.0);

        let mut t = Table::new(&["Classification", "seconds", "node visits", "vs PANDA"]);
        for (name, secs, visits) in [
            ("FLANN-like (1T)", t_flann_q, c_flann.nodes_visited),
            ("ANN-like (1T)", t_ann_q, c_ann.nodes_visited),
            ("PANDA-1", t_panda_q, c_panda.nodes_visited),
        ] {
            t.row(&[
                name.to_string(),
                f(secs, 3),
                visits.to_string(),
                f(secs / t_panda_q, 2),
            ]);
        }
        t.print();
        println!(
            "traversal ratio: flann/panda {:.2}, ann/panda {:.2} (paper: ~2x and ~12x on cosmo)",
            c_flann.nodes_visited as f64 / c_panda.nodes_visited as f64,
            c_ann.nodes_visited as f64 / c_panda.nodes_visited as f64,
        );
        println!(
            "24T model: FLANN-like {:.4}s vs PANDA {:.4}s -> {:.1}x (paper: up to 22x)",
            t_flann_q24,
            t_panda_q24,
            t_flann_q24 / t_panda_q24
        );
    }
}
