//! PR 5 perf evidence — the coalescing query service vs one-query-per-call
//! dispatch, under closed-loop concurrent clients.
//!
//! The workload is the serving scenario the engine was never exposed to
//! before PR 5: `C` independent clients, each a closed loop (submit one
//! small request, wait for the answer, submit the next). Per-query
//! dispatch answers each request with its own `NnBackend::query` call —
//! no batching, no locality, `C` threads contending for the machine.
//! The service coalesces the same stream into Morton-ordered
//! micro-batches on one scheduler, executed on the persistent worker
//! pool, scattering zero-copy row slices back to the clients.
//!
//! Both modes are verified **bit-identical** per client request before
//! timing. Writes `BENCH_PR5.json` (override with `--out`); `--smoke`
//! shrinks every dimension for CI.
//!
//! ## Thread sweep
//!
//! The execution-side parallelism comes from the persistent rayon pool,
//! sized by `RAYON_NUM_THREADS` (the recorded `rayon_threads` field says
//! what a given JSON actually measured — published numbers from 1-worker
//! hosts are single-core results). To sweep:
//!
//! ```text
//! for t in 1 2 4 8; do
//!   RAYON_NUM_THREADS=$t cargo run --release --bin bench_pr5 -- \
//!     --out BENCH_PR5_t$t.json
//! done
//! ```
//!
//! `--min-threads N` makes the run *refuse* to publish numbers from a
//! smaller pool (exit with an error instead of silently recording a
//! 1-core measurement as if it were a parallel one).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use panda_bench::Args;
use panda_core::engine::{NnBackend, QueryRequest};
use panda_core::knn::KnnIndex;
use panda_core::rng::SplitRng;
use panda_core::{PointSet, TreeConfig};
use panda_data::uniform;
use panda_service::{OverflowPolicy, QueryService, ServiceConfig};

/// Workload shape shared by both modes.
#[derive(Clone, Copy)]
struct Workload {
    k: usize,
    requests: usize,
    seed: u64,
    /// Deadline flush (µs) for the service mode.
    delay_us: u64,
}

/// Serving traffic with popularity skew: every request is a small
/// perturbation of one of `hotspots` popular dataset points, and each
/// client proxies many users, so *consecutive* requests of one client
/// jump between hotspots. A per-thread stream therefore has no usable
/// locality — only cross-client coalescing (the service's Morton pass
/// over each micro-batch) can group co-located queries back together.
fn client_queries(
    points: &PointSet,
    hotspots: usize,
    client: usize,
    requests: usize,
    seed: u64,
) -> Vec<PointSet> {
    let dims = points.dims();
    let mut rng = SplitRng::new(seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..requests)
        .map(|_| {
            let h = (rng.next_f64() * hotspots as f64) as usize % hotspots;
            // hotspots are spread deterministically through the dataset
            let center = points.point((h * points.len() / hotspots) % points.len());
            let q: Vec<f32> = center
                .iter()
                .map(|&c| c + ((rng.next_f64() - 0.5) * 0.02) as f32)
                .collect();
            PointSet::from_coords(dims, q).expect("finite query")
        })
        .collect()
}

/// Neighbor rows as comparable bits.
type Row = Vec<(u32, u64)>;

struct ModeResult {
    wall_seconds: f64,
    /// Per-request latencies, all clients merged (seconds).
    latencies: Vec<f64>,
    /// `rows[client][request]` for the bit-identical gate.
    rows: Vec<Vec<Row>>,
    /// Result-cache hits/misses from the service telemetry snapshot
    /// (zero in direct mode, which has no cache).
    cache_hits: u64,
    cache_misses: u64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Closed-loop clients calling `backend.query` one request at a time.
fn run_direct(
    backend: &Arc<KnnIndex>,
    queries: &Arc<Vec<Vec<PointSet>>>,
    w: Workload,
) -> ModeResult {
    let clients = queries.len();
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let backend = Arc::clone(backend);
            let queries = Arc::clone(queries);
            let k = w.k;
            let requests = w.requests;
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(requests);
                let mut rows: Vec<Row> = Vec::with_capacity(requests);
                for q in &queries[c] {
                    let t = Instant::now();
                    // same session entry point the service uses, one
                    // query per call
                    let res = backend
                        .query_session(&QueryRequest::knn(q, k))
                        .expect("query");
                    lat.push(t.elapsed().as_secs_f64());
                    rows.push(
                        res.neighbors
                            .row(0)
                            .iter()
                            .map(|n| (n.dist_sq.to_bits(), n.id))
                            .collect(),
                    );
                }
                (lat, rows)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut rows = Vec::new();
    for w in workers {
        let (lat, r) = w.join().expect("client");
        latencies.extend(lat);
        rows.push(r);
    }
    ModeResult {
        wall_seconds: t0.elapsed().as_secs_f64(),
        latencies,
        rows,
        cache_hits: 0,
        cache_misses: 0,
    }
}

/// The same closed-loop clients, submitting through the service.
fn run_service(
    backend: &Arc<KnnIndex>,
    queries: &Arc<Vec<Vec<PointSet>>>,
    w: Workload,
) -> ModeResult {
    let clients = queries.len();
    let service = QueryService::new(
        Arc::clone(backend) as Arc<dyn NnBackend + Send + Sync>,
        ServiceConfig::default()
            // self-clocking under closed loops: a full client population
            // triggers the size flush; stragglers bound tail latency via
            // the deadline
            .with_max_batch(clients.max(2))
            .with_max_delay(Duration::from_micros(w.delay_us))
            .with_queue_capacity(8192)
            .with_overflow(OverflowPolicy::Block),
    )
    .expect("service");
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let handle = service.handle();
            let queries = Arc::clone(queries);
            let k = w.k;
            let requests = w.requests;
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(requests);
                let mut rows: Vec<Row> = Vec::with_capacity(requests);
                for q in &queries[c] {
                    let t = Instant::now();
                    let reply = handle
                        .submit(&QueryRequest::knn(q, k))
                        .expect("submit")
                        .wait()
                        .expect("wait");
                    lat.push(t.elapsed().as_secs_f64());
                    rows.push(
                        reply
                            .row(0)
                            .iter()
                            .map(|n| (n.dist_sq.to_bits(), n.id))
                            .collect(),
                    );
                }
                (lat, rows)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut rows = Vec::new();
    for w in workers {
        let (lat, r) = w.join().expect("client");
        latencies.extend(lat);
        rows.push(r);
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = service.stats();
    assert_eq!(stats.rejected, 0, "Block policy never rejects");
    println!(
        "    service internals: {} batches, mean size {:.1}, max queue {}",
        stats.batches,
        stats.mean_batch_size(),
        stats.max_queue_depth
    );
    let snap = service.telemetry();
    service.shutdown();
    ModeResult {
        wall_seconds: wall,
        latencies,
        rows,
        cache_hits: snap.counter("service.cache.hits").unwrap_or(0),
        cache_misses: snap.counter("service.cache.misses").unwrap_or(0),
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.switch("smoke");
    let out_path = args.string("out", "BENCH_PR5.json");
    // 10-D is the serving-relevant regime: traversal-heavy queries
    // (tens of µs each) are where coalescing pays; 3-µs 3-D lookups are
    // cheaper than any cross-thread handoff and belong in-process.
    let dims = args.usize("dims", 10);
    let k = args.usize("k", 32);
    let n_points = args.usize("points", if smoke { 20_000 } else { 200_000 });
    let requests = args.usize("requests", if smoke { 25 } else { 100 });
    let client_counts: &[usize] = &[8, 64];
    let w = Workload {
        k,
        requests,
        seed: 1042,
        delay_us: args.usize("delay-us", 300) as u64,
    };

    let hotspots = args.usize("hotspots", 256);
    let min_threads = args.usize("min-threads", 0);
    let threads = rayon::current_num_threads();
    assert!(
        threads >= min_threads,
        "pool has {threads} worker(s) but --min-threads {min_threads} was requested; \
         set RAYON_NUM_THREADS (this guard exists so multi-core claims are never \
         backed by a single-core run)"
    );
    let points = uniform::generate(n_points, dims, 1.0, 42);
    let backend = Arc::new(
        KnnIndex::build(&points, &TreeConfig::default().with_parallel(true)).expect("build"),
    );
    println!(
        "bench_pr5: {n_points} points, {dims}-D, k={k}, {requests} requests/client, {hotspots} hotspots{}",
        if smoke { " [smoke]" } else { "" }
    );

    let mut json = String::from(
        "{\n  \"bench\": \"coalescing query service vs per-query dispatch (PR 5)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"n_points\": {n_points}, \"dims\": {dims}, \"k\": {k}, \"requests_per_client\": {requests}, \"hotspots\": {hotspots},"
    );
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"rayon_threads\": {threads},");
    json.push_str("  \"client_counts\": [\n");

    let reps = args.usize("reps", if smoke { 1 } else { 3 });
    let mut speedup_64 = 0.0f64;
    for (wi, &clients) in client_counts.iter().enumerate() {
        println!("\n{clients} closed-loop clients:");
        // every request pre-generated outside the timed window
        let queries: Arc<Vec<Vec<PointSet>>> = Arc::new(
            (0..clients)
                .map(|c| client_queries(&points, hotspots, c, w.requests, w.seed))
                .collect(),
        );
        // warmup (untimed): touch the tree and both execution paths
        let warm = Workload { requests: 3, ..w };
        let warm_q: Arc<Vec<Vec<PointSet>>> = Arc::new(
            queries
                .iter()
                .map(|qs| qs[..3.min(qs.len())].to_vec())
                .collect(),
        );
        let _ = run_direct(&backend, &warm_q, warm);
        let _ = run_service(&backend, &warm_q, warm);

        // alternating best-of-reps: closed-loop throughput is scheduler
        // noise-prone on shared hosts; the best rep is the cleanest view
        // of each mode's capacity
        let mut direct = run_direct(&backend, &queries, w);
        let mut service = run_service(&backend, &queries, w);
        assert_eq!(direct.rows, service.rows, "service diverged from direct");
        for _ in 1..reps {
            let d = run_direct(&backend, &queries, w);
            if d.wall_seconds < direct.wall_seconds {
                direct = d;
            }
            let s = run_service(&backend, &queries, w);
            if s.wall_seconds < service.wall_seconds {
                service = s;
            }
        }

        let total = (clients * requests) as f64;
        let d_qps = total / direct.wall_seconds;
        let s_qps = total / service.wall_seconds;
        let speedup = s_qps / d_qps;
        if clients == 64 {
            speedup_64 = speedup;
        }
        let mut d_lat = direct.latencies;
        let mut s_lat = service.latencies;
        d_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        s_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let report = |name: &str, qps: f64, lat: &[f64]| {
            println!(
                "  {name:<10} {qps:>9.0} q/s   p50 {:>7.0}µs   p99 {:>7.0}µs",
                quantile(lat, 0.5) * 1e6,
                quantile(lat, 0.99) * 1e6
            );
        };
        report("per-query", d_qps, &d_lat);
        report("service", s_qps, &s_lat);
        println!("  service vs per-query: {speedup:.2}x");

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"clients\": {clients},");
        let _ = writeln!(json, "      \"direct_qps\": {d_qps:.1},");
        let _ = writeln!(
            json,
            "      \"direct_p50_us\": {:.1}, \"direct_p99_us\": {:.1},",
            quantile(&d_lat, 0.5) * 1e6,
            quantile(&d_lat, 0.99) * 1e6
        );
        let _ = writeln!(json, "      \"service_qps\": {s_qps:.1},");
        let _ = writeln!(
            json,
            "      \"service_p50_us\": {:.1}, \"service_p99_us\": {:.1},",
            quantile(&s_lat, 0.5) * 1e6,
            quantile(&s_lat, 0.99) * 1e6
        );
        let _ = writeln!(
            json,
            "      \"service_cache_hits\": {}, \"service_cache_misses\": {},",
            service.cache_hits, service.cache_misses
        );
        let _ = writeln!(json, "      \"service_vs_direct\": {speedup:.4}");
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < client_counts.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"service_vs_direct_64_clients\": {speedup_64:.4}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR5.json");
    println!("\nwrote {out_path}");
    // Regression gate on the full-size run only (smoke runs on shared CI
    // runners, where absolute timings are noise). Closed-loop timing on
    // a contended host swings ±8% run to run, so the in-binary guard
    // trips a little below the ≥ 1.0 acceptance line; the JSON records
    // the actual ratio.
    if !smoke {
        assert!(
            speedup_64 >= 0.9,
            "coalesced service regressed below per-query dispatch at 64 clients: {speedup_64:.3}x"
        );
    }
}
