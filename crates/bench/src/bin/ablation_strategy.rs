//! Ablation — distributed strategy (1) vs (2) (§III-A).
//!
//! Strategy (1): per-rank local trees, no redistribution; every query
//! goes to every rank; `P·k` candidates cross the network per query.
//! Strategy (2), PANDA: global kd-tree; each query visits its owner plus
//! the few ranks within `r'`. The paper's introduction argues (2) wins on
//! network traffic and per-query work; this harness quantifies it.

use panda_baselines::LocalTreesKnn;
use panda_bench::runner::{run_distributed, RunConfig};
use panda_bench::table::{bytes, f, Table};
use panda_bench::Args;
use panda_comm::{run_cluster, total_stats, ClusterConfig, MachineProfile};
use panda_core::TreeConfig;
use panda_data::{queries_from, scatter, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();

    let points = Dataset::CosmoThin.generate(scale, seed);
    let queries = queries_from(&points, (points.len() / 20).max(256), 0.01, seed + 1);
    let k = 5;
    println!(
        "Strategy ablation — cosmo_thin ({} pts, {} queries, k={k})\n",
        points.len(),
        queries.len()
    );

    let mut table = Table::new(&[
        "P",
        "Strategy",
        "Query model(s)",
        "Bytes/query",
        "Candidates/query",
        "Ranks touched/query",
    ]);

    for p in [4usize, 16, 64] {
        // --- strategy (2): PANDA global tree ---------------------------
        let cfg = RunConfig::edison(p);
        let m = run_distributed(&points, &queries, &cfg, false);
        let nq = queries.len() as f64;
        table.row(&[
            p.to_string(),
            "global tree (PANDA)".into(),
            f(m.query_s, 4),
            bytes((m.comm_query.total_bytes() as f64 / nq) as u64),
            f(m.remote.remote_neighbors_received as f64 / nq + k as f64, 1),
            f(1.0 + m.remote.avg_remote_fanout(), 2),
        ]);

        // --- strategy (1): local trees everywhere -----------------------
        let cost = MachineProfile::EdisonNode.cost_model().with_threads(24);
        let cluster = ClusterConfig::new(p).with_cost(cost);
        let outcomes = run_cluster(&cluster, |comm| {
            let mine = scatter(&points, comm.rank(), comm.size());
            let cfg = TreeConfig {
                threads: 24,
                ..TreeConfig::default()
            };
            let engine = LocalTreesKnn::build(comm, &mine, &cfg).expect("build");
            comm.barrier();
            let t0 = comm.now();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let (_res, stats, _c) = engine.query(comm, &myq, k).expect("query");
            comm.barrier();
            (comm.now() - t0, stats)
        });
        let t_query = outcomes.iter().map(|o| o.result.0).fold(0.0, f64::max);
        let comm_stats = total_stats(&outcomes);
        let candidates: u64 = outcomes.iter().map(|o| o.result.1.candidates_merged).sum();
        table.row(&[
            p.to_string(),
            "local trees (strategy 1)".into(),
            f(t_query, 4),
            bytes((comm_stats.total_bytes() as f64 / nq) as u64),
            f(candidates as f64 / nq, 1),
            p.to_string(),
        ]);
    }
    table.print();
    println!("\npaper §I: strategy (1) computes and transfers P*k neighbors per query and");
    println!("throws away all but k; the global tree touches O(1) ranks per query instead.");
}
