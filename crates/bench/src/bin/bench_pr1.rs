//! PR 1 perf evidence — fused SIMD leaf kernel + zero-copy traversal +
//! locality-aware batching, measured against the seed's scalar path.
//!
//! Runs the single-node `query_batch` hot path on a 3-D (cosmology-like)
//! and a 10-D (Daya-Bay-like) uniform workload three ways:
//!
//! * `reference` — the seed implementation, kept verbatim as
//!   `LocalKdTree::query_into_reference` (side-array copy per stack push,
//!   two-pass scalar leaf scan);
//! * `fused` — the optimized traversal (undo-log stack, fused
//!   scan-and-offer kernel with runtime AVX2 dispatch), input order;
//! * `fused_morton` — the same, with Morton-ordered batch dispatch.
//!
//! Results (queries/sec and scanned points/sec, best of `--reps` runs)
//! are printed and written to `BENCH_PR1.json` (override with `--out`),
//! so the perf trajectory of this PR sequence is recorded in-repo.
//!
//! Every configuration is verified to return bit-identical neighbor sets
//! before timing; a mismatch aborts the run.

use std::fmt::Write as _;
use std::time::Instant;

use panda_bench::Args;
use panda_core::config::QueryOrder;
use panda_core::engine::{NeighborTable, QueryRequest};
use panda_core::knn::KnnIndex;
use panda_core::rng::SplitRng;
use panda_core::{BoundMode, KnnHeap, Neighbor, PointSet, QueryCounters, TreeConfig};

struct Workload {
    name: &'static str,
    dims: usize,
    n_points: usize,
    n_queries: usize,
    k: usize,
}

struct Measurement {
    qps: f64,
    points_per_sec: f64,
}

fn uniform(n: usize, dims: usize, span: f64, seed: u64) -> PointSet {
    let mut rng = SplitRng::new(seed);
    PointSet::from_coords(
        dims,
        (0..n * dims)
            .map(|_| (rng.next_f64() * span) as f32)
            .collect(),
    )
    .expect("valid points")
}

/// Best-of-`reps` timing of `run`, returning (qps, points/sec).
fn time_batch(
    reps: usize,
    n_queries: usize,
    mut run: impl FnMut() -> QueryCounters,
) -> Measurement {
    let mut best = f64::INFINITY;
    let mut counters = QueryCounters::default();
    for _ in 0..reps {
        let t0 = Instant::now();
        counters = run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Measurement {
        qps: n_queries as f64 / best,
        points_per_sec: counters.points_scanned as f64 / best,
    }
}

fn reference_batch(
    index: &KnnIndex,
    queries: &PointSet,
    k: usize,
) -> (Vec<Vec<Neighbor>>, QueryCounters) {
    let mut counters = QueryCounters::default();
    let out = (0..queries.len())
        .map(|i| {
            let mut heap = KnnHeap::new(k);
            index.tree().query_into_reference(
                queries.point(i),
                &mut heap,
                BoundMode::Exact,
                &mut counters,
            );
            heap.into_sorted()
        })
        .collect();
    (out, counters)
}

fn flat(res: &[Vec<Neighbor>]) -> Vec<(f32, u64)> {
    res.iter()
        .flat_map(|ns| ns.iter().map(|n| (n.dist_sq, n.id)))
        .collect()
}

fn flat_csr(res: &NeighborTable) -> Vec<(f32, u64)> {
    res.arena().iter().map(|n| (n.dist_sq, n.id)).collect()
}

fn main() {
    let args = Args::from_env();
    let reps = args.usize("reps", 5);
    let seed = args.u64("seed", 42);
    let out_path = args.string("out", "BENCH_PR1.json");

    let workloads = [
        Workload {
            name: "uniform_3d",
            dims: 3,
            n_points: 200_000,
            n_queries: 8192,
            k: 5,
        },
        Workload {
            name: "uniform_10d",
            dims: 10,
            n_points: 60_000,
            n_queries: 4096,
            k: 5,
        },
    ];

    let mut json = String::from("{\n  \"bench\": \"query_batch PR1 fused-kernel evidence\",\n");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(
        json,
        "  \"avx2\": {},",
        std::is_x86_feature_detected!("avx2")
    );
    json.push_str("  \"workloads\": [\n");

    for (wi, w) in workloads.iter().enumerate() {
        let points = uniform(w.n_points, w.dims, 100.0, seed);
        let queries = uniform(w.n_queries, w.dims, 100.0, seed + 1);
        let index = KnnIndex::build(&points, &TreeConfig::default()).expect("build");

        // correctness gate: all three paths must agree bit-for-bit
        let (ref_res, _) = reference_batch(&index, &queries, w.k);
        let fused_res = index
            .query_session(&QueryRequest::knn(&queries, w.k).with_order(QueryOrder::Input))
            .unwrap();
        let morton_res = index
            .query_session(&QueryRequest::knn(&queries, w.k).with_order(QueryOrder::Morton))
            .unwrap();
        assert_eq!(
            flat(&ref_res),
            flat_csr(&fused_res.neighbors),
            "{}: fused path diverged",
            w.name
        );
        assert_eq!(
            flat(&ref_res),
            flat_csr(&morton_res.neighbors),
            "{}: morton path diverged",
            w.name
        );

        let m_ref = time_batch(reps, w.n_queries, || {
            reference_batch(&index, &queries, w.k).1
        });
        let m_fused = time_batch(reps, w.n_queries, || {
            index
                .query_session(&QueryRequest::knn(&queries, w.k).with_order(QueryOrder::Input))
                .unwrap()
                .counters
        });
        let m_morton = time_batch(reps, w.n_queries, || {
            index
                .query_session(&QueryRequest::knn(&queries, w.k).with_order(QueryOrder::Morton))
                .unwrap()
                .counters
        });

        let speedup = m_fused.qps / m_ref.qps;
        let speedup_morton = m_morton.qps / m_ref.qps;
        println!(
            "{}: dims={} n={} q={} k={}",
            w.name, w.dims, w.n_points, w.n_queries, w.k
        );
        println!(
            "  reference     {:>12.0} q/s  {:>14.3e} pts/s",
            m_ref.qps, m_ref.points_per_sec
        );
        println!(
            "  fused         {:>12.0} q/s  {:>14.3e} pts/s  ({speedup:.2}x)",
            m_fused.qps, m_fused.points_per_sec
        );
        println!(
            "  fused+morton  {:>12.0} q/s  {:>14.3e} pts/s  ({speedup_morton:.2}x)",
            m_morton.qps, m_morton.points_per_sec
        );

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"dims\": {},", w.dims);
        let _ = writeln!(json, "      \"n_points\": {},", w.n_points);
        let _ = writeln!(json, "      \"n_queries\": {},", w.n_queries);
        let _ = writeln!(json, "      \"k\": {},", w.k);
        let _ = writeln!(json, "      \"reference_qps\": {:.1},", m_ref.qps);
        let _ = writeln!(
            json,
            "      \"reference_points_per_sec\": {:.1},",
            m_ref.points_per_sec
        );
        let _ = writeln!(json, "      \"fused_qps\": {:.1},", m_fused.qps);
        let _ = writeln!(
            json,
            "      \"fused_points_per_sec\": {:.1},",
            m_fused.points_per_sec
        );
        let _ = writeln!(json, "      \"fused_morton_qps\": {:.1},", m_morton.qps);
        let _ = writeln!(
            json,
            "      \"fused_morton_points_per_sec\": {:.1},",
            m_morton.points_per_sec
        );
        let _ = writeln!(json, "      \"speedup_fused_vs_reference\": {speedup:.3},");
        let _ = writeln!(
            json,
            "      \"speedup_morton_vs_reference\": {speedup_morton:.3}"
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR1.json");
    println!("wrote {out_path}");
}
