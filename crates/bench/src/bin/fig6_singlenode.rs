//! Figure 6 — single-node thread scaling of construction and querying.
//!
//! Paper (24-core Edison node, *thin* datasets): construction scales
//! 17–20× on 24 threads (22.4× with SMT); querying is memory-bound and
//! reaches only 8.8–12.2× (another 1.5–1.7× from SMT on the 3-D
//! datasets; 1.2× on 10-D dayabay which has more compute per byte).
//!
//! Reproduction: the tree is built and queried **for real** (counting
//! every node visit and distance evaluation); the thread sweep applies
//! the Edison thread model to those counters. A real wall-clock
//! validation on this host's cores is printed at the end.

use std::time::Instant;

use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_comm::MachineProfile;
use panda_core::engine::QueryRequest;
use panda_core::knn::KnnIndex;
use panda_core::TreeConfig;
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();
    let cost = MachineProfile::EdisonNode.cost_model();

    let threads = [1usize, 2, 4, 8, 12, 16, 20, 24];

    for ds in [
        Dataset::CosmoThin,
        Dataset::PlasmaThin,
        Dataset::DayabayThin,
    ] {
        let row = ds.paper_row();
        let points = ds.generate(scale, seed);
        let n_queries = ((points.len() as f64 * row.query_fraction) as usize).max(256);
        let queries = queries_from(&points, n_queries, 0.01, seed + 1);

        let cfg = TreeConfig {
            threads: 24,
            ..TreeConfig::default()
        };
        let index = KnnIndex::build(&points, &cfg).expect("build");
        let counters = index
            .query_session(&QueryRequest::knn(&queries, row.k))
            .expect("query")
            .counters;

        println!(
            "\nFig 6 — {} ({} pts, {} queries, k={})",
            row.name,
            points.len(),
            queries.len(),
            row.k
        );
        let mut table = Table::new(&["Threads", "Constr speedup", "Query speedup"]);
        let c1 = index.tree().modeled_build_at(&cost, 1, false).total();
        let q1 = index.modeled_query_time_at(&counters, &cost, 1, false);
        for &t in &threads {
            let ct = index.tree().modeled_build_at(&cost, t, false).total();
            let qt = index.modeled_query_time_at(&counters, &cost, t, false);
            table.row(&[t.to_string(), f(c1 / ct, 1), f(q1 / qt, 1)]);
        }
        // SMT row (48 logical threads on 24 cores)
        let ct = index.tree().modeled_build_at(&cost, 24, true).total();
        let qt = index.modeled_query_time_at(&counters, &cost, 24, true);
        table.row(&["24+SMT".into(), f(c1 / ct, 1), f(q1 / qt, 1)]);
        table.print();
        println!(
            "paper @24T: construction 17-20x (18.3-22.4x SMT); query 8.8-12.2x (12.9-16.2x SMT)"
        );
    }

    // Real-hardware validation on this host (rayon, all cores).
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if host_threads >= 2 && !args.switch("no-validate") {
        println!("\nvalidation: real wall-clock on this host ({host_threads} cores)");
        let points = Dataset::CosmoThin.generate(scale.max(4e-3), seed);
        let queries = queries_from(&points, (points.len() / 10).max(256), 0.01, seed + 1);
        // warm both paths (page faults, allocator, rayon pool start-up)
        let _ = KnnIndex::build(&points, &TreeConfig::default()).unwrap();
        let t0 = Instant::now();
        let seq = KnnIndex::build(&points, &TreeConfig::default()).unwrap();
        let t_build_1 = t0.elapsed().as_secs_f64();
        let par_cfg = TreeConfig::default()
            .with_parallel(true)
            .with_threads(host_threads);
        let _ = KnnIndex::build(&points, &par_cfg).unwrap();
        let t0 = Instant::now();
        let par = KnnIndex::build(&points, &par_cfg).unwrap();
        let t_build_p = t0.elapsed().as_secs_f64();
        let _ = seq.query_session(&QueryRequest::knn(&queries, 5)).unwrap();
        let t0 = Instant::now();
        let _ = seq.query_session(&QueryRequest::knn(&queries, 5)).unwrap();
        let t_q1 = t0.elapsed().as_secs_f64();
        let _ = par.query_session(&QueryRequest::knn(&queries, 5)).unwrap();
        let t0 = Instant::now();
        let _ = par.query_session(&QueryRequest::knn(&queries, 5)).unwrap();
        let t_qp = t0.elapsed().as_secs_f64();
        println!(
            "  construction: 1T {:.3}s vs {host_threads}T {:.3}s -> {:.2}x",
            t_build_1,
            t_build_p,
            t_build_1 / t_build_p
        );
        println!(
            "  querying:     1T {:.3}s vs {host_threads}T {:.3}s -> {:.2}x",
            t_q1,
            t_qp,
            t_q1 / t_qp
        );
    }
}
