//! Host calibration of the cost-model constants.
//!
//! Re-measures the per-operation costs the simulator uses (distance
//! kernel, heap, histogram binning, partition) and prints a
//! `ComputeCosts` literal for the `Laptop` profile, next to the built-in
//! defaults. Run with `--release`; debug numbers are meaningless.

use panda_bench::calibrate;
use panda_bench::table::{f, Table};
use panda_comm::{ComputeCosts, MachineProfile};

fn main() {
    if cfg!(debug_assertions) {
        eprintln!("warning: calibrating a debug build — run with --release");
    }
    let cal = calibrate::run();
    let laptop = MachineProfile::Laptop.cost_model().ops;

    println!("per-operation costs measured on this host (ns):\n");
    let mut t = Table::new(&["op", "measured", "laptop profile", "ratio"]);
    let rows: [(&str, f64, f64); 5] = [
        ("dist (pt·dim)", cal.dist, laptop.dist),
        ("heap offer", cal.heap_op, laptop.heap_op),
        ("hist binary", cal.hist_binary, laptop.hist_binary),
        ("hist scan", cal.hist_scan, laptop.hist_scan),
        ("partition", cal.partition, laptop.partition),
    ];
    for (name, measured, profile) in rows {
        t.row(&[
            name.to_string(),
            f(measured * 1e9, 2),
            f(profile * 1e9, 2),
            f(measured / profile, 2),
        ]);
    }
    t.print();

    println!(
        "\nscan vs binary advantage: {:.0}%",
        100.0 * (1.0 - cal.hist_scan / cal.hist_binary)
    );
    println!("\nComputeCosts literal for cost.rs (Laptop profile):\n");
    println!("{}", calibrate::render(&cal, &ComputeCosts::ivy_bridge()));
}
