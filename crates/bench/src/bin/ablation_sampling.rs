//! Ablation — sampling budgets (§III-A1's `m = 256` global samples per
//! rank and 1024 local samples) and the data-parallel cut-over factor
//! (`threads × 10`).
//!
//! More samples buy better medians (balance) at histogram-assembly cost;
//! the paper's choices sit where balance stops improving. The cut-over
//! factor trades breadth-first level overhead against tail imbalance of
//! the subtree schedule.

use panda_bench::runner::{run_distributed, RunConfig};
use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_comm::MachineProfile;
use panda_core::config::{SplitValueStrategy, TreeConfig};
use panda_core::engine::QueryRequest;
use panda_core::knn::KnnIndex;
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();

    // ---- global samples per rank → load balance -------------------------
    let points = Dataset::CosmoMedium.generate(scale, seed);
    let queries = queries_from(&points, 512, 0.01, seed + 1);
    println!(
        "Global sampling ablation — cosmo_medium ({} pts, 16 ranks)\n",
        points.len()
    );
    let mut table = Table::new(&[
        "Samples/rank",
        "Max load imbalance",
        "Constr model(s)",
        "Query model(s)",
    ]);
    for m in [16usize, 64, 256, 1024] {
        let mut cfg = RunConfig::edison(16);
        cfg.dist.global_samples_per_rank = m;
        let metrics = run_distributed(&points, &queries, &cfg, false);
        table.row(&[
            m.to_string(),
            f(metrics.max_load_imbalance, 3),
            f(metrics.construct_s, 4),
            f(metrics.query_s, 4),
        ]);
    }
    table.print();
    println!("(paper uses 256/rank; balance should plateau near there)\n");

    // ---- local histogram samples ----------------------------------------
    let cost = MachineProfile::EdisonNode.cost_model();
    let thin = Dataset::CosmoThin.generate(scale, seed);
    let tq = queries_from(&thin, (thin.len() / 10).max(512), 0.01, seed + 2);
    println!(
        "Local sampling ablation — cosmo_thin ({} pts)\n",
        thin.len()
    );
    let mut table = Table::new(&[
        "Samples",
        "Constr model(s)",
        "Query model(s)",
        "Tree depth",
        "Mean leaf fill",
    ]);
    for samples in [64usize, 256, 1024, 4096] {
        let cfg = TreeConfig {
            threads: 24,
            split_value: SplitValueStrategy::SampledHistogram { samples },
            exact_median_below: 64,
            ..TreeConfig::default()
        };
        let index = KnnIndex::build(&thin, &cfg).expect("build");
        let counters = index
            .query_session(&QueryRequest::knn(&tq, 5))
            .expect("query")
            .counters;
        table.row(&[
            samples.to_string(),
            f(index.tree().modeled_build_at(&cost, 24, false).total(), 4),
            f(index.modeled_query_time_at(&counters, &cost, 24, false), 4),
            index.tree().stats().max_depth.to_string(),
            f(index.tree().stats().mean_leaf_fill, 1),
        ]);
    }
    table.print();
    println!("(paper uses 1024 for the local tree)\n");

    // ---- data-parallel cut-over factor ----------------------------------
    println!("Data-parallel cut-over ablation — cosmo_thin\n");
    let mut table = Table::new(&["Factor", "DP levels", "Subtrees", "Constr model(s)"]);
    for factor in [1usize, 4, 10, 40] {
        let cfg = TreeConfig {
            threads: 24,
            data_parallel_factor: factor,
            ..TreeConfig::default()
        };
        let index = KnnIndex::build(&thin, &cfg).expect("build");
        let stats = index.tree().stats();
        table.row(&[
            factor.to_string(),
            stats.phases.dp_levels.to_string(),
            stats.phases.subtrees.len().to_string(),
            f(index.tree().modeled_build_at(&cost, 24, false).total(), 4),
        ]);
    }
    table.print();
    println!("(paper switches to thread-parallel subtrees at threads × 10 segments)");
}
