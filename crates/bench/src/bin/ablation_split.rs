//! Ablation — split-dimension strategy (§III-A1: max-variance costs "up
//! to 18%" extra construction and improves query performance "by up to
//! 43%", with the particle-physics dataset the headline case).

use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_comm::MachineProfile;
use panda_core::config::SplitDimStrategy;
use panda_core::engine::QueryRequest;
use panda_core::knn::KnnIndex;
use panda_core::TreeConfig;
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();
    let cost = MachineProfile::EdisonNode.cost_model();

    println!("Split-dimension ablation (MaxVariance vs MaxExtent vs RoundRobin)\n");
    for ds in [
        Dataset::CosmoThin,
        Dataset::PlasmaThin,
        Dataset::DayabayThin,
    ] {
        let row = ds.paper_row();
        let points = ds.generate(scale, seed);
        let queries = queries_from(
            &points,
            (points.len() / 20).clamp(256, 20_000),
            0.01,
            seed + 1,
        );
        println!(
            "{} ({} pts, {} queries, k={}):",
            row.name,
            points.len(),
            queries.len(),
            row.k
        );
        let mut table = Table::new(&[
            "Strategy",
            "Constr model(s)",
            "Query model(s)",
            "Nodes visited",
            "Constr vs extent",
            "Query vs extent",
        ]);
        let mut extent_c = 0.0;
        let mut extent_q = 0.0;
        for (name, strat) in [
            ("MaxExtent", SplitDimStrategy::MaxExtent),
            (
                "MaxVariance",
                SplitDimStrategy::MaxVariance { sample: 1024 },
            ),
            ("RoundRobin", SplitDimStrategy::RoundRobin),
        ] {
            let cfg = TreeConfig {
                threads: 24,
                split_dim: strat,
                ..TreeConfig::default()
            };
            let index = KnnIndex::build(&points, &cfg).expect("build");
            let counters = index
                .query_session(&QueryRequest::knn(&queries, row.k))
                .expect("query")
                .counters;
            let c = index.tree().modeled_build_at(&cost, 24, false).total();
            let q = index.modeled_query_time_at(&counters, &cost, 24, false);
            if name == "MaxExtent" {
                extent_c = c;
                extent_q = q;
            }
            table.row(&[
                name.to_string(),
                f(c, 4),
                f(q, 4),
                counters.nodes_visited.to_string(),
                format!("{:+.1}%", 100.0 * (c / extent_c - 1.0)),
                format!("{:+.1}%", 100.0 * (q / extent_q - 1.0)),
            ]);
        }
        table.print();
        println!();
    }
    println!("paper: variance adds up to +18% construction, buys up to -43% query time");
}
