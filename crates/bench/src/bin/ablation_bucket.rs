//! Ablation — leaf bucket size (§III-A1: "Empirically, we found that a
//! bucket size of 32 gave the best performance").
//!
//! Larger buckets shrink the tree (cheaper construction, fewer node
//! visits) but make every visited leaf an exhaustive scan; smaller
//! buckets do the opposite. The sweep reports modeled construction and
//! query times at 24 Edison threads, plus the raw traversal counters
//! driving them.

use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_comm::MachineProfile;
use panda_core::engine::QueryRequest;
use panda_core::knn::KnnIndex;
use panda_core::TreeConfig;
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();
    let cost = MachineProfile::EdisonNode.cost_model();

    let points = Dataset::CosmoThin.generate(scale, seed);
    let queries = queries_from(&points, (points.len() / 10).max(512), 0.01, seed + 1);
    println!(
        "Bucket-size ablation — cosmo_thin ({} pts, {} queries, k=5)\n",
        points.len(),
        queries.len()
    );

    let mut table = Table::new(&[
        "Bucket",
        "Constr model(s)",
        "Query model(s)",
        "Total(s)",
        "Nodes visited",
        "Points scanned",
        "Tree depth",
    ]);
    let mut best = (0usize, f64::INFINITY);
    for bucket in [4usize, 8, 16, 32, 64, 128, 256] {
        let cfg = TreeConfig {
            threads: 24,
            ..TreeConfig::default()
        }
        .with_bucket_size(bucket);
        let index = KnnIndex::build(&points, &cfg).expect("build");
        let counters = index
            .query_session(&QueryRequest::knn(&queries, 5))
            .expect("query")
            .counters;
        let c = index.tree().modeled_build_at(&cost, 24, false).total();
        let q = index.modeled_query_time_at(&counters, &cost, 24, false);
        if q < best.1 {
            best = (bucket, q);
        }
        table.row(&[
            bucket.to_string(),
            f(c, 4),
            f(q, 4),
            f(c + q, 4),
            counters.nodes_visited.to_string(),
            counters.points_scanned.to_string(),
            index.tree().stats().max_depth.to_string(),
        ]);
    }
    table.print();
    println!("\nbest query-time bucket: {} (paper: 32)", best.0);
}
