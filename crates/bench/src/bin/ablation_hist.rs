//! Ablation — histogram binning kernel (§III-A1: the sub-interval SIMD
//! scan beats binary search by up to 42% during local construction).
//!
//! Two measurements:
//! 1. real wall-clock of the two binning kernels on this host (the
//!    microbenchmark behind the cost-model constants);
//! 2. real + modeled local-tree construction time under each kernel.

use std::time::Instant;

use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_comm::MachineProfile;
use panda_core::config::HistScan;
use panda_core::hist::SampledHistogram;
use panda_core::knn::KnnIndex;
use panda_core::TreeConfig;
use panda_data::Dataset;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();
    let cost = MachineProfile::EdisonNode.cost_model();

    // --- kernel microbenchmark ------------------------------------------
    let samples: Vec<f32> = (0..1024).map(|i| (i as f32).sqrt() * 31.0).collect();
    let hist = SampledHistogram::from_samples(samples);
    let values: Vec<f32> = (0..2_000_000u64)
        .map(|i| ((i.wrapping_mul(2654435761)) % 32768) as f32 / 32.0)
        .collect();
    let mut counts = vec![0u64; hist.n_bins()];
    let mut times = [0.0f64; 2];
    for (slot, scan) in [(0, HistScan::Binary), (1, HistScan::SubInterval)] {
        counts.iter_mut().for_each(|c| *c = 0);
        hist.count_into(values.iter().copied(), &mut counts, scan); // warm
        let t0 = Instant::now();
        counts.iter_mut().for_each(|c| *c = 0);
        hist.count_into(values.iter().copied(), &mut counts, scan);
        times[slot] = t0.elapsed().as_secs_f64();
    }
    println!(
        "binning kernel, {} values over 1024 sampled boundaries:",
        values.len()
    );
    println!(
        "  binary search : {:.4}s ({:.1} ns/pt)",
        times[0],
        times[0] / values.len() as f64 * 1e9
    );
    println!(
        "  sub-interval  : {:.4}s ({:.1} ns/pt)",
        times[1],
        times[1] / values.len() as f64 * 1e9
    );
    println!(
        "  sub-interval scan is {:+.0}% vs binary search on THIS host for UNIFORM probes\n\
         \x20 (paper, 2013 Ivy Bridge: scan wins by up to 42%. The winner is context-\n\
         \x20 dependent: the scan is branch-free and vectorizes, binary search wins when\n\
         \x20 its branches predict — e.g. the partially-sorted segments of a real build,\n\
         \x20 measured below. The Edison cost model encodes the paper's relationship.)\n",
        100.0 * (times[0] / times[1] - 1.0)
    );

    // --- end-to-end construction under each kernel ----------------------
    let points = Dataset::CosmoThin.generate(scale, seed);
    println!("local construction, cosmo_thin ({} pts):", points.len());
    let mut table = Table::new(&["Kernel", "Real build(s)", "Model build(s) @24T"]);
    let mut real = [0.0f64; 2];
    for (slot, scan) in [(0, HistScan::Binary), (1, HistScan::SubInterval)] {
        let cfg = TreeConfig {
            threads: 24,
            hist_scan: scan,
            // force the sampled-histogram path for most of the tree so
            // the kernel difference is visible
            exact_median_below: 256,
            ..TreeConfig::default()
        };
        let t0 = Instant::now();
        let index = KnnIndex::build(&points, &cfg).expect("build");
        real[slot] = t0.elapsed().as_secs_f64();
        let model = index.tree().modeled_build_at(&cost, 24, false).total();
        table.row(&[format!("{scan:?}"), f(real[slot], 3), f(model, 4)]);
    }
    table.print();
    println!(
        "\nreal construction speedup from the sub-interval scan: {:.1}%",
        100.0 * (1.0 - real[1] / real[0])
    );
}
