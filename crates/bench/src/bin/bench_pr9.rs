//! PR 9 durability evidence — write-path overhead of the WAL and the
//! recovery-time-vs-WAL-length curve.
//!
//! Part A answers "what does durability cost per acknowledged write?":
//! the same insert stream runs against an in-memory store and against
//! durable stores under each [`FsyncPolicy`] — `PerWrite` (fsync every
//! append: zero loss window), `EveryN(64)` (batched fsync), and
//! `OnCompaction` (fsync only at checkpoints). Each durable mode is
//! `sync`'d, dropped, and reopened, gating that recovery restores every
//! acknowledged write.
//!
//! Part B answers "how long does a cold open take?": stores are loaded
//! to increasing WAL lengths (compaction disabled so the whole history
//! is replayed), dropped, and reopened under a timer; then the longest
//! one is compacted and reopened again to show the snapshot
//! checkpointing that keeps real recovery times flat.
//!
//! Writes `BENCH_PR9.json` (override with `--out`); `--smoke` shrinks
//! every dimension for CI. Timings on shared runners are informational;
//! the only non-smoke gate is a very conservative replay-rate floor.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use panda_bench::Args;
use panda_core::PointSet;
use panda_data::uniform;
use panda_store::{FsyncPolicy, MutableIndex, StoreConfig};

/// Scratch directory under the system temp dir, wiped before use and
/// removed on drop.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("panda-bench-pr9-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Insert every point of `pts`, returning (wall seconds, sorted per-op
/// latencies).
fn drive_inserts(store: &MutableIndex, pts: &PointSet) -> (f64, Vec<f64>) {
    let mut lat = Vec::with_capacity(pts.len());
    let t0 = Instant::now();
    for i in 0..pts.len() {
        let t = Instant::now();
        store.insert(pts.point(i), pts.id(i)).expect("insert");
        lat.push(t.elapsed().as_secs_f64());
    }
    let wall = t0.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (wall, lat)
}

struct ModeRow {
    name: &'static str,
    inserts_per_sec: f64,
    p50_us: f64,
    p999_us: f64,
    fsyncs: u64,
}

fn main() {
    let args = Args::from_env();
    let smoke = args.switch("smoke");
    let out_path = args.string("out", "BENCH_PR9.json");
    let dims = args.usize("dims", 8);
    let n_writes = args.usize("writes", if smoke { 500 } else { 4_000 });

    // Compaction disabled throughout: Part A isolates the pure write
    // path (no background rebuild jitter), Part B needs the whole
    // history resident in the WAL so reopen really replays it.
    let cfg = StoreConfig::default().with_compact_points(usize::MAX);
    let pts = uniform::generate(n_writes, dims, 1.0, 42);

    println!(
        "bench_pr9: {n_writes} inserts, {dims}-D, compaction disabled{}",
        if smoke { " [smoke]" } else { "" }
    );

    // ---- Part A: write-path overhead per fsync policy ----------------
    println!("\npart A: acknowledged-write cost (in-memory vs WAL per policy)");
    let mut rows: Vec<ModeRow> = Vec::new();

    // baseline: no WAL at all
    {
        let store = MutableIndex::from_points(&PointSet::new(dims).expect("dims"), cfg.clone())
            .expect("store");
        let (wall, lat) = drive_inserts(&store, &pts);
        rows.push(ModeRow {
            name: "in-memory",
            inserts_per_sec: n_writes as f64 / wall,
            p50_us: quantile(&lat, 0.5) * 1e6,
            p999_us: quantile(&lat, 0.999) * 1e6,
            fsyncs: 0,
        });
    }

    for (name, policy) in [
        ("wal-per-write", FsyncPolicy::PerWrite),
        ("wal-every-64", FsyncPolicy::EveryN(64)),
        ("wal-on-compaction", FsyncPolicy::OnCompaction),
    ] {
        let tmp = TmpDir::new(name);
        let store =
            MutableIndex::open(&tmp.0, dims, cfg.clone().with_fsync(policy)).expect("open durable");
        let (wall, lat) = drive_inserts(&store, &pts);
        // a planned shutdown under a batched policy: force the tail out
        store.sync().expect("sync");
        let fsyncs = store.stats().wal_fsyncs;
        drop(store);
        // gate: every acknowledged (and now synced) write survives reopen
        let reopened = MutableIndex::open(&tmp.0, dims, cfg.clone()).expect("reopen");
        assert_eq!(
            reopened.stats().live_points,
            n_writes,
            "{name}: recovery lost acknowledged writes"
        );
        rows.push(ModeRow {
            name,
            inserts_per_sec: n_writes as f64 / wall,
            p50_us: quantile(&lat, 0.5) * 1e6,
            p999_us: quantile(&lat, 0.999) * 1e6,
            fsyncs,
        });
    }

    for r in &rows {
        println!(
            "  {:<18} {:>9.0} inserts/s   p50 {:>7.1}µs  p999 {:>8.1}µs   {} fsyncs",
            r.name, r.inserts_per_sec, r.p50_us, r.p999_us, r.fsyncs
        );
    }

    // ---- Part B: recovery time vs WAL length -------------------------
    println!("\npart B: cold-open time vs WAL length (pure replay, no snapshot)");
    let wal_lens: Vec<usize> = if smoke {
        vec![500, 2_000]
    } else {
        vec![2_000, 8_000, 32_000]
    };
    // EveryN keeps the load phase fast; recovery replays the same
    // records regardless of how they were fsynced.
    let load_cfg = cfg.clone().with_fsync(FsyncPolicy::EveryN(256));
    let mut curve: Vec<(usize, u64, f64)> = Vec::new(); // (records, wal bytes, seconds)
    let mut snapshot_recovery = (0usize, 0.0f64);
    for (li, &len) in wal_lens.iter().enumerate() {
        let tmp = TmpDir::new(&format!("curve-{len}"));
        let load = uniform::generate(len, dims, 1.0, 9_000 + len as u64);
        let store = MutableIndex::open(&tmp.0, dims, load_cfg.clone()).expect("open");
        for i in 0..load.len() {
            store.insert(load.point(i), load.id(i)).expect("insert");
        }
        store.sync().expect("sync");
        let wal_bytes = store.stats().wal_bytes;
        drop(store);

        let t0 = Instant::now();
        let reopened = MutableIndex::open(&tmp.0, dims, load_cfg.clone()).expect("replay");
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(reopened.stats().live_points, len);
        assert_eq!(reopened.stats().snapshot_seq, 0, "no snapshot yet");
        curve.push((len, wal_bytes, secs));
        println!(
            "  {len:>7} records  {:>9} WAL bytes  reopen {:>8.2} ms  ({:>9.0} records/s)",
            wal_bytes,
            secs * 1e3,
            len as f64 / secs
        );

        // longest run: checkpoint, then show the snapshot-backed reopen
        if li == wal_lens.len() - 1 {
            reopened.compact_now().expect("compact");
            drop(reopened);
            let t0 = Instant::now();
            let snap = MutableIndex::open(&tmp.0, dims, load_cfg.clone()).expect("snapshot open");
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(snap.stats().live_points, len);
            assert!(snap.stats().snapshot_seq > 0, "compaction checkpointed");
            snapshot_recovery = (len, secs);
            println!(
                "  {len:>7} records  after compaction: snapshot-backed reopen {:>8.2} ms",
                secs * 1e3
            );
        }
    }

    // ---- JSON --------------------------------------------------------
    let mut json = String::from(
        "{\n  \"bench\": \"WAL write-path overhead + recovery-time-vs-WAL-length (PR 9)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"dims\": {dims}, \"writes\": {n_writes}, \"smoke\": {smoke},"
    );
    let _ = writeln!(json, "  \"write_path\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"inserts_per_sec\": {:.1}, \"p50_us\": {:.2}, \"p999_us\": {:.2}, \"fsyncs\": {}}}{}",
            r.name,
            r.inserts_per_sec,
            r.p50_us,
            r.p999_us,
            r.fsyncs,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"recovery_curve\": [");
    for (i, (len, bytes, secs)) in curve.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"records\": {len}, \"wal_bytes\": {bytes}, \"reopen_seconds\": {secs:.6}}}{}",
            if i + 1 < curve.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"snapshot_reopen\": {{\"records\": {}, \"reopen_seconds\": {:.6}}}",
        snapshot_recovery.0, snapshot_recovery.1
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR9.json");
    println!("\nwrote {out_path}");

    // Regression gate on the full run only: WAL replay is a sequential
    // read + in-memory rebuild, so even slow disks clear this floor by
    // orders of magnitude; falling under it means recovery went
    // accidentally quadratic (e.g. re-fsyncing per replayed record).
    if !smoke {
        let (len, _, secs) = *curve.last().expect("curve");
        let rate = len as f64 / secs;
        assert!(
            rate >= 20_000.0,
            "WAL replay rate collapsed: {rate:.0} records/s"
        );
    }
}
