//! Figure 8 + Table II — Xeon Phi (KNL) experiments.
//!
//! * `--part a` — queries/second on `psf_mod_mag` / `all_mag` vs the
//!   paper's NVIDIA Titan Z reference numbers (we cannot run CUDA; the
//!   Titan Z series is digitized from Fig. 8(a), exactly how the paper
//!   itself compared against published GPU results).
//!   Paper claim: 1 KNL node 1.7–3.1× one Titan Z; 4 nodes 2.2–3.5× four.
//! * `--part b` — strong scaling with a *shared* (replicated) kd-tree,
//!   1→128 nodes; paper: near-linear, 107× at 128.
//! * `--part c` — strong scaling with the *distributed* kd-tree on the
//!   larger cosmo/plasma datasets, 8→64 nodes; paper: 6.6× over 8×.
//! * `--part table` — Table II attributes.
//!
//! Default runs all parts.

use panda_bench::runner::{run_distributed, RunConfig};
use panda_bench::table::{count, f, Table};
use panda_bench::Args;
use panda_comm::{log2_ceil, MachineProfile};
use panda_core::engine::QueryRequest;
use panda_core::knn::KnnIndex;
use panda_core::TreeConfig;
use panda_data::sdss::{self, SdssVariant};
use panda_data::{queries_from, Dataset};

/// Titan Z queries/second digitized from Fig. 8(a) (millions).
const TITAN_Z: [(&str, f64, f64); 2] = [("psf_mod_mag", 0.55, 1.90), ("all_mag", 0.30, 1.05)];

fn main() {
    let args = Args::from_env();
    let part = args.string("part", "all");
    if part == "a" || part == "all" {
        part_a(&args);
    }
    if part == "b" || part == "all" {
        part_b(&args);
    }
    if part == "c" || part == "all" {
        part_c(&args);
    }
    if part == "table" || part == "all" {
        table2();
    }
}

fn part_a(args: &Args) {
    let scale = args.f64("knl-scale", 0.05);
    let seed = args.seed();
    let cost = MachineProfile::KnlNode.cost_model();
    println!("Fig 8(a) — KNL vs Titan Z throughput (k=10)\n");
    let mut table = Table::new(&[
        "Dataset",
        "TitanZ-1 (Mq/s)",
        "KNL-1 model (Mq/s)",
        "ratio",
        "TitanZ-4 (Mq/s)",
        "KNL-4 model (Mq/s)",
        "ratio",
    ]);
    for (i, variant) in [SdssVariant::PsfModMag, SdssVariant::AllMag]
        .into_iter()
        .enumerate()
    {
        let n_build = (2_000_000.0 * scale) as usize;
        let n_query = (10_000_000.0 * scale) as usize;
        let points = sdss::generate(n_build, variant, seed);
        let queries = sdss::generate(n_query, variant, seed + 1);
        let index = KnnIndex::build(&points, &TreeConfig::default()).expect("build");
        let counters = index
            .query_session(&QueryRequest::knn(&queries, 10))
            .expect("query")
            .counters;
        let t1 = index.modeled_query_time_at(&counters, &cost, 68, true);
        // 4 nodes, shared tree: queries split; collective sync per batch
        let t4 = t1 / 4.0 + cost.net.alpha * log2_ceil(4) as f64 * 8.0;
        let (name, tz1, tz4) = TITAN_Z[i];
        let knl1 = n_query as f64 / t1 / 1e6;
        let knl4 = n_query as f64 / t4 / 1e6;
        table.row(&[
            name.to_string(),
            f(tz1, 2),
            f(knl1, 2),
            f(knl1 / tz1, 1),
            f(tz4, 2),
            f(knl4, 2),
            f(knl4 / tz4, 1),
        ]);
    }
    table.print();
    println!("paper: KNL-1 1.7-3.1x one Titan Z; KNL-4 2.2-3.5x four Titan Z\n");
}

fn part_b(args: &Args) {
    let scale = args.f64("knl-scale", 0.05);
    let seed = args.seed();
    let cost = MachineProfile::KnlNode.cost_model();
    println!("Fig 8(b) — shared (replicated) kd-tree scaling, 1..128 KNL nodes\n");
    let mut table = Table::new(&["Nodes", "psf_mod_mag speedup", "all_mag speedup", "Ideal"]);
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for (vi, variant) in [SdssVariant::PsfModMag, SdssVariant::AllMag]
        .into_iter()
        .enumerate()
    {
        let points = sdss::generate((2_000_000.0 * scale) as usize, variant, seed);
        let queries = sdss::generate((10_000_000.0 * scale) as usize, variant, seed + 1);
        let index = KnnIndex::build(&points, &TreeConfig::default()).expect("build");
        let counters = index
            .query_session(&QueryRequest::knn(&queries, 10))
            .expect("query")
            .counters;
        let compute1 = index.modeled_query_time_at(&counters, &cost, 68, true);
        let steps = 8.0; // pipeline sync points per run
        let t = |nodes: usize| {
            compute1 / nodes as f64 + cost.net.alpha * log2_ceil(nodes) as f64 * steps
        };
        let t1 = t(1);
        for e in 0..8 {
            speedups[vi].push(t1 / t(1 << e));
        }
    }
    #[allow(clippy::needless_range_loop)] // e indexes two parallel speedup tables
    for e in 0..8usize {
        let nodes = 1usize << e;
        table.row(&[
            nodes.to_string(),
            f(speedups[0][e], 1),
            f(speedups[1][e], 1),
            nodes.to_string(),
        ]);
    }
    table.print();
    println!("paper: near-linear, up to 107x at 128 nodes\n");
}

fn part_c(args: &Args) {
    // Deeper per-rank work than the global default: at 64 nodes the paper
    // still had ~4M points per node; stay ≥ 15k/rank here so collective
    // latency does not mask the compute scaling.
    let scale = args.f64("knl-c-scale", 4e-3);
    let seed = args.seed();
    println!("Fig 8(c) — distributed kd-tree scaling on KNL nodes\n");
    let mut table = Table::new(&["Nodes", "cosmo speedup", "plasma speedup", "Ideal"]);
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for (di, ds) in [Dataset::CosmoKnl, Dataset::PlasmaKnl]
        .into_iter()
        .enumerate()
    {
        let points = ds.generate(scale, seed);
        let queries = queries_from(&points, points.len() / 4, 0.01, seed + 1);
        let mut base = 0.0;
        for (step, nodes) in [8usize, 16, 32, 64].into_iter().enumerate() {
            let cfg = RunConfig::knl(nodes);
            let m = run_distributed(&points, &queries, &cfg, false);
            if step == 0 {
                base = m.query_s;
            }
            speedups[di].push(base / m.query_s);
        }
        eprintln!("  {}: done ({} pts)", ds.paper_row().name, points.len());
    }
    for (step, nodes) in [8usize, 16, 32, 64].into_iter().enumerate() {
        table.row(&[
            nodes.to_string(),
            f(speedups[0][step], 1),
            f(speedups[1][step], 1),
            f((nodes / 8) as f64, 0),
        ]);
    }
    table.print();
    println!("paper: 6.6x going from 8 to 64 nodes (8x)\n");
}

fn table2() {
    println!("Table II — datasets for the Xeon Phi experiments\n");
    let mut table = Table::new(&["Name", "Build particles", "Dims", "Query particles", "k"]);
    for ds in Dataset::TABLE2 {
        let row = ds.paper_row();
        let queries = match ds {
            Dataset::PsfModMag | Dataset::AllMag => 10_000_000u64,
            _ => row.particles,
        };
        table.row(&[
            row.name.to_string(),
            count(row.particles),
            row.dims.to_string(),
            count(queries),
            row.k.to_string(),
        ]);
    }
    table.print();
}
