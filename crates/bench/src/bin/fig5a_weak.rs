//! Figure 5(a) — weak scaling on the cosmology datasets.
//!
//! Paper: ~250 M particles per node on 96 / 768 / 6144 cores (a 64×
//! span); total runtime grows only 2.2× (construction) and 1.5×
//! (querying). Reproduction: fixed `--per-rank` points per rank (default
//! 250M × scale), ranks 1 → 64, times normalized to the smallest run.

use panda_bench::runner::{run_distributed, RunConfig};
use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_data::cosmology::{self, CosmologyParams};
use panda_data::queries_from;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();
    let per_rank = args.usize("per-rank", ((250_000_000.0 * scale) as usize).max(2000));

    println!("Fig 5(a) — weak scaling, cosmology, {per_rank} points/rank");
    println!("paper: 64x more cores -> 2.2x (constr) / 1.5x (query) total time\n");

    let mut table = Table::new(&[
        "Ranks",
        "Points",
        "Constr(s)",
        "Constr norm",
        "Query(s)",
        "Query norm",
    ]);
    let mut base_c = 0.0;
    let mut base_q = 0.0;
    for (step, ranks) in [1usize, 4, 16, 64].into_iter().enumerate() {
        let n = per_rank * ranks;
        let points = cosmology::generate(n, &CosmologyParams::default(), seed);
        let queries = queries_from(&points, (n / 10).max(64), 0.01, seed + 1);
        let cfg = RunConfig::edison(ranks);
        let m = run_distributed(&points, &queries, &cfg, false);
        if step == 0 {
            base_c = m.construct_s;
            base_q = m.query_s;
        }
        table.row(&[
            ranks.to_string(),
            n.to_string(),
            f(m.construct_s, 3),
            f(m.construct_s / base_c, 2),
            f(m.query_s, 3),
            f(m.query_s / base_q, 2),
        ]);
    }
    table.print();
}
