//! PR 8 perf evidence — serving the distributed engine: closed-loop
//! concurrent clients through `QueryService` over a `ShardedIndex`,
//! swept across shard counts.
//!
//! Before PR 8 the distributed engine could not sit behind the service
//! at all (`DistIndex` was `!Sync` by design), so there is no "old
//! path" to race. What this bench pins instead:
//!
//! - **Bit-identity across shard counts**: every client request gets
//!   the same neighbors (distance bits and ids) from 1, 2 and 4 shards
//!   — the scatter/gather merge is not allowed to cost exactness.
//! - **Serving throughput and tail latency** per (clients × shards)
//!   cell, so shard-count scaling on real cores is measured, not
//!   assumed.
//!
//! Writes `BENCH_PR8.json` (override with `--out`); `--smoke` shrinks
//! every dimension for CI.
//!
//! ## Thread sweep
//!
//! Shard workers are their own threads, but each worker's local
//! traversal also uses the persistent rayon pool (sized by
//! `RAYON_NUM_THREADS`); the recorded `rayon_threads` field says what a
//! given JSON actually measured — published numbers from 1-worker hosts
//! are single-core results. `--min-threads N` makes the run refuse to
//! publish numbers from a smaller pool.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use panda_bench::Args;
use panda_core::engine::{NnBackend, QueryRequest, ShardedIndex};
use panda_core::rng::SplitRng;
use panda_core::{DistConfig, PointSet};
use panda_data::uniform;
use panda_service::{OverflowPolicy, QueryService, ServiceConfig};

/// Serving traffic with popularity skew (same shape as bench_pr5): each
/// request perturbs one of `hotspots` popular dataset points, and each
/// client proxies many users, so per-thread streams have no locality of
/// their own — coalescing and shard routing do the work.
fn client_queries(
    points: &PointSet,
    hotspots: usize,
    client: usize,
    requests: usize,
    seed: u64,
) -> Vec<PointSet> {
    let dims = points.dims();
    let mut rng = SplitRng::new(seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..requests)
        .map(|_| {
            let h = (rng.next_f64() * hotspots as f64) as usize % hotspots;
            let center = points.point((h * points.len() / hotspots) % points.len());
            let q: Vec<f32> = center
                .iter()
                .map(|&c| c + ((rng.next_f64() - 0.5) * 0.02) as f32)
                .collect();
            PointSet::from_coords(dims, q).expect("finite query")
        })
        .collect()
}

/// Neighbor rows as comparable bits.
type Row = Vec<(u32, u64)>;

struct CellResult {
    wall_seconds: f64,
    /// Per-request latencies, all clients merged (seconds).
    latencies: Vec<f64>,
    /// `rows[client][request]` for the bit-identical gate.
    rows: Vec<Vec<Row>>,
    /// Result-cache hits/misses from the service telemetry snapshot.
    cache_hits: u64,
    cache_misses: u64,
    /// Worker restarts observed by this cell (always 0 in a clean run).
    shard_restarts: u64,
    /// Bytes moved by the comm layer during this cell (point-to-point
    /// plus collective traffic, delta over the index's lifetime totals).
    comm_bytes: u64,
}

/// Total bytes the index's comm layer has moved so far (cumulative over
/// the index lifetime; callers take deltas around a timed window).
fn comm_bytes_total(index: &ShardedIndex) -> u64 {
    let snap = index.registry().expect("sharded registry").snapshot();
    [
        "comm.sent_bytes",
        "comm.recv_bytes",
        "comm.collective_bytes_out",
        "comm.collective_bytes_in",
    ]
    .iter()
    .map(|name| snap.counter(name).unwrap_or(0))
    .sum()
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Closed-loop clients submitting through a service over `index`.
fn run_cell(
    index: &Arc<ShardedIndex>,
    queries: &Arc<Vec<Vec<PointSet>>>,
    k: usize,
    delay_us: u64,
) -> CellResult {
    let clients = queries.len();
    let service = QueryService::new(
        Arc::clone(index) as Arc<dyn NnBackend + Send + Sync>,
        ServiceConfig::default()
            .with_max_batch(clients.max(2))
            .with_max_delay(Duration::from_micros(delay_us))
            .with_queue_capacity(8192)
            .with_overflow(OverflowPolicy::Block),
    )
    .expect("service");
    let bytes_before = comm_bytes_total(index);
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let handle = service.handle();
            let queries = Arc::clone(queries);
            std::thread::spawn(move || {
                let n = queries[c].len();
                let mut lat = Vec::with_capacity(n);
                let mut rows: Vec<Row> = Vec::with_capacity(n);
                for q in &queries[c] {
                    let t = Instant::now();
                    let reply = handle
                        .submit(&QueryRequest::knn(q, k))
                        .expect("submit")
                        .wait()
                        .expect("wait");
                    lat.push(t.elapsed().as_secs_f64());
                    rows.push(
                        reply
                            .row(0)
                            .iter()
                            .map(|n| (n.dist_sq.to_bits(), n.id))
                            .collect(),
                    );
                }
                (lat, rows)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut rows = Vec::new();
    for w in workers {
        let (lat, r) = w.join().expect("client");
        latencies.extend(lat);
        rows.push(r);
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = service.stats();
    assert_eq!(stats.rejected, 0, "Block policy never rejects");
    println!(
        "    service internals: {} batches, mean size {:.1}, max queue {}",
        stats.batches,
        stats.mean_batch_size(),
        stats.max_queue_depth
    );
    assert_eq!(index.shard_restarts(), 0, "no worker faults in a bench");
    let snap = service.telemetry();
    service.shutdown();
    CellResult {
        wall_seconds: wall,
        latencies,
        rows,
        cache_hits: snap.counter("service.cache.hits").unwrap_or(0),
        cache_misses: snap.counter("service.cache.misses").unwrap_or(0),
        shard_restarts: index.shard_restarts(),
        comm_bytes: comm_bytes_total(index) - bytes_before,
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.switch("smoke");
    let out_path = args.string("out", "BENCH_PR8.json");
    // 10-D traversal-heavy queries: the serving regime (see bench_pr5).
    let dims = args.usize("dims", 10);
    let k = args.usize("k", 32);
    let n_points = args.usize("points", if smoke { 20_000 } else { 200_000 });
    let requests = args.usize("requests", if smoke { 25 } else { 100 });
    let delay_us = args.usize("delay-us", 300) as u64;
    let hotspots = args.usize("hotspots", 256);
    let seed = 1084u64;
    let client_counts: &[usize] = &[8, 64];
    let shard_counts: &[usize] = &[1, 2, 4];

    let min_threads = args.usize("min-threads", 0);
    let threads = rayon::current_num_threads();
    assert!(
        threads >= min_threads,
        "pool has {threads} worker(s) but --min-threads {min_threads} was requested; \
         set RAYON_NUM_THREADS (this guard exists so multi-core claims are never \
         backed by a single-core run)"
    );

    let points = uniform::generate(n_points, dims, 1.0, 42);
    let indexes: Vec<Arc<ShardedIndex>> = shard_counts
        .iter()
        .map(|&s| Arc::new(ShardedIndex::build(&points, s, &DistConfig::default()).expect("build")))
        .collect();
    println!(
        "bench_pr8: {n_points} points, {dims}-D, k={k}, {requests} requests/client, {hotspots} hotspots{}",
        if smoke { " [smoke]" } else { "" }
    );

    let mut json = String::from(
        "{\n  \"bench\": \"service-fronted ShardedIndex across shard counts (PR 8)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"n_points\": {n_points}, \"dims\": {dims}, \"k\": {k}, \"requests_per_client\": {requests}, \"hotspots\": {hotspots},"
    );
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"rayon_threads\": {threads},");
    json.push_str("  \"cells\": [\n");

    let reps = args.usize("reps", if smoke { 1 } else { 3 });
    let mut first_cell = true;
    for &clients in client_counts {
        println!("\n{clients} closed-loop clients:");
        let queries: Arc<Vec<Vec<PointSet>>> = Arc::new(
            (0..clients)
                .map(|c| client_queries(&points, hotspots, c, requests, seed))
                .collect(),
        );
        // warmup (untimed): touch every shard configuration once
        let warm_q: Arc<Vec<Vec<PointSet>>> = Arc::new(
            queries
                .iter()
                .map(|qs| qs[..3.min(qs.len())].to_vec())
                .collect(),
        );
        for index in &indexes {
            let _ = run_cell(index, &warm_q, k, delay_us);
        }

        // timed cells, best-of-reps; rows gated bit-identical against
        // the 1-shard cell of the same client count
        let mut baseline_rows: Option<Vec<Vec<Row>>> = None;
        for (index, &shards) in indexes.iter().zip(shard_counts) {
            println!("  {shards} shard(s):");
            let mut best = run_cell(index, &queries, k, delay_us);
            match &baseline_rows {
                None => baseline_rows = Some(best.rows.clone()),
                Some(base) => assert_eq!(
                    base, &best.rows,
                    "{shards}-shard results diverged from 1 shard at {clients} clients"
                ),
            }
            for _ in 1..reps {
                let r = run_cell(index, &queries, k, delay_us);
                if r.wall_seconds < best.wall_seconds {
                    best = r;
                }
            }

            let total = (clients * requests) as f64;
            let qps = total / best.wall_seconds;
            let mut lat = best.latencies;
            lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let (p50, p99) = (quantile(&lat, 0.5) * 1e6, quantile(&lat, 0.99) * 1e6);
            println!("    {qps:>9.0} q/s   p50 {p50:>7.0}µs   p99 {p99:>7.0}µs");

            if !first_cell {
                json.push_str(",\n");
            }
            first_cell = false;
            let _ = write!(
                json,
                "    {{ \"clients\": {clients}, \"shards\": {shards}, \"qps\": {qps:.1}, \
                 \"p50_us\": {p50:.1}, \"p99_us\": {p99:.1}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \
                 \"shard_restarts\": {}, \"comm_bytes\": {} }}",
                best.cache_hits, best.cache_misses, best.shard_restarts, best.comm_bytes
            );
        }
    }
    json.push_str("\n  ],\n");
    json.push_str("  \"bit_identical_across_shard_counts\": true\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR8.json");
    println!("\nwrote {out_path}");
}
