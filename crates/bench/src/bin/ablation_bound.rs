//! Ablation — traversal lower-bound fidelity.
//!
//! Algorithm 1 as printed accumulates every ancestor plane offset
//! (`d' ← √(d·d + d'·d')`) without replacing the previous offset along the
//! same dimension; when a dimension repeats on a path the bound
//! over-estimates and can prune a subtree holding a true neighbor. This
//! harness measures (a) how often that actually bites, per dataset, and
//! (b) the node-visit cost of the exact replacement bound.

use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_core::config::BoundMode;
use panda_core::{KnnHeap, LocalKdTree, QueryCounters, QueryWorkspace, TreeConfig};
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();
    let k = 5;

    println!("Bound-mode ablation: exact (Arya–Mount replacement) vs paper's Algorithm 1 scalar\n");
    let mut table = Table::new(&[
        "Dataset",
        "Queries",
        "Wrong results",
        "Exact node visits",
        "Scalar node visits",
        "Visit ratio",
    ]);
    for ds in [
        Dataset::CosmoThin,
        Dataset::PlasmaThin,
        Dataset::DayabayThin,
    ] {
        let row = ds.paper_row();
        let points = ds.generate(scale, seed);
        let queries = queries_from(&points, 2000.min(points.len() / 5), 0.02, seed + 1);
        let tree = LocalKdTree::build(&points, &TreeConfig::default()).expect("build");

        let mut ws = QueryWorkspace::new();
        let mut wrong = 0usize;
        let mut c_exact = QueryCounters::default();
        let mut c_scalar = QueryCounters::default();
        for i in 0..queries.len() {
            let q = queries.point(i);
            let mut h1 = KnnHeap::new(k);
            tree.query_into(q, &mut h1, BoundMode::Exact, &mut ws, &mut c_exact);
            let mut h2 = KnnHeap::new(k);
            tree.query_into(q, &mut h2, BoundMode::PaperScalar, &mut ws, &mut c_scalar);
            let a: Vec<f32> = h1.into_sorted().iter().map(|n| n.dist_sq).collect();
            let b: Vec<f32> = h2.into_sorted().iter().map(|n| n.dist_sq).collect();
            if a != b {
                wrong += 1;
            }
        }
        table.row(&[
            row.name.to_string(),
            queries.len().to_string(),
            format!(
                "{wrong} ({:.2}%)",
                100.0 * wrong as f64 / queries.len() as f64
            ),
            c_exact.nodes_visited.to_string(),
            c_scalar.nodes_visited.to_string(),
            f(
                c_scalar.nodes_visited as f64 / c_exact.nodes_visited as f64,
                3,
            ),
        ]);
    }
    table.print();
    println!("\nthe scalar bound can only lose neighbors (never invents closer ones —");
    println!("enforced by tests); PANDA-rs defaults to the exact bound.");
}
