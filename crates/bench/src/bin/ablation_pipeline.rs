//! Ablation — query batching and software pipelining (§III-B: "The most
//! important \[optimization\] is batching of queries … We also perform
//! software pipelining between the stages to facilitate overlap of
//! communication and computation. These optimizations are important for
//! good scaling as the number of nodes increase.")

use panda_bench::runner::{run_distributed, RunConfig};
use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();
    let ranks = args.usize("ranks", 16);

    let points = Dataset::CosmoMedium.generate(scale, seed);
    let queries = queries_from(&points, (points.len() / 10).max(1024), 0.01, seed + 1);
    println!(
        "Pipeline/batching ablation — cosmo_medium ({} pts, {} queries, {ranks} ranks)\n",
        points.len(),
        queries.len()
    );

    let mut table = Table::new(&[
        "Batch",
        "Sync(s)",
        "Pipelined(s)",
        "Gain",
        "Non-overlapped comm(s)",
        "Steps",
    ]);
    for batch in [64usize, 256, 1024, 4096, 16384] {
        let mut cfg = RunConfig::edison(ranks);
        cfg.query.batch_size = batch;
        let m = run_distributed(&points, &queries, &cfg, false);
        let exposed = m.query_breakdown.comm_non_overlapped();
        table.row(&[
            batch.to_string(),
            f(m.query_sync_s, 4),
            f(m.query_s, 4),
            format!("{:.1}%", 100.0 * (1.0 - m.query_s / m.query_sync_s)),
            f(exposed, 4),
            // the step log carries one epilogue entry (origin return)
            // after the pipeline batches; report the batch count only
            (m.query_breakdown.steps.len().saturating_sub(1)).to_string(),
        ]);
    }
    table.print();
    println!("\nsmaller batches pipeline better (finer overlap) until per-step latency");
    println!("(α·log P per exchange) dominates; large batches degenerate to synchronous.");
}
