//! PR 7 perf evidence — the mutable store vs rebuild-per-batch, on a
//! 90/10 read/write stream.
//!
//! Before PR 7 the only way to serve an updating dataset *exactly* was
//! to rebuild the immutable tree after every write batch and query the
//! fresh tree. The store amortizes that: writes land in a log that
//! queries brute-force-scan through the fused leaf kernel, and a
//! background compaction folds the log into a new tree generation off
//! the write path.
//!
//! Both modes answer every query in the stream **bit-identically in
//! distances** (asserted op by op — both are exact over the identical
//! live set, so this is a correctness gate, not a tolerance). Writes
//! `BENCH_PR7.json` (override with `--out`); `--smoke` shrinks every
//! dimension for CI.
//!
//! Latency accounting: per-op wall times are recorded for every query
//! and every write in both modes. The store's write p999 is the
//! **compaction-pause** proxy — the worst write stall the stream ever
//! sees. With a multi-worker pool that is just the freeze (one log pack
//! under the write lock) since the rebuild runs on the background pool;
//! with `rayon_threads: 1` (recorded in the JSON) the triggering write
//! pays the whole rebuild inline, so write p999 ≈ one compaction — the
//! honest single-core number. The baseline's query p999 absorbs its
//! rebuild-after-write stalls either way, which is exactly the cost the
//! store exists to amortize.

use std::fmt::Write as _;
use std::time::Instant;

use panda_bench::Args;
use panda_core::engine::{NnBackend, QueryRequest, QueryResponse};
use panda_core::knn::KnnIndex;
use panda_core::rng::SplitRng;
use panda_core::{PointSet, TreeConfig};
use panda_data::uniform;
use panda_store::{MutableIndex, StoreConfig};

/// One op of the pre-generated stream.
enum Op {
    /// `k`-NN for one query point.
    Query(PointSet),
    /// Insert a brand-new point under a fresh id.
    Insert(Vec<f32>, u64),
    /// Remove a currently-live id.
    Remove(u64),
}

/// Pre-generate the whole op stream so both modes replay identical work
/// (including identical remove targets), outside the timed window.
fn make_stream(seed_points: &PointSet, ops: usize, write_pct: usize, seed: u64) -> Vec<Op> {
    let dims = seed_points.dims();
    let mut rng = SplitRng::new(seed);
    let mut live: Vec<u64> = seed_points.ids().to_vec();
    let mut next_id = live.iter().copied().max().unwrap_or(0) + 1;
    (0..ops)
        .map(|_| {
            if (rng.next_f64() * 100.0) as usize >= write_pct {
                let q: Vec<f32> = (0..dims).map(|_| rng.next_f64() as f32).collect();
                Op::Query(PointSet::from_coords(dims, q).expect("finite query"))
            } else if rng.next_f64() < 0.5 && live.len() > 16 {
                let victim = (rng.next_f64() * live.len() as f64) as usize % live.len();
                Op::Remove(live.swap_remove(victim))
            } else {
                let p: Vec<f32> = (0..dims).map(|_| rng.next_f64() as f32).collect();
                let id = next_id;
                next_id += 1;
                live.push(id);
                Op::Insert(p, id)
            }
        })
        .collect()
}

/// Distances of row 0, as comparable bits.
fn row_bits(res: &QueryResponse) -> Vec<u32> {
    res.neighbors
        .row(0)
        .iter()
        .map(|n| n.dist_sq.to_bits())
        .collect()
}

struct ModeResult {
    wall_seconds: f64,
    query_lat: Vec<f64>,
    write_lat: Vec<f64>,
    /// Row-0 distance bits per query op, for the bit-identical gate.
    rows: Vec<Vec<u32>>,
    rebuilds: u64,
}

/// The stream against the mutable store (background compaction).
fn run_store(seed_points: &PointSet, stream: &[Op], k: usize, cfg: &StoreConfig) -> ModeResult {
    let store = MutableIndex::from_points(seed_points, cfg.clone()).expect("store");
    let mut r = ModeResult {
        wall_seconds: 0.0,
        query_lat: Vec::new(),
        write_lat: Vec::new(),
        rows: Vec::new(),
        rebuilds: 0,
    };
    let t0 = Instant::now();
    for op in stream {
        let t = Instant::now();
        match op {
            Op::Query(q) => {
                let res = store.query(&QueryRequest::knn(q, k)).expect("query");
                r.query_lat.push(t.elapsed().as_secs_f64());
                r.rows.push(row_bits(&res));
            }
            Op::Insert(p, id) => {
                store.insert(p, *id).expect("insert");
                r.write_lat.push(t.elapsed().as_secs_f64());
            }
            Op::Remove(id) => {
                assert!(
                    store.remove(*id).expect("remove"),
                    "stream removes live ids"
                );
                r.write_lat.push(t.elapsed().as_secs_f64());
            }
        }
    }
    store.quiesce();
    r.wall_seconds = t0.elapsed().as_secs_f64();
    let stats = store.stats();
    assert_eq!(stats.compaction_failures, 0);
    r.rebuilds = stats.compactions;
    println!(
        "    store internals: {} compactions (p50 {:.1} ms, p99 {:.1} ms), epoch {}, {} left in log",
        stats.compactions,
        stats.compaction_p50_seconds * 1e3,
        stats.compaction_p99_seconds * 1e3,
        stats.epoch,
        stats.log_points,
    );
    r
}

/// The exact-serving baseline PR 7 replaces: writes mutate a plain
/// point-set mirror, and the first query after any write pays a full
/// tree rebuild (rebuild-per-write-batch — consecutive writes coalesce).
fn run_rebuild(seed_points: &PointSet, stream: &[Op], k: usize, tree: &TreeConfig) -> ModeResult {
    let mut live = seed_points.clone();
    let mut index = Some(KnnIndex::build(&live, tree).expect("build"));
    let mut r = ModeResult {
        wall_seconds: 0.0,
        query_lat: Vec::new(),
        write_lat: Vec::new(),
        rows: Vec::new(),
        rebuilds: 0,
    };
    let t0 = Instant::now();
    for op in stream {
        let t = Instant::now();
        match op {
            Op::Query(q) => {
                if index.is_none() {
                    index = Some(KnnIndex::build(&live, tree).expect("rebuild"));
                    r.rebuilds += 1;
                }
                let res = index
                    .as_ref()
                    .expect("rebuilt")
                    .query_session(&QueryRequest::knn(q, k))
                    .expect("query");
                r.query_lat.push(t.elapsed().as_secs_f64());
                r.rows.push(row_bits(&res));
            }
            Op::Insert(p, id) => {
                live.push(p, *id);
                index = None;
                r.write_lat.push(t.elapsed().as_secs_f64());
            }
            Op::Remove(id) => {
                let i = live.ids().iter().position(|x| x == id).expect("live id");
                live.swap_remove(i);
                index = None;
                r.write_lat.push(t.elapsed().as_secs_f64());
            }
        }
    }
    r.wall_seconds = t0.elapsed().as_secs_f64();
    r
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v
}

fn main() {
    let args = Args::from_env();
    let smoke = args.switch("smoke");
    let out_path = args.string("out", "BENCH_PR7.json");
    let dims = args.usize("dims", 10);
    let k = args.usize("k", 16);
    let n_points = args.usize("points", if smoke { 5_000 } else { 50_000 });
    let ops = args.usize("ops", if smoke { 400 } else { 4_000 });
    let write_pct = args.usize("write-pct", 10);
    // thresholds low enough that the stream's insert half crosses them
    // (the ~10% write mix is half inserts) — both the smoke and the full
    // run must exercise the freeze/rebuild/swap path, not just the log
    let compact_points = args.usize("compact-points", if smoke { 16 } else { 96 });
    let reps = args.usize("reps", if smoke { 1 } else { 3 });

    let seed_points = uniform::generate(n_points, dims, 1.0, 42);
    let stream = make_stream(&seed_points, ops, write_pct, 1007);
    let n_queries = stream.iter().filter(|o| matches!(o, Op::Query(_))).count();
    let n_writes = ops - n_queries;
    println!(
        "bench_pr7: {n_points} seed points, {dims}-D, k={k}, {ops} ops \
         ({n_queries} queries / {n_writes} writes), compact at {compact_points}{}",
        if smoke { " [smoke]" } else { "" }
    );

    let tree = TreeConfig::default();
    let store_cfg = StoreConfig::default()
        .with_compact_points(compact_points)
        .with_tree(tree);

    // warmup (untimed) + bit-identical gate on the full stream
    let warm_store = run_store(&seed_points, &stream, k, &store_cfg);
    let warm_rebuild = run_rebuild(&seed_points, &stream, k, &tree);
    assert_eq!(
        warm_store.rows, warm_rebuild.rows,
        "store diverged from the rebuild-per-batch baseline"
    );

    // best-of-reps: single-threaded streams still jitter on shared hosts
    let mut store = run_store(&seed_points, &stream, k, &store_cfg);
    let mut rebuild = run_rebuild(&seed_points, &stream, k, &tree);
    for _ in 1..reps {
        let s = run_store(&seed_points, &stream, k, &store_cfg);
        if s.wall_seconds < store.wall_seconds {
            store = s;
        }
        let b = run_rebuild(&seed_points, &stream, k, &tree);
        if b.wall_seconds < rebuild.wall_seconds {
            rebuild = b;
        }
    }

    let s_ops = ops as f64 / store.wall_seconds;
    let b_ops = ops as f64 / rebuild.wall_seconds;
    let speedup = s_ops / b_ops;
    let s_q = sorted(store.query_lat);
    let s_w = sorted(store.write_lat);
    let b_q = sorted(rebuild.query_lat);
    let b_w = sorted(rebuild.write_lat);
    let report = |name: &str, ops_s: f64, q: &[f64], w: &[f64]| {
        println!(
            "  {name:<16} {ops_s:>9.0} op/s   query p50 {:>7.0}µs p99 {:>8.0}µs p999 {:>8.0}µs   write p999 {:>7.0}µs",
            quantile(q, 0.5) * 1e6,
            quantile(q, 0.99) * 1e6,
            quantile(q, 0.999) * 1e6,
            quantile(w, 0.999) * 1e6,
        );
    };
    report("store", s_ops, &s_q, &s_w);
    report("rebuild/batch", b_ops, &b_q, &b_w);
    println!(
        "  store vs rebuild: {speedup:.2}x  ({} compactions vs {} rebuilds)",
        store.rebuilds, rebuild.rebuilds
    );

    let mut json = String::from(
        "{\n  \"bench\": \"mutable store vs rebuild-per-batch on a 90/10 read/write stream (PR 7)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"n_points\": {n_points}, \"dims\": {dims}, \"k\": {k}, \"ops\": {ops}, \
         \"write_pct\": {write_pct}, \"compact_points\": {compact_points},"
    );
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"rayon_threads\": {},",
        rayon::current_num_threads()
    );
    let _ = writeln!(json, "  \"store_ops_per_sec\": {s_ops:.1},");
    let _ = writeln!(
        json,
        "  \"store_query_p50_us\": {:.1}, \"store_query_p99_us\": {:.1}, \"store_query_p999_us\": {:.1},",
        quantile(&s_q, 0.5) * 1e6,
        quantile(&s_q, 0.99) * 1e6,
        quantile(&s_q, 0.999) * 1e6
    );
    let _ = writeln!(
        json,
        "  \"store_write_p999_us\": {:.1}, \"store_compactions\": {},",
        quantile(&s_w, 0.999) * 1e6,
        store.rebuilds
    );
    let _ = writeln!(json, "  \"rebuild_ops_per_sec\": {b_ops:.1},");
    let _ = writeln!(
        json,
        "  \"rebuild_query_p50_us\": {:.1}, \"rebuild_query_p99_us\": {:.1}, \"rebuild_query_p999_us\": {:.1},",
        quantile(&b_q, 0.5) * 1e6,
        quantile(&b_q, 0.99) * 1e6,
        quantile(&b_q, 0.999) * 1e6
    );
    let _ = writeln!(
        json,
        "  \"rebuild_write_p999_us\": {:.1}, \"rebuild_rebuilds\": {},",
        quantile(&b_w, 0.999) * 1e6,
        rebuild.rebuilds
    );
    let _ = writeln!(json, "  \"store_vs_rebuild\": {speedup:.4}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR7.json");
    println!("\nwrote {out_path}");

    // Regression gate on the full-size run only (smoke runs on shared CI
    // runners where absolute timings are noise). The store's whole point
    // is amortizing rebuilds, so anything near parity is a regression.
    if !smoke {
        assert!(
            speedup >= 2.0,
            "mutable store fell below 2x over rebuild-per-batch: {speedup:.3}x"
        );
    }
}
