//! PR 2 perf evidence — the CSR `QueryResponse` batch path vs the PR 1
//! tuple path.
//!
//! PR 1's `query_batch` allocated one `Vec<Neighbor>` per query (worker
//! chunks produced `(slot, Vec<Neighbor>)` pairs that were re-boxed into
//! the final `Vec<Vec<Neighbor>>`). PR 2's session API fills chunk-local
//! arenas that are spliced into one flat CSR `NeighborTable` — zero
//! per-query heap allocation. This runner measures both on the PR 1
//! workloads (sequential and 2-thread parallel), verifies they agree
//! bit-for-bit, and writes `BENCH_PR2.json` (override with `--out`).
//!
//! The PR 1 path is reproduced faithfully here from the public traversal
//! API (`LocalKdTree::query_into` + a fresh `KnnHeap` per query), since
//! the in-tree `query_batch` shim now routes through the CSR engine.

use std::fmt::Write as _;
use std::time::Instant;

use panda_bench::Args;
use panda_core::engine::QueryRequest;
use panda_core::knn::KnnIndex;
use panda_core::rng::SplitRng;
use panda_core::{BoundMode, KnnHeap, Neighbor, PointSet, QueryCounters, TreeConfig};
use panda_core::{LocalKdTree, QueryWorkspace};
use rayon::prelude::*;

struct Workload {
    name: &'static str,
    dims: usize,
    n_points: usize,
    n_queries: usize,
    k: usize,
}

fn uniform(n: usize, dims: usize, span: f64, seed: u64) -> PointSet {
    let mut rng = SplitRng::new(seed);
    PointSet::from_coords(
        dims,
        (0..n * dims)
            .map(|_| (rng.next_f64() * span) as f32)
            .collect(),
    )
    .expect("valid points")
}

/// One worker chunk of the PR 1 engine: `(slot, boxed neighbors)` pairs
/// plus the chunk's counters.
type TupleChunk = (Vec<(u32, Vec<Neighbor>)>, QueryCounters);

/// The PR 1 batch engine, verbatim in shape: one heap allocation and one
/// `Vec<Neighbor>` per query, chunk results re-boxed into input order.
fn tuple_batch(
    tree: &LocalKdTree,
    queries: &PointSet,
    k: usize,
    parallel: bool,
) -> Vec<Vec<Neighbor>> {
    let n = queries.len();
    let run_one = |i: usize, ws: &mut QueryWorkspace, c: &mut QueryCounters| {
        let mut heap = KnnHeap::new(k);
        tree.query_into(queries.point(i), &mut heap, BoundMode::Exact, ws, c);
        heap.into_sorted()
    };
    let mut all: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    if parallel {
        let results: Vec<TupleChunk> = (0..n as u32)
            .collect::<Vec<u32>>()
            .into_par_iter()
            .with_min_len(16)
            .fold(
                || (Vec::new(), QueryWorkspace::new(), QueryCounters::default()),
                |(mut out, mut ws, mut c), qi| {
                    out.push((qi, run_one(qi as usize, &mut ws, &mut c)));
                    (out, ws, c)
                },
            )
            .map(|(out, _ws, c)| (out, c))
            .collect();
        for (chunk, _c) in results {
            for (qi, res) in chunk {
                all[qi as usize] = res;
            }
        }
    } else {
        let mut ws = QueryWorkspace::new();
        let mut c = QueryCounters::default();
        for (i, slot) in all.iter_mut().enumerate() {
            *slot = run_one(i, &mut ws, &mut c);
        }
    }
    all
}

/// Best-of-`reps` wall time of `run`.
fn best_of(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = Args::from_env();
    let reps = args.usize("reps", 5);
    let seed = args.u64("seed", 42);
    let out_path = args.string("out", "BENCH_PR2.json");

    let workloads = [
        Workload {
            name: "uniform_3d",
            dims: 3,
            n_points: 200_000,
            n_queries: 8192,
            k: 5,
        },
        Workload {
            name: "uniform_10d",
            dims: 10,
            n_points: 60_000,
            n_queries: 4096,
            k: 5,
        },
    ];

    let mut json =
        String::from("{\n  \"bench\": \"tuple-path vs CSR-path batch querying (PR 2)\",\n");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"workloads\": [\n");

    let mut speedup_10d_seq = 0.0f64;
    for (wi, w) in workloads.iter().enumerate() {
        let points = uniform(w.n_points, w.dims, 100.0, seed);
        let queries = uniform(w.n_queries, w.dims, 100.0, seed + 1);
        let seq = KnnIndex::build(&points, &TreeConfig::default()).expect("build");
        let par = KnnIndex::build(
            &points,
            &TreeConfig::default().with_parallel(true).with_threads(2),
        )
        .expect("build");

        // correctness gate: tuple path and CSR path agree bit-for-bit
        let tuple_res = tuple_batch(seq.tree(), &queries, w.k, false);
        let csr_res = seq
            .query_session(&QueryRequest::knn(&queries, w.k))
            .expect("query");
        assert_eq!(
            csr_res.neighbors.to_nested(),
            tuple_res,
            "{}: CSR path diverged from the tuple path",
            w.name
        );

        let t_tuple_seq = best_of(reps, || {
            std::hint::black_box(tuple_batch(seq.tree(), &queries, w.k, false));
        });
        let t_csr_seq = best_of(reps, || {
            std::hint::black_box(
                seq.query_session(&QueryRequest::knn(&queries, w.k))
                    .unwrap(),
            );
        });
        let t_tuple_par = best_of(reps, || {
            std::hint::black_box(tuple_batch(par.tree(), &queries, w.k, true));
        });
        let t_csr_par = best_of(reps, || {
            std::hint::black_box(
                par.query_session(&QueryRequest::knn(&queries, w.k))
                    .unwrap(),
            );
        });

        let qps = |secs: f64| w.n_queries as f64 / secs;
        let su_seq = t_tuple_seq / t_csr_seq;
        let su_par = t_tuple_par / t_csr_par;
        if w.name == "uniform_10d" {
            speedup_10d_seq = su_seq;
        }
        println!(
            "{}: dims={} n={} q={} k={}",
            w.name, w.dims, w.n_points, w.n_queries, w.k
        );
        println!(
            "  sequential: tuple {:>9.0} q/s | csr {:>9.0} q/s | csr/tuple {su_seq:.2}x",
            qps(t_tuple_seq),
            qps(t_csr_seq)
        );
        println!(
            "  2-thread:   tuple {:>9.0} q/s | csr {:>9.0} q/s | csr/tuple {su_par:.2}x",
            qps(t_tuple_par),
            qps(t_csr_par)
        );

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(
            json,
            "      \"dims\": {}, \"n_points\": {}, \"n_queries\": {}, \"k\": {},",
            w.dims, w.n_points, w.n_queries, w.k
        );
        let _ = writeln!(json, "      \"tuple_seq_qps\": {:.1},", qps(t_tuple_seq));
        let _ = writeln!(json, "      \"csr_seq_qps\": {:.1},", qps(t_csr_seq));
        let _ = writeln!(json, "      \"csr_speedup_seq\": {su_seq:.4},");
        let _ = writeln!(json, "      \"tuple_par2_qps\": {:.1},", qps(t_tuple_par));
        let _ = writeln!(json, "      \"csr_par2_qps\": {:.1},", qps(t_csr_par));
        let _ = writeln!(json, "      \"csr_speedup_par2\": {su_par:.4}");
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"csr_speedup_10d_sequential\": {speedup_10d_seq:.4}"
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR2.json");
    println!("\nwrote {out_path}");
    assert!(
        speedup_10d_seq >= 0.95,
        "CSR path regressed vs the tuple path on 10-D: {speedup_10d_seq:.3}x"
    );
}
