//! Figure 5(c) — query time breakdown.
//!
//! Paper: local KNN dominates (up to 67%); find-owner ≤3%; identify
//! remote ~3.5%; remote KNN ≤3% for cosmo/plasma (the carried `r'` bound
//! prunes remote work) but 46% for dayabay, whose co-located records
//! force each query to consult ~22 remote ranks; non-overlapped
//! communication 26–29% for the 3-D datasets.

use panda_bench::runner::{run_distributed, RunConfig};
use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_core::timers::QueryBreakdown;
use panda_data::{queries_from, Dataset};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let seed = args.seed();

    println!("Fig 5(c) — query breakdown (% of total, pipelined)\n");
    let mut table = Table::new(&["Part", "cosmo_large", "plasma_large", "dayabay_large"]);

    let mut columns: Vec<[f64; 5]> = Vec::new();
    let mut fanouts = Vec::new();
    let mut remote_fracs = Vec::new();
    for ds in [
        Dataset::CosmoLarge,
        Dataset::PlasmaLarge,
        Dataset::DayabayLarge,
    ] {
        let row = ds.paper_row();
        let eff_scale =
            scale.min(args.usize("max-points", 8_000_000) as f64 / row.particles as f64);
        let points = ds.generate(eff_scale, seed);
        let n_queries = ((points.len() as f64 * row.query_fraction) as usize).max(64);
        let queries = queries_from(&points, n_queries, 0.01, seed + 1);
        let mut cfg = RunConfig::edison(args.usize("ranks", 16));
        cfg.query.k = row.k;
        let m = run_distributed(&points, &queries, &cfg, false);
        let v = m.query_breakdown.figure_values(true);
        let total: f64 = v.iter().sum();
        columns.push(v.map(|x| 100.0 * x / total.max(1e-30)));
        fanouts.push(m.remote.avg_remote_fanout());
        remote_fracs.push(m.remote.remote_fraction());
        eprintln!("  {}: query total {:.3} model s", row.name, m.query_s);
    }

    for (i, label) in QueryBreakdown::LABELS.iter().enumerate() {
        table.row(&[
            label.to_string(),
            f(columns[0][i], 1),
            f(columns[1][i], 1),
            f(columns[2][i], 1),
        ]);
    }
    table.print();

    println!(
        "\nqueries consulting >=1 remote rank: cosmo {:.0}%, plasma {:.0}%, dayabay {:.0}%  (paper: 5%, 9%, ~all)",
        remote_fracs[0] * 100.0,
        remote_fracs[1] * 100.0,
        remote_fracs[2] * 100.0
    );
    println!(
        "avg remote ranks per query:          cosmo {:.2}, plasma {:.2}, dayabay {:.2}  (paper dayabay: ~22)",
        fanouts[0], fanouts[1], fanouts[2]
    );
}
