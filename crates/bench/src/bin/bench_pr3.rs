//! PR 3 perf evidence — the CSR-native, Morton-batched distributed query
//! engine vs the reproduced PR 2 path.
//!
//! PR 2's `DistIndex::query` drove a nested five-stage loop: one
//! `KnnHeap` + `Vec<Neighbor>` allocated per query per step, request
//! streams that echoed a qid per request, responses framed as
//! `(qid, id)` u64 pairs per neighbor, a header-per-query origin-return
//! leg, a `Vec<(u64, Vec<Neighbor>)>` finalize buffer, and a trailing
//! `NeighborTable::from_nested` copy. PR 3's engine assembles flat CSR
//! end to end with persistent workspaces and optional Morton ordering of
//! each rank's owned queries. This runner reproduces the PR 2 path
//! faithfully from public APIs, verifies both paths agree bit-for-bit,
//! measures throughput on a simulated cluster, and writes
//! `BENCH_PR3.json` (override with `--out`).

use std::fmt::Write as _;
use std::time::Instant;

use panda_bench::Args;
use panda_comm::{ClusterConfig, Comm, ReduceOp};
use panda_core::build_distributed::{build_distributed, DistKdTree};
use panda_core::engine::{NeighborTable, QueryRequest};
use panda_core::query_distributed::query_distributed;
use panda_core::rng::SplitRng;
use panda_core::{
    BoundMode, DistConfig, KnnHeap, Neighbor, PointSet, QueryCounters, QueryOrder, QueryWorkspace,
};
use panda_data::scatter;

const QID_SHIFT: u32 = 32;

fn qid(origin: usize, idx: usize) -> u64 {
    ((origin as u64) << QID_SHIFT) | idx as u64
}

fn qid_origin(q: u64) -> usize {
    (q >> QID_SHIFT) as usize
}

fn qid_idx(q: u64) -> usize {
    (q & ((1u64 << QID_SHIFT) - 1)) as usize
}

fn charge(comm: &mut Comm, c: &QueryCounters, dims: usize) {
    let cost = *comm.cost();
    comm.work_parallel(c.cpu_seconds(&cost.ops, dims), c.mem_bytes(dims));
}

/// The PR 2 distributed engine, reproduced in shape from the public
/// traversal and collective APIs (the in-tree engine is now CSR-native):
/// per-query heap and `Vec<Neighbor>` allocations, qid-echo request
/// streams, `(qid, id)` pair response framing, header-per-query return
/// framing, and a final `from_nested` copy into the CSR table.
fn nested_query_distributed(
    comm: &mut Comm,
    tree: &DistKdTree,
    queries: &PointSet,
    k: usize,
    batch_size: usize,
) -> NeighborTable {
    let dims = tree.global.dims();
    let p = comm.size();
    let me = comm.rank();

    let mut ws = QueryWorkspace::new();

    // (1) route to owners
    let mut route_counters = QueryCounters::default();
    let mut coord_sends: Vec<Vec<f32>> = vec![Vec::new(); p];
    let mut qid_sends: Vec<Vec<u64>> = vec![Vec::new(); p];
    for i in 0..queries.len() {
        let q = queries.point(i);
        let owner = tree.global.owner(q, &mut route_counters);
        coord_sends[owner].extend_from_slice(q);
        qid_sends[owner].push(qid(me, i));
    }
    charge(comm, &route_counters, dims);
    let coords_in = comm.world().alltoallv(coord_sends);
    let qids_in = comm.world().alltoallv(qid_sends);
    let owned_coords: Vec<f32> = coords_in.into_iter().flatten().collect();
    let owned_qids: Vec<u64> = qids_in.into_iter().flatten().collect();
    let n_owned = owned_qids.len();

    let steps = {
        let most = comm.world().allreduce_u64(n_owned as u64, ReduceOp::Max);
        (most as usize).div_ceil(batch_size)
    };

    let mut finalized: Vec<(u64, Vec<Neighbor>)> = Vec::with_capacity(n_owned);
    let mut rank_scratch: Vec<usize> = Vec::new();
    let stride = dims + 1;

    for step in 0..steps {
        let lo = (step * batch_size).min(n_owned);
        let hi = ((step + 1) * batch_size).min(n_owned);

        // (2) local KNN — one fresh heap per query
        let mut local_counters = QueryCounters::default();
        let mut heaps: Vec<KnnHeap> = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            let q = &owned_coords[i * dims..(i + 1) * dims];
            let mut heap = KnnHeap::new(k);
            tree.local
                .query_into(q, &mut heap, BoundMode::Exact, &mut ws, &mut local_counters);
            heaps.push(heap);
        }
        charge(comm, &local_counters, dims);

        // (3) identify remote ranks; request streams echo a qid each
        let mut ident_counters = QueryCounters::default();
        let mut req_coord_sends: Vec<Vec<f32>> = vec![Vec::new(); p];
        let mut req_qid_sends: Vec<Vec<u64>> = vec![Vec::new(); p];
        for (bi, i) in (lo..hi).enumerate() {
            let q = &owned_coords[i * dims..(i + 1) * dims];
            let r_sq = heaps[bi].bound_sq();
            rank_scratch.clear();
            tree.global
                .ranks_in_ball(q, r_sq, true, &mut rank_scratch, &mut ident_counters);
            for &r in &rank_scratch {
                if r == me {
                    continue;
                }
                req_coord_sends[r].extend_from_slice(q);
                req_coord_sends[r].push(r_sq);
                req_qid_sends[r].push(owned_qids[i]);
            }
        }
        charge(comm, &ident_counters, dims);
        let req_coords_in = comm.world().alltoallv(req_coord_sends);
        let req_qids_in = comm.world().alltoallv(req_qid_sends);

        // (4) serve requests; responses are (qid, id) pairs + dists
        let mut remote_counters = QueryCounters::default();
        let mut resp_meta_sends: Vec<Vec<u64>> = vec![Vec::new(); p];
        let mut resp_dist_sends: Vec<Vec<f32>> = vec![Vec::new(); p];
        for src in 0..p {
            let coords = &req_coords_in[src];
            let qids = &req_qids_in[src];
            for (j, &rq) in qids.iter().enumerate() {
                let q = &coords[j * stride..j * stride + dims];
                let r_sq = coords[j * stride + dims];
                let mut heap = KnnHeap::with_radius_sq(k, r_sq);
                tree.local.query_into(
                    q,
                    &mut heap,
                    BoundMode::Exact,
                    &mut ws,
                    &mut remote_counters,
                );
                for n in heap.into_sorted() {
                    resp_meta_sends[src].push(rq);
                    resp_meta_sends[src].push(n.id);
                    resp_dist_sends[src].push(n.dist_sq);
                }
            }
        }
        charge(comm, &remote_counters, dims);
        let resp_meta_in = comm.world().alltoallv(resp_meta_sends);
        let resp_dist_in = comm.world().alltoallv(resp_dist_sends);

        // (5) merge via forward-scanning qid cursor, then finalize into
        // one Vec<Neighbor> per query
        let mut merge_counters = QueryCounters::default();
        for (meta, dists) in resp_meta_in.iter().zip(&resp_dist_in) {
            let mut cursor = lo;
            for (pair, &d) in meta.chunks_exact(2).zip(dists) {
                let (rq, id) = (pair[0], pair[1]);
                let bi = (cursor..hi)
                    .chain(lo..cursor)
                    .find(|&i| owned_qids[i] == rq)
                    .expect("response qid in batch");
                cursor = bi;
                merge_counters.merge_candidates += 1;
                heaps[bi - lo].offer(d, id);
            }
        }
        for (bi, heap) in heaps.into_iter().enumerate() {
            finalized.push((owned_qids[lo + bi], heap.into_sorted()));
        }
        charge(comm, &merge_counters, dims);
    }

    // return to origins with header-per-query framing
    let mut ret_meta_sends: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut ret_dist_sends: Vec<Vec<f32>> = vec![Vec::new(); p];
    for (rq, neighbors) in &finalized {
        let origin = qid_origin(*rq);
        ret_meta_sends[origin].push(*rq);
        ret_meta_sends[origin].push(neighbors.len() as u64);
        for n in neighbors {
            ret_meta_sends[origin].push(n.id);
            ret_dist_sends[origin].push(n.dist_sq);
        }
    }
    let ret_meta_in = comm.world().alltoallv(ret_meta_sends);
    let ret_dist_in = comm.world().alltoallv(ret_dist_sends);
    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
    for (meta, dists) in ret_meta_in.iter().zip(&ret_dist_in) {
        let mut mi = 0usize;
        let mut di = 0usize;
        while mi < meta.len() {
            let rq = meta[mi];
            let count = meta[mi + 1] as usize;
            mi += 2;
            let slot = &mut results[qid_idx(rq)];
            slot.reserve(count);
            for _ in 0..count {
                slot.push(Neighbor {
                    dist_sq: dists[di],
                    id: meta[mi],
                });
                mi += 1;
                di += 1;
            }
        }
    }
    NeighborTable::from_nested(results)
}

struct Workload {
    name: &'static str,
    dims: usize,
    n_points: usize,
    n_queries: usize,
    k: usize,
    batch: usize,
    ranks: usize,
}

fn uniform(n: usize, dims: usize, span: f64, seed: u64) -> PointSet {
    let mut rng = SplitRng::new(seed);
    PointSet::from_coords(
        dims,
        (0..n * dims)
            .map(|_| (rng.next_f64() * span) as f32)
            .collect(),
    )
    .expect("valid points")
}

fn main() {
    let args = Args::from_env();
    let reps = args.usize("reps", 5);
    let seed = args.u64("seed", 42);
    let out_path = args.string("out", "BENCH_PR3.json");

    let workloads = [
        Workload {
            name: "uniform_3d",
            dims: 3,
            n_points: 120_000,
            n_queries: 16_384,
            k: 5,
            batch: 512,
            ranks: 8,
        },
        Workload {
            name: "uniform_10d",
            dims: 10,
            n_points: 40_000,
            n_queries: 6_144,
            k: 5,
            batch: 256,
            ranks: 8,
        },
    ];

    let mut json = String::from(
        "{\n  \"bench\": \"nested (PR 2) vs CSR-native + Morton distributed querying (PR 3)\",\n",
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"workloads\": [\n");

    let mut speedup_3d = 0.0f64;
    for (wi, w) in workloads.iter().enumerate() {
        let all = uniform(w.n_points, w.dims, 100.0, seed + wi as u64);
        let queries = uniform(w.n_queries, w.dims, 100.0, seed + 100 + wi as u64);
        let (k, batch) = (w.k, w.batch);

        // per-rank best-of-reps wall seconds for each path
        let out = panda_comm::run_cluster(&ClusterConfig::new(w.ranks), move |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).expect("build");
            let myq = scatter(&queries, comm.rank(), comm.size());
            let cfg_input = QueryRequest::knn(&myq, k)
                .with_batch_size(batch)
                .to_query_config();
            let cfg_morton = QueryRequest::knn(&myq, k)
                .with_batch_size(batch)
                .with_order(QueryOrder::Morton)
                .to_query_config();

            // correctness gate: all three paths agree bit-for-bit
            let nested = nested_query_distributed(comm, &tree, &myq, k, batch);
            let csr_input = query_distributed(comm, &tree, &myq, &cfg_input)
                .expect("query")
                .neighbors;
            let csr_morton = query_distributed(comm, &tree, &myq, &cfg_morton)
                .expect("query")
                .neighbors;
            assert_eq!(nested, csr_input, "CSR path diverged from nested path");
            assert_eq!(csr_input, csr_morton, "Morton order changed results");

            let mut best = [f64::INFINITY; 3];
            for _ in 0..reps {
                comm.barrier();
                let t0 = Instant::now();
                std::hint::black_box(nested_query_distributed(comm, &tree, &myq, k, batch));
                best[0] = best[0].min(t0.elapsed().as_secs_f64());

                comm.barrier();
                let t0 = Instant::now();
                std::hint::black_box(
                    query_distributed(comm, &tree, &myq, &cfg_input).expect("query"),
                );
                best[1] = best[1].min(t0.elapsed().as_secs_f64());

                comm.barrier();
                let t0 = Instant::now();
                std::hint::black_box(
                    query_distributed(comm, &tree, &myq, &cfg_morton).expect("query"),
                );
                best[2] = best[2].min(t0.elapsed().as_secs_f64());
            }
            best
        });

        // makespan: the slowest rank bounds the collective call
        let mut t = [0.0f64; 3];
        for o in &out {
            for (i, v) in o.result.iter().enumerate() {
                t[i] = t[i].max(*v);
            }
        }
        let qps = |secs: f64| w.n_queries as f64 / secs;
        let su_input = t[0] / t[1];
        let su_morton = t[0] / t[2];
        if w.name == "uniform_3d" {
            speedup_3d = su_morton;
        }
        println!(
            "{}: dims={} n={} q={} k={} batch={} ranks={}",
            w.name, w.dims, w.n_points, w.n_queries, w.k, w.batch, w.ranks
        );
        println!(
            "  nested (PR2)  {:>9.0} q/s\n  csr input     {:>9.0} q/s ({su_input:.2}x)\n  csr morton    {:>9.0} q/s ({su_morton:.2}x)",
            qps(t[0]),
            qps(t[1]),
            qps(t[2])
        );

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(
            json,
            "      \"dims\": {}, \"n_points\": {}, \"n_queries\": {}, \"k\": {}, \"batch\": {}, \"ranks\": {},",
            w.dims, w.n_points, w.n_queries, w.k, w.batch, w.ranks
        );
        let _ = writeln!(json, "      \"nested_qps\": {:.1},", qps(t[0]));
        let _ = writeln!(json, "      \"csr_input_qps\": {:.1},", qps(t[1]));
        let _ = writeln!(json, "      \"csr_morton_qps\": {:.1},", qps(t[2]));
        let _ = writeln!(json, "      \"csr_input_vs_nested\": {su_input:.4},");
        let _ = writeln!(json, "      \"csr_morton_vs_nested\": {su_morton:.4}");
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"csr_morton_vs_nested_3d\": {speedup_3d:.4}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR3.json");
    println!("\nwrote {out_path}");
    assert!(
        speedup_3d >= 0.95,
        "CSR+Morton distributed path regressed vs the nested path on 3-D: {speedup_3d:.3}x"
    );
}
