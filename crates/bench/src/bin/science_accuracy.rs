//! §V-C science result — 3-class Daya Bay classification.
//!
//! Paper: 87% accuracy classifying raw (autoencoder-embedded) Daya Bay
//! records into 3 physics-event classes with KNN majority voting — the
//! first direct ML classification of that dataset without physics
//! reconstruction. The generator's class geometry is calibrated so k=5
//! majority voting lands in the same band; distance-weighted voting (the
//! paper's proposed refinement) is reported alongside.

use panda_bench::table::{f, Table};
use panda_bench::Args;
use panda_comm::{run_cluster, ClusterConfig, MachineProfile};
use panda_core::build_distributed::build_distributed;
use panda_core::classify::{majority_vote, weighted_vote, ConfusionMatrix};
use panda_core::engine::QueryRequest;
use panda_core::query_distributed::query_distributed;
use panda_core::DistConfig;
use panda_data::dayabay::{self, DayaBayParams};
use panda_data::scatter;

fn main() {
    let args = Args::from_env();
    let n = args.usize("n", 40_000);
    let ranks = args.usize("ranks", 4);
    let k = args.usize("k", 5);
    let seed = args.seed();

    let lp = dayabay::generate(n, &DayaBayParams::default(), seed);
    let (train, test) = lp.split(0.25, seed + 1);
    println!(
        "Daya Bay classification: {} train / {} test records, 10-D, {} classes, k={k}, {ranks} ranks\n",
        train.len(),
        test.len(),
        lp.n_classes
    );

    let labels = lp.labels.clone();
    let n_classes = lp.n_classes;
    let cluster = ClusterConfig::new(ranks).with_cost(MachineProfile::EdisonNode.cost_model());
    let outcomes = run_cluster(&cluster, |comm| {
        let mine = scatter(&train, comm.rank(), comm.size());
        let tree = build_distributed(comm, mine, &DistConfig::default()).expect("build");
        let myq = scatter(&test, comm.rank(), comm.size());
        let qcfg = QueryRequest::knn(&myq, k).to_query_config();
        let res = query_distributed(comm, &tree, &myq, &qcfg).expect("query");
        // classify locally; return (truth, majority, weighted) triples
        (0..myq.len())
            .map(|i| {
                let truth = labels[myq.id(i) as usize];
                let row = res.neighbors.row(i);
                let maj =
                    majority_vote(row, |id| labels[id as usize]).expect("non-empty neighbors");
                let wgt = weighted_vote(row, |id| labels[id as usize], 1e-6)
                    .expect("non-empty neighbors");
                (truth, maj, wgt)
            })
            .collect::<Vec<_>>()
    });

    let mut cm_major = ConfusionMatrix::new(n_classes as usize);
    let mut cm_weighted = ConfusionMatrix::new(n_classes as usize);
    for o in &outcomes {
        for &(truth, maj, wgt) in &o.result {
            cm_major.record(truth, maj);
            cm_weighted.record(truth, wgt);
        }
    }

    let mut table = Table::new(&["Method", "Accuracy", "Paper"]);
    table.row(&[
        format!("majority vote (k={k})"),
        f(cm_major.accuracy() * 100.0, 1) + "%",
        "87%".into(),
    ]);
    table.row(&[
        format!("distance-weighted (k={k})"),
        f(cm_weighted.accuracy() * 100.0, 1) + "%",
        "(future work)".into(),
    ]);
    table.print();

    println!("\nconfusion matrix (majority vote; rows = truth, cols = predicted):");
    let mut cmt = Table::new(&["class", "0", "1", "2", "recall"]);
    let recalls = cm_major.recall();
    for t in 0..n_classes {
        cmt.row(&[
            t.to_string(),
            cm_major.get(t, 0).to_string(),
            cm_major.get(t, 1).to_string(),
            cm_major.get(t, 2).to_string(),
            f(recalls[t as usize] * 100.0, 1) + "%",
        ]);
    }
    cmt.print();

    assert!(
        cm_major.total() as usize == test.len(),
        "every test record classified exactly once"
    );
}
