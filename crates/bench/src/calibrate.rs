//! Host microbenchmarks for the cost-model constants.
//!
//! The simulated cluster converts counted operations to virtual seconds
//! through `panda_comm::ComputeCosts`. The defaults were derived from
//! these microbenchmarks; `panda-bench --bin calibrate` re-runs them on
//! the current host and prints a `ComputeCosts` literal plus the ratio to
//! the built-in laptop profile.

use std::time::Instant;

use panda_comm::ComputeCosts;
use panda_core::config::HistScan;
use panda_core::hist::SampledHistogram;
use panda_core::local_tree::PackedLeaves;
use panda_core::KnnHeap;

/// Measured per-op costs (seconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct Calibration {
    /// Per (point·dim) packed-bucket distance.
    pub dist: f64,
    /// Per heap offer.
    pub heap_op: f64,
    /// Per point binned, binary search.
    pub hist_binary: f64,
    /// Per point binned, sub-interval scan.
    pub hist_scan: f64,
    /// Per point partitioned.
    pub partition: f64,
}

fn time(mut f: impl FnMut()) -> f64 {
    // warmup
    f();
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Run the microbenchmarks (takes well under a second each).
pub fn run() -> Calibration {
    let mut cal = Calibration::default();
    let mut sink = 0.0f32;

    // Packed-bucket distance kernel: 3-D, 32-point buckets.
    {
        let dims = 3;
        let n_buckets = 2000usize;
        let mut pl = PackedLeaves::new(dims);
        for b in 0..n_buckets {
            pl.push_leaf(
                32,
                |i, d| (b * 32 + i * dims + d) as f32 * 0.001,
                |i| i as u64,
            );
        }
        let q = [1.0f32, 2.0, 3.0];
        let mut out = Vec::new();
        let reps = 20;
        let secs = time(|| {
            for _ in 0..reps {
                for b in 0..n_buckets {
                    pl.distances(b * 32, 32, &q, &mut out);
                    sink += out[0];
                }
            }
        });
        cal.dist = secs / (reps * n_buckets * 32 * dims) as f64;
    }

    // Heap offers.
    {
        let reps = 200_000usize;
        let secs = time(|| {
            let mut h = KnnHeap::new(8);
            for i in 0..reps {
                h.offer((i % 1000) as f32 * 0.5, i as u64);
            }
            sink += h.bound_sq();
        });
        cal.heap_op = secs / reps as f64;
    }

    // Histogram binning, both kernels, 1024 boundaries.
    {
        let samples: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        let hist = SampledHistogram::from_samples(samples);
        let values: Vec<f32> = (0..100_000).map(|i| (i % 1024) as f32 + 0.5).collect();
        for (scan, slot) in [(HistScan::Binary, 0), (HistScan::SubInterval, 1)] {
            let mut counts = vec![0u64; hist.n_bins()];
            let secs = time(|| {
                counts.iter_mut().for_each(|c| *c = 0);
                hist.count_into(values.iter().copied(), &mut counts, scan);
            });
            let per = secs / values.len() as f64;
            if slot == 0 {
                cal.hist_binary = per;
            } else {
                cal.hist_scan = per;
            }
        }
    }

    // Partition.
    {
        let values: Vec<f32> = (0..200_000u64)
            .map(|i| ((i.wrapping_mul(2654435761)) % 1000) as f32)
            .collect();
        let ps = panda_core::PointSet::from_coords(1, values).unwrap();
        let secs = time(|| {
            let mut idx: Vec<u32> = (0..ps.len() as u32).collect();
            let l = panda_core::partition::partition_in_place(&ps, &mut idx, 0, 500.0);
            sink += l as f32;
        });
        cal.partition = secs / ps.len() as f64;
    }

    std::hint::black_box(sink);
    cal
}

/// Render a `ComputeCosts` literal with measured values substituted where
/// available and defaults elsewhere.
pub fn render(cal: &Calibration, base: &ComputeCosts) -> String {
    format!(
        "ComputeCosts {{\n    dist: {:.3e},\n    node_visit: {:.3e},\n    heap_op: {:.3e},\n    \
         hist_binary: {:.3e},\n    hist_scan: {:.3e},\n    partition: {:.3e},\n    pack: {:.3e},\n    \
         variance: {:.3e},\n    sample: {:.3e},\n    owner_level: {:.3e},\n    merge: {:.3e},\n}}",
        cal.dist,
        base.node_visit,
        cal.heap_op,
        cal.hist_binary,
        cal.hist_scan,
        cal.partition,
        base.pack,
        base.variance,
        base.sample,
        base.owner_level,
        base.merge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_runs_and_is_sane() {
        let cal = run();
        // All measured costs positive and within 3 orders of magnitude of
        // the defaults (debug builds are slow; this is a smoke bound).
        assert!(cal.dist > 0.0 && cal.dist < 1e-6);
        assert!(cal.heap_op > 0.0 && cal.heap_op < 1e-5);
        assert!(cal.hist_binary > 0.0);
        assert!(cal.hist_scan > 0.0);
        assert!(cal.partition > 0.0 && cal.partition < 1e-5);
    }

    #[test]
    fn render_is_valid_looking() {
        let cal = run();
        let s = render(&cal, &ComputeCosts::ivy_bridge());
        assert!(s.contains("dist:"));
        assert!(s.contains("hist_scan:"));
    }
}
