//! Aligned console tables + optional CSV dumps for the figure binaries.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple right-aligned table with a header row.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = widths[0]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = widths[i]);
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as CSV (no quoting — harness cells never contain commas).
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// `format!`-free float formatting helpers used across harnesses.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Human-readable count (1.1B, 68.7M, ...).
pub fn count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Human-readable bytes.
pub fn bytes(n: u64) -> String {
    if n >= 1 << 30 {
        format!("{:.2}GiB", n as f64 / (1u64 << 30) as f64)
    } else if n >= 1 << 20 {
        format!("{:.2}MiB", n as f64 / (1u64 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1}KiB", n as f64 / 1024.0)
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // right-aligned numbers share the final column
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        let path = std::env::temp_dir().join(format!("panda-tbl-{}.csv", std::process::id()));
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "x,y\n1,2\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn humanized_counts() {
        assert_eq!(count(1_100_000_000), "1.1B");
        assert_eq!(count(68_700_000), "68.7M");
        assert_eq!(count(50_000), "50K");
        assert_eq!(count(999), "999");
        assert_eq!(bytes(2048), "2.0KiB");
        assert_eq!(bytes(3 << 20), "3.00MiB");
    }

    #[test]
    fn f_formats() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 1), "10.0");
    }
}
