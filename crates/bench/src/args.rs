//! Minimal CLI flag parsing shared by the figure binaries.
//!
//! Hand-rolled on purpose: the offline dependency set has no argument
//! parser, and the harness needs only `--flag value` pairs and `--switch`
//! booleans.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args()`.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit token stream (tests).
    pub fn parse(tokens: impl Iterator<Item = String>) -> Self {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut tokens = tokens.peekable();
        while let Some(t) = tokens.next() {
            if let Some(name) = t.strip_prefix("--") {
                match tokens.peek() {
                    Some(v) if !v.starts_with("--") => {
                        flags.insert(name.to_string(), tokens.next().expect("peeked"));
                    }
                    _ => switches.push(name.to_string()),
                }
            } else {
                eprintln!("warning: ignoring stray argument {t:?}");
            }
        }
        Self { flags, switches }
    }

    /// `--name value` as f64, or `default`.
    pub fn f64(&self, name: &str, default: f64) -> f64 {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// `--name value` as usize, or `default`.
    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// `--name value` as u64, or `default`.
    pub fn u64(&self, name: &str, default: u64) -> u64 {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// `--name value` as string.
    pub fn string(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Bare `--name` switch present?
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Dataset scale factor (`--scale`, default 1e-3 of the paper sizes).
    pub fn scale(&self) -> f64 {
        self.f64("scale", 1e-3)
    }

    /// Rank cap (`--max-ranks`, default 64).
    pub fn max_ranks(&self) -> usize {
        self.usize("max-ranks", 64)
    }

    /// RNG seed (`--seed`, default 42).
    pub fn seed(&self) -> u64 {
        self.u64("seed", 42)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn flags_and_switches() {
        let a = args("--scale 0.01 --full --ranks 8 --csv out.csv");
        assert_eq!(a.scale(), 0.01);
        assert_eq!(a.usize("ranks", 4), 8);
        assert!(a.switch("full"));
        assert!(!a.switch("quick"));
        assert_eq!(a.string("csv", ""), "out.csv");
    }

    #[test]
    fn defaults() {
        let a = args("");
        assert_eq!(a.scale(), 1e-3);
        assert_eq!(a.max_ranks(), 64);
        assert_eq!(a.seed(), 42);
    }

    #[test]
    fn trailing_switch() {
        let a = args("--verbose");
        assert!(a.switch("verbose"));
    }

    #[test]
    #[should_panic(expected = "expects a number")]
    fn bad_number_panics() {
        let a = args("--scale banana");
        let _ = a.scale();
    }
}
