//! The shared experiment driver: distributed build + query on a simulated
//! cluster, with rank-aggregated metrics.

use panda_comm::{run_cluster, ClusterConfig, CommStats, MachineProfile};
use panda_core::build_distributed::build_distributed;
use panda_core::query_distributed::{query_distributed, RemoteStats};
use panda_core::timers::{BuildBreakdown, QueryBreakdown};
use panda_core::{DistConfig, PointSet, QueryConfig, QueryCounters};
use panda_data::scatter;

/// Configuration of one distributed experiment.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Number of simulated ranks.
    pub ranks: usize,
    /// Modeled threads per rank.
    pub threads: usize,
    /// Machine profile for the cost model.
    pub profile: MachineProfile,
    /// Construction parameters.
    pub dist: DistConfig,
    /// Query parameters.
    pub query: QueryConfig,
}

impl RunConfig {
    /// Edison-profile run with `ranks` ranks × 24 modeled threads.
    pub fn edison(ranks: usize) -> Self {
        Self {
            ranks,
            threads: 24,
            profile: MachineProfile::EdisonNode,
            dist: DistConfig::default(),
            query: QueryConfig::default(),
        }
    }

    /// KNL-profile run with `ranks` nodes × 68 modeled threads.
    pub fn knl(ranks: usize) -> Self {
        Self {
            ranks,
            threads: 68,
            profile: MachineProfile::KnlNode,
            dist: DistConfig::default(),
            query: QueryConfig {
                k: 10,
                ..QueryConfig::default()
            },
        }
    }

    /// Total modeled cores.
    pub fn cores(&self) -> usize {
        self.ranks * self.threads
    }
}

/// Aggregated outcome of a distributed experiment.
#[derive(Clone, Debug)]
pub struct DistMetrics {
    /// Virtual seconds for construction (makespan over ranks).
    pub construct_s: f64,
    /// Virtual seconds for querying, software-pipelined model (makespan).
    pub query_s: f64,
    /// Virtual seconds for querying without overlap (makespan).
    pub query_sync_s: f64,
    /// Construction breakdown summed over ranks (use for percentages).
    pub build_breakdown: BuildBreakdown,
    /// Query breakdown summed over ranks (use for percentages).
    pub query_breakdown: QueryBreakdown,
    /// Communication counters summed over ranks (whole run).
    pub comm: CommStats,
    /// Communication counters for the query phase only (summed).
    pub comm_query: CommStats,
    /// Remote-query statistics summed over ranks.
    pub remote: RemoteStats,
    /// Query traversal counters summed over ranks.
    pub counters: QueryCounters,
    /// Points indexed / queries answered.
    pub n_points: usize,
    /// Queries answered.
    pub n_queries: usize,
    /// Max over ranks of (local points / mean local points) — load balance.
    pub max_load_imbalance: f64,
}

/// Run one distributed experiment: scatter → build → query, aggregate.
///
/// When `verify_against` is `Some(k)`, a sample of results per rank is
/// recomputed by brute force and asserted equal (cheap confidence check
/// wired into every harness run at small scale).
pub fn run_distributed(
    all_points: &PointSet,
    all_queries: &PointSet,
    cfg: &RunConfig,
    verify: bool,
) -> DistMetrics {
    let mut dist = cfg.dist;
    dist.local.threads = cfg.threads;
    dist.local.parallel = false;
    let qcfg = cfg.query;
    let cost = cfg.profile.cost_model().with_threads(cfg.threads);
    let cluster = ClusterConfig::new(cfg.ranks).with_cost(cost);

    struct RankResult {
        t_build: f64,
        t_query_sync: f64,
        build_breakdown: BuildBreakdown,
        query_breakdown: QueryBreakdown,
        remote: RemoteStats,
        counters: QueryCounters,
        comm_query: CommStats,
        local_points: usize,
        sample: Vec<(Vec<f32>, Vec<f32>)>, // (query, dist²s) for verification
    }

    let outcomes = run_cluster(&cluster, |comm| {
        let mine = scatter(all_points, comm.rank(), comm.size());
        let tree = build_distributed(comm, mine, &dist).expect("distributed build");
        comm.barrier();
        let t_build = comm.now();
        let stats_at_build = comm.stats();
        let myq = scatter(all_queries, comm.rank(), comm.size());
        let res = query_distributed(comm, &tree, &myq, &qcfg).expect("distributed query");
        comm.barrier();
        let comm_query = comm.stats().since(&stats_at_build);
        let t_query_sync = comm.now() - t_build;
        let sample = if verify {
            (0..myq.len().min(5))
                .map(|i| {
                    (
                        myq.point(i).to_vec(),
                        res.neighbors.row(i).iter().map(|n| n.dist_sq).collect(),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        RankResult {
            t_build,
            t_query_sync,
            build_breakdown: tree.breakdown,
            query_breakdown: res.breakdown,
            remote: res.remote,
            counters: res.counters,
            comm_query,
            local_points: tree.points.len(),
            sample,
        }
    });

    if verify {
        for o in &outcomes {
            for (q, dists) in &o.result.sample {
                let expect = brute_dists(all_points, q, qcfg.k);
                assert_eq!(dists, &expect, "verification failed at rank {}", o.rank);
            }
        }
    }

    let construct_s = outcomes
        .iter()
        .map(|o| o.result.t_build)
        .fold(0.0, f64::max);
    let query_sync_s = outcomes
        .iter()
        .map(|o| o.result.t_query_sync)
        .fold(0.0, f64::max);
    let query_s = outcomes
        .iter()
        .map(|o| o.result.query_breakdown.total(qcfg.pipeline))
        .fold(0.0, f64::max);

    let mut build_breakdown = BuildBreakdown::default();
    let mut query_breakdown = QueryBreakdown::default();
    let mut remote = RemoteStats::default();
    let mut counters = QueryCounters::default();
    let mut comm_query = CommStats::new();
    for o in &outcomes {
        build_breakdown.add(&o.result.build_breakdown);
        query_breakdown.add(&o.result.query_breakdown);
        remote.add(&o.result.remote);
        counters.add(&o.result.counters);
        comm_query.merge(&o.result.comm_query);
    }
    let comm = panda_comm::total_stats(&outcomes);

    let mean_load = all_points.len() as f64 / cfg.ranks as f64;
    let max_load_imbalance = outcomes
        .iter()
        .map(|o| o.result.local_points as f64 / mean_load.max(1.0))
        .fold(0.0, f64::max);

    DistMetrics {
        construct_s,
        query_s,
        query_sync_s,
        build_breakdown,
        query_breakdown,
        comm,
        comm_query,
        remote,
        counters,
        n_points: all_points.len(),
        n_queries: all_queries.len(),
        max_load_imbalance,
    }
}

/// Brute-force distances for verification.
pub fn brute_dists(ps: &PointSet, q: &[f32], k: usize) -> Vec<f32> {
    let mut heap = panda_core::KnnHeap::new(k);
    for i in 0..ps.len() {
        heap.offer(ps.dist_sq_to(q, i), ps.id(i));
    }
    heap.into_sorted().iter().map(|n| n.dist_sq).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_data::uniform;

    #[test]
    fn end_to_end_metrics_with_verification() {
        let points = uniform::generate(3000, 3, 1.0, 1);
        let queries = panda_data::queries_from(&points, 80, 0.01, 2);
        let cfg = RunConfig::edison(4);
        let m = run_distributed(&points, &queries, &cfg, true);
        assert!(m.construct_s > 0.0);
        assert!(m.query_s > 0.0);
        assert!(m.query_s <= m.query_sync_s + 1e-9);
        assert_eq!(m.remote.owned_queries, 80);
        assert!(m.max_load_imbalance >= 1.0 && m.max_load_imbalance < 2.0);
        assert!(m.comm.total_bytes() > 0);
        assert_eq!(m.n_points, 3000);
    }

    #[test]
    fn more_ranks_speed_up_construction_and_query() {
        let points = uniform::generate(60_000, 3, 1.0, 3);
        let queries = panda_data::queries_from(&points, 2000, 0.01, 4);
        let m2 = run_distributed(&points, &queries, &RunConfig::edison(2), false);
        let m8 = run_distributed(&points, &queries, &RunConfig::edison(8), false);
        assert!(
            m8.construct_s < m2.construct_s,
            "construction {} vs {}",
            m8.construct_s,
            m2.construct_s
        );
        assert!(
            m8.query_s < m2.query_s,
            "query {} vs {}",
            m8.query_s,
            m2.query_s
        );
    }
}
