//! Construction benchmarks: PANDA local tree vs the FLANN-like and
//! ANN-like baselines, across datasets and strategies (real wall-clock,
//! small sizes — the figure-scale comparisons live in the bin harnesses).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_baselines::{AnnLikeTree, FlannLikeTree};
use panda_core::config::{SplitDimStrategy, SplitValueStrategy};
use panda_core::{LocalKdTree, TreeConfig};
use panda_data::{cosmology::CosmologyParams, Dataset};

fn bench_vs_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction_vs_baselines");
    g.sample_size(10);
    let points = Dataset::CosmoThin.generate(4e-4, 7); // 20k points
    g.bench_function("panda", |b| {
        b.iter(|| black_box(LocalKdTree::build(&points, &TreeConfig::default()).unwrap()))
    });
    g.bench_function("flann_like", |b| {
        b.iter(|| black_box(FlannLikeTree::build(&points).unwrap()))
    });
    g.bench_function("ann_like", |b| {
        b.iter(|| black_box(AnnLikeTree::build(&points).unwrap()))
    });
    g.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction_strategies");
    g.sample_size(10);
    let points = panda_data::cosmology::generate(20_000, &CosmologyParams::default(), 9);
    for (name, dim, val) in [
        (
            "variance+hist",
            SplitDimStrategy::MaxVariance { sample: 1024 },
            SplitValueStrategy::SampledHistogram { samples: 1024 },
        ),
        (
            "extent+hist",
            SplitDimStrategy::MaxExtent,
            SplitValueStrategy::SampledHistogram { samples: 1024 },
        ),
        (
            "variance+exact",
            SplitDimStrategy::MaxVariance { sample: 1024 },
            SplitValueStrategy::ExactMedian,
        ),
    ] {
        let cfg = TreeConfig {
            split_dim: dim,
            split_value: val,
            ..TreeConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(LocalKdTree::build(&points, cfg).unwrap()))
        });
    }
    g.finish();
}

fn bench_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction_sizes");
    g.sample_size(10);
    for n in [10_000usize, 40_000] {
        let points = panda_data::uniform::generate(n, 3, 1.0, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, ps| {
            b.iter(|| black_box(LocalKdTree::build(ps, &TreeConfig::default()).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_vs_baselines, bench_strategies, bench_sizes);
criterion_main!(benches);
