//! Micro-kernels: packed-bucket distance scan, bounded heap, histogram
//! binning (binary vs sub-interval), partition.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::config::HistScan;
use panda_core::hist::SampledHistogram;
use panda_core::local_tree::PackedLeaves;
use panda_core::partition::partition_in_place;
use panda_core::{KnnHeap, PointSet};

fn bench_distance_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("bucket_distances");
    for dims in [3usize, 10, 15] {
        let mut pl = PackedLeaves::new(dims);
        let n_buckets = 256;
        for b in 0..n_buckets {
            pl.push_leaf(32, |i, d| ((b * 31 + i * 7 + d) % 97) as f32, |i| i as u64);
        }
        let q: Vec<f32> = (0..dims).map(|d| d as f32).collect();
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::new("packed", dims), &dims, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0f32;
                for b in 0..n_buckets {
                    pl.distances(b * 32, 32, black_box(&q), &mut out);
                    acc += out[0];
                }
                black_box(acc)
            })
        });
        // strided AoS scan for contrast (what the baselines do)
        let ps = PointSet::from_coords(
            dims,
            (0..n_buckets * 32 * dims).map(|i| (i % 97) as f32).collect(),
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("strided", dims), &dims, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..ps.len() {
                    acc += ps.dist_sq_to(black_box(&q), i);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_heap(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096u64)
        .map(|i| ((i.wrapping_mul(2654435761)) % 10000) as f32)
        .collect();
    for k in [5usize, 32] {
        c.bench_function(&format!("knn_heap_offer_k{k}"), |b| {
            b.iter(|| {
                let mut h = KnnHeap::new(k);
                for (i, &v) in values.iter().enumerate() {
                    h.offer(black_box(v), i as u64);
                }
                black_box(h.bound_sq())
            })
        });
    }
}

fn bench_hist(c: &mut Criterion) {
    let samples: Vec<f32> = (0..1024).map(|i| i as f32).collect();
    let hist = SampledHistogram::from_samples(samples);
    let values: Vec<f32> =
        (0..65_536u64).map(|i| ((i.wrapping_mul(40503)) % 1024) as f32 + 0.5).collect();
    let mut counts = vec![0u64; hist.n_bins()];
    let mut g = c.benchmark_group("hist_binning");
    for (name, scan) in [("binary", HistScan::Binary), ("sub_interval", HistScan::SubInterval)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                counts.iter_mut().for_each(|x| *x = 0);
                hist.count_into(black_box(values.iter().copied()), &mut counts, scan);
                black_box(counts[0])
            })
        });
    }
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let values: Vec<f32> =
        (0..65_536u64).map(|i| ((i.wrapping_mul(2654435761)) % 1000) as f32).collect();
    let ps = PointSet::from_coords(1, values).unwrap();
    c.bench_function("partition_in_place_64k", |b| {
        b.iter(|| {
            let mut idx: Vec<u32> = (0..ps.len() as u32).collect();
            black_box(partition_in_place(&ps, &mut idx, 0, 500.0))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_distance_kernel, bench_heap, bench_hist, bench_partition
}
criterion_main!(benches);
