//! Micro-kernels: packed-bucket distance scan (scalar two-pass vs fused
//! portable vs fused AVX2), batched querying (input vs Morton order),
//! bounded heap, histogram binning (binary vs sub-interval), partition.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::config::{HistScan, QueryOrder};
use panda_core::engine::QueryRequest;
use panda_core::hist::SampledHistogram;
use panda_core::knn::KnnIndex;
use panda_core::local_tree::PackedLeaves;
use panda_core::partition::partition_in_place;
use panda_core::rng::SplitRng;
use panda_core::{KnnHeap, PointSet, TreeConfig};

fn bench_distance_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("bucket_distances");
    for dims in [3usize, 10, 15] {
        let mut pl = PackedLeaves::new(dims);
        let n_buckets = 256;
        for b in 0..n_buckets {
            pl.push_leaf(32, |i, d| ((b * 31 + i * 7 + d) % 97) as f32, |i| i as u64);
        }
        let q: Vec<f32> = (0..dims).map(|d| d as f32).collect();
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::new("packed", dims), &dims, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0f32;
                for b in 0..n_buckets {
                    pl.distances(b * 32, 32, black_box(&q), &mut out);
                    acc += out[0];
                }
                black_box(acc)
            })
        });
        // strided AoS scan for contrast (what the baselines do)
        let ps = PointSet::from_coords(
            dims,
            (0..n_buckets * 32 * dims)
                .map(|i| (i % 97) as f32)
                .collect(),
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("strided", dims), &dims, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..ps.len() {
                    acc += ps.dist_sq_to(black_box(&q), i);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// Scalar two-pass reference vs the fused kernels, under a realistic
/// tight heap bound (k = 5 over a stream of buckets).
fn bench_leaf_kernel_fused(c: &mut Criterion) {
    let mut g = c.benchmark_group("leaf_kernel");
    for dims in [3usize, 10] {
        let mut pl = PackedLeaves::new(dims);
        let n_buckets = 256;
        for b in 0..n_buckets {
            pl.push_leaf(
                32,
                |i, d| ((b * 31 + i * 7 + d) % 97) as f32,
                |i| (b * 32 + i) as u64,
            );
        }
        let q: Vec<f32> = (0..dims).map(|d| d as f32).collect();
        let mut out = Vec::new();
        g.bench_with_input(
            BenchmarkId::new("scalar_two_pass", dims),
            &dims,
            |bench, _| {
                bench.iter(|| {
                    let mut heap = KnnHeap::new(5);
                    for b in 0..n_buckets {
                        pl.distances(b * 32, 32, black_box(&q), &mut out);
                        for (i, &d) in out.iter().enumerate() {
                            if d < heap.bound_sq() {
                                heap.offer(d, (b * 32 + i) as u64);
                            }
                        }
                    }
                    black_box(heap.bound_sq())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("fused_portable", dims),
            &dims,
            |bench, _| {
                bench.iter(|| {
                    let mut heap = KnnHeap::new(5);
                    for b in 0..n_buckets {
                        pl.scan_portable(b * 32, 32, black_box(&q), &mut heap);
                    }
                    black_box(heap.bound_sq())
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("fused_auto", dims), &dims, |bench, _| {
            bench.iter(|| {
                let mut heap = KnnHeap::new(5);
                for b in 0..n_buckets {
                    pl.scan_and_offer(b * 32, 32, black_box(&q), &mut heap);
                }
                black_box(heap.bound_sq())
            })
        });
    }
    g.finish();
}

/// Input-order vs Morton-order batched querying on clustered data.
fn bench_query_order(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_batch_order");
    let mut rng = SplitRng::new(99);
    let dims = 3;
    let coords: Vec<f32> = (0..60_000 * dims)
        .map(|_| (rng.next_f64() * 100.0) as f32)
        .collect();
    let ps = PointSet::from_coords(dims, coords).unwrap();
    let qcoords: Vec<f32> = (0..4096 * dims)
        .map(|_| (rng.next_f64() * 100.0) as f32)
        .collect();
    let queries = PointSet::from_coords(dims, qcoords).unwrap();
    let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
    for (name, order) in [("input", QueryOrder::Input), ("morton", QueryOrder::Morton)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let res = idx
                    .query_session(&QueryRequest::knn(black_box(&queries), 5).with_order(order))
                    .unwrap();
                black_box(res.len())
            })
        });
    }
    g.finish();
}

fn bench_heap(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096u64)
        .map(|i| ((i.wrapping_mul(2654435761)) % 10000) as f32)
        .collect();
    for k in [5usize, 32] {
        c.bench_function(&format!("knn_heap_offer_k{k}"), |b| {
            b.iter(|| {
                let mut h = KnnHeap::new(k);
                for (i, &v) in values.iter().enumerate() {
                    h.offer(black_box(v), i as u64);
                }
                black_box(h.bound_sq())
            })
        });
    }
}

fn bench_hist(c: &mut Criterion) {
    let samples: Vec<f32> = (0..1024).map(|i| i as f32).collect();
    let hist = SampledHistogram::from_samples(samples);
    let values: Vec<f32> = (0..65_536u64)
        .map(|i| ((i.wrapping_mul(40503)) % 1024) as f32 + 0.5)
        .collect();
    let mut counts = vec![0u64; hist.n_bins()];
    let mut g = c.benchmark_group("hist_binning");
    for (name, scan) in [
        ("binary", HistScan::Binary),
        ("sub_interval", HistScan::SubInterval),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                counts.iter_mut().for_each(|x| *x = 0);
                hist.count_into(black_box(values.iter().copied()), &mut counts, scan);
                black_box(counts[0])
            })
        });
    }
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let values: Vec<f32> = (0..65_536u64)
        .map(|i| ((i.wrapping_mul(2654435761)) % 1000) as f32)
        .collect();
    let ps = PointSet::from_coords(1, values).unwrap();
    c.bench_function("partition_in_place_64k", |b| {
        b.iter(|| {
            let mut idx: Vec<u32> = (0..ps.len() as u32).collect();
            black_box(partition_in_place(&ps, &mut idx, 0, 500.0))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_distance_kernel, bench_leaf_kernel_fused, bench_query_order, bench_heap,
        bench_hist, bench_partition
}
criterion_main!(benches);
