//! Query benchmarks: PANDA vs baselines vs brute force, k sweep, bound
//! modes (real wall-clock, single thread).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_baselines::{AnnLikeTree, BruteForce, FlannLikeTree};
use panda_core::config::BoundMode;
use panda_core::{KnnHeap, LocalKdTree, QueryCounters, QueryWorkspace, TreeConfig};
use panda_data::{queries_from, Dataset};

fn setup() -> (panda_core::PointSet, panda_core::PointSet) {
    let points = Dataset::CosmoThin.generate(4e-4, 11); // 20k points
    let queries = queries_from(&points, 256, 0.01, 12);
    (points, queries)
}

fn bench_vs_baselines(c: &mut Criterion) {
    let (points, queries) = setup();
    let panda = LocalKdTree::build(&points, &TreeConfig::default()).unwrap();
    let flann = FlannLikeTree::build(&points).unwrap();
    let ann = AnnLikeTree::build(&points).unwrap();
    let brute = BruteForce::new(&points);

    let mut g = c.benchmark_group("query_vs_baselines");
    g.sample_size(20);
    g.bench_function("panda", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..queries.len() {
                acc += panda.query(queries.point(i), 5).unwrap()[0].dist_sq;
            }
            black_box(acc)
        })
    });
    g.bench_function("flann_like", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..queries.len() {
                acc += flann.query(queries.point(i), 5).unwrap()[0].dist_sq;
            }
            black_box(acc)
        })
    });
    g.bench_function("ann_like", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..queries.len() {
                acc += ann.query(queries.point(i), 5).unwrap()[0].dist_sq;
            }
            black_box(acc)
        })
    });
    g.bench_function("brute_force", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..queries.len().min(32) {
                acc += brute.query(queries.point(i), 5).unwrap()[0].dist_sq;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let (points, queries) = setup();
    let tree = LocalKdTree::build(&points, &TreeConfig::default()).unwrap();
    let mut g = c.benchmark_group("query_k_sweep");
    g.sample_size(20);
    for k in [1usize, 5, 20, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..queries.len() {
                    acc += tree.query(queries.point(i), k).unwrap()[0].dist_sq;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_bound_modes(c: &mut Criterion) {
    let (points, queries) = setup();
    let tree = LocalKdTree::build(&points, &TreeConfig::default()).unwrap();
    let mut g = c.benchmark_group("query_bound_modes");
    g.sample_size(20);
    for (name, mode) in [
        ("exact", BoundMode::Exact),
        ("paper_scalar", BoundMode::PaperScalar),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut ws = QueryWorkspace::new();
                let mut counters = QueryCounters::default();
                let mut acc = 0usize;
                for i in 0..queries.len() {
                    let mut heap = KnnHeap::new(5);
                    tree.query_into(queries.point(i), &mut heap, mode, &mut ws, &mut counters);
                    acc += heap.len();
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_vs_baselines,
    bench_k_sweep,
    bench_bound_modes
);
criterion_main!(benches);
