//! Substrate benchmarks: collective throughput of the simulated cluster
//! and end-to-end distributed build/query wall-clock at small scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_comm::{run_cluster, ClusterConfig, ReduceOp};
use panda_core::build_distributed::build_distributed;
use panda_core::engine::QueryRequest;
use panda_core::query_distributed::query_distributed;
use panda_core::DistConfig;
use panda_data::{queries_from, scatter, uniform};

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    for p in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("allreduce_vec_4k", p), &p, |b, &p| {
            let cfg = ClusterConfig::new(p);
            b.iter(|| {
                let out = run_cluster(&cfg, |comm| {
                    let v = vec![comm.rank() as u64; 4096];
                    comm.world().allreduce_vec_u64(v, ReduceOp::Sum)[0]
                });
                black_box(out[0].result)
            })
        });
        g.bench_with_input(BenchmarkId::new("alltoallv_64k_f32", p), &p, |b, &p| {
            let cfg = ClusterConfig::new(p);
            b.iter(|| {
                let out = run_cluster(&cfg, |comm| {
                    let sends: Vec<Vec<f32>> = (0..comm.size())
                        .map(|_| vec![1.0f32; 65536 / comm.size()])
                        .collect();
                    comm.world().alltoallv(sends).len()
                });
                black_box(out[0].result)
            })
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_end_to_end");
    g.sample_size(10);
    let points = uniform::generate(20_000, 3, 1.0, 5);
    let queries = queries_from(&points, 500, 0.01, 6);
    for p in [2usize, 8] {
        g.bench_with_input(BenchmarkId::new("build_query", p), &p, |b, &p| {
            let cfg = ClusterConfig::new(p);
            b.iter(|| {
                let out = run_cluster(&cfg, |comm| {
                    let mine = scatter(&points, comm.rank(), comm.size());
                    let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
                    let myq = scatter(&queries, comm.rank(), comm.size());
                    let qcfg = QueryRequest::knn(&myq, 5).to_query_config();
                    let res = query_distributed(comm, &tree, &myq, &qcfg).unwrap();
                    res.neighbors.len()
                });
                black_box(out.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives, bench_end_to_end);
criterion_main!(benches);
