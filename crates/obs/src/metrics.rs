//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! Every handle is a cheaply clonable `Arc` around relaxed atomics, so
//! hot paths pay one `fetch_add` (or, for histograms, one `leading_zeros`
//! plus two `fetch_add`s) and nothing else — no locks, no allocation,
//! no syscalls. Reads (`snapshot`) are torn-tolerant: each cell is read
//! atomically, but the set of cells is not read at one instant. That is
//! the standard metrics trade and is fine for monitoring.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Index of the power-of-two bucket that `v` falls into, clamped to
/// `buckets`. Bucket `i` covers values in `[2^i, 2^(i+1))` (bucket 0
/// additionally absorbs 0), so its inclusive upper edge is
/// `2^(i+1) - 1`.
#[inline]
#[must_use]
pub fn pow2_bucket(v: u64, buckets: usize) -> usize {
    ((64 - v.max(1).leading_zeros() as usize) - 1).min(buckets - 1)
}

/// Inclusive upper edge of pow2 bucket `i`: `2^(i+1) - 1`.
#[inline]
#[must_use]
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Monotonically increasing event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Last-write-wins instantaneous value (queue depth, live points, …).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Raise the value to at least `v` (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Add `n` (for gauges tracked as running sums).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Subtract `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        // fetch_update loops only under contention; gauges are cold.
        let _ = self
            .0
            .fetch_update(Relaxed, Relaxed, |cur| Some(cur.saturating_sub(n)));
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

struct HistInner {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

/// Power-of-two histogram: bucket `i` counts values in `[2^i, 2^(i+1))`
/// (bucket 0 absorbs 0; the last bucket absorbs everything above the
/// range). Durations are recorded in nanoseconds.
///
/// One shared implementation replaces the private copies that used to
/// live in `panda_service::metrics` and `panda_store::stats`; quantiles
/// report the inclusive bucket upper edge `2^(i+1) - 1`.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("buckets", &self.0.buckets.len())
            .finish()
    }
}

impl Histogram {
    /// Histogram with `buckets` pow2 buckets (`buckets >= 1`).
    #[must_use]
    pub fn new(buckets: usize) -> Self {
        assert!(buckets >= 1, "histogram needs at least one bucket");
        let cells: Vec<AtomicU64> = (0..buckets).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistInner {
            buckets: cells.into_boxed_slice(),
            sum: AtomicU64::new(0),
        }))
    }

    /// Number of buckets.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.0.buckets.len()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = pow2_bucket(v, self.0.buckets.len());
        self.0.buckets[b].fetch_add(1, Relaxed);
        self.0.sum.fetch_add(v, Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Torn-tolerant point-in-time copy of the bucket counts and sum.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.0.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            sum: self.0.sum.load(Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state with quantile extraction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`counts[i]` = values in
    /// `[2^i, 2^(i+1))`).
    pub counts: Vec<u64>,
    /// Sum of all recorded values (ns for duration histograms).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean recorded value, 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Quantile as the inclusive upper edge of the bucket containing the
    /// `q`-th observation (`2^(i+1) - 1`), 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_edge(i);
            }
        }
        bucket_upper_edge(self.counts.len() - 1)
    }

    /// [`Self::quantile`] scaled from nanoseconds to seconds.
    #[must_use]
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile(q) as f64 * 1e-9
    }

    /// Merge another snapshot into this one (bucket-wise; shorter side
    /// is zero-extended).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(pow2_bucket(0, 8), 0);
        assert_eq!(pow2_bucket(1, 8), 0);
        assert_eq!(pow2_bucket(2, 8), 1);
        assert_eq!(pow2_bucket(3, 8), 1);
        assert_eq!(pow2_bucket(4, 8), 2);
        assert_eq!(pow2_bucket(u64::MAX, 8), 7);
        assert_eq!(bucket_upper_edge(0), 1);
        assert_eq!(bucket_upper_edge(9), 1023);
        assert_eq!(bucket_upper_edge(63), u64::MAX);
    }

    #[test]
    fn counter_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
        g.sub(100);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_quantiles_match_service_convention() {
        let h = Histogram::new(41);
        // 600ns lands in bucket 9 ([512, 1024)) whose upper edge is 1023.
        h.record(600);
        let s = h.snapshot();
        assert_eq!(s.total(), 1);
        assert!((s.quantile_seconds(0.5) - 1023e-9).abs() < 1e-12);
        assert!((s.quantile_seconds(0.99) - 1023e-9).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantile_spread() {
        let h = Histogram::new(16);
        for _ in 0..99 {
            h.record(2); // bucket 1, edge 3
        }
        h.record(1 << 10); // bucket 10, edge 2047
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 3);
        assert_eq!(s.quantile(0.99), 3);
        assert_eq!(s.quantile(1.0), 2047);
        assert_eq!(s.quantile(0.0), 3); // target clamps to 1st obs
        assert!((s.mean() - (99.0 * 2.0 + 1024.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram() {
        let s = Histogram::new(4).snapshot();
        assert_eq!(s.total(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshot_merge() {
        let mut a = HistogramSnapshot {
            counts: vec![1, 2],
            sum: 5,
        };
        let b = HistogramSnapshot {
            counts: vec![0, 1, 7],
            sum: 100,
        };
        a.merge(&b);
        assert_eq!(a.counts, vec![1, 3, 7]);
        assert_eq!(a.sum, 105);
    }
}
