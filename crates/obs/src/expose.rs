//! Exposition: render a [`Snapshot`] as Prometheus text or JSON.

use crate::metrics::bucket_upper_edge;
use crate::registry::{MetricValue, Snapshot};

/// Mangle a dotted metric name into a Prometheus-legal one:
/// `service.cache.hits` → `panda_service_cache_hits`.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("panda_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render `snap` in the Prometheus text exposition format 0.0.4.
///
/// Histograms render as cumulative `_bucket{le="..."}` series with
/// `le` in the histogram's raw recorded unit (nanoseconds for the
/// duration histograms in this workspace), plus `_sum` and `_count`.
#[must_use]
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in snap.iter() {
        let pname = prometheus_name(name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {v}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                let mut cum = 0u64;
                for (i, &c) in h.counts.iter().enumerate() {
                    cum += c;
                    out.push_str(&format!(
                        "{pname}_bucket{{le=\"{}\"}} {cum}\n",
                        bucket_upper_edge(i)
                    ));
                }
                out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {cum}\n"));
                out.push_str(&format!("{pname}_sum {}\n", h.sum));
                out.push_str(&format!("{pname}_count {cum}\n"));
            }
        }
    }
    out
}

/// Render `snap` as a JSON object keyed by the original dotted names.
///
/// Counters and gauges become `{"type": "...", "value": N}`; histograms
/// become `{"type": "histogram", "count": N, "sum": N, "mean": x,
/// "p50": N, "p99": N, "p999": N}` (values in the recorded unit).
#[must_use]
pub fn render_json(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for (name, value) in snap.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n  \"{name}\": "));
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{{\"type\": \"counter\", \"value\": {v}}}"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("{{\"type\": \"gauge\", \"value\": {v}}}"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"mean\": {:.3}, \"p50\": {}, \"p99\": {}, \"p999\": {}}}",
                    h.total(),
                    h.sum,
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.quantile(0.999),
                ));
            }
        }
    }
    out.push_str("\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn name_mangling() {
        assert_eq!(
            prometheus_name("service.cache.hits"),
            "panda_service_cache_hits"
        );
        assert_eq!(
            prometheus_name("fault.store.wal-append"),
            "panda_fault_store_wal_append"
        );
    }

    #[test]
    fn prometheus_shapes() {
        let reg = Registry::new();
        reg.counter("a.c").add(3);
        reg.gauge("a.g").set(9);
        let h = reg.histogram("a.h", 4);
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(2);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE panda_a_c counter\npanda_a_c 3\n"));
        assert!(text.contains("# TYPE panda_a_g gauge\npanda_a_g 9\n"));
        assert!(text.contains("panda_a_h_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("panda_a_h_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("panda_a_h_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("panda_a_h_sum 5\n"));
        assert!(text.contains("panda_a_h_count 3\n"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let reg = Registry::new();
        reg.counter("x").inc();
        reg.histogram("y", 4).record(2);
        let json = render_json(&reg.snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"x\": {\"type\": \"counter\", \"value\": 1}"));
        assert!(json.contains("\"type\": \"histogram\", \"count\": 1"));
        assert!(json.contains("\"p50\": 3"));
    }
}
