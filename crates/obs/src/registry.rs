//! Named metric registry and coherent [`Snapshot`]s.
//!
//! A [`Registry`] maps dotted metric names (`service.cache.hits`,
//! `store.wal.fsyncs`, …) to live metric handles. Registration takes a
//! short mutex; the handles themselves are lock-free, so the registry
//! is touched only at construction / wiring time, never on hot paths.

use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Shared, clonable registry of named metrics.
///
/// `counter`/`gauge`/`histogram` are get-or-register: calling twice with
/// the same name returns handles backed by the same cells, so distinct
/// components (e.g. every shard worker's comm meter) can publish into
/// one shared counter.
#[derive(Clone, Default)]
pub struct Registry(Arc<Mutex<Vec<(String, Metric)>>>);

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.0.lock().map(|v| v.len()).unwrap_or(0);
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

impl Registry {
    /// Fresh empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, mk: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.0.lock().unwrap();
        match map.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => map[i].1.clone(),
            Err(i) => {
                let m = mk();
                map.insert(i, (name.to_string(), m.clone()));
                m
            }
        }
    }

    /// Get or register the counter called `name`.
    ///
    /// If `name` is already registered as a different metric kind this
    /// returns a fresh detached handle (debug builds assert instead).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            _ => {
                debug_assert!(false, "metric {name:?} registered with a different kind");
                Counter::new()
            }
        }
    }

    /// Get or register the gauge called `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => {
                debug_assert!(false, "metric {name:?} registered with a different kind");
                Gauge::new()
            }
        }
    }

    /// Get or register the histogram called `name` with `buckets` pow2
    /// buckets (an existing histogram's bucket count wins).
    #[must_use]
    pub fn histogram(&self, name: &str, buckets: usize) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new(buckets))) {
            Metric::Histogram(h) => h,
            _ => {
                debug_assert!(false, "metric {name:?} registered with a different kind");
                Histogram::new(buckets)
            }
        }
    }

    /// Attach an existing counter handle under `name` (replaces any
    /// previous registration of that name).
    pub fn register_counter(&self, name: &str, c: &Counter) {
        self.replace(name, Metric::Counter(c.clone()));
    }

    /// Attach an existing gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, g: &Gauge) {
        self.replace(name, Metric::Gauge(g.clone()));
    }

    /// Attach an existing histogram handle under `name`.
    pub fn register_histogram(&self, name: &str, h: &Histogram) {
        self.replace(name, Metric::Histogram(h.clone()));
    }

    fn replace(&self, name: &str, m: Metric) {
        let mut map = self.0.lock().unwrap();
        match map.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => map[i].1 = m,
            Err(i) => map.insert(i, (name.to_string(), m)),
        }
    }

    /// Point-in-time copy of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.0.lock().unwrap();
        let entries = map
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { entries }
    }
}

/// One captured metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(u64),
    /// Histogram bucket counts + sum.
    Histogram(HistogramSnapshot),
}

/// Point-in-time view of a set of named metrics, sorted by name.
///
/// Snapshots from several registries (service, backend, store) merge
/// into one: counters from both sides sum, gauges last-write-win,
/// histograms merge bucket-wise.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, name: &str) -> Result<usize, usize> {
        self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name))
    }

    /// Add `v` to the counter called `name` (creating it at `v`).
    pub fn push_counter(&mut self, name: &str, v: u64) {
        match self.slot(name) {
            Ok(i) => {
                if let MetricValue::Counter(cur) = &mut self.entries[i].1 {
                    *cur += v;
                } else {
                    self.entries[i].1 = MetricValue::Counter(v);
                }
            }
            Err(i) => self
                .entries
                .insert(i, (name.to_string(), MetricValue::Counter(v))),
        }
    }

    /// Set the gauge called `name` to `v` (last write wins).
    pub fn push_gauge(&mut self, name: &str, v: u64) {
        match self.slot(name) {
            Ok(i) => self.entries[i].1 = MetricValue::Gauge(v),
            Err(i) => self
                .entries
                .insert(i, (name.to_string(), MetricValue::Gauge(v))),
        }
    }

    /// Merge `h` into the histogram called `name` (creating it).
    pub fn push_histogram(&mut self, name: &str, h: &HistogramSnapshot) {
        match self.slot(name) {
            Ok(i) => {
                if let MetricValue::Histogram(cur) = &mut self.entries[i].1 {
                    cur.merge(h);
                } else {
                    self.entries[i].1 = MetricValue::Histogram(h.clone());
                }
            }
            Err(i) => self
                .entries
                .insert(i, (name.to_string(), MetricValue::Histogram(h.clone()))),
        }
    }

    /// Merge every entry of `other` into this snapshot.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.entries {
            match v {
                MetricValue::Counter(c) => self.push_counter(name, *c),
                MetricValue::Gauge(g) => self.push_gauge(name, *g),
                MetricValue::Histogram(h) => self.push_histogram(name, h),
            }
        }
    }

    /// Value of the counter called `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => match &self.entries[i].1 {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            },
            Err(_) => None,
        }
    }

    /// Value of the gauge called `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => match &self.entries[i].1 {
                MetricValue::Gauge(v) => Some(*v),
                _ => None,
            },
            Err(_) => None,
        }
    }

    /// Histogram snapshot called `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => match &self.entries[i].1 {
                MetricValue::Histogram(h) => Some(h),
                _ => None,
            },
            Err(_) => None,
        }
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::atomic::Ordering::Relaxed;

    #[test]
    fn get_or_register_shares_cells() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x.hits"), Some(3));
    }

    #[test]
    fn snapshot_sorted_and_typed() {
        let reg = Registry::new();
        reg.counter("b.c").add(5);
        reg.gauge("a.g").set(7);
        reg.histogram("z.h", 8).record(3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.g", "b.c", "z.h"]);
        assert_eq!(snap.counter("b.c"), Some(5));
        assert_eq!(snap.gauge("a.g"), Some(7));
        assert_eq!(snap.histogram("z.h").unwrap().total(), 1);
        assert_eq!(snap.counter("a.g"), None); // wrong kind
        assert_eq!(snap.counter("nope"), None);
    }

    #[test]
    fn merge_sums_counters_overwrites_gauges() {
        let mut a = Snapshot::new();
        a.push_counter("c", 1);
        a.push_gauge("g", 10);
        let mut b = Snapshot::new();
        b.push_counter("c", 2);
        b.push_gauge("g", 20);
        b.push_histogram(
            "h",
            &HistogramSnapshot {
                counts: vec![1],
                sum: 1,
            },
        );
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.gauge("g"), Some(20));
        assert_eq!(a.histogram("h").unwrap().total(), 1);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(5));
        assert_eq!(a.histogram("h").unwrap().total(), 2);
    }

    #[test]
    fn concurrent_hammer_sums_coherently() {
        const THREADS: usize = 8;
        const PER: u64 = 10_000;
        let reg = Registry::new();
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let reg = reg.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("hammer.total");
                let h = reg.histogram("hammer.lat", 16);
                let own = reg.counter(&format!("hammer.t{t}"));
                for i in 0..PER {
                    c.inc();
                    own.inc();
                    h.record(i % 1000);
                }
                done.fetch_add(1, Relaxed);
            }));
        }
        // Snapshots taken mid-run must stay internally coherent.
        while done.load(Relaxed) < THREADS {
            let s = reg.snapshot();
            if let Some(v) = s.counter("hammer.total") {
                assert!(v <= THREADS as u64 * PER);
            }
        }
        for hnd in handles {
            hnd.join().unwrap();
        }
        let s = reg.snapshot();
        assert_eq!(s.counter("hammer.total"), Some(THREADS as u64 * PER));
        let per_thread: u64 = (0..THREADS)
            .map(|t| s.counter(&format!("hammer.t{t}")).unwrap())
            .sum();
        assert_eq!(per_thread, THREADS as u64 * PER);
        assert_eq!(
            s.histogram("hammer.lat").unwrap().total(),
            THREADS as u64 * PER
        );
    }
}
