//! `panda_obs` — unified telemetry for the PANDA workspace.
//!
//! One always-compiled, dependency-free observability plane shared by
//! every runtime crate (`panda_service`, `panda_store`, `panda_core`'s
//! sharded engine, `panda_comm`):
//!
//! * **Metrics** — lock-free [`Counter`] / [`Gauge`] / [`Histogram`]
//!   handles registered under dotted names in a [`Registry`]
//!   (`service.cache.hits`, `store.wal.fsyncs`, `comm.sent_bytes`,
//!   `shard.restarts`, …), snapshotted coherently into a [`Snapshot`].
//! * **Tracing** — sampled per-query pipeline spans ([`trace`]): a
//!   [`TraceId`] minted at `ServiceHandle::submit` rides the micro-batch
//!   into the backend, and each stage records its latency into a global
//!   lock-free ring; [`TraceReport`] turns the ring into a per-stage
//!   breakdown table. Disabled (the default) it costs one relaxed load.
//! * **Exposition** — [`render_prometheus`] (text format 0.0.4) and
//!   [`render_json`] over any [`Snapshot`].
//!
//! # Quickstart
//!
//! ```
//! use panda_obs::{Registry, render_prometheus, trace, TraceReport};
//!
//! let reg = Registry::new();
//! let hits = reg.counter("demo.cache.hits");
//! let lat = reg.histogram("demo.latency_ns", 41);
//! hits.inc();
//! lat.record(600);
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("demo.cache.hits"), Some(1));
//! assert!(render_prometheus(&snap).contains("panda_demo_cache_hits 1"));
//!
//! // Tracing: off by default; arm 1-in-1 sampling, record a span.
//! trace::set_sampling(1);
//! let id = trace::maybe_sample();
//! trace::record(id, trace::Stage::LeafKernel, std::time::Instant::now());
//! let report = TraceReport::gather();
//! assert!(report.stage(trace::Stage::LeafKernel).is_some());
//! trace::set_sampling(0);
//! trace::clear();
//! ```

#![warn(missing_docs)]

pub mod expose;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use expose::{prometheus_name, render_json, render_prometheus};
pub use metrics::{bucket_upper_edge, pow2_bucket, Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricValue, Registry, Snapshot};
pub use trace::{Stage, TraceEvent, TraceId, TraceReport};
