//! Per-query pipeline tracing: sampled stage spans in a lock-free ring.
//!
//! A [`TraceId`] is minted at `ServiceHandle::submit` (1-in-N sampling,
//! [`set_sampling`]) and carried with the query through the micro-batch
//! into the backend. Each pipeline stage that handles a sampled query
//! calls [`record`], which appends a `(trace, stage, start, duration)`
//! event to a fixed-size global ring buffer.
//!
//! Cost model mirrors `panda_core::faultpoint`: when sampling is off
//! (the default) [`maybe_sample`] is a single relaxed atomic load, and
//! [`record`] on an unsampled [`TraceId::NONE`] is a branch on a local
//! integer — no stores, no time syscalls. Sampled writes take one
//! `fetch_add` to claim a slot plus five relaxed stores guarded by a
//! per-slot seqlock, so tracing never blocks the pipeline and readers
//! ([`events`], [`TraceReport::gather`]) simply skip slots that are
//! mid-write.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Identifier for one sampled query's trip through the pipeline.
///
/// `TraceId::NONE` (the common case) makes every recording call a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The unsampled id: recording against it does nothing.
    pub const NONE: TraceId = TraceId(0);

    /// True when this query was selected for tracing.
    #[inline]
    #[must_use]
    pub fn is_sampled(self) -> bool {
        self.0 != 0
    }

    /// Raw id value (0 = unsampled).
    #[inline]
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a trace id from [`Self::raw`] (for carrying through
    /// layers that can only hold plain integers).
    #[inline]
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        TraceId(raw)
    }
}

/// Pipeline stages recorded by the tracer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum Stage {
    /// Service: waiting in the pending queue before a flush picked it up.
    Queue = 0,
    /// Service: micro-batch assembly (coalescing member coords).
    Flush = 1,
    /// Sharded engine: scatter of the batch to shard workers.
    Scatter = 2,
    /// Shard worker: whole per-shard query execution.
    ShardWorker = 3,
    /// Leaf kernel: the local batched kd-tree traversal.
    LeafKernel = 4,
    /// Sharded engine: gather + merge of per-shard results.
    Gather = 5,
    /// Service: scattering the batch response back into tickets.
    Resolve = 6,
    /// Store: WAL record append (write portion).
    WalAppend = 7,
    /// Store: WAL fsync.
    WalFsync = 8,
    /// Store: freezing the write log into a frozen segment.
    Freeze = 9,
    /// Store: background compaction tree build.
    CompactBuild = 10,
    /// Store: compaction atomic swap (under the write lock).
    CompactSwap = 11,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 12] = [
        Stage::Queue,
        Stage::Flush,
        Stage::Scatter,
        Stage::ShardWorker,
        Stage::LeafKernel,
        Stage::Gather,
        Stage::Resolve,
        Stage::WalAppend,
        Stage::WalFsync,
        Stage::Freeze,
        Stage::CompactBuild,
        Stage::CompactSwap,
    ];

    /// Stable lowercase name (used in trace reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Flush => "flush",
            Stage::Scatter => "scatter",
            Stage::ShardWorker => "shard_worker",
            Stage::LeafKernel => "leaf_kernel",
            Stage::Gather => "gather",
            Stage::Resolve => "resolve",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
            Stage::Freeze => "freeze",
            Stage::CompactBuild => "compact_build",
            Stage::CompactSwap => "compact_swap",
        }
    }

    fn from_u64(v: u64) -> Option<Stage> {
        Stage::ALL.get(v as usize).copied()
    }
}

/// Sampling period: 0 = tracing off, N = mint a trace id for 1-in-N
/// [`maybe_sample`] calls.
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);
/// Rolling tick deciding which calls win the 1-in-N lottery.
static SAMPLE_TICK: AtomicU64 = AtomicU64::new(0);
/// Next trace id to mint (0 is reserved for NONE).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Enable 1-in-`every` sampling (0 disables tracing entirely).
pub fn set_sampling(every: u64) {
    // Touch the epoch before arming so concurrent recorders never race
    // the OnceLock initialisation on the hot path.
    let _ = epoch();
    SAMPLE_EVERY.store(every, Ordering::Relaxed);
}

/// Current sampling period (0 = off).
#[must_use]
pub fn sampling() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Mint a [`TraceId`] if this call wins the 1-in-N sampling lottery.
///
/// When sampling is disabled this is a single relaxed load.
#[inline]
#[must_use]
pub fn maybe_sample() -> TraceId {
    let every = SAMPLE_EVERY.load(Ordering::Relaxed);
    if every == 0 {
        return TraceId::NONE;
    }
    sample_slow(every)
}

#[cold]
fn sample_slow(every: u64) -> TraceId {
    let tick = SAMPLE_TICK.fetch_add(1, Ordering::Relaxed);
    if tick.is_multiple_of(every) {
        TraceId(NEXT_ID.fetch_add(1, Ordering::Relaxed))
    } else {
        TraceId::NONE
    }
}

/// One recorded stage span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which sampled query this span belongs to.
    pub trace: TraceId,
    /// Pipeline stage.
    pub stage: Stage,
    /// Span start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

const RING_BITS: usize = 13;
/// Ring capacity (events); old events are overwritten.
pub const RING_CAPACITY: usize = 1 << RING_BITS;

/// One seqlock-guarded ring slot. `seq` is even when the slot holds a
/// consistent event (seq/2 = claim ticket + 1), odd while a writer is
/// mid-update; 0 means never written.
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    stage: AtomicU64,
    start: AtomicU64,
    dur: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    seq: AtomicU64::new(0),
    trace: AtomicU64::new(0),
    stage: AtomicU64::new(0),
    start: AtomicU64::new(0),
    dur: AtomicU64::new(0),
};
static SLOTS: [Slot; RING_CAPACITY] = [EMPTY_SLOT; RING_CAPACITY];
static CURSOR: AtomicU64 = AtomicU64::new(0);

/// Record a span for `stage` that started at `start` and ends now.
///
/// No-op when `id` is [`TraceId::NONE`].
#[inline]
pub fn record(id: TraceId, stage: Stage, start: Instant) {
    if !id.is_sampled() {
        return;
    }
    record_slow(id, stage, start, Instant::now());
}

/// Record a span with an explicit end time.
#[inline]
pub fn record_between(id: TraceId, stage: Stage, start: Instant, end: Instant) {
    if !id.is_sampled() {
        return;
    }
    record_slow(id, stage, start, end);
}

#[cold]
fn record_slow(id: TraceId, stage: Stage, start: Instant, end: Instant) {
    let ep = epoch();
    let start_ns = start.saturating_duration_since(ep).as_nanos() as u64;
    let dur_ns = end.saturating_duration_since(start).as_nanos() as u64;
    let ticket = CURSOR.fetch_add(1, Ordering::Relaxed);
    let slot = &SLOTS[(ticket as usize) & (RING_CAPACITY - 1)];
    // Per-slot seqlock: dirty (odd) while writing, clean (even) when
    // done; successive owners of a slot are a full ring wrap apart so
    // their seqs are strictly increasing. A writer that lost its slot
    // to a later owner (lagged a whole wrap behind) drops its event
    // rather than corrupt the newer one.
    let dirty = ticket.wrapping_mul(2).wrapping_add(1);
    let prev = slot.seq.fetch_max(dirty, Ordering::AcqRel);
    if prev > dirty {
        return;
    }
    slot.trace.store(id.raw(), Ordering::Relaxed);
    slot.stage.store(stage as u64, Ordering::Relaxed);
    slot.start.store(start_ns, Ordering::Relaxed);
    slot.dur.store(dur_ns, Ordering::Relaxed);
    let _ = slot
        .seq
        .compare_exchange(dirty, dirty + 1, Ordering::Release, Ordering::Relaxed);
}

/// Copy out every consistent event currently in the ring, oldest first
/// by start time. Slots being written concurrently are skipped.
#[must_use]
pub fn events() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for slot in SLOTS.iter() {
        let seq0 = slot.seq.load(Ordering::Acquire);
        if seq0 == 0 || seq0 & 1 == 1 {
            continue;
        }
        let trace = slot.trace.load(Ordering::Relaxed);
        let stage = slot.stage.load(Ordering::Relaxed);
        let start = slot.start.load(Ordering::Relaxed);
        let dur = slot.dur.load(Ordering::Relaxed);
        let seq1 = slot.seq.load(Ordering::Acquire);
        if seq1 != seq0 {
            continue; // torn read: a writer landed mid-copy
        }
        let Some(stage) = Stage::from_u64(stage) else {
            continue;
        };
        out.push(TraceEvent {
            trace: TraceId(trace),
            stage,
            start_ns: start,
            dur_ns: dur,
        });
    }
    out.sort_by_key(|e| (e.start_ns, e.trace.raw()));
    out
}

/// Discard all buffered events (sampling state is unchanged).
pub fn clear() {
    for slot in SLOTS.iter() {
        slot.seq.store(0, Ordering::Release);
    }
}

/// Per-stage latency summary derived from the ring buffer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// One row per stage that has at least one event, pipeline order.
    pub stages: Vec<StageBreakdown>,
    /// Total events the report was built from.
    pub events: usize,
    /// Distinct sampled trace ids seen.
    pub traces: usize,
}

/// Latency summary for one pipeline stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StageBreakdown {
    /// Which stage.
    pub stage: Stage,
    /// Number of recorded spans.
    pub count: u64,
    /// Mean span duration in nanoseconds.
    pub mean_ns: f64,
    /// Median span duration in nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile span duration in nanoseconds.
    pub p99_ns: u64,
    /// Largest span duration in nanoseconds.
    pub max_ns: u64,
}

impl TraceReport {
    /// Build a report from everything currently in the ring.
    #[must_use]
    pub fn gather() -> Self {
        Self::from_events(&events())
    }

    /// Build a report from an explicit event list.
    #[must_use]
    pub fn from_events(evs: &[TraceEvent]) -> Self {
        let mut traces: Vec<u64> = evs.iter().map(|e| e.trace.raw()).collect();
        traces.sort_unstable();
        traces.dedup();
        let mut stages = Vec::new();
        for stage in Stage::ALL {
            let mut durs: Vec<u64> = evs
                .iter()
                .filter(|e| e.stage == stage)
                .map(|e| e.dur_ns)
                .collect();
            if durs.is_empty() {
                continue;
            }
            durs.sort_unstable();
            let count = durs.len() as u64;
            let sum: u64 = durs.iter().sum();
            let q = |p: f64| -> u64 {
                let idx = ((p * count as f64).ceil() as usize).clamp(1, durs.len()) - 1;
                durs[idx]
            };
            stages.push(StageBreakdown {
                stage,
                count,
                mean_ns: sum as f64 / count as f64,
                p50_ns: q(0.5),
                p99_ns: q(0.99),
                max_ns: *durs.last().unwrap(),
            });
        }
        TraceReport {
            stages,
            events: evs.len(),
            traces: traces.len(),
        }
    }

    /// Breakdown row for `stage`, if any spans were recorded.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> Option<&StageBreakdown> {
        self.stages.iter().find(|s| s.stage == stage)
    }
}

impl std::fmt::Display for TraceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "trace report: {} events, {} sampled queries",
            self.events, self.traces
        )?;
        writeln!(
            f,
            "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "stage", "count", "mean_us", "p50_us", "p99_us", "max_us"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "{:<14} {:>8} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                s.stage.name(),
                s.count,
                s.mean_ns / 1e3,
                s.p50_ns as f64 / 1e3,
                s.p99_ns as f64 / 1e3,
                s.max_ns as f64 / 1e3,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // Tracing state is process-global; tests in this module share it,
    // so they run under a lock to avoid cross-talk.
    fn serial<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        let r = f();
        set_sampling(0);
        clear();
        r
    }

    #[test]
    fn disarmed_is_none() {
        serial(|| {
            set_sampling(0);
            assert_eq!(maybe_sample(), TraceId::NONE);
            // Recording against NONE must not touch the ring.
            clear();
            record(TraceId::NONE, Stage::Queue, Instant::now());
            assert!(events().is_empty());
        });
    }

    #[test]
    fn one_in_n_sampling() {
        serial(|| {
            set_sampling(4);
            let sampled = (0..400).filter(|_| maybe_sample().is_sampled()).count();
            assert_eq!(sampled, 100);
        });
    }

    #[test]
    fn record_and_report() {
        serial(|| {
            set_sampling(1);
            clear();
            let a = maybe_sample();
            let b = maybe_sample();
            let t0 = Instant::now();
            record_between(a, Stage::Queue, t0, t0 + Duration::from_micros(10));
            record_between(a, Stage::LeafKernel, t0, t0 + Duration::from_micros(50));
            record_between(b, Stage::Queue, t0, t0 + Duration::from_micros(30));
            let evs = events();
            assert_eq!(evs.len(), 3);
            let report = TraceReport::from_events(&evs);
            assert_eq!(report.traces, 2);
            let q = report.stage(Stage::Queue).unwrap();
            assert_eq!(q.count, 2);
            assert_eq!(q.max_ns, 30_000);
            assert_eq!(q.p50_ns, 10_000);
            let lk = report.stage(Stage::LeafKernel).unwrap();
            assert_eq!(lk.count, 1);
            assert!(report.stage(Stage::WalFsync).is_none());
            let table = report.to_string();
            assert!(table.contains("leaf_kernel"));
            assert!(table.contains("queue"));
        });
    }

    #[test]
    fn ring_wraps_without_corruption() {
        serial(|| {
            set_sampling(1);
            clear();
            let t0 = Instant::now();
            for _ in 0..(RING_CAPACITY * 2 + 17) {
                let id = maybe_sample();
                record_between(id, Stage::Flush, t0, t0 + Duration::from_nanos(5));
            }
            let evs = events();
            assert_eq!(evs.len(), RING_CAPACITY);
            assert!(evs.iter().all(|e| e.stage == Stage::Flush && e.dur_ns == 5));
        });
    }

    #[test]
    fn concurrent_writers_readers() {
        serial(|| {
            set_sampling(1);
            clear();
            let writers: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(|| {
                        let t0 = Instant::now();
                        for _ in 0..20_000 {
                            let id = maybe_sample();
                            record_between(
                                id,
                                Stage::ShardWorker,
                                t0,
                                t0 + Duration::from_nanos(7),
                            );
                        }
                    })
                })
                .collect();
            for _ in 0..50 {
                // Every consistent slot must decode to the stage/duration
                // the writers produce — torn slots are skipped, never
                // misread.
                for e in events() {
                    assert_eq!(e.stage, Stage::ShardWorker);
                    assert_eq!(e.dur_ns, 7);
                }
            }
            for w in writers {
                w.join().unwrap();
            }
            assert_eq!(events().len(), RING_CAPACITY);
        });
    }
}
