//! Distributed KNN querying (§III-B of the paper).
//!
//! Five stages per query, executed in globally synchronized batched steps:
//!
//! 1. **Find owner** — every query is routed (alltoallv) to the rank whose
//!    cell contains it.
//! 2. **Local KNN** — the owner traverses its local tree, producing the
//!    bound `r'` (distance to the k-th local neighbor).
//! 3. **Identify remote ranks** — the global tree enumerates ranks whose
//!    region intersects the ball `(q, r')`; the query and `r'` are sent to
//!    them.
//! 4. **Remote KNN** — those ranks answer with their local neighbors
//!    strictly inside `r'` (the carried radius makes this heavily pruned —
//!    the paper measures it at ~3% of query time for the 3-D datasets).
//! 5. **Merge** — the owner merges responses into the final top-k, then
//!    returns results to the rank that submitted each query.
//!
//! Batching (steps of `batch_size` queries per rank) load-balances the
//! exchange; software pipelining is modeled on the recorded per-step
//! compute/communication durations (see [`crate::timers::QueryBreakdown`]).

use panda_comm::{Comm, ReduceOp};

use crate::build_distributed::DistKdTree;
use crate::config::QueryConfig;
use crate::counters::QueryCounters;
use crate::error::{PandaError, Result};
use crate::heap::{KnnHeap, Neighbor};
use crate::local_tree::QueryWorkspace;
use crate::point::PointSet;
use crate::timers::{QueryBreakdown, StepTiming};

/// Per-rank remote-traffic statistics (§V-A3 discussion: remote fan-out,
/// fraction of queries leaving their owner, pruning effectiveness).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RemoteStats {
    /// Queries this rank owned (after routing).
    pub owned_queries: u64,
    /// Owned queries that had to consult at least one remote rank.
    pub queries_with_remote: u64,
    /// Total (query, remote rank) request pairs sent.
    pub remote_pairs_sent: u64,
    /// Remote requests served for other ranks.
    pub remote_requests_served: u64,
    /// Neighbor candidates returned by remote ranks to this rank.
    pub remote_neighbors_received: u64,
}

impl RemoteStats {
    /// Mean number of remote ranks consulted per owned query.
    pub fn avg_remote_fanout(&self) -> f64 {
        if self.owned_queries == 0 {
            0.0
        } else {
            self.remote_pairs_sent as f64 / self.owned_queries as f64
        }
    }

    /// Fraction of owned queries that consulted any remote rank.
    pub fn remote_fraction(&self) -> f64 {
        if self.owned_queries == 0 {
            0.0
        } else {
            self.queries_with_remote as f64 / self.owned_queries as f64
        }
    }

    /// Element-wise accumulate.
    pub fn add(&mut self, o: &RemoteStats) {
        self.owned_queries += o.owned_queries;
        self.queries_with_remote += o.queries_with_remote;
        self.remote_pairs_sent += o.remote_pairs_sent;
        self.remote_requests_served += o.remote_requests_served;
        self.remote_neighbors_received += o.remote_neighbors_received;
    }
}

/// What one rank gets back from a distributed query call.
#[derive(Clone, Debug)]
pub struct DistQueryResult {
    /// `neighbors[i]` answers this rank's `queries[i]` (ascending
    /// distance; fewer than `k` only if the whole dataset is smaller).
    pub neighbors: Vec<Vec<Neighbor>>,
    /// Per-phase timing (virtual seconds, this rank).
    pub breakdown: QueryBreakdown,
    /// Traversal work counters (this rank).
    pub counters: QueryCounters,
    /// Remote-traffic statistics (this rank).
    pub remote: RemoteStats,
}

/// Charge query-side work counters to the rank's virtual clock.
fn charge(comm: &mut Comm, c: &QueryCounters, dims: usize) {
    let cost = *comm.cost();
    comm.work_parallel(c.cpu_seconds(&cost.ops, dims), c.mem_bytes(dims));
}

/// Clock deltas split into (compute, comm+wait).
fn clock_delta(comm: &Comm, before: panda_comm::ClockSummary) -> (f64, f64) {
    let now = comm.clock();
    (
        now.compute - before.compute,
        (now.comm - before.comm) + (now.wait - before.wait),
    )
}

const QID_SHIFT: u32 = 32;

#[inline]
fn qid(origin: usize, idx: usize) -> u64 {
    ((origin as u64) << QID_SHIFT) | idx as u64
}

#[inline]
fn qid_origin(q: u64) -> usize {
    (q >> QID_SHIFT) as usize
}

#[inline]
fn qid_idx(q: u64) -> usize {
    (q & ((1u64 << QID_SHIFT) - 1)) as usize
}

/// Owned queries after routing: flat coords + qids.
struct Owned {
    coords: Vec<f32>,
    qids: Vec<u64>,
}

impl Owned {
    fn len(&self) -> usize {
        self.qids.len()
    }

    fn point(&self, i: usize, dims: usize) -> &[f32] {
        &self.coords[i * dims..(i + 1) * dims]
    }
}

/// Distributed KNN (SPMD). Every rank passes its own `queries`; results
/// come back in the same order. `tree` must be the product of
/// [`crate::build_distributed::build_distributed`] on the same cluster.
#[deprecated(
    since = "0.2.0",
    note = "construct an `engine::DistIndex` (which owns the tree + comm handles) and drive it \
            through `NnBackend::query` with a `QueryRequest`; the CSR `QueryResponse` replaces \
            `DistQueryResult`"
)]
pub fn query_distributed(
    comm: &mut Comm,
    tree: &DistKdTree,
    queries: &PointSet,
    cfg: &QueryConfig,
) -> Result<DistQueryResult> {
    query_distributed_impl(comm, tree, queries, cfg)
}

/// The SPMD engine behind [`crate::engine::DistIndex`] and the deprecated
/// [`query_distributed`] shim.
pub(crate) fn query_distributed_impl(
    comm: &mut Comm,
    tree: &DistKdTree,
    queries: &PointSet,
    cfg: &QueryConfig,
) -> Result<DistQueryResult> {
    cfg.validate()?;
    queries.validate()?;
    let dims = tree.global.dims();
    if !queries.is_empty() && queries.dims() != dims {
        return Err(PandaError::DimsMismatch {
            expected: dims,
            got: queries.dims(),
        });
    }
    let p = comm.size();
    let me = comm.rank();
    let k = cfg.k;
    let use_bbox = cfg.bbox_routing;

    let mut breakdown = QueryBreakdown::default();
    let mut counters = QueryCounters::default();
    let mut remote = RemoteStats::default();
    let mut ws = QueryWorkspace::new();

    // ---- Stage 1: find owner & route ----------------------------------
    let before = comm.clock();
    let mut route_counters = QueryCounters::default();
    let mut coord_sends: Vec<Vec<f32>> = (0..p).map(|_| Vec::new()).collect();
    let mut qid_sends: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
    for i in 0..queries.len() {
        let q = queries.point(i);
        let owner = tree.global.owner(q, &mut route_counters);
        coord_sends[owner].extend_from_slice(q);
        qid_sends[owner].push(qid(me, i));
    }
    charge(comm, &route_counters, dims);
    counters.add(&route_counters);
    let coords_in = comm.world().alltoallv(coord_sends);
    let qids_in = comm.world().alltoallv(qid_sends);
    let owned = Owned {
        coords: coords_in.into_iter().flatten().collect(),
        qids: qids_in.into_iter().flatten().collect(),
    };
    remote.owned_queries = owned.len() as u64;
    let (d_comp, d_comm) = clock_delta(comm, before);
    breakdown.find_owner = d_comp;
    breakdown.comm_total += d_comm;

    // ---- Batched pipeline ----------------------------------------------
    let steps = {
        let most = comm
            .world()
            .allreduce_u64(owned.len() as u64, ReduceOp::Max);
        (most as usize).div_ceil(cfg.batch_size)
    };

    // finalized results per owned query: (qid, neighbors)
    let mut finalized: Vec<(u64, Vec<Neighbor>)> = Vec::with_capacity(owned.len());
    let mut rank_scratch: Vec<usize> = Vec::new();

    for step in 0..steps {
        let lo = (step * cfg.batch_size).min(owned.len());
        let hi = ((step + 1) * cfg.batch_size).min(owned.len());
        let mut step_compute = 0.0f64;
        let mut step_comm = 0.0f64;

        // (2) local KNN for the batch
        let before = comm.clock();
        let mut local_counters = QueryCounters::default();
        let mut heaps: Vec<KnnHeap> = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            let q = owned.point(i, dims);
            let mut heap = KnnHeap::with_radius_sq(
                k,
                if cfg.initial_radius.is_finite() {
                    cfg.initial_radius * cfg.initial_radius
                } else {
                    f32::INFINITY
                },
            );
            tree.local
                .query_into(q, &mut heap, cfg.bound_mode, &mut ws, &mut local_counters);
            heaps.push(heap);
        }
        charge(comm, &local_counters, dims);
        counters.add(&local_counters);
        let (d_comp, d_comm) = clock_delta(comm, before);
        breakdown.local_knn += d_comp;
        breakdown.comm_total += d_comm;
        step_compute += d_comp;
        step_comm += d_comm;

        // (3) identify remote ranks; assemble request streams
        // request stream to rank r: coords (dims+1 floats per query, the
        // extra float is r'²) + qids
        let before = comm.clock();
        let mut ident_counters = QueryCounters::default();
        let mut req_coord_sends: Vec<Vec<f32>> = (0..p).map(|_| Vec::new()).collect();
        let mut req_qid_sends: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
        for (bi, i) in (lo..hi).enumerate() {
            let q = owned.point(i, dims);
            let r_sq = heaps[bi].bound_sq();
            rank_scratch.clear();
            tree.global
                .ranks_in_ball(q, r_sq, use_bbox, &mut rank_scratch, &mut ident_counters);
            let mut any = false;
            for &r in &rank_scratch {
                if r == me {
                    continue;
                }
                any = true;
                remote.remote_pairs_sent += 1;
                req_coord_sends[r].extend_from_slice(q);
                req_coord_sends[r].push(r_sq);
                req_qid_sends[r].push(owned.qids[i]);
            }
            if any {
                remote.queries_with_remote += 1;
            }
        }
        charge(comm, &ident_counters, dims);
        counters.add(&ident_counters);
        let (d_comp, d_comm) = clock_delta(comm, before);
        breakdown.identify_remote += d_comp;
        breakdown.comm_total += d_comm;
        step_compute += d_comp;
        step_comm += d_comm;

        // exchange requests
        let before = comm.clock();
        let req_coords_in = comm.world().alltoallv(req_coord_sends);
        let req_qids_in = comm.world().alltoallv(req_qid_sends);
        let (d_comp, d_comm) = clock_delta(comm, before);
        step_compute += d_comp;
        step_comm += d_comm;
        breakdown.comm_total += d_comm;

        // (4) serve received requests with pruned local KNN
        let before = comm.clock();
        let mut remote_counters = QueryCounters::default();
        // response stream back to owner rank: (qid, point id) u64 pairs +
        // f32 distances, one triple per neighbor found
        let mut resp_meta_sends: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
        let mut resp_dist_sends: Vec<Vec<f32>> = (0..p).map(|_| Vec::new()).collect();
        let stride = dims + 1;
        for src in 0..p {
            let coords = &req_coords_in[src];
            let qids = &req_qids_in[src];
            debug_assert_eq!(coords.len(), qids.len() * stride);
            remote.remote_requests_served += qids.len() as u64;
            for (j, &rq) in qids.iter().enumerate() {
                let q = &coords[j * stride..j * stride + dims];
                let r_sq = coords[j * stride + dims];
                let mut heap = KnnHeap::with_radius_sq(k, r_sq);
                tree.local
                    .query_into(q, &mut heap, cfg.bound_mode, &mut ws, &mut remote_counters);
                for n in heap.into_sorted() {
                    resp_meta_sends[src].push(rq);
                    resp_meta_sends[src].push(n.id);
                    resp_dist_sends[src].push(n.dist_sq);
                }
            }
        }
        charge(comm, &remote_counters, dims);
        counters.add(&remote_counters);
        let (d_comp, d_comm) = clock_delta(comm, before);
        breakdown.remote_knn += d_comp;
        breakdown.comm_total += d_comm;
        step_compute += d_comp;
        step_comm += d_comm;

        // exchange responses
        let before = comm.clock();
        let resp_meta_in = comm.world().alltoallv(resp_meta_sends);
        let resp_dist_in = comm.world().alltoallv(resp_dist_sends);
        let (d_comp, d_comm) = clock_delta(comm, before);
        step_compute += d_comp;
        step_comm += d_comm;
        breakdown.comm_total += d_comm;

        // (5) merge responses into the batch heaps. Each source's
        // response stream references qids in this batch's order (requests
        // were sent in batch order and served FIFO), so a forward-moving
        // cursor per source finds each qid in amortized O(1).
        let before = comm.clock();
        let mut merge_counters = QueryCounters::default();
        for (meta, dists) in resp_meta_in.iter().zip(&resp_dist_in) {
            debug_assert_eq!(meta.len(), dists.len() * 2);
            let mut cursor = lo;
            for (pair, &d) in meta.chunks_exact(2).zip(dists) {
                let (rq, id) = (pair[0], pair[1]);
                let bi = qid_owned_index(&owned, lo, hi, &mut cursor, rq);
                merge_counters.merge_candidates += 1;
                remote.remote_neighbors_received += 1;
                heaps[bi - lo].offer(d, id);
            }
        }
        for (bi, heap) in heaps.into_iter().enumerate() {
            finalized.push((owned.qids[lo + bi], heap.into_sorted()));
        }
        charge(comm, &merge_counters, dims);
        counters.add(&merge_counters);
        let (d_comp, d_comm) = clock_delta(comm, before);
        breakdown.merge += d_comp;
        breakdown.comm_total += d_comm;
        step_compute += d_comp;
        step_comm += d_comm;

        breakdown.steps.push(StepTiming {
            compute: step_compute,
            comm: step_comm,
        });
    }

    // ---- return results to origins -------------------------------------
    let before = comm.clock();
    let mut ret_meta_sends: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
    let mut ret_dist_sends: Vec<Vec<f32>> = (0..p).map(|_| Vec::new()).collect();
    for (rq, neighbors) in &finalized {
        let origin = qid_origin(*rq);
        // header: qid, count — then count (id) u64s and count dists
        ret_meta_sends[origin].push(*rq);
        ret_meta_sends[origin].push(neighbors.len() as u64);
        for n in neighbors {
            ret_meta_sends[origin].push(n.id);
            ret_dist_sends[origin].push(n.dist_sq);
        }
    }
    let ret_meta_in = comm.world().alltoallv(ret_meta_sends);
    let ret_dist_in = comm.world().alltoallv(ret_dist_sends);
    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
    for (meta, dists) in ret_meta_in.iter().zip(&ret_dist_in) {
        let mut mi = 0usize;
        let mut di = 0usize;
        while mi < meta.len() {
            let rq = meta[mi];
            let count = meta[mi + 1] as usize;
            mi += 2;
            debug_assert_eq!(qid_origin(rq), me);
            let slot = &mut results[qid_idx(rq)];
            debug_assert!(slot.is_empty(), "duplicate result for qid {rq:#x}");
            slot.reserve(count);
            for _ in 0..count {
                slot.push(Neighbor {
                    dist_sq: dists[di],
                    id: meta[mi],
                });
                mi += 1;
                di += 1;
            }
        }
        debug_assert_eq!(di, dists.len());
    }
    let (d_comp, d_comm) = clock_delta(comm, before);
    breakdown.merge += d_comp;
    breakdown.comm_total += d_comm;

    Ok(DistQueryResult {
        neighbors: results,
        breakdown,
        counters,
        remote,
    })
}

/// Locate the batch-local index of `rq` within `owned[lo..hi]`, scanning
/// forward from `cursor` (amortized O(1) for in-order response streams)
/// and wrapping once for robustness against any reordering.
fn qid_owned_index(owned: &Owned, lo: usize, hi: usize, cursor: &mut usize, rq: u64) -> usize {
    for i in (*cursor..hi).chain(lo..*cursor) {
        if owned.qids[i] == rq {
            *cursor = i;
            return i;
        }
    }
    panic!("response for unknown qid {rq:#x} in batch {lo}..{hi}");
}

#[cfg(test)]
mod tests {
    use super::query_distributed_impl as query_distributed;
    use super::*;
    use crate::build_distributed::build_distributed;
    use crate::config::{BoundMode, DistConfig};
    use crate::heap::KnnHeap;
    use crate::rng::SplitRng;
    use panda_comm::{run_cluster, ClusterConfig};

    fn random_ps(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut rng = SplitRng::new(seed);
        PointSet::from_coords(
            dims,
            (0..n * dims)
                .map(|_| (rng.next_f64() * 10.0) as f32)
                .collect(),
        )
        .unwrap()
    }

    fn scatter(ps: &PointSet, rank: usize, p: usize) -> PointSet {
        let mut mine = PointSet::new(ps.dims()).unwrap();
        for i in (rank..ps.len()).step_by(p) {
            mine.push(ps.point(i), ps.id(i));
        }
        mine
    }

    fn brute(ps: &PointSet, q: &[f32], k: usize) -> Vec<f32> {
        let mut h = KnnHeap::new(k);
        for i in 0..ps.len() {
            h.offer(ps.dist_sq_to(q, i), ps.id(i));
        }
        h.into_sorted().iter().map(|n| n.dist_sq).collect()
    }

    /// End-to-end exactness across rank counts, dims, k, and batch sizes.
    fn check_exact(p: usize, n: usize, dims: usize, k: usize, batch: usize, seed: u64) {
        let all = random_ps(n, dims, seed);
        let queries = random_ps(60, dims, seed + 1);
        let out = run_cluster(&ClusterConfig::new(p), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let cfg = QueryConfig {
                k,
                batch_size: batch,
                ..QueryConfig::default()
            };
            let res = query_distributed(comm, &tree, &myq, &cfg).unwrap();
            // pair each local query with its result distances
            (0..myq.len())
                .map(|i| {
                    let dists: Vec<f32> = res.neighbors[i].iter().map(|n| n.dist_sq).collect();
                    (myq.point(i).to_vec(), dists)
                })
                .collect::<Vec<_>>()
        });
        for o in &out {
            for (q, dists) in &o.result {
                let expect = brute(&all, q, k);
                assert_eq!(
                    dists, &expect,
                    "p={p} dims={dims} k={k} batch={batch} q={q:?}"
                );
            }
        }
    }

    #[test]
    fn exact_small_clusters() {
        check_exact(2, 1200, 3, 5, 4096, 100);
        check_exact(4, 1200, 3, 5, 4096, 101);
    }

    #[test]
    fn exact_non_power_of_two_ranks() {
        check_exact(3, 1000, 3, 4, 4096, 102);
        check_exact(5, 1000, 2, 3, 4096, 103);
    }

    #[test]
    fn exact_high_dims() {
        check_exact(4, 800, 10, 5, 4096, 104);
    }

    #[test]
    fn exact_tiny_batches_multiple_steps() {
        // batch of 4 forces many pipeline steps
        check_exact(4, 800, 3, 5, 4, 105);
    }

    #[test]
    fn exact_k_of_one_and_large_k() {
        check_exact(4, 600, 3, 1, 4096, 106);
        check_exact(4, 600, 3, 50, 4096, 107);
    }

    #[test]
    fn k_exceeding_dataset_returns_all() {
        let all = random_ps(40, 3, 9);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = if comm.rank() == 0 {
                PointSet::from_coords(3, vec![5.0, 5.0, 5.0]).unwrap()
            } else {
                PointSet::new(3).unwrap()
            };
            let cfg = QueryConfig {
                k: 100,
                ..QueryConfig::default()
            };
            let res = query_distributed(comm, &tree, &myq, &cfg).unwrap();
            res.neighbors.first().map(|n| n.len())
        });
        assert_eq!(out[0].result, Some(40));
    }

    #[test]
    fn empty_query_set_on_some_ranks() {
        let all = random_ps(500, 3, 10);
        let queries = random_ps(10, 3, 11);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = if comm.rank() == 2 {
                queries.clone()
            } else {
                PointSet::new(3).unwrap()
            };
            let cfg = QueryConfig {
                k: 3,
                ..QueryConfig::default()
            };
            let res = query_distributed(comm, &tree, &myq, &cfg).unwrap();
            res.neighbors.len()
        });
        assert_eq!(out[2].result, 10);
        assert_eq!(out[0].result, 0);
    }

    #[test]
    fn bbox_routing_off_still_exact() {
        let all = random_ps(1000, 3, 12);
        let queries = random_ps(30, 3, 13);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let on = query_distributed(
                comm,
                &tree,
                &myq,
                &QueryConfig {
                    k: 5,
                    bbox_routing: true,
                    ..QueryConfig::default()
                },
            )
            .unwrap();
            let off = query_distributed(
                comm,
                &tree,
                &myq,
                &QueryConfig {
                    k: 5,
                    bbox_routing: false,
                    ..QueryConfig::default()
                },
            )
            .unwrap();
            let da: Vec<Vec<f32>> = on
                .neighbors
                .iter()
                .map(|v| v.iter().map(|n| n.dist_sq).collect())
                .collect();
            let db: Vec<Vec<f32>> = off
                .neighbors
                .iter()
                .map(|v| v.iter().map(|n| n.dist_sq).collect())
                .collect();
            assert_eq!(da, db);
            // bbox routing must not *increase* remote traffic
            (on.remote.remote_pairs_sent, off.remote.remote_pairs_sent)
        });
        let on: u64 = out.iter().map(|o| o.result.0).sum();
        let off: u64 = out.iter().map(|o| o.result.1).sum();
        assert!(on <= off, "bbox on={on} off={off}");
    }

    #[test]
    fn breakdown_and_stats_are_recorded() {
        let all = random_ps(2000, 3, 14);
        let queries = random_ps(200, 3, 15);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let res = query_distributed(comm, &tree, &myq, &QueryConfig::with_k(5)).unwrap();
            (res.breakdown.clone(), res.remote, res.counters)
        });
        let mut owned = 0u64;
        for o in &out {
            let b = &o.result.0;
            assert!(b.local_knn > 0.0);
            assert!(b.total_synchronous() > 0.0);
            assert!(b.total_pipelined() <= b.total_synchronous() + 1e-12);
            assert!(!b.steps.is_empty());
            owned += o.result.1.owned_queries;
            assert!(o.result.2.points_scanned > 0);
        }
        assert_eq!(owned, 200, "all queries owned exactly once");
    }

    #[test]
    fn paper_scalar_bound_mode_runs() {
        // PaperScalar is approximate by design; just verify it produces
        // plausible results (≥ exact distances, same count).
        let all = random_ps(1500, 3, 16);
        let queries = random_ps(40, 3, 17);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let cfg = QueryConfig {
                k: 5,
                bound_mode: BoundMode::PaperScalar,
                ..QueryConfig::default()
            };
            let res = query_distributed(comm, &tree, &myq, &cfg).unwrap();
            (0..myq.len())
                .map(|i| (myq.point(i).to_vec(), res.neighbors[i].len()))
                .collect::<Vec<_>>()
        });
        for o in &out {
            for (_q, len) in &o.result {
                assert_eq!(*len, 5);
            }
        }
    }

    #[test]
    fn duplicate_heavy_distributed_data_exact() {
        // co-located records spread across ranks (Daya Bay §V-A3 behavior)
        let mut all = PointSet::new(3).unwrap();
        let mut rng = SplitRng::new(18);
        for i in 0..1200u64 {
            if i % 3 == 0 {
                all.push(&[5.0, 5.0, 5.0], i);
            } else {
                all.push(
                    &[
                        (rng.next_f64() * 10.0) as f32,
                        (rng.next_f64() * 10.0) as f32,
                        (rng.next_f64() * 10.0) as f32,
                    ],
                    i,
                );
            }
        }
        let queries = random_ps(20, 3, 19);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let res = query_distributed(comm, &tree, &myq, &QueryConfig::with_k(7)).unwrap();
            (0..myq.len())
                .map(|i| {
                    let d: Vec<f32> = res.neighbors[i].iter().map(|n| n.dist_sq).collect();
                    (myq.point(i).to_vec(), d)
                })
                .collect::<Vec<_>>()
        });
        for o in &out {
            for (q, dists) in &o.result {
                assert_eq!(dists, &brute(&all, q, 7));
            }
        }
    }

    #[test]
    fn validates_config_and_dims() {
        let all = random_ps(200, 3, 20);
        let out = run_cluster(&ClusterConfig::new(2), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let bad_q = random_ps(4, 2, 21);
            let e1 = query_distributed(comm, &tree, &bad_q, &QueryConfig::with_k(3));
            let good_q = random_ps(4, 3, 22);
            let e2 = query_distributed(comm, &tree, &good_q, &QueryConfig::with_k(0));
            // everyone still needs to run a real query so the SPMD
            // collectives stay aligned? No — both error paths return
            // before any collective, symmetrically on all ranks.
            (
                matches!(e1, Err(PandaError::DimsMismatch { .. })),
                matches!(e2, Err(PandaError::ZeroK)),
            )
        });
        for o in &out {
            assert!(o.result.0 && o.result.1);
        }
    }
}
