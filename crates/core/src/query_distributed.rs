//! Distributed KNN querying (§III-B of the paper).
//!
//! Five stages per query, executed in globally synchronized batched steps:
//!
//! 1. **Find owner** — every query is routed (alltoallv) to the rank whose
//!    cell contains it.
//! 2. **Local KNN** — the owner traverses its local tree, producing the
//!    bound `r'` (distance to the k-th local neighbor).
//! 3. **Identify remote ranks** — the global tree enumerates ranks whose
//!    region intersects the ball `(q, r')`; the query and `r'` are sent to
//!    them.
//! 4. **Remote KNN** — those ranks answer with their local neighbors
//!    strictly inside `r'` (the carried radius makes this heavily pruned —
//!    the paper measures it at ~3% of query time for the 3-D datasets).
//! 5. **Merge** — the owner merges responses into the final top-k, then
//!    returns results to the rank that submitted each query.
//!
//! Batching (steps of `batch_size` queries per rank) load-balances the
//! exchange; software pipelining is modeled on the recorded per-step
//! compute/communication durations (see [`crate::timers::QueryBreakdown`]).
//!
//! The engine is **CSR-native and locality-aware** end to end:
//!
//! * Owned queries are optionally re-sorted along a Morton curve after
//!   routing ([`crate::config::QueryConfig::order`]), so each pipeline
//!   step's local KNN and remote request streams touch spatially coherent
//!   leaves; results are always scattered back to submission order.
//! * Per-step heaps and the per-destination send buffers are persistent
//!   workspaces: heaps are recycled with [`KnnHeap::reset`] +
//!   [`KnnHeap::append_sorted_into`], and each exchange's received
//!   buffers become the next step's send buffers, so the steady state
//!   allocates nothing per query.
//! * Every exchange is flat: requests carry `dims + 1` floats per query
//!   (coordinates + `r'²`) with the per-destination request order
//!   remembered locally instead of echoing qids; responses stream
//!   per-request counts plus flat id/distance arrays; the origin-return
//!   leg streams one packed `(submission index, count)` word per query
//!   plus flat id/distance arrays — no header-per-query framing anywhere.
//! * Results are assembled directly into a flat CSR
//!   [`crate::engine::NeighborTable`] (counts first, then rows written in
//!   place) — no intermediate `Vec<Vec<Neighbor>>` on any path.

use panda_comm::{Comm, ReduceOp};

use crate::build_distributed::DistKdTree;
use crate::config::{QueryConfig, QueryOrder};
use crate::counters::QueryCounters;
use crate::engine::NeighborTable;
use crate::error::{PandaError, Result};
use crate::faultpoint::{self, points};
use crate::heap::{KnnHeap, Neighbor};
use crate::local_tree::QueryWorkspace;
use crate::morton::morton_schedule_coords;
use crate::point::PointSet;
use crate::timers::{QueryBreakdown, StepTiming};

/// Per-rank remote-traffic statistics (§V-A3 discussion: remote fan-out,
/// fraction of queries leaving their owner, pruning effectiveness).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RemoteStats {
    /// Queries this rank owned (after routing).
    pub owned_queries: u64,
    /// Owned queries that had to consult at least one remote rank.
    pub queries_with_remote: u64,
    /// Total (query, remote rank) request pairs sent.
    pub remote_pairs_sent: u64,
    /// Remote requests served for other ranks.
    pub remote_requests_served: u64,
    /// Neighbor candidates returned by remote ranks to this rank.
    pub remote_neighbors_received: u64,
}

impl RemoteStats {
    /// Mean number of remote ranks consulted per owned query.
    pub fn avg_remote_fanout(&self) -> f64 {
        if self.owned_queries == 0 {
            0.0
        } else {
            self.remote_pairs_sent as f64 / self.owned_queries as f64
        }
    }

    /// Fraction of owned queries that consulted any remote rank.
    pub fn remote_fraction(&self) -> f64 {
        if self.owned_queries == 0 {
            0.0
        } else {
            self.queries_with_remote as f64 / self.owned_queries as f64
        }
    }

    /// Element-wise accumulate.
    pub fn add(&mut self, o: &RemoteStats) {
        self.owned_queries += o.owned_queries;
        self.queries_with_remote += o.queries_with_remote;
        self.remote_pairs_sent += o.remote_pairs_sent;
        self.remote_requests_served += o.remote_requests_served;
        self.remote_neighbors_received += o.remote_neighbors_received;
    }
}

/// Charge query-side work counters to the rank's virtual clock.
fn charge(comm: &mut Comm, c: &QueryCounters, dims: usize) {
    let cost = *comm.cost();
    comm.work_parallel(c.cpu_seconds(&cost.ops, dims), c.mem_bytes(dims));
}

/// Clock deltas split into (compute, comm+wait).
fn clock_delta(comm: &Comm, before: panda_comm::ClockSummary) -> (f64, f64) {
    let now = comm.clock();
    (
        now.compute - before.compute,
        (now.comm - before.comm) + (now.wait - before.wait),
    )
}

const QID_SHIFT: u32 = 32;
const QID_IDX_MASK: u64 = (1u64 << QID_SHIFT) - 1;

/// Largest per-rank query count the qid packing can address: indices live
/// in the low [`QID_SHIFT`] bits, so at most `2³²` queries per rank.
pub(crate) const MAX_QUERIES_PER_RANK: u64 = 1u64 << QID_SHIFT;

/// Guard the qid packing: a rank submitting more queries than the index
/// field can hold would silently corrupt the origin rank and misroute
/// results, so it is rejected up front.
pub(crate) fn check_qid_capacity(n_queries: usize, ranks: usize) -> Result<()> {
    if n_queries as u64 > MAX_QUERIES_PER_RANK {
        return Err(PandaError::BadConfig(format!(
            "{n_queries} queries on one rank exceed the 2^{QID_SHIFT} qid \
             index space; split the request into smaller batches"
        )));
    }
    if ranks as u64 > MAX_QUERIES_PER_RANK {
        return Err(PandaError::BadConfig(format!(
            "{ranks} ranks exceed the 2^{QID_SHIFT} qid origin space"
        )));
    }
    Ok(())
}

#[inline]
fn qid(origin: usize, idx: usize) -> u64 {
    debug_assert!((idx as u64) < MAX_QUERIES_PER_RANK, "qid index overflow");
    debug_assert!(
        (origin as u64) < MAX_QUERIES_PER_RANK,
        "qid origin overflow"
    );
    ((origin as u64) << QID_SHIFT) | idx as u64
}

#[inline]
fn qid_origin(q: u64) -> usize {
    (q >> QID_SHIFT) as usize
}

#[inline]
fn qid_idx(q: u64) -> usize {
    (q & QID_IDX_MASK) as usize
}

/// Owned queries after routing: flat coords + opaque qids.
///
/// The pipeline never interprets qids — they ride along the (possibly
/// Morton-permuted) processing order and come back in
/// [`OwnedOutput::qids`]. The SPMD path packs `(origin rank, submission
/// index)` into them; the sharded front-end passes plain submission
/// indices.
pub(crate) struct Owned {
    pub(crate) coords: Vec<f32>,
    pub(crate) qids: Vec<u64>,
}

impl Owned {
    pub(crate) fn len(&self) -> usize {
        self.qids.len()
    }

    fn point(&self, i: usize, dims: usize) -> &[f32] {
        &self.coords[i * dims..(i + 1) * dims]
    }

    /// Re-sort the owned queries along a Morton curve so consecutive
    /// queries (and therefore each pipeline batch) are spatially
    /// coherent. Results are keyed by qid, so the permutation is
    /// invisible to callers — submission order is restored when results
    /// return to their origins.
    fn reorder_morton(&mut self, dims: usize) {
        let schedule = morton_schedule_coords(dims, &self.coords);
        let mut coords = Vec::with_capacity(self.coords.len());
        let mut qids = Vec::with_capacity(self.qids.len());
        for &s in &schedule {
            let s = s as usize;
            coords.extend_from_slice(&self.coords[s * dims..(s + 1) * dims]);
            qids.push(self.qids[s]);
        }
        self.coords = coords;
        self.qids = qids;
    }
}

/// CSR-native result of [`query_distributed`]: what callers (the SPMD
/// benches, the shard workers' front-end) wrap into a `QueryResponse`
/// without any nested intermediate.
#[derive(Debug)]
pub struct DistQueryOutput {
    /// Results in submission order, CSR layout.
    pub neighbors: NeighborTable,
    /// Per-phase virtual-time breakdown (see [`QueryBreakdown`]).
    pub breakdown: QueryBreakdown,
    /// Work counters accumulated over every stage.
    pub counters: QueryCounters,
    /// Remote-traffic statistics.
    pub remote: RemoteStats,
}

/// Result of [`owned_pipeline`]: finalized top-k for the queries this
/// rank owns, CSR-style in **processing** order (`qids[i]` names the
/// query whose `counts[i]` neighbors sit next in `arena`). The caller —
/// the SPMD return leg, or the sharded front-end's gather — scatters rows
/// back to submission order.
pub(crate) struct OwnedOutput {
    pub(crate) qids: Vec<u64>,
    pub(crate) counts: Vec<u32>,
    pub(crate) arena: Vec<Neighbor>,
    pub(crate) breakdown: QueryBreakdown,
    pub(crate) counters: QueryCounters,
    pub(crate) remote: RemoteStats,
}

/// Stages 2–5 for the queries this rank owns: local KNN, identify remote
/// ranks, remote KNN, merge — the batched collective pipeline that every
/// rank of the communicator must enter in lockstep (even with zero owned
/// queries; the step count is agreed by allreduce).
///
/// This is the per-shard step of the engine: under the SPMD driver it is
/// called by [`query_distributed`] between the routing exchange and the
/// origin-return leg; under [`crate::engine::ShardedIndex`] it runs
/// inside each shard worker thread, with routing and assembly done by
/// the front-end over channels.
pub(crate) fn owned_pipeline(
    comm: &mut Comm,
    tree: &DistKdTree,
    mut owned: Owned,
    cfg: &QueryConfig,
) -> Result<OwnedOutput> {
    let dims = tree.global.dims();
    let p = comm.size();
    let me = comm.rank();
    let k = cfg.k;
    let use_bbox = cfg.bbox_routing;
    let r0_sq = if cfg.initial_radius.is_finite() {
        cfg.initial_radius * cfg.initial_radius
    } else {
        f32::INFINITY
    };

    let mut breakdown = QueryBreakdown::default();
    let mut counters = QueryCounters::default();
    let mut remote = RemoteStats::default();
    let mut ws = QueryWorkspace::new();

    // Locality pass: sort the owned queries along the Morton curve so
    // every batch (and its request streams) touches coherent leaves. The
    // O(n log n) key sort is negligible next to traversal and is not
    // charged to the virtual clock.
    if cfg.order == QueryOrder::Morton && owned.len() > 1 {
        owned.reorder_morton(dims);
    }
    remote.owned_queries = owned.len() as u64;

    // ---- Batched pipeline ----------------------------------------------
    let steps = {
        let most = comm
            .world()
            .try_allreduce_u64(owned.len() as u64, ReduceOp::Max)?;
        (most as usize).div_ceil(cfg.batch_size)
    };

    // Persistent per-step workspaces. The send lanes are recycled through
    // the exchange: `alltoallv` consumes the send vectors and returns the
    // received ones, which become the next step's (cleared) send buffers,
    // so lane capacity is allocated once and reused for the whole call.
    let mut heaps: Vec<KnnHeap> = Vec::new();
    let mut req_coord_ws: Vec<Vec<f32>> = vec![Vec::new(); p];
    let mut sent_bi: Vec<Vec<u32>> = vec![Vec::new(); p];
    let mut resp_cnt_ws: Vec<Vec<u32>> = vec![Vec::new(); p];
    let mut resp_id_ws: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut resp_dist_ws: Vec<Vec<f32>> = vec![Vec::new(); p];
    let mut serve_heap = KnnHeap::new(k);
    let mut serve_out: Vec<Neighbor> = Vec::new();
    let mut rank_scratch: Vec<usize> = Vec::new();

    // Finalized owned results, CSR-style in owned (processing) order: one
    // count per owned query plus one flat arena — no per-query `Vec`.
    let mut fin_counts: Vec<u32> = Vec::with_capacity(owned.len());
    let mut fin_arena: Vec<Neighbor> = Vec::new();

    let stride = dims + 1;
    for step in 0..steps {
        let lo = (step * cfg.batch_size).min(owned.len());
        let hi = ((step + 1) * cfg.batch_size).min(owned.len());
        let blen = hi - lo;
        let mut step_compute = 0.0f64;
        let mut step_comm = 0.0f64;

        // (2) local KNN for the batch — heaps recycled via `reset`
        let before = comm.clock();
        let mut local_counters = QueryCounters::default();
        while heaps.len() < blen {
            heaps.push(KnnHeap::new(k));
        }
        for (bi, i) in (lo..hi).enumerate() {
            let heap = &mut heaps[bi];
            heap.reset(k, r0_sq);
            tree.local.query_into(
                owned.point(i, dims),
                heap,
                cfg.bound_mode,
                &mut ws,
                &mut local_counters,
            );
        }
        charge(comm, &local_counters, dims);
        counters.add(&local_counters);
        let (d_comp, d_comm) = clock_delta(comm, before);
        breakdown.local_knn += d_comp;
        breakdown.comm_total += d_comm;
        step_compute += d_comp;
        step_comm += d_comm;

        // (3) identify remote ranks; assemble flat request streams. A
        // request is `dims + 1` floats (coordinates + r'²); the order of
        // requests per destination is remembered in `sent_bi`, so
        // responses — which come back in request order — need no qid
        // echo at all.
        let before = comm.clock();
        let mut ident_counters = QueryCounters::default();
        for lane in &mut req_coord_ws {
            lane.clear();
        }
        for lane in &mut sent_bi {
            lane.clear();
        }
        for (bi, i) in (lo..hi).enumerate() {
            let q = owned.point(i, dims);
            let r_sq = heaps[bi].bound_sq();
            rank_scratch.clear();
            tree.global
                .ranks_in_ball(q, r_sq, use_bbox, &mut rank_scratch, &mut ident_counters);
            let mut any = false;
            for &r in &rank_scratch {
                if r == me {
                    continue;
                }
                any = true;
                remote.remote_pairs_sent += 1;
                req_coord_ws[r].extend_from_slice(q);
                req_coord_ws[r].push(r_sq);
                sent_bi[r].push(bi as u32);
            }
            if any {
                remote.queries_with_remote += 1;
            }
        }
        charge(comm, &ident_counters, dims);
        counters.add(&ident_counters);
        let (d_comp, d_comm) = clock_delta(comm, before);
        breakdown.identify_remote += d_comp;
        breakdown.comm_total += d_comm;
        step_compute += d_comp;
        step_comm += d_comm;

        // exchange requests (compute observed during the exchange is
        // attributed to identify_remote so phase totals cover the steps)
        let before = comm.clock();
        faultpoint::maybe_fail_ctx(points::DIST_EXCHANGE_REQUESTS, me as u64)?;
        let req_coords_in = comm
            .world()
            .try_alltoallv(std::mem::take(&mut req_coord_ws))?;
        let (d_comp, d_comm) = clock_delta(comm, before);
        breakdown.identify_remote += d_comp;
        breakdown.comm_total += d_comm;
        step_compute += d_comp;
        step_comm += d_comm;

        // (4) serve received requests with pruned local KNN. The response
        // to each source is flat: one neighbor count per request plus
        // flat id/distance arrays, in request order.
        let before = comm.clock();
        let mut remote_counters = QueryCounters::default();
        for lane in &mut resp_cnt_ws {
            lane.clear();
        }
        for lane in &mut resp_id_ws {
            lane.clear();
        }
        for lane in &mut resp_dist_ws {
            lane.clear();
        }
        for (src, coords) in req_coords_in.iter().enumerate() {
            debug_assert_eq!(coords.len() % stride, 0);
            let nreq = coords.len() / stride;
            remote.remote_requests_served += nreq as u64;
            for j in 0..nreq {
                let q = &coords[j * stride..j * stride + dims];
                let r_sq = coords[j * stride + dims];
                serve_heap.reset(k, r_sq);
                tree.local.query_into(
                    q,
                    &mut serve_heap,
                    cfg.bound_mode,
                    &mut ws,
                    &mut remote_counters,
                );
                serve_out.clear();
                serve_heap.append_sorted_into(&mut serve_out);
                resp_cnt_ws[src].push(serve_out.len() as u32);
                for n in &serve_out {
                    resp_id_ws[src].push(n.id);
                    resp_dist_ws[src].push(n.dist_sq);
                }
            }
        }
        charge(comm, &remote_counters, dims);
        counters.add(&remote_counters);
        let (d_comp, d_comm) = clock_delta(comm, before);
        breakdown.remote_knn += d_comp;
        breakdown.comm_total += d_comm;
        step_compute += d_comp;
        step_comm += d_comm;

        // exchange responses (exchange-side compute goes to merge, the
        // phase that consumes these streams)
        let before = comm.clock();
        faultpoint::maybe_fail_ctx(points::DIST_EXCHANGE_RESPONSES, me as u64)?;
        let resp_cnt_in = comm
            .world()
            .try_alltoallv(std::mem::take(&mut resp_cnt_ws))?;
        let resp_id_in = comm
            .world()
            .try_alltoallv(std::mem::take(&mut resp_id_ws))?;
        let resp_dist_in = comm
            .world()
            .try_alltoallv(std::mem::take(&mut resp_dist_ws))?;
        let (d_comp, d_comm) = clock_delta(comm, before);
        breakdown.merge += d_comp;
        breakdown.comm_total += d_comm;
        step_compute += d_comp;
        step_comm += d_comm;

        // (5) merge responses into the batch heaps. Responses from rank r
        // arrive in exactly the order this rank sent requests to r
        // (`sent_bi[r]`), so the merge walks both in lockstep — no qid
        // lookup at all.
        let before = comm.clock();
        let mut merge_counters = QueryCounters::default();
        for r in 0..p {
            let cnts = &resp_cnt_in[r];
            let ids = &resp_id_in[r];
            let dists = &resp_dist_in[r];
            debug_assert_eq!(cnts.len(), sent_bi[r].len());
            debug_assert_eq!(ids.len(), dists.len());
            let mut cur = 0usize;
            for (&bi, &cnt) in sent_bi[r].iter().zip(cnts) {
                let heap = &mut heaps[bi as usize];
                for t in cur..cur + cnt as usize {
                    merge_counters.merge_candidates += 1;
                    remote.remote_neighbors_received += 1;
                    heap.offer(dists[t], ids[t]);
                }
                cur += cnt as usize;
            }
            debug_assert_eq!(cur, dists.len());
        }
        // finalize the batch into the owned-order arena, draining each
        // heap in place so its buffer is ready for the next step
        for heap in heaps[..blen].iter_mut() {
            let start = fin_arena.len();
            heap.append_sorted_into(&mut fin_arena);
            fin_counts.push((fin_arena.len() - start) as u32);
        }
        charge(comm, &merge_counters, dims);
        counters.add(&merge_counters);
        let (d_comp, d_comm) = clock_delta(comm, before);
        breakdown.merge += d_comp;
        breakdown.comm_total += d_comm;
        step_compute += d_comp;
        step_comm += d_comm;

        // recycle the received buffers as the next step's send lanes
        req_coord_ws = req_coords_in;
        resp_cnt_ws = resp_cnt_in;
        resp_id_ws = resp_id_in;
        resp_dist_ws = resp_dist_in;

        breakdown.steps.push(StepTiming {
            compute: step_compute,
            comm: step_comm,
        });
    }

    Ok(OwnedOutput {
        qids: owned.qids,
        counts: fin_counts,
        arena: fin_arena,
        breakdown,
        counters,
        remote,
    })
}

/// The SPMD engine: every rank passes its own `queries`; results come
/// back in the same order. `tree` must be the product of
/// [`crate::build_distributed::build_distributed`] on the same cluster.
///
/// This is the low-level entry point for callers that drive the SPMD
/// world themselves (virtual-time scaling studies under
/// [`panda_comm::run_cluster`], chaos tests that manage
/// [`panda_comm::Comm::quiesce`] epochs by hand). For serving real
/// traffic, use [`crate::engine::ShardedIndex`], which runs this
/// engine's pipeline inside supervised shard worker threads behind a
/// `Send + Sync` handle.
pub fn query_distributed(
    comm: &mut Comm,
    tree: &DistKdTree,
    queries: &PointSet,
    cfg: &QueryConfig,
) -> Result<DistQueryOutput> {
    cfg.validate()?;
    queries.validate()?;
    let dims = tree.global.dims();
    if !queries.is_empty() && queries.dims() != dims {
        return Err(PandaError::DimsMismatch {
            expected: dims,
            got: queries.dims(),
        });
    }
    check_qid_capacity(queries.len(), comm.size())?;
    let p = comm.size();
    let me = comm.rank();

    // ---- Stage 1: find owner & route ----------------------------------
    let before = comm.clock();
    let mut route_counters = QueryCounters::default();
    let mut coord_sends: Vec<Vec<f32>> = vec![Vec::new(); p];
    let mut qid_sends: Vec<Vec<u64>> = vec![Vec::new(); p];
    for i in 0..queries.len() {
        let q = queries.point(i);
        let owner = tree.global.owner(q, &mut route_counters);
        coord_sends[owner].extend_from_slice(q);
        qid_sends[owner].push(qid(me, i));
    }
    charge(comm, &route_counters, dims);
    faultpoint::maybe_fail_ctx(points::DIST_EXCHANGE_ROUTE, me as u64)?;
    let coords_in = comm.world().try_alltoallv(coord_sends)?;
    let qids_in = comm.world().try_alltoallv(qid_sends)?;
    let owned = Owned {
        coords: coords_in.into_iter().flatten().collect(),
        qids: qids_in.into_iter().flatten().collect(),
    };
    let (d_comp, d_comm) = clock_delta(comm, before);

    // ---- Stages 2–5 -----------------------------------------------------
    let mut out = owned_pipeline(comm, tree, owned, cfg)?;
    out.breakdown.find_owner += d_comp;
    out.breakdown.comm_total += d_comm;
    out.counters.add(&route_counters);
    let mut breakdown = out.breakdown;
    let counters = out.counters;
    let remote = out.remote;

    // ---- return results to origins (flat framing) -----------------------
    // One packed meta word per finalized query — `(submission idx << 32) |
    // count` (the origin rank is implied by the lane) — plus flat
    // id/distance arrays. No header-per-query framing.
    let before = comm.clock();
    let mut ret_meta_sends: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut ret_id_sends: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut ret_dist_sends: Vec<Vec<f32>> = vec![Vec::new(); p];
    let mut cur = 0usize;
    for (oi, &cnt) in out.counts.iter().enumerate() {
        let rq = out.qids[oi];
        let origin = qid_origin(rq);
        ret_meta_sends[origin].push(((qid_idx(rq) as u64) << QID_SHIFT) | u64::from(cnt));
        for n in &out.arena[cur..cur + cnt as usize] {
            ret_id_sends[origin].push(n.id);
            ret_dist_sends[origin].push(n.dist_sq);
        }
        cur += cnt as usize;
    }
    debug_assert_eq!(cur, out.arena.len());
    faultpoint::maybe_fail_ctx(points::DIST_EXCHANGE_RETURN, me as u64)?;
    let ret_meta_in = comm.world().try_alltoallv(ret_meta_sends)?;
    let ret_id_in = comm.world().try_alltoallv(ret_id_sends)?;
    let ret_dist_in = comm.world().try_alltoallv(ret_dist_sends)?;

    // Assemble the CSR response in submission order: row counts first,
    // then each stream is copied into its final rows in place.
    let mut row_counts = vec![0u32; queries.len()];
    let mut answered = 0usize;
    for meta in &ret_meta_in {
        for &m in meta {
            row_counts[(m >> QID_SHIFT) as usize] = (m & QID_IDX_MASK) as u32;
            answered += 1;
        }
    }
    debug_assert_eq!(answered, queries.len(), "every query answered exactly once");
    let mut table = NeighborTable::with_row_counts(&row_counts)?;
    for ((meta, ids), dists) in ret_meta_in.iter().zip(&ret_id_in).zip(&ret_dist_in) {
        let mut cur = 0usize;
        for &m in meta {
            let idx = (m >> QID_SHIFT) as usize;
            let cnt = (m & QID_IDX_MASK) as usize;
            let row = table.row_mut(idx);
            for t in 0..cnt {
                row[t] = Neighbor {
                    dist_sq: dists[cur + t],
                    id: ids[cur + t],
                };
            }
            cur += cnt;
        }
        debug_assert_eq!(cur, dists.len());
    }
    let (d_comp, d_comm) = clock_delta(comm, before);
    breakdown.merge += d_comp;
    breakdown.comm_total += d_comm;
    // The return leg is the pipeline's epilogue step: logging it keeps
    // `Σ steps.compute` equal to the four in-pipeline phase totals (the
    // accounting invariant on `QueryBreakdown`).
    breakdown.steps.push(StepTiming {
        compute: d_comp,
        comm: d_comm,
    });

    Ok(DistQueryOutput {
        neighbors: table,
        breakdown,
        counters,
        remote,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_distributed::build_distributed;
    use crate::config::{BoundMode, DistConfig};
    use crate::heap::KnnHeap;
    use crate::rng::SplitRng;
    use panda_comm::{run_cluster, ClusterConfig};

    fn random_ps(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut rng = SplitRng::new(seed);
        PointSet::from_coords(
            dims,
            (0..n * dims)
                .map(|_| (rng.next_f64() * 10.0) as f32)
                .collect(),
        )
        .unwrap()
    }

    fn scatter(ps: &PointSet, rank: usize, p: usize) -> PointSet {
        let mut mine = PointSet::new(ps.dims()).unwrap();
        for i in (rank..ps.len()).step_by(p) {
            mine.push(ps.point(i), ps.id(i));
        }
        mine
    }

    fn brute(ps: &PointSet, q: &[f32], k: usize) -> Vec<f32> {
        let mut h = KnnHeap::new(k);
        for i in 0..ps.len() {
            h.offer(ps.dist_sq_to(q, i), ps.id(i));
        }
        h.into_sorted().iter().map(|n| n.dist_sq).collect()
    }

    /// End-to-end exactness across rank counts, dims, k, and batch sizes.
    fn check_exact(p: usize, n: usize, dims: usize, k: usize, batch: usize, seed: u64) {
        let all = random_ps(n, dims, seed);
        let queries = random_ps(60, dims, seed + 1);
        let out = run_cluster(&ClusterConfig::new(p), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let cfg = QueryConfig {
                k,
                batch_size: batch,
                ..QueryConfig::default()
            };
            let res = query_distributed(comm, &tree, &myq, &cfg).unwrap();
            // pair each local query with its result distances
            (0..myq.len())
                .map(|i| {
                    let dists: Vec<f32> = res.neighbors.row(i).iter().map(|n| n.dist_sq).collect();
                    (myq.point(i).to_vec(), dists)
                })
                .collect::<Vec<_>>()
        });
        for o in &out {
            for (q, dists) in &o.result {
                let expect = brute(&all, q, k);
                assert_eq!(
                    dists, &expect,
                    "p={p} dims={dims} k={k} batch={batch} q={q:?}"
                );
            }
        }
    }

    #[test]
    fn exact_small_clusters() {
        check_exact(2, 1200, 3, 5, 4096, 100);
        check_exact(4, 1200, 3, 5, 4096, 101);
    }

    #[test]
    fn exact_non_power_of_two_ranks() {
        check_exact(3, 1000, 3, 4, 4096, 102);
        check_exact(5, 1000, 2, 3, 4096, 103);
    }

    #[test]
    fn exact_high_dims() {
        check_exact(4, 800, 10, 5, 4096, 104);
    }

    #[test]
    fn exact_tiny_batches_multiple_steps() {
        // batch of 4 forces many pipeline steps
        check_exact(4, 800, 3, 5, 4, 105);
    }

    #[test]
    fn exact_k_of_one_and_large_k() {
        check_exact(4, 600, 3, 1, 4096, 106);
        check_exact(4, 600, 3, 50, 4096, 107);
    }

    #[test]
    fn k_exceeding_dataset_returns_all() {
        let all = random_ps(40, 3, 9);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = if comm.rank() == 0 {
                PointSet::from_coords(3, vec![5.0, 5.0, 5.0]).unwrap()
            } else {
                PointSet::new(3).unwrap()
            };
            let cfg = QueryConfig {
                k: 100,
                ..QueryConfig::default()
            };
            let res = query_distributed(comm, &tree, &myq, &cfg).unwrap();
            res.neighbors.get(0).map(<[Neighbor]>::len)
        });
        assert_eq!(out[0].result, Some(40));
    }

    #[test]
    fn empty_query_set_on_some_ranks() {
        let all = random_ps(500, 3, 10);
        let queries = random_ps(10, 3, 11);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = if comm.rank() == 2 {
                queries.clone()
            } else {
                PointSet::new(3).unwrap()
            };
            let cfg = QueryConfig {
                k: 3,
                ..QueryConfig::default()
            };
            let res = query_distributed(comm, &tree, &myq, &cfg).unwrap();
            res.neighbors.len()
        });
        assert_eq!(out[2].result, 10);
        assert_eq!(out[0].result, 0);
    }

    #[test]
    fn bbox_routing_off_still_exact() {
        let all = random_ps(1000, 3, 12);
        let queries = random_ps(30, 3, 13);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let on = query_distributed(
                comm,
                &tree,
                &myq,
                &QueryConfig {
                    k: 5,
                    bbox_routing: true,
                    ..QueryConfig::default()
                },
            )
            .unwrap();
            let off = query_distributed(
                comm,
                &tree,
                &myq,
                &QueryConfig {
                    k: 5,
                    bbox_routing: false,
                    ..QueryConfig::default()
                },
            )
            .unwrap();
            let da: Vec<Vec<f32>> = on
                .neighbors
                .iter()
                .map(|v| v.iter().map(|n| n.dist_sq).collect())
                .collect();
            let db: Vec<Vec<f32>> = off
                .neighbors
                .iter()
                .map(|v| v.iter().map(|n| n.dist_sq).collect())
                .collect();
            // CSR tables compare whole (offsets + arena) too
            assert_eq!(on.neighbors, off.neighbors);
            assert_eq!(da, db);
            // bbox routing must not *increase* remote traffic
            (on.remote.remote_pairs_sent, off.remote.remote_pairs_sent)
        });
        let on: u64 = out.iter().map(|o| o.result.0).sum();
        let off: u64 = out.iter().map(|o| o.result.1).sum();
        assert!(on <= off, "bbox on={on} off={off}");
    }

    #[test]
    fn breakdown_and_stats_are_recorded() {
        let all = random_ps(2000, 3, 14);
        let queries = random_ps(200, 3, 15);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let res = query_distributed(comm, &tree, &myq, &QueryConfig::with_k(5)).unwrap();
            (res.breakdown.clone(), res.remote, res.counters)
        });
        let mut owned = 0u64;
        for o in &out {
            let b = &o.result.0;
            assert!(b.local_knn > 0.0);
            assert!(b.total_synchronous() > 0.0);
            assert!(b.total_pipelined() <= b.total_synchronous() + 1e-12);
            assert!(!b.steps.is_empty());
            owned += o.result.1.owned_queries;
            assert!(o.result.2.points_scanned > 0);
        }
        assert_eq!(owned, 200, "all queries owned exactly once");
    }

    #[test]
    fn paper_scalar_bound_mode_runs() {
        // PaperScalar is approximate by design; just verify it produces
        // plausible results (≥ exact distances, same count).
        let all = random_ps(1500, 3, 16);
        let queries = random_ps(40, 3, 17);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let cfg = QueryConfig {
                k: 5,
                bound_mode: BoundMode::PaperScalar,
                ..QueryConfig::default()
            };
            let res = query_distributed(comm, &tree, &myq, &cfg).unwrap();
            (0..myq.len())
                .map(|i| (myq.point(i).to_vec(), res.neighbors.row(i).len()))
                .collect::<Vec<_>>()
        });
        for o in &out {
            for (_q, len) in &o.result {
                assert_eq!(*len, 5);
            }
        }
    }

    #[test]
    fn duplicate_heavy_distributed_data_exact() {
        // co-located records spread across ranks (Daya Bay §V-A3 behavior)
        let mut all = PointSet::new(3).unwrap();
        let mut rng = SplitRng::new(18);
        for i in 0..1200u64 {
            if i % 3 == 0 {
                all.push(&[5.0, 5.0, 5.0], i);
            } else {
                all.push(
                    &[
                        (rng.next_f64() * 10.0) as f32,
                        (rng.next_f64() * 10.0) as f32,
                        (rng.next_f64() * 10.0) as f32,
                    ],
                    i,
                );
            }
        }
        let queries = random_ps(20, 3, 19);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let res = query_distributed(comm, &tree, &myq, &QueryConfig::with_k(7)).unwrap();
            (0..myq.len())
                .map(|i| {
                    let d: Vec<f32> = res.neighbors.row(i).iter().map(|n| n.dist_sq).collect();
                    (myq.point(i).to_vec(), d)
                })
                .collect::<Vec<_>>()
        });
        for o in &out {
            for (q, dists) in &o.result {
                assert_eq!(dists, &brute(&all, q, 7));
            }
        }
    }

    #[test]
    fn qid_packing_round_trips_at_the_boundary() {
        // max addressable index and origin survive the round trip
        let max = (u32::MAX) as usize;
        for (origin, idx) in [(0, 0), (0, max), (max, 0), (max, max), (3, 12345)] {
            let q = qid(origin, idx);
            assert_eq!(qid_origin(q), origin, "origin for {q:#x}");
            assert_eq!(qid_idx(q), idx, "idx for {q:#x}");
        }
    }

    #[test]
    fn qid_capacity_guard_rejects_oversized_batches() {
        assert!(check_qid_capacity(0, 1).is_ok());
        assert!(check_qid_capacity(u32::MAX as usize, 8).is_ok());
        // 2^32 queries still fit (indices 0..2^32-1); one more does not
        assert!(check_qid_capacity(MAX_QUERIES_PER_RANK as usize, 8).is_ok());
        let err = check_qid_capacity(MAX_QUERIES_PER_RANK as usize + 1, 8).unwrap_err();
        assert!(matches!(err, PandaError::BadConfig(_)));
        assert!(err.to_string().contains("qid"), "{err}");
        // absurd rank counts are rejected too
        assert!(check_qid_capacity(10, MAX_QUERIES_PER_RANK as usize + 1).is_err());
    }

    /// The accounting invariant from the `QueryBreakdown` docs: every
    /// compute delta recorded into a step is attributed to exactly one
    /// phase field, so the step log and the phase totals agree.
    #[test]
    fn step_accounting_matches_phase_totals() {
        let all = random_ps(2000, 3, 30);
        let queries = random_ps(300, 3, 31);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let cfg = QueryConfig {
                k: 5,
                batch_size: 32, // several steps
                ..QueryConfig::default()
            };
            query_distributed(comm, &tree, &myq, &cfg)
                .unwrap()
                .breakdown
        });
        for o in &out {
            let b = &o.result;
            let phases = b.local_knn + b.identify_remote + b.remote_knn + b.merge;
            assert!(
                (b.steps_compute() - phases).abs() <= 1e-9 * phases.max(1.0),
                "steps {} vs phases {phases}",
                b.steps_compute()
            );
            // comm: everything outside the routing prologue is in a step
            assert!(b.steps_comm() <= b.comm_total + 1e-12);
            // the epilogue (origin-return) step is recorded
            assert!(b.steps.len() >= 2);
        }
    }

    /// Morton execution order is a locality knob only: results must be
    /// bit-identical to input order and exact vs brute force.
    #[test]
    fn morton_order_is_bit_identical_and_exact() {
        let all = random_ps(1500, 3, 32);
        let queries = random_ps(90, 3, 33);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, comm.rank(), comm.size());
            let input = query_distributed(
                comm,
                &tree,
                &myq,
                &QueryConfig {
                    k: 5,
                    batch_size: 16,
                    ..QueryConfig::default()
                },
            )
            .unwrap();
            let morton = query_distributed(
                comm,
                &tree,
                &myq,
                &QueryConfig {
                    k: 5,
                    batch_size: 16,
                    order: crate::config::QueryOrder::Morton,
                    ..QueryConfig::default()
                },
            )
            .unwrap();
            assert_eq!(input.neighbors, morton.neighbors, "order changed results");
            // same queries, same bounds: the remote fan-out is identical
            assert_eq!(
                input.remote.remote_pairs_sent,
                morton.remote.remote_pairs_sent
            );
            (0..myq.len())
                .map(|i| {
                    let d: Vec<f32> = morton.neighbors.row(i).iter().map(|n| n.dist_sq).collect();
                    (myq.point(i).to_vec(), d)
                })
                .collect::<Vec<_>>()
        });
        for o in &out {
            for (q, dists) in &o.result {
                assert_eq!(dists, &brute(&all, q, 5));
            }
        }
    }

    #[test]
    fn validates_config_and_dims() {
        let all = random_ps(200, 3, 20);
        let out = run_cluster(&ClusterConfig::new(2), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let bad_q = random_ps(4, 2, 21);
            let e1 = query_distributed(comm, &tree, &bad_q, &QueryConfig::with_k(3));
            let good_q = random_ps(4, 3, 22);
            let e2 = query_distributed(comm, &tree, &good_q, &QueryConfig::with_k(0));
            // everyone still needs to run a real query so the SPMD
            // collectives stay aligned? No — both error paths return
            // before any collective, symmetrically on all ranks.
            (
                matches!(e1, Err(PandaError::DimsMismatch { .. })),
                matches!(e2, Err(PandaError::ZeroK)),
            )
        });
        for o in &out {
            assert!(o.result.0 && o.result.1);
        }
    }
}
