//! Tiny deterministic RNG for sampling during construction.
//!
//! `panda-core` deliberately has no dependency on an external RNG crate:
//! sampling here only needs a fast, well-mixed, *reproducible* stream (the
//! same seed must produce the same tree on every rank and every run). This
//! is `splitmix64` for seeding plus `xoshiro256**`-style state advance —
//! both public-domain constructions.

/// Deterministic 64-bit PRNG (xorshift* family).
#[derive(Clone, Debug)]
pub struct SplitRng {
    s: [u64; 2],
}

impl SplitRng {
    /// Seeded generator; distinct seeds give independent-looking streams.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            // splitmix64
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let a = next();
        let b = next();
        Self { s: [a | 1, b] } // avoid the all-zero state
    }

    /// Derive a child generator for an independent sub-stream (e.g. one
    /// per tree level or per rank) without correlating the streams.
    pub fn fork(&mut self, salt: u64) -> SplitRng {
        let x = self.next_u64();
        SplitRng::new(x ^ salt.wrapping_mul(0xD1B54A32D192ED03))
    }

    /// Next raw 64-bit value (xorshift128+).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut s1 = self.s[0];
        let s0 = self.s[1];
        self.s[0] = s0;
        s1 ^= s1 << 23;
        self.s[1] = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26);
        self.s[1].wrapping_add(s0)
    }

    /// Uniform integer in `0..n` (n ≥ 1) via Lemire's multiply-shift.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Sample `m` indices from `0..n` **with replacement** (allocation is
    /// just the output). Duplicates are acceptable for both variance
    /// estimation (i.i.d. draws are unbiased) and histogram boundaries
    /// (duplicate boundaries create zero-width bins, which are handled) —
    /// and avoiding the without-replacement bookkeeping keeps per-segment
    /// sampling O(m) on the construction hot path.
    pub fn sample_with_replacement(&mut self, n: usize, m: usize) -> Vec<u32> {
        debug_assert!(n >= 1);
        if m >= n {
            return (0..n as u32).collect();
        }
        (0..m).map(|_| self.next_below(n) as u32).collect()
    }

    /// Sample `m` indices from `0..n` without replacement when `m < n`
    /// (partial Fisher–Yates on a scratch vector when dense, rejection via
    /// sorting when sparse), or all of `0..n` when `m ≥ n`.
    pub fn sample_indices(&mut self, n: usize, m: usize) -> Vec<u32> {
        assert!(n <= u32::MAX as usize, "index space too large");
        if m >= n {
            return (0..n as u32).collect();
        }
        if m * 4 >= n {
            // dense: partial Fisher–Yates
            let mut idx: Vec<u32> = (0..n as u32).collect();
            for i in 0..m {
                let j = i + self.next_below(n - i);
                idx.swap(i, j);
            }
            idx.truncate(m);
            idx
        } else {
            // sparse: draw with rejection
            let mut seen = std::collections::HashSet::with_capacity(m * 2);
            let mut out = Vec::with_capacity(m);
            while out.len() < m {
                let v = self.next_below(n) as u32;
                if seen.insert(v) {
                    out.push(v);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitRng::new(42);
        let mut b = SplitRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = SplitRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn next_f64_is_unit_interval_and_roughly_uniform() {
        let mut r = SplitRng::new(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn sample_indices_unique_and_in_range() {
        let mut r = SplitRng::new(5);
        for (n, m) in [
            (100usize, 10usize),
            (100, 90),
            (50, 50),
            (10, 100),
            (1000, 5),
        ] {
            let s = r.sample_indices(n, m);
            assert_eq!(s.len(), m.min(n));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), s.len(), "duplicates for n={n} m={m}");
            assert!(s.iter().all(|&i| (i as usize) < n));
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut r = SplitRng::new(9);
        let mut a = r.fork(1);
        let mut b = r.fork(2);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_reproducible() {
        let f = |seed| {
            let mut r = SplitRng::new(seed);
            let mut c = r.fork(77);
            c.next_u64()
        };
        assert_eq!(f(3), f(3));
    }
}
