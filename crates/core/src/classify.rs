//! KNN classification and regression on top of neighbor lists (§V-C).
//!
//! The paper reports 87% accuracy classifying the Daya Bay dataset into 3
//! physics-event classes with majority voting, and names distance-weighted
//! voting as future work — both are provided here.

use std::collections::HashMap;

use crate::heap::Neighbor;

/// Majority vote over the neighbors' labels. Ties are broken by the
/// smaller summed distance of the tied class, then by the smaller label —
/// fully deterministic.
///
/// Returns `None` for an empty neighbor list.
pub fn majority_vote(neighbors: &[Neighbor], label_of: impl Fn(u64) -> u32) -> Option<u32> {
    if neighbors.is_empty() {
        return None;
    }
    // (count, total squared distance) per label
    let mut tally: HashMap<u32, (usize, f64)> = HashMap::new();
    for n in neighbors {
        let e = tally.entry(label_of(n.id)).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += n.dist_sq as f64;
    }
    tally
        .into_iter()
        .min_by(|(la, (ca, da)), (lb, (cb, db))| {
            cb.cmp(ca) // more votes first
                .then(da.partial_cmp(db).expect("finite distances")) // closer class wins ties
                .then(la.cmp(lb)) // label as final tie-break
        })
        .map(|(label, _)| label)
}

/// Distance-weighted vote: each neighbor contributes `1/(dist² + eps)`
/// (the "spatial weighting of the k-neighbors" the paper's §V-C proposes
/// as a refinement). Returns `None` for an empty neighbor list.
pub fn weighted_vote(
    neighbors: &[Neighbor],
    label_of: impl Fn(u64) -> u32,
    eps: f32,
) -> Option<u32> {
    if neighbors.is_empty() {
        return None;
    }
    let mut tally: HashMap<u32, f64> = HashMap::new();
    for n in neighbors {
        *tally.entry(label_of(n.id)).or_insert(0.0) += 1.0 / (n.dist_sq as f64 + eps as f64);
    }
    tally
        .into_iter()
        .min_by(|(la, wa), (lb, wb)| wb.partial_cmp(wa).expect("finite weights").then(la.cmp(lb)))
        .map(|(label, _)| label)
}

/// Mean-of-neighbors regression. Returns `None` for an empty list.
pub fn regress_mean(neighbors: &[Neighbor], value_of: impl Fn(u64) -> f32) -> Option<f32> {
    if neighbors.is_empty() {
        return None;
    }
    let sum: f64 = neighbors.iter().map(|n| value_of(n.id) as f64).sum();
    Some((sum / neighbors.len() as f64) as f32)
}

/// Inverse-distance-weighted regression. Returns `None` for an empty list.
pub fn regress_idw(neighbors: &[Neighbor], value_of: impl Fn(u64) -> f32, eps: f32) -> Option<f32> {
    if neighbors.is_empty() {
        return None;
    }
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for n in neighbors {
        let w = 1.0 / (n.dist_sq as f64 + eps as f64);
        num += w * value_of(n.id) as f64;
        den += w;
    }
    Some((num / den) as f32)
}

/// Confusion matrix for multi-class evaluation.
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<u64>, // row = truth, col = prediction
}

impl ConfusionMatrix {
    /// Matrix over `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes >= 1);
        Self {
            n_classes,
            counts: vec![0; n_classes * n_classes],
        }
    }

    /// Record one (truth, prediction) pair.
    pub fn record(&mut self, truth: u32, pred: u32) {
        assert!((truth as usize) < self.n_classes && (pred as usize) < self.n_classes);
        self.counts[truth as usize * self.n_classes + pred as usize] += 1;
    }

    /// Count in cell (truth, pred).
    pub fn get(&self, truth: u32, pred: u32) -> u64 {
        self.counts[truth as usize * self.n_classes + pred as usize]
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy in [0, 1]; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes)
            .map(|c| self.counts[c * self.n_classes + c])
            .sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (NaN-free: classes with no samples report 0).
    pub fn recall(&self) -> Vec<f64> {
        (0..self.n_classes)
            .map(|c| {
                let row: u64 = (0..self.n_classes)
                    .map(|p| self.get(c as u32, p as u32))
                    .sum();
                if row == 0 {
                    0.0
                } else {
                    self.get(c as u32, c as u32) as f64 / row as f64
                }
            })
            .collect()
    }

    /// Per-class precision (classes never predicted report 0).
    pub fn precision(&self) -> Vec<f64> {
        (0..self.n_classes)
            .map(|c| {
                let col: u64 = (0..self.n_classes)
                    .map(|t| self.get(t as u32, c as u32))
                    .sum();
                if col == 0 {
                    0.0
                } else {
                    self.get(c as u32, c as u32) as f64 / col as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(dist_sq: f32, id: u64) -> Neighbor {
        Neighbor { dist_sq, id }
    }

    #[test]
    fn majority_simple() {
        // ids 0..2 are label 0; ids 10.. are label 1
        let label = |id: u64| if id < 10 { 0 } else { 1 };
        let ns = [nb(1.0, 0), nb(2.0, 1), nb(3.0, 10)];
        assert_eq!(majority_vote(&ns, label), Some(0));
        assert_eq!(majority_vote(&[], label), None);
    }

    #[test]
    fn majority_tie_breaks_by_distance() {
        let label = |id: u64| if id < 10 { 0 } else { 1 };
        // one vote each; label 1's neighbor is closer
        let ns = [nb(5.0, 0), nb(1.0, 10)];
        assert_eq!(majority_vote(&ns, label), Some(1));
        // equal distance too → smaller label
        let ns = [nb(2.0, 0), nb(2.0, 10)];
        assert_eq!(majority_vote(&ns, label), Some(0));
    }

    #[test]
    fn weighted_vote_favors_close_neighbors() {
        let label = |id: u64| if id < 10 { 0 } else { 1 };
        // two far label-0 votes vs one very close label-1 vote
        let ns = [nb(100.0, 0), nb(100.0, 1), nb(0.01, 10)];
        assert_eq!(weighted_vote(&ns, label, 1e-6), Some(1));
        assert_eq!(majority_vote(&ns, label), Some(0)); // unweighted differs
        assert_eq!(weighted_vote(&[], label, 1e-6), None);
    }

    #[test]
    fn regressions() {
        let value = |id: u64| id as f32;
        let ns = [nb(1.0, 10), nb(1.0, 20)];
        assert_eq!(regress_mean(&ns, value), Some(15.0));
        // IDW with equal distances = mean
        let idw = regress_idw(&ns, value, 0.0).unwrap();
        assert!((idw - 15.0).abs() < 1e-5);
        // IDW pulled toward the closer neighbor
        let ns = [nb(0.01, 10), nb(100.0, 20)];
        let idw = regress_idw(&ns, value, 0.0).unwrap();
        assert!(idw < 10.5, "idw {idw}");
        assert_eq!(regress_mean(&[], value), None);
        assert_eq!(regress_idw(&[], value, 0.0), None);
    }

    #[test]
    fn confusion_matrix_metrics() {
        let mut m = ConfusionMatrix::new(3);
        // class 0: 8 right, 2 as class 1
        for _ in 0..8 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(0, 1);
        }
        // class 1: 9 right, 1 as class 2
        for _ in 0..9 {
            m.record(1, 1);
        }
        m.record(1, 2);
        // class 2: all 10 right
        for _ in 0..10 {
            m.record(2, 2);
        }
        assert_eq!(m.total(), 30);
        assert!((m.accuracy() - 27.0 / 30.0).abs() < 1e-12);
        let rec = m.recall();
        assert!((rec[0] - 0.8).abs() < 1e-12);
        assert!((rec[1] - 0.9).abs() < 1e-12);
        assert!((rec[2] - 1.0).abs() < 1e-12);
        let prec = m.precision();
        assert!((prec[0] - 1.0).abs() < 1e-12); // nothing else predicted 0
        assert!((prec[1] - 9.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_zero_accuracy() {
        let m = ConfusionMatrix::new(2);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.recall(), vec![0.0, 0.0]);
    }
}
