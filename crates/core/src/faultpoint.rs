//! Deterministic fault injection for chaos testing.
//!
//! Production code is sprinkled with **named fault points** — one
//! [`maybe_fail`] / [`maybe_fail_ctx`] call at each place a real
//! deployment could fail (a comm exchange, a leaf kernel dispatch, a
//! service drain). The module is compiled unconditionally but costs one
//! relaxed atomic load per hit while disarmed, so the points stay in
//! release builds and the chaos suite exercises the exact binary that
//! ships.
//!
//! Tests arm a [`FaultPlan`]: a deterministic schedule of [`FaultSpec`]s
//! saying *which* point fires, on *which hit*, doing *what*
//! ([`FaultAction`]: typed failure, synthetic comm timeout, panic, or
//! delay). [`arm`] returns a [`FaultGuard`] that holds a process-wide
//! exclusivity lock (chaos tests serialize instead of cross-arming each
//! other) and disarms on drop — including on test panic.
//!
//! ```
//! use panda_core::faultpoint::{self, FaultAction, FaultPlan};
//!
//! let guard = faultpoint::arm(
//!     FaultPlan::new().fail("demo.point", 2), // fail the 2nd hit only
//! );
//! assert!(faultpoint::maybe_fail("demo.point").is_ok());
//! assert!(faultpoint::maybe_fail("demo.point").is_err());
//! assert!(faultpoint::maybe_fail("demo.point").is_ok());
//! assert_eq!(guard.hits("demo.point"), 3);
//! drop(guard); // disarmed: hits are free again
//! assert!(faultpoint::maybe_fail("demo.point").is_ok());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use panda_comm::CommError;

use crate::error::{PandaError, Result};

/// Well-known fault point names wired into the engine, kept here so
/// tests and call sites cannot drift apart.
pub mod points {
    /// Stage-1 query routing exchange of the distributed pipeline
    /// (`query_distributed`'s prologue).
    pub const DIST_EXCHANGE_ROUTE: &str = "dist.exchange.route";
    /// Stage-3 remote-request exchange of the distributed pipeline.
    pub const DIST_EXCHANGE_REQUESTS: &str = "dist.exchange.requests";
    /// Stage-4/5 response exchange of the distributed pipeline.
    pub const DIST_EXCHANGE_RESPONSES: &str = "dist.exchange.responses";
    /// Origin-return exchange (pipeline epilogue).
    pub const DIST_EXCHANGE_RETURN: &str = "dist.exchange.return";
    /// Local engine batch execution (leaf kernel dispatch).
    pub const ENGINE_LEAF_DISPATCH: &str = "engine.leaf_dispatch";
    /// Shard worker, start of a KNN job (context = shard id). Fires on
    /// the worker thread, before the collective pipeline is entered.
    pub const SHARD_WORKER_QUERY: &str = "shard.worker.query";
    /// Shard worker, start of a fixed-radius job (context = shard id).
    pub const SHARD_WORKER_RADIUS: &str = "shard.worker.radius";
    /// Query-service micro-batch drain/execute path.
    pub const SERVICE_DRAIN: &str = "service.drain";
    /// Mutable-index write-log append (`MutableIndex::insert`).
    pub const STORE_LOG_APPEND: &str = "store.log.append";
    /// Background compaction: tree rebuild phase (before any state is
    /// published — a failure here must leave the old tree serving).
    pub const STORE_COMPACT_BUILD: &str = "store.compact.build";
    /// Background compaction: atomic swap point (under the write lock,
    /// immediately before the new tree is published — a failure here
    /// must not leave a torn view).
    pub const STORE_COMPACT_SWAP: &str = "store.compact.swap";
    /// Mutable-index write-ahead log, mid-record: fires after the first
    /// half of a record's bytes hit the file, so an injected failure
    /// leaves a **torn record** on disk — exactly what a kill during
    /// `write(2)` leaves. Recovery must truncate it away.
    pub const STORE_WAL_APPEND: &str = "store.wal.append";
    /// Mutable-index write-ahead log, at the fsync that would make the
    /// just-appended record durable. On failure the record is rolled
    /// back out of the log (truncated) and the write is rejected, so
    /// the durable prefix stays exactly the acknowledged prefix.
    pub const STORE_WAL_FSYNC: &str = "store.wal.fsync";
    /// Snapshot checkpoint: temp-file write phase (before the atomic
    /// rename — a failure leaves the previous snapshot + WAL intact).
    pub const STORE_SNAPSHOT_WRITE: &str = "store.snapshot.write";
    /// Snapshot checkpoint: atomic-rename publish point (after the temp
    /// file is written and fsynced — a failure must leave recovery on
    /// the previous snapshot + full WAL, never a half-visible one).
    pub const STORE_SNAPSHOT_RENAME: &str = "store.snapshot.rename";
}

/// What an armed fault point does when its schedule says "fire".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Return [`PandaError::FaultInjected`].
    Fail,
    /// Return a synthetic [`PandaError::Comm`] timeout (what a stalled
    /// peer produces), letting callers exercise comm-failure handling
    /// without actually stalling a rank.
    Timeout,
    /// Panic with a recognizable message (`"injected fault panic at …"`).
    Panic,
    /// Sleep for the given duration, then continue normally — a
    /// straggler, not a failure.
    Delay(Duration),
}

/// One scheduled fault: *point* + deterministic trigger window + action.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    point: String,
    /// 1-based matching hit at which the fault starts firing.
    nth: u64,
    /// Consecutive matching hits that fire from `nth` on.
    count: u64,
    action: FaultAction,
    /// When set, only hits whose context value matches count/fire —
    /// call sites pass e.g. their rank, making per-rank schedules
    /// deterministic even when ranks race on a global counter.
    ctx: Option<u64>,
}

impl FaultSpec {
    /// A spec firing `action` on every hit of `point`.
    pub fn new(point: impl Into<String>, action: FaultAction) -> Self {
        Self {
            point: point.into(),
            nth: 1,
            count: u64::MAX,
            action,
            ctx: None,
        }
    }

    /// Fire starting at the `nth` matching hit (1-based; clamped to ≥ 1).
    #[must_use]
    pub fn at_hit(mut self, nth: u64) -> Self {
        self.nth = nth.max(1);
        self
    }

    /// Fire for exactly `count` consecutive matching hits.
    #[must_use]
    pub fn times(mut self, count: u64) -> Self {
        self.count = count;
        self
    }

    /// Restrict (and count) hits to those reporting this context value.
    #[must_use]
    pub fn on_ctx(mut self, ctx: u64) -> Self {
        self.ctx = Some(ctx);
        self
    }
}

/// A deterministic schedule of faults, armed via [`arm`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan. Arming it injects nothing but still takes the
    /// process-wide chaos lock — tests that must not observe *other*
    /// tests' faults arm an empty plan for exclusion.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fully-specified fault.
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Shorthand: fail (typed error) the `nth` hit of `point`, once.
    #[must_use]
    pub fn fail(self, point: impl Into<String>, nth: u64) -> Self {
        self.with(
            FaultSpec::new(point, FaultAction::Fail)
                .at_hit(nth)
                .times(1),
        )
    }

    /// Shorthand: synthetic comm timeout on the `nth` hit of `point`, once.
    #[must_use]
    pub fn timeout(self, point: impl Into<String>, nth: u64) -> Self {
        self.with(
            FaultSpec::new(point, FaultAction::Timeout)
                .at_hit(nth)
                .times(1),
        )
    }

    /// Shorthand: panic on the `nth` hit of `point`, once.
    #[must_use]
    pub fn panic(self, point: impl Into<String>, nth: u64) -> Self {
        self.with(
            FaultSpec::new(point, FaultAction::Panic)
                .at_hit(nth)
                .times(1),
        )
    }

    /// Shorthand: delay the `nth` hit of `point` by `dur`, once.
    #[must_use]
    pub fn delay(self, point: impl Into<String>, nth: u64, dur: Duration) -> Self {
        self.with(
            FaultSpec::new(point, FaultAction::Delay(dur))
                .at_hit(nth)
                .times(1),
        )
    }
}

struct SpecState {
    spec: FaultSpec,
    hits: u64,
}

#[derive(Default)]
struct Registry {
    specs: Vec<SpecState>,
    /// Total hits per point name while armed (for test assertions).
    hit_log: Vec<(String, u64)>,
}

/// Fast-path switch: exactly one relaxed load per fault-point hit while
/// disarmed.
static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    specs: Vec::new(),
    hit_log: Vec::new(),
});
/// Chaos-test exclusivity: held by the [`FaultGuard`] for the lifetime
/// of an armed plan so concurrent tests cannot cross-arm.
static EXCLUSIVE: Mutex<()> = Mutex::new(());
/// Process-lifetime count of faults that actually *fired* (took an
/// action) per point name. Unlike the per-plan `hit_log` this survives
/// disarming, so a telemetry snapshot taken after the run still shows
/// which faults tripped — chaos tests assert on it instead of inferring
/// firing from the error path.
static FIRED: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());

fn note_fired(point: &str) {
    let mut fired = FIRED.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(entry) = fired.iter_mut().find(|(p, _)| p == point) {
        entry.1 += 1;
    } else {
        fired.push((point.to_string(), 1));
    }
}

/// Times each fault point has fired (taken an action) since process
/// start, sorted by point name. Never reset by disarming.
pub fn fired_counts() -> Vec<(String, u64)> {
    let mut out = FIRED.lock().unwrap_or_else(PoisonError::into_inner).clone();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Times `point` has fired since process start.
pub fn fired(point: &str) -> u64 {
    FIRED
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .find(|(p, _)| p == point)
        .map_or(0, |(_, n)| *n)
}

fn lock_registry() -> MutexGuard<'static, Registry> {
    // An injected panic can unwind through a hit with the lock released
    // but the mutex poisoned by a dying holder elsewhere; the registry
    // is always left consistent, so poison is ignorable.
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm a plan. The returned guard must be held for as long as faults
/// should fire; dropping it disarms every point and resets all counters.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let excl = EXCLUSIVE.lock().unwrap_or_else(PoisonError::into_inner);
    {
        let mut reg = lock_registry();
        reg.specs = plan
            .specs
            .into_iter()
            .map(|spec| SpecState { spec, hits: 0 })
            .collect();
        reg.hit_log.clear();
    }
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { _excl: excl }
}

/// Keeps a [`FaultPlan`] armed; disarms on drop (also on panic).
pub struct FaultGuard {
    _excl: MutexGuard<'static, ()>,
}

impl FaultGuard {
    /// Total hits recorded at `point` (any context) since arming.
    pub fn hits(&self, point: &str) -> u64 {
        lock_registry()
            .hit_log
            .iter()
            .filter(|(p, _)| p == point)
            .map(|(_, n)| n)
            .sum()
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        let mut reg = lock_registry();
        reg.specs.clear();
        reg.hit_log.clear();
    }
}

/// A fault point without per-hit context. Near-zero cost while disarmed.
#[inline]
pub fn maybe_fail(point: &str) -> Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fire(point, None)
}

/// A fault point reporting a context value (e.g. the hitting rank), so
/// plans can target one participant deterministically.
#[inline]
pub fn maybe_fail_ctx(point: &str, ctx: u64) -> Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fire(point, Some(ctx))
}

#[cold]
fn fire(point: &str, ctx: Option<u64>) -> Result<()> {
    let action = {
        let mut reg = lock_registry();
        if let Some(entry) = reg.hit_log.iter_mut().find(|(p, _)| p == point) {
            entry.1 += 1;
        } else {
            reg.hit_log.push((point.to_string(), 1));
        }
        let mut action = None;
        for st in reg.specs.iter_mut().filter(|st| st.spec.point == point) {
            if let (Some(want), Some(got)) = (st.spec.ctx, ctx) {
                if want != got {
                    continue;
                }
            } else if st.spec.ctx.is_some() {
                // ctx-targeted spec, context-free hit: not a match
                continue;
            }
            st.hits += 1;
            let in_window = st.hits >= st.spec.nth
                && (st.hits - st.spec.nth) < st.spec.count
                && action.is_none();
            if in_window {
                action = Some(st.spec.action);
            }
        }
        action
    };
    if action.is_some() {
        note_fired(point);
    }
    match action {
        None => Ok(()),
        Some(FaultAction::Fail) => Err(PandaError::FaultInjected {
            point: point.to_string(),
        }),
        Some(FaultAction::Timeout) => Err(PandaError::Comm(CommError::Timeout {
            rank: ctx.unwrap_or(0) as usize,
            src: 0,
            tag: 0,
            attempts: 1,
        })),
        Some(FaultAction::Panic) => panic!("injected fault panic at {point}"),
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_are_free_and_ok() {
        // no guard held — every point passes
        assert!(maybe_fail("x").is_ok());
        assert!(maybe_fail_ctx("y", 7).is_ok());
    }

    #[test]
    fn nth_hit_schedule_is_deterministic() {
        let g = arm(FaultPlan::new().fail("p", 3));
        assert!(maybe_fail("p").is_ok());
        assert!(maybe_fail("p").is_ok());
        let e = maybe_fail("p").unwrap_err();
        assert!(matches!(e, PandaError::FaultInjected { ref point } if point == "p"));
        assert!(maybe_fail("p").is_ok(), "window of one hit");
        assert_eq!(g.hits("p"), 4);
        assert_eq!(g.hits("other"), 0);
    }

    #[test]
    fn ctx_filter_targets_one_participant() {
        let _g =
            arm(FaultPlan::new().with(FaultSpec::new("p", FaultAction::Fail).on_ctx(2).times(1)));
        assert!(maybe_fail_ctx("p", 0).is_ok());
        assert!(maybe_fail_ctx("p", 1).is_ok());
        assert!(maybe_fail_ctx("p", 2).is_err());
        assert!(maybe_fail_ctx("p", 2).is_ok(), "once only");
        assert!(maybe_fail("p").is_ok(), "context-free hit never matches");
    }

    #[test]
    fn timeout_action_builds_a_typed_comm_error() {
        let _g = arm(FaultPlan::new().timeout("p", 1));
        match maybe_fail_ctx("p", 5).unwrap_err() {
            PandaError::Comm(CommError::Timeout { rank, .. }) => assert_eq!(rank, 5),
            other => panic!("expected Comm(Timeout), got {other:?}"),
        }
    }

    #[test]
    fn delay_action_sleeps_then_succeeds() {
        let _g = arm(FaultPlan::new().delay("p", 1, Duration::from_millis(20)));
        let t0 = std::time::Instant::now();
        assert!(maybe_fail("p").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(15));
        let t0 = std::time::Instant::now();
        assert!(maybe_fail("p").is_ok());
        assert!(t0.elapsed() < Duration::from_millis(15), "fires once");
    }

    #[test]
    fn guard_drop_disarms_even_after_panic_action() {
        let res = std::panic::catch_unwind(|| {
            let _g = arm(FaultPlan::new().panic("p", 1));
            let _ = maybe_fail("p");
        });
        assert!(res.is_err(), "panic action panicked");
        // guard dropped during unwind: the world is disarmed again
        assert!(maybe_fail("p").is_ok());
    }

    #[test]
    fn fired_counts_survive_disarm() {
        let before = fired("fp.fired.test");
        {
            let _g = arm(FaultPlan::new().fail("fp.fired.test", 1));
            assert!(maybe_fail("fp.fired.test").is_err());
            assert!(maybe_fail("fp.fired.test").is_ok(), "hit but no fire");
        }
        // Guard dropped (disarmed): the fired count persists.
        assert_eq!(fired("fp.fired.test"), before + 1);
        assert!(fired_counts()
            .iter()
            .any(|(p, n)| p == "fp.fired.test" && *n >= 1));
    }

    #[test]
    fn windows_can_cover_multiple_hits() {
        let _g =
            arm(FaultPlan::new().with(FaultSpec::new("p", FaultAction::Fail).at_hit(2).times(2)));
        assert!(maybe_fail("p").is_ok());
        assert!(maybe_fail("p").is_err());
        assert!(maybe_fail("p").is_err());
        assert!(maybe_fail("p").is_ok());
    }
}
