//! Configuration for tree construction and querying.

use crate::error::{PandaError, Result};

/// How the split dimension is chosen at each tree level (§III-A1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitDimStrategy {
    /// Dimension of maximum variance estimated on a sample — PANDA's choice
    /// (costs up to 18% extra construction, buys up to 43% query time).
    MaxVariance {
        /// Number of points sampled for the variance estimate.
        sample: usize,
    },
    /// Dimension of maximum coordinate range (ANN's choice) — cheaper to
    /// compute, worse trees on anisotropic data.
    MaxExtent,
    /// Cycle dimensions round-robin by depth (classic Bentley kd-tree);
    /// ablation baseline.
    RoundRobin,
}

impl Default for SplitDimStrategy {
    fn default() -> Self {
        // The paper computes variances "on a subset of points … similar to
        // the strategy used in FLANN" (which uses ~100); 128 keeps the
        // estimate stable in up to 16 dimensions at negligible cost.
        SplitDimStrategy::MaxVariance { sample: 128 }
    }
}

/// How the split value along the chosen dimension is found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitValueStrategy {
    /// Sampled non-uniform histogram, pick the interval point nearest the
    /// target quantile — PANDA's choice (§III-A1, after \[11\]).
    SampledHistogram {
        /// Sample size (paper: 1024 for the local tree, 256/rank global).
        samples: usize,
    },
    /// Exact median via selection — slower; ablation/ground-truth option.
    ExactMedian,
    /// Mean of the first 100 points along the dimension (FLANN's heuristic,
    /// §V-B2); kept here for ablations.
    MeanFirst100,
}

impl Default for SplitValueStrategy {
    fn default() -> Self {
        SplitValueStrategy::SampledHistogram { samples: 1024 }
    }
}

/// Histogram binning implementation (§III-A1 optimization).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HistScan {
    /// Branchy binary search over the sorted interval points.
    Binary,
    /// Two-level scan: every 32nd interval point is pulled into a
    /// sub-interval array scanned linearly (SIMD-friendly), then the
    /// 32-wide range is scanned — the paper's 42% construction win.
    #[default]
    SubInterval,
}

/// Lower-bound computation used while traversing the tree (Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BoundMode {
    /// Exact incremental bound with per-dimension side distances
    /// (Arya–Mount). Guarantees exact KNN. Default.
    #[default]
    Exact,
    /// The scalar accumulation exactly as printed in the paper's
    /// Algorithm 1 (`d' ← √(d·d + d'·d')`). Slightly over-estimates the
    /// bound when a dimension repeats along a path, which can (rarely)
    /// prune a true neighbor — kept for the fidelity ablation.
    PaperScalar,
}

/// Order in which a query batch is executed (results are always returned
/// in input order; this only affects locality, never values).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueryOrder {
    /// Run queries exactly as given.
    #[default]
    Input,
    /// Sort queries along a Morton (Z-order) curve before dispatch, so
    /// consecutive queries touch the same tree nodes and leaf buckets —
    /// the locality-aware batching that ParlayANN-style schedulers use to
    /// win constant factors. Results are scattered back to input order.
    Morton,
}

/// Local kd-tree construction parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeConfig {
    /// Maximum points per leaf bucket (paper: 32 empirically best).
    pub bucket_size: usize,
    /// Split-dimension strategy.
    pub split_dim: SplitDimStrategy,
    /// Split-value strategy.
    pub split_value: SplitValueStrategy,
    /// Histogram binning variant.
    pub hist_scan: HistScan,
    /// Stop breadth-first data parallelism once the number of open
    /// segments reaches `threads × data_parallel_factor` (paper: ×10).
    pub data_parallel_factor: usize,
    /// Thread count used for (a) real rayon parallelism when `parallel`
    /// and (b) the modeled thread pool in simulated runs.
    pub threads: usize,
    /// Use real rayon parallelism for construction (single-node API).
    /// Distributed ranks run their local build sequentially and charge the
    /// modeled thread pool instead.
    pub parallel: bool,
    /// Segments at or below this size use an exact median regardless of
    /// `split_value` (cheap at small n, bounds tree depth).
    pub exact_median_below: usize,
    /// RNG seed for all sampling, making construction deterministic.
    pub seed: u64,
    /// Default execution order for `KnnIndex::query_session`.
    pub query_order: QueryOrder,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            bucket_size: 32,
            split_dim: SplitDimStrategy::default(),
            split_value: SplitValueStrategy::default(),
            hist_scan: HistScan::default(),
            data_parallel_factor: 10,
            threads: 1,
            parallel: false,
            exact_median_below: 4096,
            seed: 0x9E3779B97F4A7C15,
            query_order: QueryOrder::default(),
        }
    }
}

impl TreeConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.bucket_size == 0 {
            return Err(PandaError::BadConfig("bucket_size must be ≥ 1".into()));
        }
        if self.threads == 0 {
            return Err(PandaError::BadConfig("threads must be ≥ 1".into()));
        }
        if self.data_parallel_factor == 0 {
            return Err(PandaError::BadConfig(
                "data_parallel_factor must be ≥ 1".into(),
            ));
        }
        match self.split_dim {
            SplitDimStrategy::MaxVariance { sample } if sample < 2 => {
                return Err(PandaError::BadConfig("variance sample must be ≥ 2".into()))
            }
            _ => {}
        }
        if let SplitValueStrategy::SampledHistogram { samples } = self.split_value {
            if samples < 2 {
                return Err(PandaError::BadConfig(
                    "histogram samples must be ≥ 2".into(),
                ));
            }
        }
        Ok(())
    }

    /// Builder-style: set bucket size.
    #[must_use]
    pub fn with_bucket_size(mut self, b: usize) -> Self {
        self.bucket_size = b;
        self
    }

    /// Builder-style: set thread count.
    #[must_use]
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Builder-style: enable real rayon parallelism.
    #[must_use]
    pub fn with_parallel(mut self, p: bool) -> Self {
        self.parallel = p;
        self
    }

    /// Builder-style: set the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Builder-style: set the default batch execution order.
    #[must_use]
    pub fn with_query_order(mut self, o: QueryOrder) -> Self {
        self.query_order = o;
        self
    }
}

/// Distributed query engine parameters (§III-B).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryConfig {
    /// Number of nearest neighbors.
    pub k: usize,
    /// Queries processed per pipeline step on each rank (paper: batching
    /// for load balance and throughput).
    pub batch_size: usize,
    /// Model software pipelining (overlap of communication with the
    /// compute of adjacent batches) when reporting times.
    pub pipeline: bool,
    /// Refine remote-rank selection with per-rank point bounding boxes in
    /// addition to the global-tree cells.
    pub bbox_routing: bool,
    /// Traversal bound computation.
    pub bound_mode: BoundMode,
    /// Initial search radius (`∞` for plain KNN). Squared internally.
    pub initial_radius: f32,
    /// Execution order of each rank's *owned* queries (after routing).
    /// [`QueryOrder::Morton`] sorts them along a Z-order curve so every
    /// pipeline step's local KNN and remote request streams touch
    /// spatially coherent leaves; results are always returned in
    /// submission order, so this is a locality knob only — it never
    /// changes values.
    pub order: QueryOrder,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self {
            k: 5,
            batch_size: 4096,
            pipeline: true,
            bbox_routing: true,
            bound_mode: BoundMode::default(),
            initial_radius: f32::INFINITY,
            order: QueryOrder::default(),
        }
    }
}

impl QueryConfig {
    /// Config for `k` neighbors with defaults otherwise.
    #[must_use]
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(PandaError::ZeroK);
        }
        if self.batch_size == 0 {
            return Err(PandaError::BadConfig("batch_size must be ≥ 1".into()));
        }
        // `+inf` is the documented "no limit" sentinel; everything else
        // must be a positive finite radius.
        if self.initial_radius.is_nan() || self.initial_radius <= 0.0 {
            return Err(PandaError::BadRadius {
                radius: self.initial_radius,
            });
        }
        Ok(())
    }
}

/// Distributed construction parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistConfig {
    /// Local-tree construction parameters (per rank).
    pub local: TreeConfig,
    /// Points sampled *per rank* for each global split (paper: 256).
    pub global_samples_per_rank: usize,
    /// Gather per-rank bounding boxes after redistribution (enables
    /// `bbox_routing` at query time).
    pub gather_rank_bboxes: bool,
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            local: TreeConfig::default(),
            global_samples_per_rank: 256,
            gather_rank_bboxes: true,
        }
    }
}

impl DistConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        self.local.validate()?;
        if self.global_samples_per_rank < 2 {
            return Err(PandaError::BadConfig(
                "global_samples_per_rank must be ≥ 2".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_choices() {
        let t = TreeConfig::default();
        assert_eq!(t.bucket_size, 32);
        assert_eq!(t.split_dim, SplitDimStrategy::MaxVariance { sample: 128 });
        assert_eq!(
            t.split_value,
            SplitValueStrategy::SampledHistogram { samples: 1024 }
        );
        assert_eq!(t.hist_scan, HistScan::SubInterval);
        assert_eq!(t.data_parallel_factor, 10);
        let d = DistConfig::default();
        assert_eq!(d.global_samples_per_rank, 256);
        let q = QueryConfig::default();
        assert_eq!(q.bound_mode, BoundMode::Exact);
        assert_eq!(q.order, QueryOrder::Input);
        assert_eq!(t.query_order, QueryOrder::Input);
    }

    #[test]
    fn validation_rejects_degenerate_values() {
        assert!(TreeConfig::default()
            .with_bucket_size(0)
            .validate()
            .is_err());
        assert!(TreeConfig::default().with_threads(0).validate().is_err());
        assert!(TreeConfig {
            data_parallel_factor: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TreeConfig {
            split_dim: SplitDimStrategy::MaxVariance { sample: 1 },
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TreeConfig {
            split_value: SplitValueStrategy::SampledHistogram { samples: 0 },
            ..Default::default()
        }
        .validate()
        .is_err());

        assert!(QueryConfig::with_k(0).validate().is_err());
        assert!(QueryConfig {
            batch_size: 0,
            ..QueryConfig::with_k(1)
        }
        .validate()
        .is_err());
        for r in [0.0, -1.0, f32::NAN, f32::NEG_INFINITY] {
            let err = QueryConfig {
                initial_radius: r,
                ..QueryConfig::with_k(1)
            }
            .validate()
            .unwrap_err();
            assert!(
                matches!(err, PandaError::BadRadius { .. }),
                "expected BadRadius for {r}, got {err:?}"
            );
        }
        // +inf is the documented "no limit" sentinel
        assert!(QueryConfig {
            initial_radius: f32::INFINITY,
            ..QueryConfig::with_k(1)
        }
        .validate()
        .is_ok());

        assert!(DistConfig {
            global_samples_per_rank: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn builders_compose() {
        let t = TreeConfig::default()
            .with_bucket_size(16)
            .with_threads(4)
            .with_parallel(true);
        assert_eq!(t.bucket_size, 16);
        assert_eq!(t.threads, 4);
        assert!(t.parallel);
        assert!(t.validate().is_ok());
    }
}
