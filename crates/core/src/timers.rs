//! Phase-breakdown containers for the construction and querying pipelines
//! (Figures 5(b) and 5(c) of the paper).
//!
//! Times here are **virtual seconds** recorded from the per-rank clock of
//! the simulated runtime. The breakdowns are per-rank; the bench harness
//! aggregates over ranks (max for makespans, mean for percentages).

/// Construction time split into the paper's five phases (Fig. 5(b)).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BuildBreakdown {
    /// Global kd-tree construction (sampling, histograms, split decisions).
    pub global_tree: f64,
    /// Particle redistribution (partitioning into send buffers + exchange).
    pub redistribute: f64,
    /// Local kd-tree, data-parallel breadth-first levels.
    pub local_data_parallel: f64,
    /// Local kd-tree, thread-parallel subtree phase.
    pub local_thread_parallel: f64,
    /// SIMD packing of leaf buckets.
    pub packing: f64,
}

impl BuildBreakdown {
    /// Phase labels in paper order.
    pub const LABELS: [&'static str; 5] = [
        "Global kd-tree construction",
        "Redistribute particles",
        "Local kd-tree (data parallel)",
        "Local kd-tree (thread parallel)",
        "Local kd-tree (SIMD packing)",
    ];

    /// Phase values in paper order.
    pub fn values(&self) -> [f64; 5] {
        [
            self.global_tree,
            self.redistribute,
            self.local_data_parallel,
            self.local_thread_parallel,
            self.packing,
        ]
    }

    /// Total construction seconds.
    pub fn total(&self) -> f64 {
        self.values().iter().sum()
    }

    /// Percentages per phase (sums to ~100 unless total is zero).
    pub fn percentages(&self) -> [f64; 5] {
        let t = self.total();
        if t <= 0.0 {
            return [0.0; 5];
        }
        self.values().map(|v| 100.0 * v / t)
    }

    /// Element-wise accumulate (for aggregating ranks).
    pub fn add(&mut self, o: &BuildBreakdown) {
        self.global_tree += o.global_tree;
        self.redistribute += o.redistribute;
        self.local_data_parallel += o.local_data_parallel;
        self.local_thread_parallel += o.local_thread_parallel;
        self.packing += o.packing;
    }

    /// Element-wise max (for makespan-style aggregation).
    pub fn max(&mut self, o: &BuildBreakdown) {
        self.global_tree = self.global_tree.max(o.global_tree);
        self.redistribute = self.redistribute.max(o.redistribute);
        self.local_data_parallel = self.local_data_parallel.max(o.local_data_parallel);
        self.local_thread_parallel = self.local_thread_parallel.max(o.local_thread_parallel);
        self.packing = self.packing.max(o.packing);
    }

    /// Scale all phases (e.g. 1/ranks for means).
    pub fn scaled(&self, f: f64) -> BuildBreakdown {
        BuildBreakdown {
            global_tree: self.global_tree * f,
            redistribute: self.redistribute * f,
            local_data_parallel: self.local_data_parallel * f,
            local_thread_parallel: self.local_thread_parallel * f,
            packing: self.packing * f,
        }
    }
}

/// Compute/communication timing of one pipeline step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepTiming {
    /// Compute seconds in the step (local KNN + identify + remote KNN +
    /// merge).
    pub compute: f64,
    /// Communication seconds in the step (request/response exchanges,
    /// including synchronization wait).
    pub comm: f64,
}

/// Query time split into the paper's categories (Fig. 5(c)) plus the
/// per-step log that drives the software-pipelining model.
///
/// The step log holds one entry per pipeline batch **plus a final
/// epilogue entry** for the origin-return exchange, and the engine
/// attributes every compute delta it records into a step to exactly one
/// phase field, so the accounting invariant
/// `Σ steps.compute == local_knn + identify_remote + remote_knn + merge`
/// holds (`find_owner` is the prologue, outside the step log).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryBreakdown {
    /// Routing queries to their owning ranks (traversal + exchange).
    pub find_owner: f64,
    /// Local KNN on owned queries.
    pub local_knn: f64,
    /// Identifying remote ranks within `r'`.
    pub identify_remote: f64,
    /// Remote KNN service for other ranks' queries.
    pub remote_knn: f64,
    /// Final top-k merging of remote responses.
    pub merge: f64,
    /// Total communication (requests + responses + result return).
    pub comm_total: f64,
    /// Per-step compute/comm log.
    pub steps: Vec<StepTiming>,
}

impl QueryBreakdown {
    /// Labels in paper order (merge is folded into "Remote KNN" when
    /// printing the five-way figure, matching the paper's categories).
    pub const LABELS: [&'static str; 5] = [
        "Find owner",
        "Local KNN",
        "Identify remote nodes",
        "Remote KNN",
        "Non-overlapped communication",
    ];

    /// Total assuming no overlap: every stage strictly sequential.
    pub fn total_synchronous(&self) -> f64 {
        self.find_owner
            + self.local_knn
            + self.identify_remote
            + self.remote_knn
            + self.merge
            + self.comm_total
    }

    /// Sum of per-step compute seconds (equals the four in-pipeline phase
    /// fields — see the accounting invariant on the type docs).
    pub fn steps_compute(&self) -> f64 {
        self.steps.iter().map(|s| s.compute).sum()
    }

    /// Sum of per-step communication seconds.
    pub fn steps_comm(&self) -> f64 {
        self.steps.iter().map(|s| s.comm).sum()
    }

    /// Communication that cannot hide behind compute when the pipeline
    /// overlaps adjacent batches: `Σ max(0, comm_s − compute_s)` over steps
    /// (steady-state software-pipeline model).
    pub fn comm_non_overlapped(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| (s.comm - s.compute).max(0.0))
            .sum()
    }

    /// Total with software pipelining: per-step `max(compute, comm)` plus
    /// the owner-routing prologue.
    pub fn total_pipelined(&self) -> f64 {
        self.find_owner
            + self
                .steps
                .iter()
                .map(|s| s.compute.max(s.comm))
                .sum::<f64>()
            + self.residual_compute()
    }

    /// Compute not captured in the step log. Zero for breakdowns produced
    /// by the engine (every phase delta lands in a step — see the type
    /// docs); kept as a safety net for hand-built or aggregated
    /// breakdowns whose step logs were truncated.
    fn residual_compute(&self) -> f64 {
        let step_compute: f64 = self.steps.iter().map(|s| s.compute).sum();
        let all_compute = self.local_knn + self.identify_remote + self.remote_knn + self.merge;
        (all_compute - step_compute).max(0.0)
    }

    /// Effective total under `pipelined` on/off.
    pub fn total(&self, pipelined: bool) -> f64 {
        if pipelined {
            self.total_pipelined()
        } else {
            self.total_synchronous()
        }
    }

    /// Five-way values for the Fig. 5(c) chart: merge folded into remote
    /// KNN, communication as non-overlapped when `pipelined`.
    pub fn figure_values(&self, pipelined: bool) -> [f64; 5] {
        let comm = if pipelined {
            self.comm_non_overlapped()
        } else {
            self.comm_total
        };
        [
            self.find_owner,
            self.local_knn,
            self.identify_remote,
            self.remote_knn + self.merge,
            comm,
        ]
    }

    /// Element-wise accumulate (steps appended index-wise).
    pub fn add(&mut self, o: &QueryBreakdown) {
        self.find_owner += o.find_owner;
        self.local_knn += o.local_knn;
        self.identify_remote += o.identify_remote;
        self.remote_knn += o.remote_knn;
        self.merge += o.merge;
        self.comm_total += o.comm_total;
        if self.steps.len() < o.steps.len() {
            self.steps.resize(o.steps.len(), StepTiming::default());
        }
        for (a, b) in self.steps.iter_mut().zip(&o.steps) {
            a.compute += b.compute;
            a.comm += b.comm;
        }
    }

    /// Scale all fields (e.g. 1/ranks for means).
    pub fn scaled(&self, f: f64) -> QueryBreakdown {
        QueryBreakdown {
            find_owner: self.find_owner * f,
            local_knn: self.local_knn * f,
            identify_remote: self.identify_remote * f,
            remote_knn: self.remote_knn * f,
            merge: self.merge * f,
            comm_total: self.comm_total * f,
            steps: self
                .steps
                .iter()
                .map(|s| StepTiming {
                    compute: s.compute * f,
                    comm: s.comm * f,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_breakdown_percentages_sum_to_100() {
        let b = BuildBreakdown {
            global_tree: 4.0,
            redistribute: 3.0,
            local_data_parallel: 1.0,
            local_thread_parallel: 1.5,
            packing: 0.5,
        };
        assert!((b.total() - 10.0).abs() < 1e-12);
        let p = b.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((p[0] - 40.0).abs() < 1e-9);
        assert_eq!(BuildBreakdown::default().percentages(), [0.0; 5]);
    }

    #[test]
    fn build_breakdown_add_max_scale() {
        let a = BuildBreakdown {
            global_tree: 1.0,
            ..Default::default()
        };
        let b = BuildBreakdown {
            global_tree: 3.0,
            packing: 2.0,
            ..Default::default()
        };
        let mut sum = a;
        sum.add(&b);
        assert_eq!(sum.global_tree, 4.0);
        let mut mx = a;
        mx.max(&b);
        assert_eq!(mx.global_tree, 3.0);
        assert_eq!(mx.packing, 2.0);
        assert_eq!(sum.scaled(0.5).global_tree, 2.0);
    }

    #[test]
    fn pipelined_total_hides_comm_behind_compute() {
        let q = QueryBreakdown {
            find_owner: 1.0,
            local_knn: 6.0,
            identify_remote: 1.0,
            remote_knn: 2.0,
            merge: 1.0,
            comm_total: 5.0,
            steps: vec![
                StepTiming {
                    compute: 5.0,
                    comm: 2.0,
                }, // comm fully hidden
                StepTiming {
                    compute: 5.0,
                    comm: 3.0,
                }, // comm fully hidden
            ],
        };
        assert!((q.total_synchronous() - 16.0).abs() < 1e-12);
        assert!((q.total_pipelined() - 11.0).abs() < 1e-12); // 1 + 5 + 5
        assert_eq!(q.comm_non_overlapped(), 0.0);
    }

    #[test]
    fn pipelined_total_exposes_comm_when_dominant() {
        let q = QueryBreakdown {
            find_owner: 0.5,
            local_knn: 1.0,
            identify_remote: 0.0,
            remote_knn: 1.0,
            merge: 0.0,
            comm_total: 6.0,
            steps: vec![
                StepTiming {
                    compute: 1.0,
                    comm: 4.0,
                },
                StepTiming {
                    compute: 1.0,
                    comm: 2.0,
                },
            ],
        };
        assert!((q.comm_non_overlapped() - 4.0).abs() < 1e-12);
        // 0.5 + max(1,4) + max(1,2) = 6.5
        assert!((q.total_pipelined() - 6.5).abs() < 1e-12);
        assert!(q.total_pipelined() < q.total_synchronous());
        assert_eq!(q.total(true), q.total_pipelined());
        assert_eq!(q.total(false), q.total_synchronous());
    }

    #[test]
    fn figure_values_fold_merge_into_remote() {
        let q = QueryBreakdown {
            find_owner: 1.0,
            local_knn: 2.0,
            identify_remote: 3.0,
            remote_knn: 4.0,
            merge: 5.0,
            comm_total: 6.0,
            steps: vec![],
        };
        let v = q.figure_values(false);
        assert_eq!(v, [1.0, 2.0, 3.0, 9.0, 6.0]);
        assert_eq!(q.figure_values(true)[4], 0.0); // no steps → nothing exposed
    }

    #[test]
    fn add_aligns_steps() {
        let mut a = QueryBreakdown {
            steps: vec![StepTiming {
                compute: 1.0,
                comm: 1.0,
            }],
            ..Default::default()
        };
        let b = QueryBreakdown {
            steps: vec![
                StepTiming {
                    compute: 2.0,
                    comm: 0.0,
                },
                StepTiming {
                    compute: 3.0,
                    comm: 1.0,
                },
            ],
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.steps.len(), 2);
        assert_eq!(a.steps[0].compute, 3.0);
        assert_eq!(a.steps[1].compute, 3.0);
    }
}
