//! The replicated global kd-tree: a BSP over rank domains.
//!
//! The top `⌈log₂ P⌉` levels of the distributed tree partition space among
//! ranks (§III-A(i)). Every rank holds an identical copy (it is tiny:
//! `P − 1` internal nodes), which enables two query-time operations without
//! any communication:
//!
//! * [`GlobalKdTree::owner`] — which rank's cell contains a query point;
//! * [`GlobalKdTree::ranks_in_ball`] — which ranks' cells intersect the
//!   ball `(q, r')`, i.e. who could hold a closer neighbor (§III-B step 3).
//!
//! Cell distances use the same exact side-distance computation as the
//! local traversal, optionally refined by per-rank *point* bounding boxes
//! (cells are unbounded; the actual points occupy a sub-box).

use std::collections::HashMap;

use crate::counters::QueryCounters;
use crate::point::{BoundingBox, MAX_DIMS};

const LEAF: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct GNode {
    split_dim: u32,
    split_val: f32,
    /// internal: left child; leaf: owning rank
    a: u32,
    /// internal: right child; leaf: unused
    b: u32,
}

/// One split decision of the recursive rank-group halving.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GlobalSplit {
    /// First rank of the group that was split.
    pub lo: usize,
    /// One past the last rank of the group.
    pub hi: usize,
    /// Split dimension.
    pub dim: usize,
    /// Split value (points with `v ≤ value` belong to the left half).
    pub value: f32,
}

/// Midpoint rule shared by construction and the global tree: group
/// `lo..hi` splits into `lo..mid` and `mid..hi`.
#[inline]
pub fn group_mid(lo: usize, hi: usize) -> usize {
    lo + (hi - lo) / 2
}

/// The replicated rank-domain BSP.
#[derive(Clone, Debug)]
pub struct GlobalKdTree {
    dims: usize,
    ranks: usize,
    nodes: Vec<GNode>,
    levels: usize,
    rank_bbox: Option<Vec<BoundingBox>>,
}

impl GlobalKdTree {
    /// Assemble the tree from the split decisions of every group that was
    /// halved during construction. `splits` must contain exactly one entry
    /// per internal group (every `lo..hi` with `hi - lo ≥ 2` reachable by
    /// recursive halving from `0..ranks`).
    pub fn from_splits(dims: usize, ranks: usize, splits: &[GlobalSplit]) -> Self {
        assert!(ranks >= 1);
        let by_group: HashMap<(usize, usize), &GlobalSplit> =
            splits.iter().map(|s| ((s.lo, s.hi), s)).collect();
        let mut nodes = Vec::with_capacity(2 * ranks);
        let mut levels = 0usize;
        build(&by_group, &mut nodes, &mut levels, 0, ranks, 0);
        return Self {
            dims,
            ranks,
            nodes,
            levels,
            rank_bbox: None,
        };

        fn build(
            by_group: &HashMap<(usize, usize), &GlobalSplit>,
            nodes: &mut Vec<GNode>,
            levels: &mut usize,
            lo: usize,
            hi: usize,
            depth: usize,
        ) -> u32 {
            *levels = (*levels).max(depth);
            let me = nodes.len() as u32;
            if hi - lo == 1 {
                nodes.push(GNode {
                    split_dim: LEAF,
                    split_val: 0.0,
                    a: lo as u32,
                    b: 0,
                });
                return me;
            }
            let s = by_group
                .get(&(lo, hi))
                .unwrap_or_else(|| panic!("missing global split for group {lo}..{hi}"));
            nodes.push(GNode {
                split_dim: s.dim as u32,
                split_val: s.value,
                a: 0,
                b: 0,
            });
            let mid = group_mid(lo, hi);
            let l = build(by_group, nodes, levels, lo, mid, depth + 1);
            let r = build(by_group, nodes, levels, mid, hi, depth + 1);
            nodes[me as usize].a = l;
            nodes[me as usize].b = r;
            me
        }
    }

    /// Trivial tree for a single rank.
    pub fn single_rank(dims: usize) -> Self {
        Self::from_splits(dims, 1, &[])
    }

    /// Attach per-rank point bounding boxes (refines
    /// [`Self::ranks_in_ball`]). `boxes[r]` is rank `r`'s tight box, or an
    /// empty box if the rank holds no points.
    pub fn set_rank_bboxes(&mut self, boxes: Vec<BoundingBox>) {
        assert_eq!(boxes.len(), self.ranks);
        self.rank_bbox = Some(boxes);
    }

    /// Whether bbox refinement is active.
    pub fn has_rank_bboxes(&self) -> bool {
        self.rank_bbox.is_some()
    }

    /// Number of ranks partitioned.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Depth of the rank partition (`⌈log₂ P⌉`).
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The rank whose cell contains `q`. Counts walked levels into
    /// `counters` (owner lookup is ~3% of query time in the paper).
    pub fn owner(&self, q: &[f32], counters: &mut QueryCounters) -> usize {
        debug_assert_eq!(q.len(), self.dims);
        counters.owner_lookups += 1;
        let mut ni = 0u32;
        loop {
            let n = self.nodes[ni as usize];
            if n.split_dim == LEAF {
                return n.a as usize;
            }
            counters.tree_levels += 1;
            ni = if q[n.split_dim as usize] <= n.split_val {
                n.a
            } else {
                n.b
            };
        }
    }

    /// All ranks whose region could contain a point strictly closer than
    /// `r_sq` to `q` (exact cell distance; refined by rank bboxes when
    /// attached and `use_bbox` is set). Appends to `out` in ascending rank
    /// order.
    pub fn ranks_in_ball(
        &self,
        q: &[f32],
        r_sq: f32,
        use_bbox: bool,
        out: &mut Vec<usize>,
        counters: &mut QueryCounters,
    ) {
        debug_assert_eq!(q.len(), self.dims);
        // Depth-first with exact side-distance bounds; cells are visited
        // left-to-right, so output is ascending by rank.
        let mut stack: Vec<(u32, f32, [f32; MAX_DIMS])> = vec![(0, 0.0, [0.0; MAX_DIMS])];
        while let Some((ni, lb_sq, side)) = stack.pop() {
            if lb_sq >= r_sq {
                continue;
            }
            let n = self.nodes[ni as usize];
            if n.split_dim == LEAF {
                let rank = n.a as usize;
                if use_bbox {
                    if let Some(boxes) = &self.rank_bbox {
                        let bb = &boxes[rank];
                        if bb.is_empty() || bb.min_dist_sq(q) >= r_sq {
                            continue;
                        }
                    }
                }
                out.push(rank);
                continue;
            }
            counters.tree_levels += 1;
            let dim = n.split_dim as usize;
            let off = q[dim] - n.split_val;
            let (near, far) = if off <= 0.0 { (n.a, n.b) } else { (n.b, n.a) };
            let old = side[dim];
            let far_lb = lb_sq - old * old + off * off;
            // Push order: to emit ascending ranks we need left-subtree
            // leaves first; push right child first so left pops first.
            let mut far_side = side;
            far_side[dim] = off;
            if near == n.a {
                if far_lb < r_sq {
                    stack.push((far, far_lb, far_side));
                }
                stack.push((near, lb_sq, side));
            } else {
                stack.push((near, lb_sq, side));
                if far_lb < r_sq {
                    stack.push((far, far_lb, far_side));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 ranks on a line: splits at x=0 (root), x=-1 (left pair),
    /// x=1 (right pair). Cells: (-∞,-1], (-1,0], (0,1], (1,∞).
    fn line_tree() -> GlobalKdTree {
        GlobalKdTree::from_splits(
            1,
            4,
            &[
                GlobalSplit {
                    lo: 0,
                    hi: 4,
                    dim: 0,
                    value: 0.0,
                },
                GlobalSplit {
                    lo: 0,
                    hi: 2,
                    dim: 0,
                    value: -1.0,
                },
                GlobalSplit {
                    lo: 2,
                    hi: 4,
                    dim: 0,
                    value: 1.0,
                },
            ],
        )
    }

    #[test]
    fn owner_routes_by_cell() {
        let t = line_tree();
        let mut c = QueryCounters::default();
        assert_eq!(t.owner(&[-5.0], &mut c), 0);
        assert_eq!(t.owner(&[-1.0], &mut c), 0); // boundary goes left
        assert_eq!(t.owner(&[-0.5], &mut c), 1);
        assert_eq!(t.owner(&[0.0], &mut c), 1);
        assert_eq!(t.owner(&[0.5], &mut c), 2);
        assert_eq!(t.owner(&[2.0], &mut c), 3);
        assert_eq!(c.owner_lookups, 6);
        assert_eq!(c.tree_levels, 12); // 2 levels per lookup
        assert_eq!(t.levels(), 2);
    }

    #[test]
    fn ball_overlap_enumerates_only_reachable_cells() {
        let t = line_tree();
        let mut c = QueryCounters::default();
        let mut out = Vec::new();
        // Ball centered in rank 1's cell with radius 0.4: only rank 1
        t.ranks_in_ball(&[-0.5], 0.4 * 0.4, true, &mut out, &mut c);
        assert_eq!(out, vec![1]);
        // radius 0.6 crosses x=0 and x=-1: ranks 0,1,2
        out.clear();
        t.ranks_in_ball(&[-0.5], 0.6 * 0.6, true, &mut out, &mut c);
        assert_eq!(out, vec![0, 1, 2]);
        // huge radius: everyone
        out.clear();
        t.ranks_in_ball(&[-0.5], 1e9, true, &mut out, &mut c);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ball_overlap_uses_exact_cell_distance_not_plane_sum() {
        // rank 3's cell is (1,∞): from q=-0.5 the distance is 1.5 → a ball
        // of radius 1.2 must NOT include rank 3 even though it crosses the
        // root plane (0.5 away) and the x=1 plane is 1.5 away. The scalar
        // accumulation √(0.5² + 1.5²) ≈ 1.58 would also exclude it — but
        // for cells *between* planes the replacement matters: radius 1.4
        // includes ranks 0,1,2 but not 3 (needs 1.5).
        let t = line_tree();
        let mut c = QueryCounters::default();
        let mut out = Vec::new();
        t.ranks_in_ball(&[-0.5], 1.4 * 1.4, true, &mut out, &mut c);
        assert_eq!(out, vec![0, 1, 2]);
        out.clear();
        t.ranks_in_ball(&[-0.5], 1.6 * 1.6, true, &mut out, &mut c);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bbox_refinement_prunes_empty_space() {
        let mut t = line_tree();
        // rank 2's points actually live only near x=0.9
        t.set_rank_bboxes(vec![
            BoundingBox::from_corners(&[-5.0], &[-1.0]),
            BoundingBox::from_corners(&[-1.0], &[0.0]),
            BoundingBox::from_corners(&[0.9], &[1.0]),
            BoundingBox::from_corners(&[1.0], &[5.0]),
        ]);
        let mut c = QueryCounters::default();
        let mut out = Vec::new();
        // Ball from x=0.05 with radius 0.5 reaches into rank 2's *cell*
        // (anything > 0) but not its *points* (≥ 0.9 away… 0.85 > 0.5).
        t.ranks_in_ball(&[0.05], 0.5 * 0.5, true, &mut out, &mut c);
        assert_eq!(out, vec![1]);
        // without refinement rank 2 is included
        let t2 = line_tree();
        out.clear();
        t2.ranks_in_ball(&[0.05], 0.5 * 0.5, true, &mut out, &mut c);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn empty_rank_bbox_is_never_selected() {
        let mut t = line_tree();
        t.set_rank_bboxes(vec![
            BoundingBox::from_corners(&[-5.0], &[-1.0]),
            BoundingBox::empty(1), // rank 1 holds nothing
            BoundingBox::from_corners(&[0.0], &[1.0]),
            BoundingBox::from_corners(&[1.0], &[5.0]),
        ]);
        let mut c = QueryCounters::default();
        let mut out = Vec::new();
        t.ranks_in_ball(&[-0.5], 1e9, true, &mut out, &mut c);
        assert_eq!(out, vec![0, 2, 3]);
    }

    #[test]
    fn single_rank_tree() {
        let t = GlobalKdTree::single_rank(3);
        let mut c = QueryCounters::default();
        assert_eq!(t.owner(&[1.0, 2.0, 3.0], &mut c), 0);
        let mut out = Vec::new();
        t.ranks_in_ball(&[0.0, 0.0, 0.0], 1.0, true, &mut out, &mut c);
        assert_eq!(out, vec![0]);
        assert_eq!(t.levels(), 0);
    }

    #[test]
    fn non_power_of_two_ranks() {
        // 3 ranks: root splits 0..3 at mid 1 → left {0}, right {1,2}
        let t = GlobalKdTree::from_splits(
            1,
            3,
            &[
                GlobalSplit {
                    lo: 0,
                    hi: 3,
                    dim: 0,
                    value: 0.0,
                },
                GlobalSplit {
                    lo: 1,
                    hi: 3,
                    dim: 0,
                    value: 1.0,
                },
            ],
        );
        let mut c = QueryCounters::default();
        assert_eq!(t.owner(&[-1.0], &mut c), 0);
        assert_eq!(t.owner(&[0.5], &mut c), 1);
        assert_eq!(t.owner(&[1.5], &mut c), 2);
        assert_eq!(t.ranks(), 3);
    }

    #[test]
    #[should_panic(expected = "missing global split")]
    fn missing_split_panics() {
        let _ = GlobalKdTree::from_splits(
            1,
            4,
            &[GlobalSplit {
                lo: 0,
                hi: 4,
                dim: 0,
                value: 0.0,
            }],
        );
    }

    #[test]
    fn mid_rule() {
        assert_eq!(group_mid(0, 4), 2);
        assert_eq!(group_mid(0, 3), 1);
        assert_eq!(group_mid(2, 5), 3);
        assert_eq!(group_mid(0, 2), 1);
    }
}
