//! Work counters: the bridge between real execution and virtual time.
//!
//! Every hot loop of the algorithm increments a counter; the simulated
//! runtime converts counters to seconds through the calibrated
//! [`panda_comm::ComputeCosts`]. Because counters reflect the *actual*
//! operations performed on the actual data (pruning quality, tree balance,
//! remote fan-out...), the resulting scaling curves are driven by the real
//! algorithm, not by an analytic approximation of it.

use panda_comm::ComputeCosts;

use crate::config::HistScan;

/// Counters for construction-side work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildCounters {
    /// Points drawn as samples (split-value and variance sampling).
    pub sampled: u64,
    /// (sample × dimension) accumulations during variance estimation.
    pub variance_ops: u64,
    /// (point × dimension) scans during max-extent estimation.
    pub extent_ops: u64,
    /// Points binned into a sampled histogram.
    pub hist_binned: u64,
    /// Points moved/compared during partitioning.
    pub partition_ops: u64,
    /// Points that went through exact-median selection.
    pub median_selects: u64,
    /// Coordinates copied during SIMD packing.
    pub pack_coords: u64,
    /// Tree nodes created.
    pub nodes_created: u64,
}

impl BuildCounters {
    /// Element-wise accumulate.
    pub fn add(&mut self, o: &BuildCounters) {
        self.sampled += o.sampled;
        self.variance_ops += o.variance_ops;
        self.extent_ops += o.extent_ops;
        self.hist_binned += o.hist_binned;
        self.partition_ops += o.partition_ops;
        self.median_selects += o.median_selects;
        self.pack_coords += o.pack_coords;
        self.nodes_created += o.nodes_created;
    }

    /// Single-thread CPU seconds implied by these counters.
    pub fn cpu_seconds(&self, ops: &ComputeCosts, scan: HistScan) -> f64 {
        let hist_cost = match scan {
            HistScan::Binary => ops.hist_binary,
            HistScan::SubInterval => ops.hist_scan,
        };
        self.sampled as f64 * ops.sample
            + self.variance_ops as f64 * ops.variance
            + self.extent_ops as f64 * ops.variance
            + self.hist_binned as f64 * hist_cost
            + self.partition_ops as f64 * ops.partition
            // selection is ~3 comparison/swap passes per element
            + self.median_selects as f64 * 3.0 * ops.partition
            + self.pack_coords as f64 * ops.pack
            + self.nodes_created as f64 * ops.node_visit
    }

    /// Bytes streamed from memory (dominant term: every counted point
    /// touch reads `dims` coordinates; packing writes them once more).
    pub fn mem_bytes(&self, dims: usize) -> f64 {
        let point_bytes = (dims * 4) as f64;
        (self.hist_binned + self.partition_ops + self.median_selects) as f64 * point_bytes
            + self.pack_coords as f64 * 8.0
    }
}

/// Counters for query-side work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// Queries processed.
    pub queries: u64,
    /// Internal tree nodes visited.
    pub nodes_visited: u64,
    /// Leaf buckets scanned.
    pub leaves_scanned: u64,
    /// Point distances evaluated (padded bucket positions).
    pub points_scanned: u64,
    /// Fused leaf-kernel invocations (one per leaf scanned through
    /// [`crate::local_tree::PackedLeaves::scan_and_offer`]).
    pub leaf_kernel_calls: u64,
    /// 8-wide kernel blocks rejected by the in-register bound comparison
    /// without any heap interaction (fused-kernel effectiveness).
    pub kernel_blocks_pruned: u64,
    /// Heap offers that were accepted.
    pub heap_ops: u64,
    /// Global-tree owner lookups performed.
    pub owner_lookups: u64,
    /// Global-tree levels walked across all owner lookups / remote
    /// identification traversals.
    pub tree_levels: u64,
    /// Candidates considered in final top-k merges.
    pub merge_candidates: u64,
}

impl QueryCounters {
    /// Element-wise accumulate.
    pub fn add(&mut self, o: &QueryCounters) {
        self.queries += o.queries;
        self.nodes_visited += o.nodes_visited;
        self.leaves_scanned += o.leaves_scanned;
        self.points_scanned += o.points_scanned;
        self.leaf_kernel_calls += o.leaf_kernel_calls;
        self.kernel_blocks_pruned += o.kernel_blocks_pruned;
        self.heap_ops += o.heap_ops;
        self.owner_lookups += o.owner_lookups;
        self.tree_levels += o.tree_levels;
        self.merge_candidates += o.merge_candidates;
    }

    /// Single-thread CPU seconds implied by these counters.
    pub fn cpu_seconds(&self, ops: &ComputeCosts, dims: usize) -> f64 {
        self.nodes_visited as f64 * ops.node_visit
            + self.points_scanned as f64 * dims as f64 * ops.dist
            + self.heap_ops as f64 * ops.heap_op
            + self.tree_levels as f64 * ops.owner_level
            + self.merge_candidates as f64 * ops.merge
    }

    /// Bytes streamed from memory: bucket coordinate reads dominate (this
    /// is what makes querying memory-bound in the paper's Fig. 6).
    pub fn mem_bytes(&self, dims: usize) -> f64 {
        self.points_scanned as f64 * (dims * 4) as f64 + self.nodes_visited as f64 * 16.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> ComputeCosts {
        ComputeCosts::ivy_bridge()
    }

    #[test]
    fn build_cpu_seconds_monotonic() {
        let a = BuildCounters {
            hist_binned: 1000,
            ..Default::default()
        };
        let mut b = a;
        b.hist_binned = 2000;
        let (ta, tb) = (
            a.cpu_seconds(&ops(), HistScan::Binary),
            b.cpu_seconds(&ops(), HistScan::Binary),
        );
        assert!(tb > ta && ta > 0.0);
    }

    #[test]
    fn sub_interval_scan_is_modeled_cheaper() {
        let c = BuildCounters {
            hist_binned: 1_000_000,
            ..Default::default()
        };
        assert!(
            c.cpu_seconds(&ops(), HistScan::SubInterval) < c.cpu_seconds(&ops(), HistScan::Binary)
        );
    }

    #[test]
    fn add_accumulates_every_field() {
        let mut a = BuildCounters {
            sampled: 1,
            variance_ops: 2,
            extent_ops: 3,
            hist_binned: 4,
            partition_ops: 5,
            median_selects: 6,
            pack_coords: 7,
            nodes_created: 8,
        };
        a.add(&a.clone());
        assert_eq!(a.sampled, 2);
        assert_eq!(a.nodes_created, 16);

        let mut q = QueryCounters {
            queries: 1,
            nodes_visited: 2,
            leaves_scanned: 3,
            points_scanned: 4,
            leaf_kernel_calls: 9,
            kernel_blocks_pruned: 10,
            heap_ops: 5,
            owner_lookups: 6,
            tree_levels: 7,
            merge_candidates: 8,
        };
        q.add(&q.clone());
        assert_eq!(q.queries, 2);
        assert_eq!(q.merge_candidates, 16);
        assert_eq!(q.leaf_kernel_calls, 18);
        assert_eq!(q.kernel_blocks_pruned, 20);
    }

    #[test]
    fn query_memory_scales_with_dims() {
        let q = QueryCounters {
            points_scanned: 1000,
            ..Default::default()
        };
        assert!(q.mem_bytes(10) > q.mem_bytes(3));
        assert!(q.cpu_seconds(&ops(), 10) > q.cpu_seconds(&ops(), 3));
    }

    #[test]
    fn zero_counters_zero_seconds() {
        assert_eq!(
            BuildCounters::default().cpu_seconds(&ops(), HistScan::Binary),
            0.0
        );
        assert_eq!(QueryCounters::default().cpu_seconds(&ops(), 3), 0.0);
        assert_eq!(QueryCounters::default().mem_bytes(3), 0.0);
    }
}
