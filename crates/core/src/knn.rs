//! Single-node KNN index: the shared-memory face of PANDA.
//!
//! Wraps [`LocalKdTree`] with a locality-aware batch engine:
//! "parallelizing over queries on shared memory is simple" (§V-B2) — the
//! constant factors are not. The engine optionally reorders the batch
//! along a Morton curve ([`QueryOrder::Morton`]) so consecutive queries
//! share tree paths and cached leaf buckets, dispatches in contiguous
//! chunks (`with_min_len`) so per-task overhead amortizes and each worker
//! reuses one [`QueryWorkspace`], and scatters results back to input
//! order. Every query runs through the fused SIMD leaf kernel inherited
//! from the traversal layer.

use rayon::prelude::*;

use panda_comm::CostModel;

use crate::config::{BoundMode, QueryOrder, TreeConfig};
use crate::counters::QueryCounters;
use crate::engine::{NeighborTable, QueryRequest, QueryResponse};
use crate::error::{PandaError, Result};
use crate::heap::{KnnHeap, Neighbor};
use crate::local_tree::{LocalKdTree, QueryWorkspace};
use crate::morton::morton_schedule;
use crate::point::PointSet;

/// Minimum queries per dispatched chunk: below this, task bookkeeping
/// would rival the traversal work itself.
const MIN_CHUNK: usize = 16;

/// One worker chunk's output: `(input slot, neighbor count)` runs, the
/// chunk-local neighbor arena those runs index into (in run order), and
/// the chunk's aggregate counters. Chunks are spliced into the final CSR
/// table — no per-query `Vec` is ever allocated.
type ChunkResult = (Vec<(u32, u32)>, Vec<Neighbor>, QueryCounters);

/// A single-node KNN index.
#[derive(Clone, Debug)]
pub struct KnnIndex {
    tree: LocalKdTree,
    parallel: bool,
    query_order: QueryOrder,
}

impl KnnIndex {
    /// Build an index over `points`.
    pub fn build(points: &PointSet, cfg: &TreeConfig) -> Result<Self> {
        let tree = LocalKdTree::build(points, cfg)?;
        Ok(Self {
            tree,
            parallel: cfg.parallel,
            query_order: cfg.query_order,
        })
    }

    /// The underlying tree (stats, modeled times).
    pub fn tree(&self) -> &LocalKdTree {
        &self.tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.tree.dims()
    }

    /// `k` nearest neighbors of one query (ascending distance).
    pub fn query(&self, q: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        self.tree.query(q, k)
    }

    /// `k` nearest neighbors within `radius` of one query.
    pub fn query_radius(&self, q: &[f32], k: usize, radius: f32) -> Result<Vec<Neighbor>> {
        self.tree.query_radius(q, k, radius)
    }

    /// Answer a batch [`QueryRequest`] (the [`crate::engine::NnBackend`]
    /// entry point): kNN or radius-limited kNN, with per-request
    /// overrides of execution order, bound mode, and parallelism.
    /// Results come back **in input order** as a flat CSR
    /// [`NeighborTable`]; workers fill chunk-local arenas that are
    /// spliced into the table, so the batch hot path performs no
    /// per-query heap allocation.
    pub fn query_session(&self, req: &QueryRequest<'_>) -> Result<QueryResponse> {
        let t0 = std::time::Instant::now();
        req.validate()?;
        let (neighbors, counters) = self.batch_csr(
            req.queries(),
            req.k(),
            req.radius_sq(),
            req.order().unwrap_or(self.query_order),
            req.bound_mode(),
            req.parallel().unwrap_or(self.parallel),
        )?;
        panda_obs::trace::record(req.trace(), panda_obs::Stage::LeafKernel, t0);
        Ok(QueryResponse::local(
            neighbors,
            counters,
            t0.elapsed().as_secs_f64(),
        ))
    }

    /// The CSR batch engine behind [`Self::query_session`]. The
    /// execution order affects locality only: results and aggregate
    /// counters are identical for any order (each query's traversal is
    /// independent).
    pub(crate) fn batch_csr(
        &self,
        queries: &PointSet,
        k: usize,
        radius_sq: f32,
        order: QueryOrder,
        bound_mode: BoundMode,
        parallel: bool,
    ) -> Result<(NeighborTable, QueryCounters)> {
        if k == 0 {
            return Err(PandaError::ZeroK);
        }
        if queries.dims() != self.dims() {
            return Err(PandaError::DimsMismatch {
                expected: self.dims(),
                got: queries.dims(),
            });
        }
        crate::faultpoint::maybe_fail(crate::faultpoint::points::ENGINE_LEAF_DISPATCH)?;
        let n = queries.len();
        let schedule: Vec<u32> = match order {
            QueryOrder::Input => (0..n as u32).collect(),
            QueryOrder::Morton => morton_schedule(queries),
        };
        // Each worker owns ONE reusable heap + workspace + arena for its
        // whole chunk: a query appends its sorted neighbors to the arena
        // and records `(input slot, count)`.
        let run_one = |qi: u32,
                       heap: &mut KnnHeap,
                       ws: &mut QueryWorkspace,
                       arena: &mut Vec<Neighbor>,
                       runs: &mut Vec<(u32, u32)>,
                       c: &mut QueryCounters| {
            heap.reset(k, radius_sq);
            self.tree
                .query_into(queries.point(qi as usize), heap, bound_mode, ws, c);
            let start = arena.len();
            heap.append_sorted_into(arena);
            runs.push((qi, (arena.len() - start) as u32));
        };
        let chunks: Vec<ChunkResult> = if parallel {
            // Contiguous chunks of the (possibly reordered) schedule.
            schedule
                .into_par_iter()
                .with_min_len(MIN_CHUNK)
                .fold(
                    || {
                        (
                            Vec::new(),
                            Vec::new(),
                            KnnHeap::new(k),
                            QueryWorkspace::new(),
                            QueryCounters::default(),
                        )
                    },
                    |(mut runs, mut arena, mut heap, mut ws, mut c), qi| {
                        run_one(qi, &mut heap, &mut ws, &mut arena, &mut runs, &mut c);
                        (runs, arena, heap, ws, c)
                    },
                )
                .map(|(runs, arena, _heap, _ws, c)| (runs, arena, c))
                .collect()
        } else {
            let mut runs = Vec::with_capacity(n);
            let mut arena = Vec::new();
            let mut heap = KnnHeap::new(k);
            let mut ws = QueryWorkspace::new();
            let mut c = QueryCounters::default();
            for &qi in &schedule {
                run_one(qi, &mut heap, &mut ws, &mut arena, &mut runs, &mut c);
            }
            vec![(runs, arena, c)]
        };
        // Splice: counts → CSR table (input order), then copy each
        // chunk's runs into their final rows in place.
        let mut counts = vec![0u32; n];
        for (runs, _, _) in &chunks {
            for &(slot, count) in runs {
                counts[slot as usize] = count;
            }
        }
        let mut table = NeighborTable::with_row_counts(&counts)?;
        let mut counters = QueryCounters::default();
        for (runs, chunk_arena, c) in chunks {
            counters.add(&c);
            let mut cursor = 0usize;
            for (slot, count) in runs {
                let count = count as usize;
                table
                    .row_mut(slot as usize)
                    .copy_from_slice(&chunk_arena[cursor..cursor + count]);
                cursor += count;
            }
        }
        Ok((table, counters))
    }

    /// The k-nearest-neighbor **graph** of the indexed points themselves
    /// (each point queried against the index, excluding itself) — the
    /// workload of distributed KNN-graph construction (the paper's
    /// related-work \[21\]) and the backbone of density-based analyses like
    /// the halo finder example.
    ///
    /// `graph[i]` holds the k nearest *other* points of point `i`
    /// (ascending). Needs the original points to issue the self-queries.
    pub fn knn_graph(&self, points: &PointSet, k: usize) -> Result<Vec<Vec<Neighbor>>> {
        if k == 0 {
            return Err(PandaError::ZeroK);
        }
        if points.dims() != self.dims() {
            return Err(PandaError::DimsMismatch {
                expected: self.dims(),
                got: points.dims(),
            });
        }
        if points.len() != self.len() {
            return Err(PandaError::LenMismatch {
                expected: self.len(),
                got: points.len(),
            });
        }
        // query k+1 and drop the self-match (distance 0 with own id)
        let (table, _counters) = self.batch_csr(
            points,
            k + 1,
            f32::INFINITY,
            self.query_order,
            BoundMode::Exact,
            self.parallel,
        )?;
        Ok(table
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let mut ns = row.to_vec();
                let own = points.id(i);
                if let Some(pos) = ns.iter().position(|n| n.id == own && n.dist_sq == 0.0) {
                    ns.remove(pos);
                } else {
                    ns.pop(); // self wasn't in top-(k+1): keep the k closest
                }
                ns.truncate(k);
                ns
            })
            .collect())
    }

    /// Modeled wall-seconds for a batch of queries with `counters`, under
    /// `cost`'s machine at an explicit thread count (Fig. 6/8 sweeps).
    pub fn modeled_query_time_at(
        &self,
        counters: &QueryCounters,
        cost: &CostModel,
        threads: usize,
        smt: bool,
    ) -> f64 {
        let cpu = counters.cpu_seconds(&cost.ops, self.dims());
        let mem = counters.mem_bytes(self.dims());
        cost.thread.parallel_time_at(cpu, mem, threads, smt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QueryOrder;
    use crate::rng::SplitRng;

    fn random_ps(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut rng = SplitRng::new(seed);
        PointSet::from_coords(
            dims,
            (0..n * dims)
                .map(|_| (rng.next_f64() * 100.0) as f32)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn batch_matches_single_queries() {
        let ps = random_ps(3000, 3, 1);
        let queries = random_ps(64, 3, 2);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let res = idx.query_session(&QueryRequest::knn(&queries, 4)).unwrap();
        assert_eq!(res.len(), 64);
        assert_eq!(res.counters.queries, 64);
        assert!(res.wall_seconds >= 0.0);
        for (i, row) in res.neighbors.iter().enumerate() {
            let single = idx.query(queries.point(i), 4).unwrap();
            let a: Vec<f32> = row.iter().map(|n| n.dist_sq).collect();
            let b: Vec<f32> = single.iter().map(|n| n.dist_sq).collect();
            assert_eq!(a, b, "query {i}");
        }
    }

    #[test]
    fn radius_limited_session_matches_query_radius() {
        let ps = random_ps(2000, 3, 52);
        let queries = random_ps(60, 3, 53);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let radius = 5.0f32;
        let res = idx
            .query_session(&QueryRequest::knn(&queries, 8).with_radius(radius))
            .unwrap();
        for (i, row) in res.neighbors.iter().enumerate() {
            let single = idx.query_radius(queries.point(i), 8, radius).unwrap();
            let a: Vec<(f32, u64)> = row.iter().map(|n| (n.dist_sq, n.id)).collect();
            let b: Vec<(f32, u64)> = single.iter().map(|n| (n.dist_sq, n.id)).collect();
            assert_eq!(a, b, "query {i}");
            assert!(row.iter().all(|n| n.dist_sq < radius * radius));
        }
    }

    #[test]
    fn session_rejects_bad_radius() {
        let ps = random_ps(100, 3, 54);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let queries = random_ps(4, 3, 55);
        assert!(matches!(
            idx.query_session(&QueryRequest::knn(&queries, 3).with_radius(f32::NAN)),
            Err(PandaError::BadRadius { .. })
        ));
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let ps = random_ps(5000, 3, 3);
        let queries = random_ps(200, 3, 4);
        let seq = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let par = KnnIndex::build(
            &ps,
            &TreeConfig::default().with_parallel(true).with_threads(2),
        )
        .unwrap();
        let a = seq.query_session(&QueryRequest::knn(&queries, 5)).unwrap();
        let b = par.query_session(&QueryRequest::knn(&queries, 5)).unwrap();
        for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
            let dx: Vec<f32> = x.iter().map(|n| n.dist_sq).collect();
            let dy: Vec<f32> = y.iter().map(|n| n.dist_sq).collect();
            assert_eq!(dx, dy);
        }
        // identical traversal work regardless of execution strategy —
        // both trees are built from the same seed & both traverse exactly
        assert_eq!(a.counters.queries, b.counters.queries);
    }

    #[test]
    fn batch_validates_inputs() {
        let ps = random_ps(100, 3, 5);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let queries = random_ps(4, 2, 6);
        assert!(matches!(
            idx.query_session(&QueryRequest::knn(&queries, 3)),
            Err(PandaError::DimsMismatch { .. })
        ));
        let q3 = random_ps(4, 3, 6);
        assert!(matches!(
            idx.query_session(&QueryRequest::knn(&q3, 0)),
            Err(PandaError::ZeroK)
        ));
    }

    #[test]
    fn modeled_query_time_scales_down_with_threads() {
        let ps = random_ps(20_000, 3, 7);
        let queries = random_ps(2000, 3, 8);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let counters = idx
            .query_session(&QueryRequest::knn(&queries, 5))
            .unwrap()
            .counters;
        let cost = CostModel::default();
        let t1 = idx.modeled_query_time_at(&counters, &cost, 1, false);
        let t24 = idx.modeled_query_time_at(&counters, &cost, 24, false);
        let t24smt = idx.modeled_query_time_at(&counters, &cost, 24, true);
        assert!(t1 > t24);
        let speedup = t1 / t24;
        assert!(
            (4.0..=24.0).contains(&speedup),
            "modeled 24T query speedup {speedup}"
        );
        assert!(t24smt <= t24, "SMT should not hurt");
    }

    #[test]
    fn knn_graph_excludes_self_and_matches_brute() {
        let ps = random_ps(800, 3, 21);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let graph = idx.knn_graph(&ps, 4).unwrap();
        assert_eq!(graph.len(), 800);
        for (i, ns) in graph.iter().enumerate() {
            assert_eq!(ns.len(), 4);
            assert!(ns.iter().all(|n| n.id != ps.id(i)), "self-edge at {i}");
            // brute reference excluding self
            let mut all: Vec<(f32, u64)> = (0..ps.len())
                .filter(|&j| j != i)
                .map(|j| (ps.dist_sq_to(ps.point(i), j), ps.id(j)))
                .collect();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let expect: Vec<f32> = all[..4].iter().map(|p| p.0).collect();
            let got: Vec<f32> = ns.iter().map(|n| n.dist_sq).collect();
            assert_eq!(got, expect, "node {i}");
            if i >= 50 {
                break; // brute check on a prefix keeps the test fast
            }
        }
    }

    #[test]
    fn knn_graph_with_duplicate_points() {
        // duplicates: the self-exclusion must remove *itself*, not a
        // co-located twin (twins are legitimate neighbors at distance 0)
        let mut ps = PointSet::new(2).unwrap();
        for i in 0..10u64 {
            ps.push(&[1.0, 1.0], i);
        }
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let graph = idx.knn_graph(&ps, 3).unwrap();
        for (i, ns) in graph.iter().enumerate() {
            assert_eq!(ns.len(), 3);
            assert!(ns.iter().all(|n| n.dist_sq == 0.0));
            assert!(ns.iter().all(|n| n.id != ps.id(i)));
        }
    }

    #[test]
    fn knn_graph_validates() {
        let ps = random_ps(50, 3, 22);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        assert!(idx.knn_graph(&ps, 0).is_err());
        // same dims, wrong point count: must be a LenMismatch (not a
        // dims error claiming expected == got)
        let other = random_ps(10, 3, 23);
        assert!(matches!(
            idx.knn_graph(&other, 3),
            Err(PandaError::LenMismatch {
                expected: 50,
                got: 10
            })
        ));
        // wrong dims stays a DimsMismatch
        let other_dims = random_ps(50, 2, 23);
        assert!(matches!(
            idx.knn_graph(&other_dims, 3),
            Err(PandaError::DimsMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn morton_order_matches_input_order_exactly() {
        let ps = random_ps(4000, 3, 31);
        let queries = random_ps(500, 3, 32);
        for parallel in [false, true] {
            let cfg = TreeConfig::default()
                .with_parallel(parallel)
                .with_threads(2);
            let idx = KnnIndex::build(&ps, &cfg).unwrap();
            let a = idx
                .query_session(&QueryRequest::knn(&queries, 5).with_order(QueryOrder::Input))
                .unwrap();
            let b = idx
                .query_session(&QueryRequest::knn(&queries, 5).with_order(QueryOrder::Morton))
                .unwrap();
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.neighbors.iter().zip(b.neighbors.iter()).enumerate() {
                let dx: Vec<(f32, u64)> = x.iter().map(|n| (n.dist_sq, n.id)).collect();
                let dy: Vec<(f32, u64)> = y.iter().map(|n| (n.dist_sq, n.id)).collect();
                assert_eq!(dx, dy, "query {i} parallel={parallel}");
            }
            // each query's traversal is independent of execution order, so
            // the aggregate work must be identical too
            assert_eq!(a.counters, b.counters, "parallel={parallel}");
        }
    }

    #[test]
    fn configured_query_order_is_used_by_default() {
        let ps = random_ps(2000, 3, 33);
        let queries = random_ps(200, 3, 34);
        let idx = KnnIndex::build(
            &ps,
            &TreeConfig::default().with_query_order(QueryOrder::Morton),
        )
        .unwrap();
        let a = idx
            .query_session(&QueryRequest::knn(&queries, 3))
            .unwrap()
            .neighbors;
        let b = idx
            .query_session(&QueryRequest::knn(&queries, 3).with_order(QueryOrder::Input))
            .unwrap()
            .neighbors;
        for (x, y) in a.iter().zip(b.iter()) {
            let dx: Vec<(f32, u64)> = x.iter().map(|n| (n.dist_sq, n.id)).collect();
            let dy: Vec<(f32, u64)> = y.iter().map(|n| (n.dist_sq, n.id)).collect();
            assert_eq!(dx, dy);
        }
    }

    #[test]
    fn kernel_counters_are_populated() {
        let ps = random_ps(5000, 3, 35);
        let queries = random_ps(100, 3, 36);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let c = idx
            .query_session(&QueryRequest::knn(&queries, 5))
            .unwrap()
            .counters;
        assert_eq!(c.leaf_kernel_calls, c.leaves_scanned);
        // the whole point of the fused kernel: most blocks die in-register
        assert!(c.kernel_blocks_pruned > 0);
        assert!(c.kernel_blocks_pruned <= c.points_scanned / 8);
    }

    #[test]
    fn empty_batch_is_fine() {
        let ps = random_ps(100, 3, 37);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let empty = PointSet::new(3).unwrap();
        for order in [QueryOrder::Input, QueryOrder::Morton] {
            let res = idx
                .query_session(&QueryRequest::knn(&empty, 4).with_order(order))
                .unwrap();
            assert!(res.is_empty());
            assert_eq!(res.counters.queries, 0);
        }
    }

    #[test]
    fn accessors() {
        let ps = random_ps(128, 10, 9);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        assert_eq!(idx.len(), 128);
        assert_eq!(idx.dims(), 10);
        assert!(!idx.is_empty());
        assert!(idx.tree().stats().n_leaves > 0);
    }
}
