//! Single-node KNN index: the shared-memory face of PANDA.
//!
//! Wraps [`LocalKdTree`] with batched, rayon-parallel querying —
//! "parallelizing over queries on shared memory is simple" (§V-B2); the
//! interesting part is that construction is also parallel here, which is
//! what the paper's Fig. 6/7 single-node comparisons measure.

use rayon::prelude::*;

use panda_comm::CostModel;

use crate::config::{BoundMode, TreeConfig};
use crate::counters::QueryCounters;
use crate::error::{PandaError, Result};
use crate::heap::{KnnHeap, Neighbor};
use crate::local_tree::{LocalKdTree, QueryWorkspace};
use crate::point::PointSet;

/// A single-node KNN index.
#[derive(Clone, Debug)]
pub struct KnnIndex {
    tree: LocalKdTree,
    parallel: bool,
}

impl KnnIndex {
    /// Build an index over `points`.
    pub fn build(points: &PointSet, cfg: &TreeConfig) -> Result<Self> {
        let tree = LocalKdTree::build(points, cfg)?;
        Ok(Self { tree, parallel: cfg.parallel })
    }

    /// The underlying tree (stats, modeled times).
    pub fn tree(&self) -> &LocalKdTree {
        &self.tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.tree.dims()
    }

    /// `k` nearest neighbors of one query (ascending distance).
    pub fn query(&self, q: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        self.tree.query(q, k)
    }

    /// `k` nearest neighbors within `radius` of one query.
    pub fn query_radius(&self, q: &[f32], k: usize, radius: f32) -> Result<Vec<Neighbor>> {
        self.tree.query_radius(q, k, radius)
    }

    /// Batched queries; parallelized over queries with rayon when the
    /// index was built with `parallel = true`. Returns per-query results
    /// plus the aggregate traversal counters (which feed the thread-scaling
    /// model of Fig. 6).
    pub fn query_batch(
        &self,
        queries: &PointSet,
        k: usize,
    ) -> Result<(Vec<Vec<Neighbor>>, QueryCounters)> {
        if k == 0 {
            return Err(PandaError::ZeroK);
        }
        if queries.dims() != self.dims() {
            return Err(PandaError::DimsMismatch { expected: self.dims(), got: queries.dims() });
        }
        let run_one = |i: usize, ws: &mut QueryWorkspace, c: &mut QueryCounters| {
            let mut heap = KnnHeap::new(k);
            self.tree.query_into(queries.point(i), &mut heap, BoundMode::Exact, ws, c);
            heap.into_sorted()
        };
        if self.parallel {
            let results: Vec<(Vec<Vec<Neighbor>>, QueryCounters)> = (0..queries.len())
                .into_par_iter()
                .fold(
                    || (Vec::new(), QueryWorkspace::new(), QueryCounters::default()),
                    |(mut out, mut ws, mut c), i| {
                        out.push(run_one(i, &mut ws, &mut c));
                        (out, ws, c)
                    },
                )
                .map(|(out, _ws, c)| (out, c))
                .collect();
            // rayon fold order within a chunk is index order, and chunks
            // are produced in index order, so concatenation preserves it.
            let mut all = Vec::with_capacity(queries.len());
            let mut counters = QueryCounters::default();
            for (out, c) in results {
                all.extend(out);
                counters.add(&c);
            }
            Ok((all, counters))
        } else {
            let mut ws = QueryWorkspace::new();
            let mut counters = QueryCounters::default();
            let out = (0..queries.len()).map(|i| run_one(i, &mut ws, &mut counters)).collect();
            Ok((out, counters))
        }
    }

    /// The k-nearest-neighbor **graph** of the indexed points themselves
    /// (each point queried against the index, excluding itself) — the
    /// workload of distributed KNN-graph construction (the paper's
    /// related-work [21]) and the backbone of density-based analyses like
    /// the halo finder example.
    ///
    /// `graph[i]` holds the k nearest *other* points of point `i`
    /// (ascending). Needs the original points to issue the self-queries.
    pub fn knn_graph(&self, points: &PointSet, k: usize) -> Result<Vec<Vec<Neighbor>>> {
        if k == 0 {
            return Err(PandaError::ZeroK);
        }
        if points.dims() != self.dims() || points.len() != self.len() {
            return Err(PandaError::DimsMismatch { expected: self.dims(), got: points.dims() });
        }
        // query k+1 and drop the self-match (distance 0 with own id)
        let (raw, _counters) = self.query_batch(points, k + 1)?;
        Ok(raw
            .into_iter()
            .enumerate()
            .map(|(i, mut ns)| {
                let own = points.id(i);
                if let Some(pos) = ns.iter().position(|n| n.id == own && n.dist_sq == 0.0) {
                    ns.remove(pos);
                } else {
                    ns.pop(); // self wasn't in top-(k+1): keep the k closest
                }
                ns.truncate(k);
                ns
            })
            .collect())
    }

    /// Modeled wall-seconds for a batch of queries with `counters`, under
    /// `cost`'s machine at an explicit thread count (Fig. 6/8 sweeps).
    pub fn modeled_query_time_at(
        &self,
        counters: &QueryCounters,
        cost: &CostModel,
        threads: usize,
        smt: bool,
    ) -> f64 {
        let cpu = counters.cpu_seconds(&cost.ops, self.dims());
        let mem = counters.mem_bytes(self.dims());
        cost.thread.parallel_time_at(cpu, mem, threads, smt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitRng;

    fn random_ps(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut rng = SplitRng::new(seed);
        PointSet::from_coords(
            dims,
            (0..n * dims).map(|_| (rng.next_f64() * 100.0) as f32).collect(),
        )
        .unwrap()
    }

    #[test]
    fn batch_matches_single_queries() {
        let ps = random_ps(3000, 3, 1);
        let queries = random_ps(64, 3, 2);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let (batch, counters) = idx.query_batch(&queries, 4).unwrap();
        assert_eq!(batch.len(), 64);
        assert_eq!(counters.queries, 64);
        for (i, res) in batch.iter().enumerate() {
            let single = idx.query(queries.point(i), 4).unwrap();
            let a: Vec<f32> = res.iter().map(|n| n.dist_sq).collect();
            let b: Vec<f32> = single.iter().map(|n| n.dist_sq).collect();
            assert_eq!(a, b, "query {i}");
        }
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let ps = random_ps(5000, 3, 3);
        let queries = random_ps(200, 3, 4);
        let seq = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let par =
            KnnIndex::build(&ps, &TreeConfig::default().with_parallel(true).with_threads(2))
                .unwrap();
        let (a, ca) = seq.query_batch(&queries, 5).unwrap();
        let (b, cb) = par.query_batch(&queries, 5).unwrap();
        for (x, y) in a.iter().zip(&b) {
            let dx: Vec<f32> = x.iter().map(|n| n.dist_sq).collect();
            let dy: Vec<f32> = y.iter().map(|n| n.dist_sq).collect();
            assert_eq!(dx, dy);
        }
        // identical traversal work regardless of execution strategy —
        // both trees are built from the same seed & both traverse exactly
        assert_eq!(ca.queries, cb.queries);
    }

    #[test]
    fn batch_validates_inputs() {
        let ps = random_ps(100, 3, 5);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let queries = random_ps(4, 2, 6);
        assert!(matches!(
            idx.query_batch(&queries, 3),
            Err(PandaError::DimsMismatch { .. })
        ));
        let q3 = random_ps(4, 3, 6);
        assert!(matches!(idx.query_batch(&q3, 0), Err(PandaError::ZeroK)));
    }

    #[test]
    fn modeled_query_time_scales_down_with_threads() {
        let ps = random_ps(20_000, 3, 7);
        let queries = random_ps(2000, 3, 8);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let (_res, counters) = idx.query_batch(&queries, 5).unwrap();
        let cost = CostModel::default();
        let t1 = idx.modeled_query_time_at(&counters, &cost, 1, false);
        let t24 = idx.modeled_query_time_at(&counters, &cost, 24, false);
        let t24smt = idx.modeled_query_time_at(&counters, &cost, 24, true);
        assert!(t1 > t24);
        let speedup = t1 / t24;
        assert!((4.0..=24.0).contains(&speedup), "modeled 24T query speedup {speedup}");
        assert!(t24smt <= t24, "SMT should not hurt");
    }

    #[test]
    fn knn_graph_excludes_self_and_matches_brute() {
        let ps = random_ps(800, 3, 21);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let graph = idx.knn_graph(&ps, 4).unwrap();
        assert_eq!(graph.len(), 800);
        for (i, ns) in graph.iter().enumerate() {
            assert_eq!(ns.len(), 4);
            assert!(ns.iter().all(|n| n.id != ps.id(i)), "self-edge at {i}");
            // brute reference excluding self
            let mut all: Vec<(f32, u64)> = (0..ps.len())
                .filter(|&j| j != i)
                .map(|j| (ps.dist_sq_to(ps.point(i), j), ps.id(j)))
                .collect();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let expect: Vec<f32> = all[..4].iter().map(|p| p.0).collect();
            let got: Vec<f32> = ns.iter().map(|n| n.dist_sq).collect();
            assert_eq!(got, expect, "node {i}");
            if i >= 50 {
                break; // brute check on a prefix keeps the test fast
            }
        }
    }

    #[test]
    fn knn_graph_with_duplicate_points() {
        // duplicates: the self-exclusion must remove *itself*, not a
        // co-located twin (twins are legitimate neighbors at distance 0)
        let mut ps = PointSet::new(2).unwrap();
        for i in 0..10u64 {
            ps.push(&[1.0, 1.0], i);
        }
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        let graph = idx.knn_graph(&ps, 3).unwrap();
        for (i, ns) in graph.iter().enumerate() {
            assert_eq!(ns.len(), 3);
            assert!(ns.iter().all(|n| n.dist_sq == 0.0));
            assert!(ns.iter().all(|n| n.id != ps.id(i)));
        }
    }

    #[test]
    fn knn_graph_validates() {
        let ps = random_ps(50, 3, 22);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        assert!(idx.knn_graph(&ps, 0).is_err());
        let other = random_ps(10, 3, 23);
        assert!(idx.knn_graph(&other, 3).is_err());
    }

    #[test]
    fn accessors() {
        let ps = random_ps(128, 10, 9);
        let idx = KnnIndex::build(&ps, &TreeConfig::default()).unwrap();
        assert_eq!(idx.len(), 128);
        assert_eq!(idx.dims(), 10);
        assert!(!idx.is_empty());
        assert!(idx.tree().stats().n_leaves > 0);
    }
}
