//! The unified query request: one validated entry point for kNN,
//! radius-limited kNN, and the execution knobs that used to be scattered
//! across `query_batch` arguments and `QueryConfig` fields.

use std::time::Duration;

use panda_obs::TraceId;

use crate::config::{BoundMode, QueryConfig, QueryOrder};
use crate::error::{PandaError, Result};
use crate::point::PointSet;

/// A batch of nearest-neighbor queries plus every knob a backend may
/// honor, built fluently:
///
/// ```
/// use panda_core::engine::QueryRequest;
/// use panda_core::{PointSet, QueryOrder};
///
/// let queries = PointSet::from_coords(3, vec![0.1, 0.2, 0.3])?;
/// let req = QueryRequest::knn(&queries, 5)
///     .with_radius(0.25)
///     .with_order(QueryOrder::Morton);
/// assert_eq!(req.k(), 5);
/// req.validate()?;
/// # Ok::<(), panda_core::PandaError>(())
/// ```
///
/// Local backends use `k`, `radius`, `order`, `bound_mode`, and
/// `parallel`; distributed backends additionally honor `batch_size`,
/// `pipeline`, and `bbox_routing`. Unknown-to-a-backend knobs are
/// ignored, never an error — the same request can be replayed against
/// every [`crate::engine::NnBackend`].
#[derive(Clone, Copy, Debug)]
pub struct QueryRequest<'a> {
    queries: &'a PointSet,
    k: usize,
    radius: Option<f32>,
    order: Option<QueryOrder>,
    bound_mode: BoundMode,
    parallel: Option<bool>,
    batch_size: usize,
    pipeline: bool,
    bbox_routing: bool,
    deadline: Option<Duration>,
    trace: TraceId,
}

impl<'a> QueryRequest<'a> {
    /// A plain k-nearest-neighbor request with default execution knobs.
    pub fn knn(queries: &'a PointSet, k: usize) -> Self {
        let defaults = QueryConfig::default();
        Self {
            queries,
            k,
            radius: None,
            order: None,
            bound_mode: BoundMode::default(),
            parallel: None,
            batch_size: defaults.batch_size,
            pipeline: defaults.pipeline,
            bbox_routing: defaults.bbox_routing,
            deadline: None,
            trace: TraceId::NONE,
        }
    }

    /// Limit the search to neighbors strictly within `radius` (hybrid
    /// radius-limited kNN). Must be positive and finite — validated by
    /// [`Self::validate`].
    #[must_use]
    pub fn with_radius(mut self, radius: f32) -> Self {
        self.radius = Some(radius);
        self
    }

    /// Override the batch execution order (local backends; default: the
    /// index's configured order).
    #[must_use]
    pub fn with_order(mut self, order: QueryOrder) -> Self {
        self.order = Some(order);
        self
    }

    /// Override the traversal bound computation.
    #[must_use]
    pub fn with_bound_mode(mut self, mode: BoundMode) -> Self {
        self.bound_mode = mode;
        self
    }

    /// Override thread-parallel batch execution (local backends;
    /// default: whatever the index was built with).
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Queries per pipeline step (distributed backends).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Model software pipelining in reported times (distributed
    /// backends).
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: bool) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Refine remote-rank selection with per-rank bounding boxes
    /// (distributed backends).
    #[must_use]
    pub fn with_bbox_routing(mut self, bbox: bool) -> Self {
        self.bbox_routing = bbox;
        self
    }

    /// Give the request a deadline, measured from submission. A query
    /// service sheds submissions whose deadline has already elapsed when
    /// their micro-batch is flushed, resolving the ticket with
    /// [`PandaError::DeadlineExceeded`] instead of burning backend time
    /// on an answer the client no longer wants. Direct (non-service)
    /// backends ignore the knob, like any other unknown-to-a-backend
    /// option.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a sampled pipeline [`TraceId`] (see `panda_obs::trace`).
    /// Backends that honor it record per-stage spans for this batch;
    /// the default [`TraceId::NONE`] records nothing.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceId) -> Self {
        self.trace = trace;
        self
    }

    /// The pipeline trace id carried by this request.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// The query points.
    pub fn queries(&self) -> &'a PointSet {
        self.queries
    }

    /// Number of neighbors requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Optional radius limit.
    pub fn radius(&self) -> Option<f32> {
        self.radius
    }

    /// The radius limit as a squared bound (`∞` when unbounded) — what
    /// traversal heaps consume.
    pub fn radius_sq(&self) -> f32 {
        self.radius.map_or(f32::INFINITY, |r| r * r)
    }

    /// Requested execution order, if overridden.
    pub fn order(&self) -> Option<QueryOrder> {
        self.order
    }

    /// Traversal bound computation.
    pub fn bound_mode(&self) -> BoundMode {
        self.bound_mode
    }

    /// Requested parallelism override, if any.
    pub fn parallel(&self) -> Option<bool> {
        self.parallel
    }

    /// Distributed pipeline step size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Whether reported distributed times model software pipelining.
    pub fn pipeline(&self) -> bool {
        self.pipeline
    }

    /// Whether distributed routing refines with per-rank bounding boxes.
    pub fn bbox_routing(&self) -> bool {
        self.bbox_routing
    }

    /// Optional deadline, relative to submission time.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Validate the request: `k ≥ 1` ([`PandaError::ZeroK`]), a radius —
    /// when given — positive and finite ([`PandaError::BadRadius`]),
    /// `batch_size ≥ 1`, and finite query coordinates.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(PandaError::ZeroK);
        }
        if let Some(r) = self.radius {
            if !r.is_finite() || r <= 0.0 {
                return Err(PandaError::BadRadius { radius: r });
            }
        }
        if self.batch_size == 0 {
            return Err(PandaError::BadConfig("batch_size must be ≥ 1".into()));
        }
        self.queries.validate()
    }

    /// Lift a distributed-engine [`QueryConfig`] into a request over
    /// `queries` (the inverse of [`Self::to_query_config`]; used by
    /// config-driven harnesses).
    pub fn from_config(queries: &'a PointSet, cfg: &QueryConfig) -> Self {
        let mut req = Self::knn(queries, cfg.k)
            .with_bound_mode(cfg.bound_mode)
            .with_batch_size(cfg.batch_size)
            .with_pipeline(cfg.pipeline)
            .with_bbox_routing(cfg.bbox_routing);
        // `Input` is the config default; leaving the request's order as
        // "not overridden" preserves a local index's own configured order
        // when the same request is replayed against it.
        if cfg.order != QueryOrder::Input {
            req = req.with_order(cfg.order);
        }
        // `+inf` is the config's "no limit" sentinel and maps to no radius;
        // every other value (including NaN / -inf / ≤ 0) is carried over so
        // `validate` rejects exactly what `QueryConfig::validate` rejects.
        if cfg.initial_radius != f32::INFINITY {
            req = req.with_radius(cfg.initial_radius);
        }
        req
    }

    /// Lower the request into the distributed engine's [`QueryConfig`].
    pub fn to_query_config(&self) -> QueryConfig {
        QueryConfig {
            k: self.k,
            batch_size: self.batch_size,
            pipeline: self.pipeline,
            bbox_routing: self.bbox_routing,
            bound_mode: self.bound_mode,
            initial_radius: self.radius.unwrap_or(f32::INFINITY),
            order: self.order.unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qs() -> PointSet {
        PointSet::from_coords(2, vec![0.0, 0.0, 1.0, 1.0]).unwrap()
    }

    #[test]
    fn builder_composes_and_validates() {
        let queries = qs();
        let req = QueryRequest::knn(&queries, 3)
            .with_radius(2.5)
            .with_order(QueryOrder::Morton)
            .with_bound_mode(BoundMode::PaperScalar)
            .with_parallel(true)
            .with_batch_size(64)
            .with_pipeline(false)
            .with_bbox_routing(false);
        assert!(req.validate().is_ok());
        assert_eq!(req.k(), 3);
        assert_eq!(req.radius(), Some(2.5));
        assert_eq!(req.radius_sq(), 6.25);
        assert_eq!(req.order(), Some(QueryOrder::Morton));
        assert_eq!(req.bound_mode(), BoundMode::PaperScalar);
        assert_eq!(req.parallel(), Some(true));
        let cfg = req.to_query_config();
        assert_eq!(cfg.k, 3);
        assert_eq!(cfg.batch_size, 64);
        assert!(!cfg.pipeline);
        assert!(!cfg.bbox_routing);
        assert_eq!(cfg.initial_radius, 2.5);
        assert_eq!(cfg.order, QueryOrder::Morton);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn order_round_trips_through_query_config() {
        let queries = qs();
        // Morton survives the round trip
        let cfg = QueryConfig {
            order: QueryOrder::Morton,
            ..QueryConfig::with_k(2)
        };
        let req = QueryRequest::from_config(&queries, &cfg);
        assert_eq!(req.order(), Some(QueryOrder::Morton));
        assert_eq!(req.to_query_config(), cfg);
        // Input (the default) lifts to "no override" so a local index's
        // configured order still applies on replay
        let req = QueryRequest::from_config(&queries, &QueryConfig::with_k(2));
        assert_eq!(req.order(), None);
        assert_eq!(req.to_query_config().order, QueryOrder::Input);
    }

    #[test]
    fn zero_k_rejected() {
        let queries = qs();
        assert!(matches!(
            QueryRequest::knn(&queries, 0).validate(),
            Err(PandaError::ZeroK)
        ));
    }

    #[test]
    fn bad_radii_rejected_with_dedicated_variant() {
        let queries = qs();
        for r in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -1.0, 0.0] {
            let err = QueryRequest::knn(&queries, 3)
                .with_radius(r)
                .validate()
                .unwrap_err();
            match err {
                PandaError::BadRadius { radius } => {
                    assert!(radius.is_nan() == r.is_nan() && (r.is_nan() || radius == r));
                }
                other => panic!("expected BadRadius for {r}, got {other:?}"),
            }
            // the message names the offending value and the remedy
            let msg = PandaError::BadRadius { radius: r }.to_string();
            assert!(msg.contains("positive finite"), "{msg}");
        }
    }

    #[test]
    fn unbounded_radius_is_infinity_squared() {
        let queries = qs();
        let req = QueryRequest::knn(&queries, 1);
        assert_eq!(req.radius(), None);
        assert_eq!(req.radius_sq(), f32::INFINITY);
        assert_eq!(req.to_query_config().initial_radius, f32::INFINITY);
    }

    #[test]
    fn from_config_round_trips_and_preserves_invalid_radii() {
        let queries = qs();
        // valid finite radius round-trips
        let cfg = QueryConfig {
            initial_radius: 2.5,
            ..QueryConfig::with_k(3)
        };
        let req = QueryRequest::from_config(&queries, &cfg);
        assert_eq!(req.radius(), Some(2.5));
        assert_eq!(req.to_query_config(), cfg);
        // +inf sentinel means "no radius"
        let unbounded = QueryConfig::with_k(3);
        let req = QueryRequest::from_config(&queries, &unbounded);
        assert_eq!(req.radius(), None);
        assert!(req.validate().is_ok());
        // a config that QueryConfig::validate rejects must also be
        // rejected after lifting — never silently made unbounded
        for r in [f32::NAN, f32::NEG_INFINITY, -1.0, 0.0] {
            let bad = QueryConfig {
                initial_radius: r,
                ..QueryConfig::with_k(3)
            };
            assert!(bad.validate().is_err());
            assert!(matches!(
                QueryRequest::from_config(&queries, &bad).validate(),
                Err(PandaError::BadRadius { .. })
            ));
        }
    }

    #[test]
    fn deadline_is_carried_and_optional() {
        let queries = qs();
        assert_eq!(QueryRequest::knn(&queries, 1).deadline(), None);
        let req = QueryRequest::knn(&queries, 1).with_deadline(Duration::from_millis(250));
        assert_eq!(req.deadline(), Some(Duration::from_millis(250)));
        assert!(req.validate().is_ok());
        // the request stays Copy with the knob set
        let copy = req;
        assert_eq!(copy.deadline(), req.deadline());
    }

    #[test]
    fn trace_id_is_carried_and_defaults_to_none() {
        let queries = qs();
        let req = QueryRequest::knn(&queries, 1);
        assert!(!req.trace().is_sampled());
        let id = TraceId::from_raw(42);
        let req = req.with_trace(id);
        assert_eq!(req.trace(), id);
        // trace does not leak into the engine config
        assert_eq!(req.to_query_config(), QueryConfig::with_k(1));
    }

    #[test]
    fn zero_batch_size_rejected() {
        let queries = qs();
        assert!(matches!(
            QueryRequest::knn(&queries, 1).with_batch_size(0).validate(),
            Err(PandaError::BadConfig(_))
        ));
    }
}
