//! Structured query results: the flat CSR [`NeighborTable`] and the
//! [`QueryResponse`] envelope every [`crate::engine::NnBackend`] returns.

use crate::counters::QueryCounters;
use crate::error::{PandaError, Result};
use crate::heap::Neighbor;
use crate::query_distributed::RemoteStats;
use crate::timers::QueryBreakdown;

/// Per-query neighbor lists stored CSR-style: one `offsets` array and one
/// contiguous [`Neighbor`] arena, instead of a `Vec<Vec<Neighbor>>` with
/// one heap allocation per query.
///
/// Row `i`'s neighbors live at `arena[offsets[i]..offsets[i + 1]]`
/// (ascending distance, ties by id). `offsets` always has `len() + 1`
/// entries with `offsets[0] == 0`; rows may be empty (radius-limited
/// queries with no match).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NeighborTable {
    offsets: Vec<u32>,
    arena: Vec<Neighbor>,
}

impl NeighborTable {
    /// An empty table (zero queries).
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            arena: Vec::new(),
        }
    }

    /// An empty table pre-sized for `n_queries` rows of ~`per_query`
    /// neighbors each.
    pub fn with_capacity(n_queries: usize, per_query: usize) -> Self {
        let mut offsets = Vec::with_capacity(n_queries + 1);
        offsets.push(0);
        Self {
            offsets,
            arena: Vec::with_capacity(n_queries * per_query),
        }
    }

    /// Build from raw CSR parts. `offsets` must start at 0, be
    /// monotonically non-decreasing, and end at `arena.len()`.
    pub fn from_parts(offsets: Vec<u32>, arena: Vec<Neighbor>) -> Result<Self> {
        let ok = offsets.first() == Some(&0)
            && offsets.windows(2).all(|w| w[0] <= w[1])
            && offsets.last().copied() == Some(arena.len() as u32)
            && arena.len() <= u32::MAX as usize;
        if !ok {
            return Err(PandaError::BadConfig(
                "NeighborTable offsets must start at 0, be monotone, and end at the arena length"
                    .into(),
            ));
        }
        Ok(Self { offsets, arena })
    }

    /// `from_parts` for internal callers that construct valid CSR by
    /// construction (checked in debug builds only).
    pub(crate) fn from_parts_unchecked(offsets: Vec<u32>, arena: Vec<Neighbor>) -> Self {
        debug_assert_eq!(offsets.first(), Some(&0));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(offsets.last().copied(), Some(arena.len() as u32));
        Self { offsets, arena }
    }

    /// Convert from the legacy nested representation.
    pub fn from_nested(nested: Vec<Vec<Neighbor>>) -> Self {
        let total: usize = nested.iter().map(Vec::len).sum();
        assert!(total <= u32::MAX as usize, "neighbor arena exceeds u32");
        let mut t = Self::with_capacity(nested.len(), total / nested.len().max(1));
        for row in &nested {
            t.push_row(row);
        }
        t
    }

    /// Convert to the legacy nested representation (allocates one `Vec`
    /// per query — only for interop with deprecated APIs).
    pub fn to_nested(&self) -> Vec<Vec<Neighbor>> {
        self.iter().map(<[Neighbor]>::to_vec).collect()
    }

    /// Consuming variant of [`Self::to_nested`].
    pub fn into_nested(self) -> Vec<Vec<Neighbor>> {
        self.to_nested()
    }

    /// Number of queries (rows).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total neighbors across all rows.
    pub fn total_neighbors(&self) -> usize {
        self.arena.len()
    }

    /// Row `i`'s neighbors (ascending distance). Panics when out of
    /// range; see [`Self::get`] for the checked variant.
    #[inline]
    pub fn row(&self, i: usize) -> &[Neighbor] {
        &self.arena[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Row `i`'s neighbors, or `None` when `i >= len()`.
    pub fn get(&self, i: usize) -> Option<&[Neighbor]> {
        (i < self.len()).then(|| self.row(i))
    }

    /// Iterate rows in query order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Neighbor]> + '_ {
        self.offsets
            .windows(2)
            .map(|w| &self.arena[w[0] as usize..w[1] as usize])
    }

    /// The raw offsets array (`len() + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat neighbor arena, all rows concatenated in query order.
    pub fn arena(&self) -> &[Neighbor] {
        &self.arena
    }

    /// Append one row (used by sequential assembly paths).
    pub fn push_row(&mut self, neighbors: &[Neighbor]) {
        self.arena.extend_from_slice(neighbors);
        assert!(self.arena.len() <= u32::MAX as usize, "arena exceeds u32");
        self.offsets.push(self.arena.len() as u32);
    }
}

impl std::ops::Index<usize> for NeighborTable {
    type Output = [Neighbor];

    fn index(&self, i: usize) -> &[Neighbor] {
        self.row(i)
    }
}

impl<'a> IntoIterator for &'a NeighborTable {
    type Item = &'a [Neighbor];
    type IntoIter = Box<dyn ExactSizeIterator<Item = &'a [Neighbor]> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// What every backend returns from [`crate::engine::NnBackend::query`]:
/// the CSR neighbor table plus the unified observability block (work
/// counters, wall timing, and — for distributed engines — remote-traffic
/// statistics and the per-phase breakdown).
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Per-query neighbors in input order.
    pub neighbors: NeighborTable,
    /// Aggregate traversal work counters.
    pub counters: QueryCounters,
    /// Real wall-clock seconds spent answering the request.
    pub wall_seconds: f64,
    /// Remote-traffic statistics (distributed backends only).
    pub remote: Option<RemoteStats>,
    /// Per-phase virtual-time breakdown (distributed backends only).
    pub breakdown: Option<QueryBreakdown>,
}

impl QueryResponse {
    /// A local (single-node) response: no remote stats, no breakdown.
    pub fn local(neighbors: NeighborTable, counters: QueryCounters, wall_seconds: f64) -> Self {
        Self {
            neighbors,
            counters,
            wall_seconds,
            remote: None,
            breakdown: None,
        }
    }

    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when no queries were answered.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(d: f32, id: u64) -> Neighbor {
        Neighbor { dist_sq: d, id }
    }

    #[test]
    fn csr_round_trips_nested() {
        let nested = vec![
            vec![n(0.5, 1), n(1.0, 2)],
            vec![],
            vec![n(0.25, 7)],
            vec![n(0.1, 3), n(0.2, 4), n(0.3, 5)],
        ];
        let t = NeighborTable::from_nested(nested.clone());
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_neighbors(), 6);
        assert_eq!(t.to_nested(), nested);
        assert_eq!(t.row(1), &[] as &[Neighbor]);
        assert_eq!(&t[3], nested[3].as_slice());
        assert_eq!(t.get(4), None);
        let rows: Vec<usize> = t.iter().map(<[Neighbor]>::len).collect();
        assert_eq!(rows, vec![2, 0, 1, 3]);
    }

    #[test]
    fn from_parts_validates() {
        assert!(NeighborTable::from_parts(vec![0, 1], vec![n(0.0, 0)]).is_ok());
        // does not start at 0
        assert!(NeighborTable::from_parts(vec![1, 1], vec![n(0.0, 0)]).is_err());
        // not monotone
        assert!(NeighborTable::from_parts(vec![0, 2, 1], vec![n(0.0, 0), n(0.0, 1)]).is_err());
        // does not cover the arena
        assert!(NeighborTable::from_parts(vec![0, 1], vec![n(0.0, 0), n(0.0, 1)]).is_err());
        // empty offsets
        assert!(NeighborTable::from_parts(vec![], vec![]).is_err());
    }

    #[test]
    fn empty_table() {
        let t = NeighborTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.total_neighbors(), 0);
    }

    #[test]
    fn push_row_appends() {
        let mut t = NeighborTable::with_capacity(2, 2);
        t.push_row(&[n(1.0, 1)]);
        t.push_row(&[n(2.0, 2), n(3.0, 3)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.offsets(), &[0, 1, 3]);
        assert_eq!(t.arena().len(), 3);
    }

    #[test]
    fn response_local_has_no_remote() {
        let r = QueryResponse::local(NeighborTable::new(), QueryCounters::default(), 0.1);
        assert!(r.is_empty());
        assert!(r.remote.is_none());
        assert!(r.breakdown.is_none());
        assert_eq!(r.wall_seconds, 0.1);
    }
}
