//! Structured query results: the flat CSR [`NeighborTable`] and the
//! [`QueryResponse`] envelope every [`crate::engine::NnBackend`] returns.

use crate::counters::QueryCounters;
use crate::error::{PandaError, Result};
use crate::heap::Neighbor;
use crate::query_distributed::RemoteStats;
use crate::timers::QueryBreakdown;

/// Per-query neighbor lists stored CSR-style: one `offsets` array and one
/// contiguous [`Neighbor`] arena, instead of a `Vec<Vec<Neighbor>>` with
/// one heap allocation per query.
///
/// Row `i`'s neighbors live at `arena[offsets[i]..offsets[i + 1]]`
/// (ascending distance, ties by id). `offsets` always has `len() + 1`
/// entries with `offsets[0] == 0`; rows may be empty (radius-limited
/// queries with no match).
#[derive(Clone, Debug, PartialEq)]
pub struct NeighborTable {
    offsets: Vec<u32>,
    arena: Vec<Neighbor>,
}

impl Default for NeighborTable {
    /// Same as [`Self::new`]: a derived default would leave `offsets`
    /// empty, violating the `len() + 1` invariant every accessor relies
    /// on.
    fn default() -> Self {
        Self::new()
    }
}

impl NeighborTable {
    /// An empty table (zero queries).
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            arena: Vec::new(),
        }
    }

    /// An empty table pre-sized for `n_queries` rows of ~`per_query`
    /// neighbors each.
    pub fn with_capacity(n_queries: usize, per_query: usize) -> Self {
        let mut offsets = Vec::with_capacity(n_queries + 1);
        offsets.push(0);
        Self {
            offsets,
            arena: Vec::with_capacity(n_queries * per_query),
        }
    }

    /// Build from raw CSR parts. `offsets` must start at 0, be
    /// monotonically non-decreasing, and end at `arena.len()`.
    pub fn from_parts(offsets: Vec<u32>, arena: Vec<Neighbor>) -> Result<Self> {
        let ok = offsets.first() == Some(&0)
            && offsets.windows(2).all(|w| w[0] <= w[1])
            && offsets.last().copied() == Some(arena.len() as u32)
            && arena.len() <= u32::MAX as usize;
        if !ok {
            return Err(PandaError::BadConfig(
                "NeighborTable offsets must start at 0, be monotone, and end at the arena length"
                    .into(),
            ));
        }
        Ok(Self { offsets, arena })
    }

    /// Convert from the legacy nested representation.
    pub fn from_nested(nested: Vec<Vec<Neighbor>>) -> Self {
        let total: usize = nested.iter().map(Vec::len).sum();
        assert!(total <= u32::MAX as usize, "neighbor arena exceeds u32");
        let mut t = Self::with_capacity(nested.len(), total / nested.len().max(1));
        for row in &nested {
            t.push_row(row);
        }
        t
    }

    /// Convert to the legacy nested representation (allocates one `Vec`
    /// per query — only for interop with deprecated APIs).
    pub fn to_nested(&self) -> Vec<Vec<Neighbor>> {
        self.iter().map(<[Neighbor]>::to_vec).collect()
    }

    /// Consuming variant of [`Self::to_nested`]: drains the arena into
    /// the per-query vectors instead of cloning it, so the table's
    /// backing storage is released as the rows are produced.
    pub fn into_nested(self) -> Vec<Vec<Neighbor>> {
        let Self { offsets, arena } = self;
        let mut rows = Vec::with_capacity(offsets.len() - 1);
        let mut drain = arena.into_iter();
        for w in offsets.windows(2) {
            rows.push(drain.by_ref().take((w[1] - w[0]) as usize).collect());
        }
        rows
    }

    /// Allocate a table with the given per-row neighbor counts, every row
    /// zero-filled, for in-place assembly through [`Self::row_mut`]. This
    /// is the arena-building primitive behind the batch and distributed
    /// engines: compute row sizes first, then let each producer write its
    /// rows directly into the final storage — no intermediate
    /// `Vec<Vec<Neighbor>>`.
    ///
    /// Errors with [`PandaError::BadConfig`] when the total neighbor
    /// count exceeds the `u32` arena limit.
    pub fn with_row_counts(counts: &[u32]) -> Result<Self> {
        let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        if total > u64::from(u32::MAX) {
            return Err(PandaError::BadConfig(
                "neighbor arena exceeds the 2^32 CSR limit; split the batch".into(),
            ));
        }
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in counts {
            acc += c;
            offsets.push(acc);
        }
        let arena = vec![
            Neighbor {
                dist_sq: 0.0,
                id: 0
            };
            total as usize
        ];
        Ok(Self { offsets, arena })
    }

    /// Mutable access to row `i` for in-place assembly (see
    /// [`Self::with_row_counts`]). Panics when out of range.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Neighbor] {
        &mut self.arena[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of queries (rows).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total neighbors across all rows.
    pub fn total_neighbors(&self) -> usize {
        self.arena.len()
    }

    /// Row `i`'s neighbors (ascending distance). Panics when out of
    /// range; see [`Self::get`] for the checked variant.
    #[inline]
    pub fn row(&self, i: usize) -> &[Neighbor] {
        &self.arena[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Row `i`'s neighbors, or `None` when `i >= len()`.
    pub fn get(&self, i: usize) -> Option<&[Neighbor]> {
        (i < self.len()).then(|| self.row(i))
    }

    /// Iterate rows in query order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Neighbor]> + '_ {
        self.offsets
            .windows(2)
            .map(|w| &self.arena[w[0] as usize..w[1] as usize])
    }

    /// The raw offsets array (`len() + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat neighbor arena, all rows concatenated in query order.
    pub fn arena(&self) -> &[Neighbor] {
        &self.arena
    }

    /// Append one row (used by sequential assembly paths).
    pub fn push_row(&mut self, neighbors: &[Neighbor]) {
        self.arena.extend_from_slice(neighbors);
        assert!(self.arena.len() <= u32::MAX as usize, "arena exceeds u32");
        self.offsets.push(self.arena.len() as u32);
    }
}

impl std::ops::Index<usize> for NeighborTable {
    type Output = [Neighbor];

    fn index(&self, i: usize) -> &[Neighbor] {
        self.row(i)
    }
}

impl<'a> IntoIterator for &'a NeighborTable {
    type Item = &'a [Neighbor];
    type IntoIter = Box<dyn ExactSizeIterator<Item = &'a [Neighbor]> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// What every backend returns from [`crate::engine::NnBackend::query`]:
/// the CSR neighbor table plus the unified observability block (work
/// counters, wall timing, and — for distributed engines — remote-traffic
/// statistics and the per-phase breakdown).
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Per-query neighbors in input order.
    pub neighbors: NeighborTable,
    /// Aggregate traversal work counters.
    pub counters: QueryCounters,
    /// Real wall-clock seconds spent answering the request.
    pub wall_seconds: f64,
    /// Remote-traffic statistics (distributed backends only).
    pub remote: Option<RemoteStats>,
    /// Per-phase virtual-time breakdown (distributed backends only).
    pub breakdown: Option<QueryBreakdown>,
}

impl QueryResponse {
    /// A local (single-node) response: no remote stats, no breakdown.
    pub fn local(neighbors: NeighborTable, counters: QueryCounters, wall_seconds: f64) -> Self {
        Self {
            neighbors,
            counters,
            wall_seconds,
            remote: None,
            breakdown: None,
        }
    }

    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when no queries were answered.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(d: f32, id: u64) -> Neighbor {
        Neighbor { dist_sq: d, id }
    }

    #[test]
    fn csr_round_trips_nested() {
        let nested = vec![
            vec![n(0.5, 1), n(1.0, 2)],
            vec![],
            vec![n(0.25, 7)],
            vec![n(0.1, 3), n(0.2, 4), n(0.3, 5)],
        ];
        let t = NeighborTable::from_nested(nested.clone());
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_neighbors(), 6);
        assert_eq!(t.to_nested(), nested);
        assert_eq!(t.row(1), &[] as &[Neighbor]);
        assert_eq!(&t[3], nested[3].as_slice());
        assert_eq!(t.get(4), None);
        let rows: Vec<usize> = t.iter().map(<[Neighbor]>::len).collect();
        assert_eq!(rows, vec![2, 0, 1, 3]);
    }

    #[test]
    fn from_parts_validates() {
        assert!(NeighborTable::from_parts(vec![0, 1], vec![n(0.0, 0)]).is_ok());
        // does not start at 0
        assert!(NeighborTable::from_parts(vec![1, 1], vec![n(0.0, 0)]).is_err());
        // not monotone
        assert!(NeighborTable::from_parts(vec![0, 2, 1], vec![n(0.0, 0), n(0.0, 1)]).is_err());
        // does not cover the arena
        assert!(NeighborTable::from_parts(vec![0, 1], vec![n(0.0, 0), n(0.0, 1)]).is_err());
        // empty offsets
        assert!(NeighborTable::from_parts(vec![], vec![]).is_err());
    }

    #[test]
    fn into_nested_drains_and_matches_to_nested() {
        let nested = vec![vec![n(0.5, 1), n(1.0, 2)], vec![], vec![n(0.25, 7)]];
        let t = NeighborTable::from_nested(nested.clone());
        assert_eq!(t.to_nested(), nested);
        assert_eq!(t.into_nested(), nested);
        // degenerate: empty table drains to no rows
        assert!(NeighborTable::new().into_nested().is_empty());
    }

    #[test]
    fn with_row_counts_and_row_mut_assemble_in_place() {
        let mut t = NeighborTable::with_row_counts(&[2, 0, 1]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_neighbors(), 3);
        t.row_mut(0).copy_from_slice(&[n(0.5, 9), n(1.5, 3)]);
        t.row_mut(2)[0] = n(0.1, 7);
        assert_eq!(t.row(0), &[n(0.5, 9), n(1.5, 3)]);
        assert_eq!(t.row(1), &[] as &[Neighbor]);
        assert_eq!(t.row(2), &[n(0.1, 7)]);
        assert_eq!(t.offsets(), &[0, 2, 2, 3]);
    }

    #[test]
    fn with_row_counts_rejects_u32_overflow() {
        // the total is checked before any allocation happens
        let err = NeighborTable::with_row_counts(&[u32::MAX, u32::MAX]).unwrap_err();
        assert!(matches!(err, PandaError::BadConfig(_)));
        assert!(err.to_string().contains("2^32"));
    }

    #[test]
    fn empty_table() {
        let t = NeighborTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.total_neighbors(), 0);
        // Default upholds the offsets invariant (a derived default would
        // panic in len()/into_nested())
        let d = NeighborTable::default();
        assert_eq!(d, t);
        assert!(d.into_nested().is_empty());
    }

    #[test]
    fn push_row_appends() {
        let mut t = NeighborTable::with_capacity(2, 2);
        t.push_row(&[n(1.0, 1)]);
        t.push_row(&[n(2.0, 2), n(3.0, 3)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.offsets(), &[0, 1, 3]);
        assert_eq!(t.arena().len(), 3);
    }

    #[test]
    fn response_local_has_no_remote() {
        let r = QueryResponse::local(NeighborTable::new(), QueryCounters::default(), 0.1);
        assert!(r.is_empty());
        assert!(r.remote.is_none());
        assert!(r.breakdown.is_none());
        assert_eq!(r.wall_seconds, 0.1);
    }
}
