//! The unified query-session API (§V's "one pipeline, many scenarios").
//!
//! Three pieces make every nearest-neighbor engine in the workspace
//! interchangeable:
//!
//! * [`NnBackend`] — an object-safe trait over build + batch query,
//!   implemented by [`crate::knn::KnnIndex`], [`ShardedIndex`], and the
//!   four baselines in `panda-baselines`;
//! * [`QueryRequest`] — a validated builder unifying `k`, optional
//!   radius, execution order, bound mode, and distributed knobs;
//! * [`QueryResponse`] — a structured result whose neighbor storage is
//!   the flat CSR [`NeighborTable`] (one offsets array + one contiguous
//!   arena) instead of a `Vec<Vec<Neighbor>>`.
//!
//! ```
//! use panda_core::engine::{NnBackend, QueryRequest};
//! use panda_core::knn::KnnIndex;
//! use panda_core::{PointSet, TreeConfig};
//!
//! let points = PointSet::from_coords(1, vec![0.0, 1.0, 2.0, 10.0])?;
//! let queries = PointSet::from_coords(1, vec![1.2])?;
//! let index = KnnIndex::build(&points, &TreeConfig::default())?;
//! let backend: &dyn NnBackend = &index;
//! let res = backend.query(&QueryRequest::knn(&queries, 2))?;
//! assert_eq!(res.neighbors.row(0)[0].id, 1); // x = 1.0
//! # Ok::<(), panda_core::PandaError>(())
//! ```

mod backend;
mod request;
mod response;
mod sharded;

pub use backend::NnBackend;
pub use request::QueryRequest;
pub use response::{NeighborTable, QueryResponse};
pub use sharded::ShardedIndex;
