//! The backend trait: one algorithm-agnostic interface over every
//! nearest-neighbor engine in the workspace.

use crate::config::TreeConfig;
use crate::engine::{QueryRequest, QueryResponse};
use crate::error::Result;
use crate::knn::KnnIndex;
use crate::point::PointSet;

/// An interchangeable nearest-neighbor engine.
///
/// The trait is object-safe: benches, figures, and parity tests iterate
/// `Box<dyn NnBackend>` (or `&dyn NnBackend`) instead of re-plumbing each
/// engine's build/query shape by hand. `build` is excluded from the
/// vtable (`where Self: Sized`); backends that need more context than
/// `(points, config)` — e.g. [`crate::engine::ShardedIndex`], which
/// needs a shard count — keep `build`'s rejecting default body and
/// provide inherent constructors instead.
///
/// Exactness contract: every implementation in this workspace answers
/// [`QueryRequest`]s **exactly** (bit-identical to brute force under the
/// default [`crate::BoundMode::Exact`]); `tests/backend_parity.rs` holds
/// all of them to it.
pub trait NnBackend {
    /// Build an index over `points`. Backends ignore `TreeConfig` fields
    /// that do not apply to them (e.g. brute force ignores all of it).
    ///
    /// The default body rejects the call: backends that need more context
    /// than `(points, config)` — e.g. [`crate::engine::ShardedIndex`],
    /// which needs a shard count — keep the default and provide inherent
    /// constructors instead.
    fn build(points: &PointSet, cfg: &TreeConfig) -> Result<Self>
    where
        Self: Sized,
    {
        let _ = (points, cfg);
        Err(crate::error::PandaError::BadConfig(
            "this backend cannot be built from (points, config) alone; \
             use its inherent constructor"
                .into(),
        ))
    }

    /// Answer a batch of queries. Results come back in input order as a
    /// flat CSR [`crate::engine::NeighborTable`].
    fn query(&self, req: &QueryRequest<'_>) -> Result<QueryResponse>;

    /// Short stable identifier for tables and logs (e.g. `"panda-local"`).
    fn name(&self) -> &'static str;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// True when no points are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed points.
    fn dims(&self) -> usize;

    /// Monotonic version stamp of the indexed data, used by caches to
    /// invalidate memoized results. Immutable backends keep the default
    /// constant `0`; mutable backends must return a value that changes
    /// whenever a write could alter any query's answer.
    fn data_epoch(&self) -> u64 {
        0
    }

    /// Number of independent shards serving this backend (`1` for every
    /// single-node engine). Sizing hint for front-end caches: a sharded
    /// backend fields proportionally more distinct hot traffic, so
    /// per-shard capacities scale by this factor (see
    /// `ServiceConfig::with_cache_capacity` in `panda_service`).
    fn shard_count(&self) -> usize {
        1
    }

    /// The backend's `panda_obs` metrics registry, when it keeps one.
    /// Front ends (e.g. `ServiceHandle::telemetry` in `panda_service`)
    /// merge it into their own snapshot so one exposition call covers
    /// the whole stack. Backends without internal metrics keep the
    /// default `None`.
    fn registry(&self) -> Option<panda_obs::Registry> {
        None
    }
}

impl NnBackend for KnnIndex {
    fn build(points: &PointSet, cfg: &TreeConfig) -> Result<Self> {
        KnnIndex::build(points, cfg)
    }

    fn query(&self, req: &QueryRequest<'_>) -> Result<QueryResponse> {
        self.query_session(req)
    }

    fn name(&self) -> &'static str {
        "panda-local"
    }

    fn len(&self) -> usize {
        KnnIndex::len(self)
    }

    fn dims(&self) -> usize {
        KnnIndex::dims(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitRng;

    fn random_ps(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut rng = SplitRng::new(seed);
        PointSet::from_coords(
            dims,
            (0..n * dims)
                .map(|_| (rng.next_f64() * 10.0) as f32)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn knn_index_through_trait_object() {
        let ps = random_ps(2000, 3, 1);
        let queries = random_ps(50, 3, 2);
        let backend: Box<dyn NnBackend> =
            Box::new(KnnIndex::build(&ps, &TreeConfig::default()).unwrap());
        assert_eq!(backend.name(), "panda-local");
        assert_eq!(backend.len(), 2000);
        assert_eq!(backend.dims(), 3);
        assert!(!backend.is_empty());
        let res = backend.query(&QueryRequest::knn(&queries, 4)).unwrap();
        assert_eq!(res.len(), 50);
        assert_eq!(res.counters.queries, 50);
        assert!(res.remote.is_none());
        for row in res.neighbors.iter() {
            assert_eq!(row.len(), 4);
            assert!(row.windows(2).all(|w| w[0].dist_sq <= w[1].dist_sq));
        }
    }
}
