//! [`ShardedIndex`]: the distributed engine as a **service-grade**
//! backend — message-passing shard workers behind a `Send + Sync` handle.
//!
//! The predecessor (`DistIndex`, PRs 2–7) bundled "this rank's SPMD
//! closure" state — a `&mut Comm` in a `RefCell` — into the backend, so
//! the one scale-out engine was the one engine the `panda_service` query
//! service could not front (`!Sync` by design, pinned in
//! `tests/thread_safety.rs`). This module inverts the ownership model:
//!
//! * **Each shard is a long-lived worker thread** that exclusively owns
//!   its local kd-tree, its comm endpoint (one element of
//!   [`panda_comm::make_endpoints`]'s mesh), and its per-step scratch
//!   (heaps, send lanes, traversal workspace). No shared mutable state,
//!   no `RefCell`, no locks on the hot path inside a worker.
//! * **The front handle routes and assembles.** `query` routes each
//!   query to its owning shard via the (cheap, immutable) global tree,
//!   scatters flat coordinate slices over channels, and the workers run
//!   the same collective pipeline as the SPMD engine
//!   ([`crate::query_distributed`]'s stages 2–5). The front end gathers
//!   each shard's CSR slice and scatters rows back into one
//!   [`NeighborTable`] in submission order — the reply channel *is* the
//!   origin-return leg, so two of the SPMD path's four alltoallv
//!   exchanges simply disappear.
//! * **Workers are supervised** like the service scheduler (PR 6): a
//!   panicking shard resolves the in-flight round with a typed
//!   [`PandaError::BackendPanicked`], the worker restarts with bounded
//!   exponential backoff, and the front end re-synchronizes every
//!   endpoint with [`panda_comm::Comm::quiesce`] (same epoch on every
//!   shard) before the next round. An injected or real comm timeout
//!   inside a worker surfaces as [`PandaError::Comm`] — never a hang —
//!   because every collective on the worker path is the fallible
//!   (`try_*`) variant with the cluster's retry policy.
//!
//! Because results are bit-for-bit identical to the single-shard local
//! engine (same kernels, same merge order — pinned by tests here and in
//! `tests/dist_order_parity.rs`), a service can front a sharded cluster
//! and still promise exactness.
//!
//! Rounds are serialized by a dispatch mutex: one query round's
//! collectives must fully drain before the next begins, or the shards'
//! collective sequence numbers would interleave. Concurrency comes from
//! the layer above (the service's micro-batcher), parallelism from
//! within the round (shards work their slices concurrently).

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use panda_comm::{make_endpoints, ClusterConfig, Comm, CommMeter};
use panda_obs::trace::{self, Stage};
use panda_obs::{Counter, Registry, TraceId};

use crate::build_distributed::{build_distributed, DistKdTree};
use crate::config::{DistConfig, QueryConfig};
use crate::counters::QueryCounters;
use crate::engine::{NeighborTable, NnBackend, QueryRequest, QueryResponse};
use crate::error::{PandaError, Result};
use crate::faultpoint::{self, points};
use crate::global_tree::GlobalKdTree;
use crate::heap::Neighbor;
use crate::local_tree::QueryWorkspace;
use crate::point::PointSet;
use crate::query_distributed::{owned_pipeline, Owned, OwnedOutput, RemoteStats};
use crate::timers::QueryBreakdown;

/// First back-off after a worker panic; doubles per consecutive panic up
/// to [`RESTART_BACKOFF_MAX`] (mirrors the service scheduler's
/// supervision discipline).
const RESTART_BACKOFF_BASE: Duration = Duration::from_millis(5);
/// Ceiling for the restart back-off.
const RESTART_BACKOFF_MAX: Duration = Duration::from_millis(250);

/// One unit of work shipped to a shard worker. Every round sends one job
/// to **every** shard — the KNN pipeline is collective, so a shard with
/// zero routed queries still has to enter the allreduce/alltoallv steps.
enum ShardJob {
    /// Stages 2–5 of the distributed KNN pipeline for the routed slice.
    Knn {
        coords: Vec<f32>,
        qids: Vec<u64>,
        cfg: Box<QueryConfig>,
        trace: TraceId,
    },
    /// Purely local fixed-radius serve (no collectives).
    Radius {
        coords: Vec<f32>,
        qids: Vec<u64>,
        r_sq: f32,
    },
    /// Reset the comm endpoint after a torn round; ack with
    /// [`ShardReply::Quiesced`].
    Quiesce { epoch: u64 },
    /// Exit the worker loop.
    Shutdown,
}

/// Per-query results of a radius job, CSR-style in routed order.
struct RadiusSlice {
    qids: Vec<u64>,
    counts: Vec<u32>,
    arena: Vec<Neighbor>,
}

enum ShardReply {
    Knn(Result<OwnedOutput>),
    Radius(Result<RadiusSlice>),
    Quiesced,
}

/// The serialized dispatch state: senders into every worker plus the one
/// shared reply channel. Guarded by a mutex because a round's collectives
/// must not interleave with another round's.
struct Dispatch {
    job_tx: Vec<Sender<ShardJob>>,
    reply_rx: Receiver<ShardReply>,
    /// Quiesce epoch, bumped once per failed round.
    epoch: u64,
}

/// A distributed kd-tree cluster behind one thread-safe handle.
///
/// `ShardedIndex: Send + Sync` — the compile-time pin that makes the
/// distributed engine service-eligible (`tests/thread_safety.rs`). Build
/// with [`ShardedIndex::build`], then use it anywhere an
/// `Arc<dyn NnBackend + Send + Sync>` is expected:
///
/// ```
/// use panda_core::engine::{NnBackend, QueryRequest, ShardedIndex};
/// use panda_core::{DistConfig, PointSet};
///
/// let points = PointSet::from_coords(1, vec![0.0, 1.0, 2.0, 10.0])?;
/// let queries = PointSet::from_coords(1, vec![1.2])?;
/// let index = ShardedIndex::build(&points, 2, &DistConfig::default())?;
/// let res = index.query(&QueryRequest::knn(&queries, 2))?;
/// assert_eq!(res.neighbors.row(0)[0].id, 1); // x = 1.0
/// # Ok::<(), panda_core::PandaError>(())
/// ```
pub struct ShardedIndex {
    /// Clone of the global BSP tree, used by the front end for routing.
    global: GlobalKdTree,
    dims: usize,
    len: usize,
    n_shards: usize,
    dispatch: Mutex<Dispatch>,
    /// Shared metrics plane: `shard.*` counters plus the workers'
    /// `comm.*` traffic totals (see [`NnBackend::registry`]).
    registry: Registry,
    restarts: Counter,
    rounds: Counter,
    queries_total: Counter,
    workers: Vec<JoinHandle<()>>,
}

fn lock_dispatch(index: &ShardedIndex) -> MutexGuard<'_, Dispatch> {
    index
        .dispatch
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn shard_gone() -> PandaError {
    PandaError::BackendPanicked("shard worker disconnected".into())
}

/// Best human-readable rendering of a panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "worker panicked (non-string payload)".into()
    }
}

/// Among the errors of a torn round, prefer a root cause over a symptom:
/// a panic or injected fault on one shard makes its *peers* time out in
/// the collectives, so `Comm` errors are reported only when nothing more
/// specific exists.
fn pick_root_cause(mut errs: Vec<PandaError>) -> PandaError {
    let root = errs
        .iter()
        .position(|e| !matches!(e, PandaError::Comm(_)))
        .unwrap_or(0);
    errs.swap_remove(root)
}

impl ShardedIndex {
    /// Build a cluster of `shards` worker threads over `points` (ids must
    /// be unique). Points are dealt round-robin across shards and then
    /// redistributed by the collective build into spatial cells, exactly
    /// as the SPMD [`build_distributed`] does.
    pub fn build(points: &PointSet, shards: usize, cfg: &DistConfig) -> Result<Self> {
        Self::build_with_cluster(points, cfg, &ClusterConfig::new(shards))
    }

    /// [`ShardedIndex::build`] with an explicit [`ClusterConfig`]:
    /// `cluster.ranks` is the shard count, and its cost model, receive
    /// timeout, and retry policy govern the workers' comm endpoints —
    /// chaos tests shorten the timeout so injected stalls surface as
    /// typed errors in milliseconds rather than minutes.
    pub fn build_with_cluster(
        points: &PointSet,
        cfg: &DistConfig,
        cluster: &ClusterConfig,
    ) -> Result<Self> {
        if cluster.ranks == 0 {
            return Err(PandaError::BadConfig(
                "sharded index needs at least one shard".into(),
            ));
        }
        points.validate()?;
        let shards = cluster.ranks;
        let dims = points.dims();
        let endpoints = make_endpoints(cluster);
        let (reply_tx, reply_rx) = channel::<ShardReply>();
        let (init_tx, init_rx) = channel::<(usize, Result<Option<GlobalKdTree>>)>();
        let registry = Registry::new();
        let restarts = registry.counter("shard.restarts");
        let rounds = registry.counter("shard.rounds");
        let queries_total = registry.counter("shard.queries");
        let mut job_tx = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, comm) in endpoints.into_iter().enumerate() {
            let (tx, rx) = channel::<ShardJob>();
            job_tx.push(tx);
            let mut mine = PointSet::new(dims)?;
            for i in (shard..points.len()).step_by(shards) {
                mine.push(points.point(i), points.id(i));
            }
            let cfg = *cfg;
            let init_tx = init_tx.clone();
            let reply_tx = reply_tx.clone();
            let restarts = restarts.clone();
            let meter = CommMeter::new(&registry);
            let handle = std::thread::Builder::new()
                .name(format!("panda-shard-{shard}"))
                .stack_size(8 << 20)
                .spawn(move || {
                    worker_entry(
                        comm, mine, cfg, shard, rx, reply_tx, init_tx, restarts, meter,
                    );
                })
                .map_err(|e| PandaError::BadConfig(format!("spawn shard worker: {e}")))?;
            workers.push(handle);
        }
        drop(init_tx);
        // The collective build either succeeds on every shard or fails on
        // every shard; keep the first error as the representative one.
        let mut global: Option<GlobalKdTree> = None;
        let mut first_err: Option<PandaError> = None;
        for _ in 0..shards {
            match init_rx.recv() {
                Ok((_, Ok(g))) => {
                    if g.is_some() {
                        global = g;
                    }
                }
                Ok((_, Err(e))) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(shard_gone());
                    }
                }
            }
        }
        if let Some(e) = first_err {
            for tx in &job_tx {
                let _ = tx.send(ShardJob::Shutdown);
            }
            for h in workers {
                let _ = h.join();
            }
            return Err(e);
        }
        let global = global.expect("shard 0 publishes the global tree");
        Ok(Self {
            global,
            dims,
            len: points.len(),
            n_shards: shards,
            dispatch: Mutex::new(Dispatch {
                job_tx,
                reply_rx,
                epoch: 0,
            }),
            registry,
            restarts,
            rounds,
            queries_total,
            workers,
        })
    }

    /// Number of shard worker threads.
    pub fn shards(&self) -> usize {
        self.n_shards
    }

    /// The global BSP tree used for routing (rank regions, bboxes).
    pub fn global(&self) -> &GlobalKdTree {
        &self.global
    }

    /// How many times a shard worker recovered from a panic. A healthy
    /// cluster stays at 0; supervision tests assert it advances.
    pub fn shard_restarts(&self) -> u64 {
        self.restarts.get()
    }

    /// Distributed fixed-radius search: per query, **all** dataset points
    /// strictly within `radius`, ascending by `(distance, id)`, as a flat
    /// CSR [`NeighborTable`] (row `i` answers `queries.point(i)`).
    ///
    /// Unlike KNN there is no bound-refinement loop: each query is routed
    /// to every shard whose region intersects the ball and the workers
    /// serve purely locally — no collectives at all.
    pub fn query_radius_all(&self, queries: &PointSet, radius: f32) -> Result<NeighborTable> {
        if radius.is_nan() || radius <= 0.0 {
            return Err(PandaError::BadConfig("radius must be positive".into()));
        }
        queries.validate()?;
        if !queries.is_empty() && queries.dims() != self.dims {
            return Err(PandaError::DimsMismatch {
                expected: self.dims,
                got: queries.dims(),
            });
        }
        let r_sq = radius * radius;
        let mut counters = QueryCounters::default();
        let mut coords: Vec<Vec<f32>> = vec![Vec::new(); self.n_shards];
        let mut qids: Vec<Vec<u64>> = vec![Vec::new(); self.n_shards];
        let mut targets = Vec::new();
        for i in 0..queries.len() {
            let q = queries.point(i);
            targets.clear();
            self.global
                .ranks_in_ball(q, r_sq, true, &mut targets, &mut counters);
            for &s in &targets {
                coords[s].extend_from_slice(q);
                qids[s].push(i as u64);
            }
        }
        let slices = {
            let mut d = lock_dispatch(self);
            for (shard, (c, q)) in coords.into_iter().zip(qids).enumerate() {
                d.job_tx[shard]
                    .send(ShardJob::Radius {
                        coords: c,
                        qids: q,
                        r_sq,
                    })
                    .map_err(|_| shard_gone())?;
            }
            self.gather_radius(&mut d)?
        };
        let mut row_counts = vec![0u32; queries.len()];
        for s in &slices {
            for (&qid, &cnt) in s.qids.iter().zip(&s.counts) {
                row_counts[qid as usize] += cnt;
            }
        }
        let mut table = NeighborTable::with_row_counts(&row_counts)?;
        let mut written = vec![0u32; queries.len()];
        for s in &slices {
            let mut cur = 0usize;
            for (&qid, &cnt) in s.qids.iter().zip(&s.counts) {
                let qid = qid as usize;
                let row = table.row_mut(qid);
                for n in &s.arena[cur..cur + cnt as usize] {
                    row[written[qid] as usize] = *n;
                    written[qid] += 1;
                }
                cur += cnt as usize;
            }
        }
        for i in 0..queries.len() {
            table.row_mut(i).sort_by(|a, b| {
                a.dist_sq
                    .partial_cmp(&b.dist_sq)
                    .expect("finite distances")
                    .then(a.id.cmp(&b.id))
            });
        }
        Ok(table)
    }

    /// One serialized KNN round: scatter the routed slices, gather every
    /// shard's output, and on any failure re-synchronize the mesh before
    /// surfacing the root cause.
    fn run_knn_round(
        &self,
        coords: Vec<Vec<f32>>,
        qids: Vec<Vec<u64>>,
        cfg: &QueryConfig,
        trace_id: TraceId,
        scatter_start: Instant,
    ) -> Result<Vec<OwnedOutput>> {
        let mut d = lock_dispatch(self);
        for (shard, (c, q)) in coords.into_iter().zip(qids).enumerate() {
            d.job_tx[shard]
                .send(ShardJob::Knn {
                    coords: c,
                    qids: q,
                    cfg: Box::new(*cfg),
                    trace: trace_id,
                })
                .map_err(|_| shard_gone())?;
        }
        // Scatter = routing + job fan-out; gather starts once the last
        // job is on its channel.
        trace::record(trace_id, Stage::Scatter, scatter_start);
        let gather_start = Instant::now();
        let mut outs = Vec::with_capacity(self.n_shards);
        let mut errs = Vec::new();
        for _ in 0..self.n_shards {
            match d.reply_rx.recv() {
                Ok(ShardReply::Knn(res)) => match res {
                    Ok(o) => outs.push(o),
                    Err(e) => errs.push(e),
                },
                Ok(_) => unreachable!("shard reply protocol violation"),
                Err(_) => return Err(shard_gone()),
            }
        }
        if !errs.is_empty() {
            // The round is torn: some shards may have consumed peer
            // payloads before the failure. Re-synchronize every endpoint
            // under the same epoch before the next round.
            self.quiesce_locked(&mut d)?;
            return Err(pick_root_cause(errs));
        }
        trace::record(trace_id, Stage::Gather, gather_start);
        Ok(outs)
    }

    fn gather_radius(&self, d: &mut Dispatch) -> Result<Vec<RadiusSlice>> {
        let mut outs = Vec::with_capacity(self.n_shards);
        let mut errs = Vec::new();
        for _ in 0..self.n_shards {
            match d.reply_rx.recv() {
                Ok(ShardReply::Radius(res)) => match res {
                    Ok(s) => outs.push(s),
                    Err(e) => errs.push(e),
                },
                Ok(_) => unreachable!("shard reply protocol violation"),
                Err(_) => return Err(shard_gone()),
            }
        }
        if !errs.is_empty() {
            // Radius jobs never touch the comm endpoint, so no quiesce is
            // needed — the failure is local to a worker.
            return Err(pick_root_cause(errs));
        }
        Ok(outs)
    }

    /// Drive every endpoint through [`Comm::quiesce`] with a fresh epoch
    /// and wait for all acks, holding the dispatch lock throughout.
    fn quiesce_locked(&self, d: &mut Dispatch) -> Result<()> {
        d.epoch += 1;
        let epoch = d.epoch;
        for tx in &d.job_tx {
            tx.send(ShardJob::Quiesce { epoch })
                .map_err(|_| shard_gone())?;
        }
        let mut acks = 0;
        while acks < self.n_shards {
            match d.reply_rx.recv() {
                Ok(ShardReply::Quiesced) => acks += 1,
                // A straggler's reply from the torn round can still be in
                // flight; drain and ignore it.
                Ok(_) => {}
                Err(_) => return Err(shard_gone()),
            }
        }
        Ok(())
    }
}

impl Drop for ShardedIndex {
    fn drop(&mut self) {
        {
            let d = lock_dispatch(self);
            for tx in &d.job_tx {
                let _ = tx.send(ShardJob::Shutdown);
            }
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("shards", &self.n_shards)
            .field("len", &self.len)
            .field("dims", &self.dims)
            .field("restarts", &self.shard_restarts())
            .finish()
    }
}

impl NnBackend for ShardedIndex {
    // `build` keeps the rejecting default: the shard count is a required
    // argument — use `ShardedIndex::build`.

    fn query(&self, req: &QueryRequest<'_>) -> Result<QueryResponse> {
        let t0 = Instant::now();
        req.validate()?;
        let queries = req.queries();
        if !queries.is_empty() && queries.dims() != self.dims {
            return Err(PandaError::DimsMismatch {
                expected: self.dims,
                got: queries.dims(),
            });
        }
        let cfg = req.to_query_config();
        let n = queries.len();
        let mut counters = QueryCounters::default();
        if n == 0 {
            return Ok(QueryResponse {
                neighbors: NeighborTable::new(),
                counters,
                wall_seconds: t0.elapsed().as_secs_f64(),
                remote: Some(RemoteStats::default()),
                breakdown: Some(QueryBreakdown::default()),
            });
        }
        self.rounds.inc();
        self.queries_total.add(n as u64);
        // Front-end routing: the same stage-1 ownership decision as the
        // SPMD engine, but the "exchange" is the scatter over channels.
        let scatter_start = Instant::now();
        let mut coords: Vec<Vec<f32>> = vec![Vec::new(); self.n_shards];
        let mut qids: Vec<Vec<u64>> = vec![Vec::new(); self.n_shards];
        for i in 0..n {
            let q = queries.point(i);
            let owner = self.global.owner(q, &mut counters);
            coords[owner].extend_from_slice(q);
            qids[owner].push(i as u64);
        }
        let outs = self.run_knn_round(coords, qids, &cfg, req.trace(), scatter_start)?;

        // Gather: scatter each shard's CSR slice back to submission order.
        let mut row_counts = vec![0u32; n];
        let mut breakdown = QueryBreakdown::default();
        let mut remote = RemoteStats::default();
        for out in &outs {
            debug_assert_eq!(out.qids.len(), out.counts.len());
            for (&qid, &cnt) in out.qids.iter().zip(&out.counts) {
                row_counts[qid as usize] = cnt;
            }
        }
        let mut table = NeighborTable::with_row_counts(&row_counts)?;
        for out in outs {
            let mut cur = 0usize;
            for (&qid, &cnt) in out.qids.iter().zip(&out.counts) {
                let cnt = cnt as usize;
                table
                    .row_mut(qid as usize)
                    .copy_from_slice(&out.arena[cur..cur + cnt]);
                cur += cnt;
            }
            debug_assert_eq!(cur, out.arena.len());
            breakdown.add(&out.breakdown);
            counters.add(&out.counters);
            remote.add(&out.remote);
        }
        Ok(QueryResponse {
            neighbors: table,
            counters,
            // Wall time is the front end's real elapsed time; the
            // breakdown aggregates the shards' *virtual* pipeline time
            // (find_owner stays 0 — routing happens here, not in a
            // worker).
            wall_seconds: t0.elapsed().as_secs_f64(),
            remote: Some(remote),
            breakdown: Some(breakdown),
        })
    }

    fn name(&self) -> &'static str {
        "panda-sharded"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn shard_count(&self) -> usize {
        self.n_shards
    }

    fn registry(&self) -> Option<Registry> {
        Some(self.registry.clone())
    }
}

/// Worker thread body: collective build, publish the init result, then
/// serve jobs until shutdown.
#[allow(clippy::too_many_arguments)] // spawn-time wiring, called once
fn worker_entry(
    mut comm: Comm,
    mine: PointSet,
    cfg: DistConfig,
    shard: usize,
    job_rx: Receiver<ShardJob>,
    reply_tx: Sender<ShardReply>,
    init_tx: Sender<(usize, Result<Option<GlobalKdTree>>)>,
    restarts: Counter,
    meter: CommMeter,
) {
    // The collective build either works everywhere or panics/errs
    // everywhere (a dead peer surfaces as a timeout panic here).
    let built = std::panic::catch_unwind(AssertUnwindSafe(|| {
        build_distributed(&mut comm, mine, &cfg)
    }));
    let tree = match built {
        Ok(Ok(tree)) => {
            // Shard 0 publishes the routing tree (identical on every
            // shard — the build is deterministic and collective).
            let g = (shard == 0).then(|| tree.global.clone());
            let _ = init_tx.send((shard, Ok(g)));
            tree
        }
        Ok(Err(e)) => {
            let _ = init_tx.send((shard, Err(e)));
            return;
        }
        Err(panic) => {
            let _ = init_tx.send((
                shard,
                Err(PandaError::BackendPanicked(format!(
                    "shard {shard} build: {}",
                    panic_message(panic.as_ref())
                ))),
            ));
            return;
        }
    };
    drop(init_tx);
    worker_loop(
        &mut comm, &tree, shard, &job_rx, &reply_tx, &restarts, meter,
    );
}

/// Serve jobs forever. A panic inside a job is the supervised failure
/// mode: the round resolves with a typed error, the restart counter
/// advances, and after a bounded back-off the worker keeps serving — the
/// loop iteration *is* the restart.
#[allow(clippy::too_many_arguments)] // spawn-time wiring, called once
fn worker_loop(
    comm: &mut Comm,
    tree: &DistKdTree,
    shard: usize,
    job_rx: &Receiver<ShardJob>,
    reply_tx: &Sender<ShardReply>,
    restarts: &Counter,
    mut meter: CommMeter,
) {
    let mut ws = QueryWorkspace::new();
    let mut consecutive_panics = 0u32;
    loop {
        let job = match job_rx.recv() {
            Ok(job) => job,
            Err(_) => return, // front handle dropped
        };
        let body = match job {
            ShardJob::Shutdown => return,
            ShardJob::Quiesce { epoch } => {
                comm.quiesce(epoch);
                meter.publish(&comm.stats());
                ShardReply::Quiesced
            }
            ShardJob::Knn {
                coords,
                qids,
                cfg,
                trace: trace_id,
            } => {
                let t0 = Instant::now();
                let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    faultpoint::maybe_fail_ctx(points::SHARD_WORKER_QUERY, shard as u64)?;
                    owned_pipeline(comm, tree, Owned { coords, qids }, &cfg)
                }));
                trace::record(trace_id, Stage::ShardWorker, t0);
                meter.publish(&comm.stats());
                match res {
                    Ok(res) => {
                        if res.is_ok() {
                            consecutive_panics = 0;
                        }
                        ShardReply::Knn(res)
                    }
                    Err(panic) => ShardReply::Knn(Err(supervise_panic(
                        shard,
                        &panic,
                        restarts,
                        &mut consecutive_panics,
                    ))),
                }
            }
            ShardJob::Radius { coords, qids, r_sq } => {
                let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    run_radius_job(tree, shard, &coords, &qids, r_sq, &mut ws)
                }));
                match res {
                    Ok(res) => {
                        if res.is_ok() {
                            consecutive_panics = 0;
                        }
                        ShardReply::Radius(res)
                    }
                    Err(panic) => ShardReply::Radius(Err(supervise_panic(
                        shard,
                        &panic,
                        restarts,
                        &mut consecutive_panics,
                    ))),
                }
            }
        };
        if reply_tx.send(body).is_err() {
            return; // front handle dropped mid-round
        }
    }
}

/// Record a worker panic: typed error for the in-flight round, restart
/// accounting, bounded exponential back-off before the next job.
fn supervise_panic(
    shard: usize,
    panic: &(dyn std::any::Any + Send),
    restarts: &Counter,
    consecutive: &mut u32,
) -> PandaError {
    restarts.inc();
    let backoff = RESTART_BACKOFF_BASE
        .saturating_mul(1u32 << (*consecutive).min(16))
        .min(RESTART_BACKOFF_MAX);
    *consecutive = consecutive.saturating_add(1);
    std::thread::sleep(backoff);
    PandaError::BackendPanicked(format!(
        "shard {shard} panicked mid-batch: {}",
        panic_message(panic)
    ))
}

fn run_radius_job(
    tree: &DistKdTree,
    shard: usize,
    coords: &[f32],
    qids: &[u64],
    r_sq: f32,
    ws: &mut QueryWorkspace,
) -> Result<RadiusSlice> {
    faultpoint::maybe_fail_ctx(points::SHARD_WORKER_RADIUS, shard as u64)?;
    let dims = tree.global.dims();
    let mut counters = QueryCounters::default();
    let mut counts = Vec::with_capacity(qids.len());
    let mut arena = Vec::new();
    for (i, _) in qids.iter().enumerate() {
        let q = &coords[i * dims..(i + 1) * dims];
        let start = arena.len();
        tree.local
            .radius_into(q, r_sq, &mut arena, ws, &mut counters);
        counts.push((arena.len() - start) as u32);
    }
    Ok(RadiusSlice {
        qids: qids.to_vec(),
        counts,
        arena,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::knn::KnnIndex;
    use crate::rng::SplitRng;

    fn random_ps(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut rng = SplitRng::new(seed);
        PointSet::from_coords(
            dims,
            (0..n * dims)
                .map(|_| (rng.next_f64() * 10.0) as f32)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn sharded_index_is_send_and_sync() {
        fn pin<T: Send + Sync>() {}
        pin::<ShardedIndex>();
    }

    #[test]
    fn sharded_matches_local_index_through_the_trait() {
        let all = random_ps(1500, 3, 40);
        let queries = random_ps(48, 3, 41);
        let expect = {
            let local = KnnIndex::build(&all, &TreeConfig::default()).unwrap();
            local
                .query_session(&QueryRequest::knn(&queries, 5))
                .unwrap()
                .neighbors
        };
        let idx = ShardedIndex::build(&all, 4, &DistConfig::default()).unwrap();
        assert_eq!(idx.name(), "panda-sharded");
        assert_eq!(idx.dims(), 3);
        assert_eq!(idx.len(), 1500);
        assert_eq!(idx.shards(), 4);
        let backend: &dyn NnBackend = &idx;
        let res = backend.query(&QueryRequest::knn(&queries, 5)).unwrap();
        assert!(res.remote.is_some(), "sharded responses carry stats");
        assert!(res.breakdown.is_some());
        assert_eq!(res.neighbors, expect, "bit-identical to single-shard");
        assert_eq!(res.remote.unwrap().owned_queries, 48);
        assert_eq!(idx.shard_restarts(), 0);
    }

    #[test]
    fn registry_carries_shard_and_comm_metrics() {
        let all = random_ps(600, 3, 70);
        let queries = random_ps(24, 3, 71);
        let idx = ShardedIndex::build(&all, 2, &DistConfig::default()).unwrap();
        idx.query(&QueryRequest::knn(&queries, 3)).unwrap();
        idx.query(&QueryRequest::knn(&queries, 3)).unwrap();
        let snap = (&idx as &dyn NnBackend).registry().unwrap().snapshot();
        assert_eq!(snap.counter("shard.rounds"), Some(2));
        assert_eq!(snap.counter("shard.queries"), Some(48));
        assert_eq!(snap.counter("shard.restarts"), Some(0));
        assert!(
            snap.counter("comm.collectives").unwrap_or(0) > 0,
            "workers published collective traffic: {snap:?}"
        );
    }

    #[test]
    fn single_shard_cluster_works() {
        let all = random_ps(300, 2, 50);
        let queries = random_ps(20, 2, 51);
        let idx = ShardedIndex::build(&all, 1, &DistConfig::default()).unwrap();
        let local = KnnIndex::build(&all, &TreeConfig::default()).unwrap();
        let a = idx.query(&QueryRequest::knn(&queries, 7)).unwrap();
        let b = local
            .query_session(&QueryRequest::knn(&queries, 7))
            .unwrap();
        assert_eq!(a.neighbors, b.neighbors);
    }

    #[test]
    fn repeated_rounds_reuse_the_workers() {
        let all = random_ps(600, 3, 52);
        let idx = ShardedIndex::build(&all, 3, &DistConfig::default()).unwrap();
        for seed in 0..4 {
            let queries = random_ps(15, 3, 60 + seed);
            let res = idx.query(&QueryRequest::knn(&queries, 3)).unwrap();
            assert_eq!(res.neighbors.len(), 15);
        }
    }

    #[test]
    fn trait_build_is_rejected_without_a_shard_count() {
        let ps = random_ps(10, 2, 42);
        let err = <ShardedIndex as NnBackend>::build(&ps, &TreeConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn zero_shards_rejected() {
        let ps = random_ps(10, 2, 43);
        let err = ShardedIndex::build(&ps, 0, &DistConfig::default());
        assert!(matches!(err, Err(PandaError::BadConfig(_))));
    }

    #[test]
    fn radius_request_limits_results() {
        let all = random_ps(800, 2, 43);
        let queries = random_ps(10, 2, 44);
        let idx = ShardedIndex::build(&all, 2, &DistConfig::default()).unwrap();
        let res = idx
            .query(&QueryRequest::knn(&queries, 8).with_radius(0.5))
            .unwrap();
        assert!(
            res.neighbors
                .iter()
                .flat_map(|row| row.iter().map(|n| n.dist_sq))
                .all(|d| d < 0.25),
            "0.5² bound"
        );
    }

    #[test]
    fn radius_all_matches_single_shard() {
        let all = random_ps(700, 3, 45);
        let queries = random_ps(12, 3, 46);
        let idx = ShardedIndex::build(&all, 3, &DistConfig::default()).unwrap();
        let got = idx.query_radius_all(&queries, 1.5).unwrap();
        let local = KnnIndex::build(&all, &TreeConfig::default()).unwrap();
        for i in 0..queries.len() {
            let want = local
                .tree()
                .query_radius_all(queries.point(i), 1.5)
                .unwrap();
            assert_eq!(got.row(i), &want[..], "query {i}");
        }
    }

    #[test]
    fn empty_query_set_is_fine() {
        let all = random_ps(100, 3, 47);
        let idx = ShardedIndex::build(&all, 2, &DistConfig::default()).unwrap();
        let queries = PointSet::new(3).unwrap();
        let res = idx.query(&QueryRequest::knn(&queries, 3)).unwrap();
        assert_eq!(res.neighbors.len(), 0);
    }

    #[test]
    fn dims_mismatch_rejected() {
        let all = random_ps(100, 3, 48);
        let idx = ShardedIndex::build(&all, 2, &DistConfig::default()).unwrap();
        let queries = random_ps(4, 2, 49);
        let err = idx.query(&QueryRequest::knn(&queries, 3));
        assert!(matches!(err, Err(PandaError::DimsMismatch { .. })));
    }
}
