//! [`DistIndex`]: the distributed engine behind the [`NnBackend`] trait.
//!
//! Before the session API, every distributed caller threaded a
//! `&mut Comm` + `DistKdTree` pair through the free functions
//! [`crate::query_distributed::query_distributed`] and
//! [`crate::radius::radius_search_distributed`] by hand. `DistIndex`
//! owns both handles for the lifetime of a rank's SPMD closure, so the
//! same `Box<dyn NnBackend>` loop that drives the local engines drives
//! the cluster too.

use std::cell::RefCell;

use panda_comm::Comm;

use crate::build_distributed::{build_distributed, DistKdTree};
use crate::config::DistConfig;
use crate::engine::{NeighborTable, NnBackend, QueryRequest, QueryResponse};
use crate::error::Result;
use crate::point::PointSet;

/// The distributed kd-tree plus this rank's communicator handle, bundled
/// into one queryable engine.
///
/// SPMD: every rank constructs its own `DistIndex` (inside the
/// `run_cluster` closure) and every rank must call [`NnBackend::query`]
/// collectively — the call performs alltoallv exchanges. The borrowed
/// communicator lives in a `RefCell` so `query(&self, ..)` matches the
/// object-safe trait signature; the interior borrow is taken only for
/// the duration of one collective query round.
///
/// **Service-ineligible by design**: the `RefCell` (and the `&mut Comm`
/// borrow inside it) makes `DistIndex` neither `Send` nor `Sync`, so it
/// cannot be wrapped in the `panda_service` query service's
/// `Arc<dyn NnBackend + Send + Sync>` — queries against a distributed
/// index are SPMD collectives that every rank must enter in lockstep,
/// which a free-running concurrent scheduler cannot guarantee. Serve
/// concurrent clients from a rank-local [`crate::knn::KnnIndex`] (or
/// any backend pinned thread-safe by `tests/thread_safety.rs`) instead.
pub struct DistIndex<'a> {
    comm: RefCell<&'a mut Comm>,
    tree: DistKdTree,
}

impl<'a> DistIndex<'a> {
    /// Build the distributed tree over this rank's `points` (SPMD
    /// collective — every rank must call with its own share; ids must be
    /// globally unique) and take ownership of the communicator handle.
    pub fn build_on(comm: &'a mut Comm, points: PointSet, cfg: &DistConfig) -> Result<Self> {
        let tree = build_distributed(comm, points, cfg)?;
        Ok(Self {
            comm: RefCell::new(comm),
            tree,
        })
    }

    /// Wrap an already-built [`DistKdTree`] (e.g. one shared across
    /// several query configurations).
    pub fn from_tree(comm: &'a mut Comm, tree: DistKdTree) -> Self {
        Self {
            comm: RefCell::new(comm),
            tree,
        }
    }

    /// The underlying distributed tree (global BSP, local tree, build
    /// breakdown).
    pub fn tree(&self) -> &DistKdTree {
        &self.tree
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.comm.borrow().rank()
    }

    /// Cluster size (number of ranks).
    pub fn size(&self) -> usize {
        self.comm.borrow().size()
    }

    /// Run `f` with the communicator (clock summaries, comm stats).
    pub fn with_comm<T>(&self, f: impl FnOnce(&mut Comm) -> T) -> T {
        f(&mut self.comm.borrow_mut())
    }

    /// Release the index, handing the communicator borrow back.
    pub fn into_parts(self) -> (&'a mut Comm, DistKdTree) {
        (self.comm.into_inner(), self.tree)
    }

    /// Distributed fixed-radius search (SPMD collective): per query,
    /// **all** dataset points strictly within `radius`, ascending, as a
    /// flat CSR [`crate::engine::NeighborTable`] (row `i` answers
    /// `queries.point(i)`).
    pub fn query_radius_all(&self, queries: &PointSet, radius: f32) -> Result<NeighborTable> {
        crate::radius::radius_search_distributed(
            &mut self.comm.borrow_mut(),
            &self.tree,
            queries,
            radius,
        )
    }
}

impl std::fmt::Debug for DistIndex<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistIndex")
            .field("rank", &self.rank())
            .field("size", &self.size())
            .field("local_points", &self.tree.points.len())
            .finish()
    }
}

impl NnBackend for DistIndex<'_> {
    // `build` keeps the rejecting default: a communicator is required —
    // use `DistIndex::build_on`.

    fn query(&self, req: &QueryRequest<'_>) -> Result<QueryResponse> {
        let t0 = std::time::Instant::now();
        req.validate()?;
        let cfg = req.to_query_config();
        // CSR-native: the distributed engine assembles the flat
        // `NeighborTable` directly — no `Vec<Vec<Neighbor>>` intermediate
        // and no `from_nested` conversion on this path.
        let res = crate::query_distributed::query_distributed_impl(
            &mut self.comm.borrow_mut(),
            &self.tree,
            req.queries(),
            &cfg,
        )?;
        Ok(QueryResponse {
            neighbors: res.neighbors,
            counters: res.counters,
            wall_seconds: t0.elapsed().as_secs_f64(),
            remote: Some(res.remote),
            breakdown: Some(res.breakdown),
        })
    }

    fn name(&self) -> &'static str {
        "panda-dist"
    }

    fn len(&self) -> usize {
        self.tree.points.len()
    }

    fn dims(&self) -> usize {
        self.tree.global.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::knn::KnnIndex;
    use crate::rng::SplitRng;
    use panda_comm::{run_cluster, ClusterConfig};

    fn random_ps(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut rng = SplitRng::new(seed);
        PointSet::from_coords(
            dims,
            (0..n * dims)
                .map(|_| (rng.next_f64() * 10.0) as f32)
                .collect(),
        )
        .unwrap()
    }

    fn scatter(ps: &PointSet, rank: usize, p: usize) -> PointSet {
        let mut mine = PointSet::new(ps.dims()).unwrap();
        for i in (rank..ps.len()).step_by(p) {
            mine.push(ps.point(i), ps.id(i));
        }
        mine
    }

    #[test]
    fn dist_index_matches_local_index_through_the_trait() {
        let all = random_ps(1500, 3, 40);
        let queries = random_ps(48, 3, 41);
        let expect = {
            let local = KnnIndex::build(&all, &TreeConfig::default()).unwrap();
            local
                .query_session(&QueryRequest::knn(&queries, 5))
                .unwrap()
                .neighbors
        };
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let idx = DistIndex::build_on(comm, mine, &DistConfig::default()).unwrap();
            assert_eq!(idx.name(), "panda-dist");
            assert_eq!(idx.dims(), 3);
            let myq = scatter(&queries, idx.rank(), idx.size());
            let backend: &dyn NnBackend = &idx;
            let res = backend.query(&QueryRequest::knn(&myq, 5)).unwrap();
            assert!(res.remote.is_some(), "distributed responses carry stats");
            assert!(res.breakdown.is_some());
            // pair (input slot in the full query set, distances)
            let p = idx.size();
            let rank = idx.rank();
            res.neighbors
                .iter()
                .enumerate()
                .map(|(i, row)| {
                    (
                        rank + i * p,
                        row.iter().map(|n| (n.dist_sq, n.id)).collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        });
        for o in &out {
            for (slot, got) in &o.result {
                let want: Vec<(f32, u64)> = expect
                    .row(*slot)
                    .iter()
                    .map(|n| (n.dist_sq, n.id))
                    .collect();
                assert_eq!(got, &want, "query {slot}");
            }
        }
    }

    #[test]
    fn trait_build_is_rejected_without_a_communicator() {
        let ps = random_ps(10, 2, 42);
        let err = <DistIndex<'_> as NnBackend>::build(&ps, &TreeConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn radius_request_limits_distributed_results() {
        let all = random_ps(800, 2, 43);
        let queries = random_ps(10, 2, 44);
        let out = run_cluster(&ClusterConfig::new(2), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let idx = DistIndex::build_on(comm, mine, &DistConfig::default()).unwrap();
            let myq = scatter(&queries, idx.rank(), idx.size());
            let res = idx
                .query(&QueryRequest::knn(&myq, 8).with_radius(0.5))
                .unwrap();
            res.neighbors
                .iter()
                .flat_map(|row| row.iter().map(|n| n.dist_sq))
                .collect::<Vec<_>>()
        });
        for o in &out {
            assert!(o.result.iter().all(|&d| d < 0.25), "0.5² bound");
        }
    }
}
