//! Point storage and axis-aligned bounding boxes.
//!
//! Points are stored point-major (`coords[i*dims + d]`) with a `u64` global
//! id per point. Global ids survive redistribution across ranks, so query
//! results always reference the original dataset regardless of where the
//! point physically lives after the global kd-tree shuffle.

use crate::error::{PandaError, Result};

/// Maximum supported dimensionality. The paper's datasets are 3-D
/// (cosmology, plasma), 10-D (Daya Bay, SDSS `psf_mod_mag`) and 15-D
/// (SDSS `all_mag`); fixed-size scratch arrays sized by this constant keep
/// the query hot path allocation-free.
pub const MAX_DIMS: usize = 16;

/// A set of points of uniform dimensionality with per-point global ids.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointSet {
    dims: usize,
    coords: Vec<f32>,
    ids: Vec<u64>,
}

impl PointSet {
    /// Empty set of `dims`-dimensional points.
    pub fn new(dims: usize) -> Result<Self> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(PandaError::BadDims { dims });
        }
        Ok(Self {
            dims,
            coords: Vec::new(),
            ids: Vec::new(),
        })
    }

    /// Build from a flat point-major coordinate buffer; ids default to
    /// `0..n`. Validates dimensionality, shape, and finiteness.
    pub fn from_coords(dims: usize, coords: Vec<f32>) -> Result<Self> {
        if dims == 0 {
            return Err(PandaError::BadDims { dims });
        }
        let ids = (0..(coords.len() / dims) as u64).collect();
        Self::from_parts(dims, coords, ids)
    }

    /// Build from a flat coordinate buffer and explicit global ids.
    pub fn from_parts(dims: usize, coords: Vec<f32>, ids: Vec<u64>) -> Result<Self> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(PandaError::BadDims { dims });
        }
        if !coords.len().is_multiple_of(dims) {
            return Err(PandaError::RaggedCoordinates {
                len: coords.len(),
                dims,
            });
        }
        let n = coords.len() / dims;
        if ids.len() != n {
            return Err(PandaError::IdCountMismatch {
                points: n,
                ids: ids.len(),
            });
        }
        let ps = Self { dims, coords, ids };
        ps.validate()?;
        Ok(ps)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality of every point.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f32] {
        &self.coords[i * self.dims..(i + 1) * self.dims]
    }

    /// Global id of point `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// One coordinate without forming the slice (hot path helper).
    #[inline]
    pub fn coord(&self, i: usize, d: usize) -> f32 {
        self.coords[i * self.dims + d]
    }

    /// The full point-major coordinate buffer.
    #[inline]
    pub fn coords(&self) -> &[f32] {
        &self.coords
    }

    /// The id buffer.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Append one point. Panics if `p.len() != dims` (hot-path method; the
    /// shape is the caller's invariant).
    #[inline]
    pub fn push(&mut self, p: &[f32], id: u64) {
        debug_assert_eq!(p.len(), self.dims);
        self.coords.extend_from_slice(p);
        self.ids.push(id);
    }

    /// Append all points of `other` (must share dimensionality).
    pub fn append(&mut self, other: &PointSet) -> Result<()> {
        if other.dims != self.dims {
            return Err(PandaError::DimsMismatch {
                expected: self.dims,
                got: other.dims,
            });
        }
        self.coords.extend_from_slice(&other.coords);
        self.ids.extend_from_slice(&other.ids);
        Ok(())
    }

    /// Append points from parallel raw buffers without re-validating
    /// finiteness (redistribution hot path; inputs were validated when the
    /// dataset entered the system). Panics on shape mismatch.
    pub fn extend_trusted(&mut self, coords: &[f32], ids: &[u64]) {
        assert_eq!(coords.len(), ids.len() * self.dims, "ragged extend");
        self.coords.extend_from_slice(coords);
        self.ids.extend_from_slice(ids);
    }

    /// Remove point `i` in O(dims) by moving the last point into its
    /// slot (order is not preserved). Returns the removed point's id.
    /// Panics if `i` is out of bounds.
    pub fn swap_remove(&mut self, i: usize) -> u64 {
        let removed = self.ids[i];
        let last = self.len() - 1;
        if i != last {
            for d in 0..self.dims {
                self.coords[i * self.dims + d] = self.coords[last * self.dims + d];
            }
            self.ids[i] = self.ids[last];
        }
        self.coords.truncate(last * self.dims);
        self.ids.truncate(last);
        removed
    }

    /// Pre-allocate for `n` additional points.
    pub fn reserve(&mut self, n: usize) {
        self.coords.reserve(n * self.dims);
        self.ids.reserve(n);
    }

    /// New set containing the selected indices, in order.
    pub fn select(&self, indices: &[u32]) -> PointSet {
        let mut out = PointSet {
            dims: self.dims,
            coords: Vec::new(),
            ids: Vec::new(),
        };
        out.reserve(indices.len());
        for &i in indices {
            out.push(self.point(i as usize), self.id(i as usize));
        }
        out
    }

    /// Verify every coordinate is finite.
    pub fn validate(&self) -> Result<()> {
        for (i, chunk) in self.coords.chunks_exact(self.dims).enumerate() {
            for (d, &v) in chunk.iter().enumerate() {
                if !v.is_finite() {
                    return Err(PandaError::NonFiniteCoordinate { point: i, dim: d });
                }
            }
        }
        Ok(())
    }

    /// Tight axis-aligned bounding box, or `None` if empty.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        if self.is_empty() {
            return None;
        }
        let mut bb = BoundingBox::empty(self.dims);
        for chunk in self.coords.chunks_exact(self.dims) {
            bb.expand(chunk);
        }
        Some(bb)
    }

    /// Squared Euclidean distance between an arbitrary query slice and
    /// point `i`.
    #[inline]
    pub fn dist_sq_to(&self, q: &[f32], i: usize) -> f32 {
        let p = self.point(i);
        let mut acc = 0.0f32;
        for d in 0..self.dims {
            let diff = q[d] - p[d];
            acc += diff * diff;
        }
        acc
    }
}

/// Axis-aligned bounding box in up to [`MAX_DIMS`] dimensions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundingBox {
    lo: [f32; MAX_DIMS],
    hi: [f32; MAX_DIMS],
    dims: usize,
}

impl BoundingBox {
    /// An inverted (empty) box that any `expand` will overwrite.
    pub fn empty(dims: usize) -> Self {
        Self {
            lo: [f32::INFINITY; MAX_DIMS],
            hi: [f32::NEG_INFINITY; MAX_DIMS],
            dims,
        }
    }

    /// Box spanning exactly the given lo/hi corners.
    pub fn from_corners(lo: &[f32], hi: &[f32]) -> Self {
        assert_eq!(lo.len(), hi.len());
        let dims = lo.len();
        let mut b = Self::empty(dims);
        b.lo[..dims].copy_from_slice(lo);
        b.hi[..dims].copy_from_slice(hi);
        b
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f32] {
        &self.lo[..self.dims]
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f32] {
        &self.hi[..self.dims]
    }

    /// True if no point was ever added.
    pub fn is_empty(&self) -> bool {
        (0..self.dims).any(|d| self.lo[d] > self.hi[d])
    }

    /// Grow to include `p`.
    #[inline]
    pub fn expand(&mut self, p: &[f32]) {
        for (d, &v) in p.iter().enumerate().take(self.dims) {
            self.lo[d] = self.lo[d].min(v);
            self.hi[d] = self.hi[d].max(v);
        }
    }

    /// Grow to include another box.
    pub fn merge(&mut self, other: &BoundingBox) {
        debug_assert_eq!(self.dims, other.dims);
        for d in 0..self.dims {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// Does the box contain `p` (boundary inclusive)?
    pub fn contains(&self, p: &[f32]) -> bool {
        (0..self.dims).all(|d| self.lo[d] <= p[d] && p[d] <= self.hi[d])
    }

    /// Squared distance from `q` to the nearest point of the box
    /// (0 if inside). Exact lower bound used for remote-rank pruning.
    #[inline]
    pub fn min_dist_sq(&self, q: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (d, &v) in q.iter().enumerate().take(self.dims) {
            let diff = if v < self.lo[d] {
                self.lo[d] - v
            } else if v > self.hi[d] {
                v - self.hi[d]
            } else {
                0.0
            };
            acc += diff * diff;
        }
        acc
    }

    /// Extent (hi − lo) along dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> f32 {
        self.hi[d] - self.lo[d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps3() -> PointSet {
        PointSet::from_coords(3, vec![0.0, 0.0, 0.0, 1.0, 2.0, 3.0, -1.0, -2.0, -3.0]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let ps = ps3();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.dims(), 3);
        assert_eq!(ps.point(1), &[1.0, 2.0, 3.0]);
        assert_eq!(ps.id(2), 2);
        assert_eq!(ps.coord(1, 2), 3.0);
        assert!(!ps.is_empty());
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(PointSet::new(0), Err(PandaError::BadDims { .. })));
        // regression: from_coords must reject dims == 0 outright (it used
        // to carry a dead dims.max(1) guard past this check)
        assert!(matches!(
            PointSet::from_coords(0, vec![]),
            Err(PandaError::BadDims { dims: 0 })
        ));
        assert!(matches!(
            PointSet::from_coords(0, vec![1.0, 2.0]),
            Err(PandaError::BadDims { dims: 0 })
        ));
        assert!(matches!(
            PointSet::new(MAX_DIMS + 1),
            Err(PandaError::BadDims { .. })
        ));
        assert!(matches!(
            PointSet::from_coords(3, vec![1.0, 2.0]),
            Err(PandaError::RaggedCoordinates { .. })
        ));
        assert!(matches!(
            PointSet::from_parts(2, vec![1.0, 2.0], vec![1, 2]),
            Err(PandaError::IdCountMismatch { .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let e = PointSet::from_coords(2, vec![0.0, 1.0, f32::NAN, 2.0]);
        assert_eq!(
            e.unwrap_err(),
            PandaError::NonFiniteCoordinate { point: 1, dim: 0 }
        );
        let e = PointSet::from_coords(2, vec![0.0, f32::INFINITY]);
        assert!(matches!(
            e,
            Err(PandaError::NonFiniteCoordinate { point: 0, dim: 1 })
        ));
    }

    #[test]
    fn push_append_select() {
        let mut ps = PointSet::new(2).unwrap();
        ps.push(&[1.0, 1.0], 10);
        ps.push(&[2.0, 2.0], 20);
        let mut other = PointSet::new(2).unwrap();
        other.push(&[3.0, 3.0], 30);
        ps.append(&other).unwrap();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.id(2), 30);

        let sel = ps.select(&[2, 0]);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.id(0), 30);
        assert_eq!(sel.point(1), &[1.0, 1.0]);
    }

    #[test]
    fn swap_remove_moves_last_into_slot() {
        let mut ps = ps3();
        assert_eq!(ps.swap_remove(0), 0);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(0), &[-1.0, -2.0, -3.0], "last point moved in");
        assert_eq!(ps.id(0), 2);
        assert_eq!(ps.id(1), 1);
        assert_eq!(ps.swap_remove(1), 1, "removing the last slot");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.id(0), 2);
        assert_eq!(ps.swap_remove(0), 2);
        assert!(ps.is_empty());
        assert!(ps.coords().is_empty());
    }

    #[test]
    fn append_checks_dims() {
        let mut a = PointSet::new(2).unwrap();
        let b = PointSet::new(3).unwrap();
        assert!(matches!(a.append(&b), Err(PandaError::DimsMismatch { .. })));
    }

    #[test]
    fn bounding_box_is_tight() {
        let bb = ps3().bounding_box().unwrap();
        assert_eq!(bb.lo(), &[-1.0, -2.0, -3.0]);
        assert_eq!(bb.hi(), &[1.0, 2.0, 3.0]);
        assert!(PointSet::new(4).unwrap().bounding_box().is_none());
    }

    #[test]
    fn bbox_min_dist() {
        let bb = BoundingBox::from_corners(&[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(bb.min_dist_sq(&[0.5, 0.5]), 0.0); // inside
        assert_eq!(bb.min_dist_sq(&[2.0, 0.5]), 1.0); // right face
        assert_eq!(bb.min_dist_sq(&[2.0, 3.0]), 1.0 + 4.0); // corner
        assert!(bb.contains(&[1.0, 0.0]));
        assert!(!bb.contains(&[1.1, 0.0]));
    }

    #[test]
    fn bbox_merge_and_extent() {
        let mut a = BoundingBox::from_corners(&[0.0], &[1.0]);
        let b = BoundingBox::from_corners(&[-2.0], &[0.5]);
        a.merge(&b);
        assert_eq!(a.lo(), &[-2.0]);
        assert_eq!(a.hi(), &[1.0]);
        assert_eq!(a.extent(0), 3.0);
    }

    #[test]
    fn empty_box_behaviour() {
        let mut bb = BoundingBox::empty(2);
        assert!(bb.is_empty());
        bb.expand(&[1.0, 2.0]);
        assert!(!bb.is_empty());
        assert_eq!(bb.lo(), &[1.0, 2.0]);
        assert_eq!(bb.hi(), &[1.0, 2.0]);
    }

    #[test]
    fn dist_sq_to_matches_manual() {
        let ps = ps3();
        let d = ps.dist_sq_to(&[1.0, 2.0, 4.0], 1);
        assert!((d - 1.0).abs() < 1e-6);
    }
}
