//! # panda-core — distributed kd-tree construction and exact KNN querying
//!
//! Rust reproduction of the PANDA algorithm (Patwary et al., *"PANDA:
//! Extreme Scale Parallel K-Nearest Neighbor on Distributed
//! Architectures"*, IPDPS 2016): a two-level (global + local) kd-tree with
//! sampled-histogram median splits, variance-based split dimensions,
//! SIMD-packed leaf buckets, and a batched, pipelined distributed query
//! protocol with radius-based remote pruning.
//!
//! One **session API** fronts every engine ([`engine`]): build any
//! backend, describe a batch with a validated [`engine::QueryRequest`],
//! and get a structured [`engine::QueryResponse`] whose neighbor storage
//! is the flat CSR [`engine::NeighborTable`].
//!
//! * Single-node usage: [`knn::KnnIndex`] (implements
//!   [`engine::NnBackend`]).
//! * Distributed usage: [`engine::ShardedIndex`], same trait — a
//!   `Send + Sync` front handle over long-lived shard worker threads,
//!   each owning its local tree and `panda-comm` endpoint. SPMD callers
//!   (virtual-time scaling studies) drive
//!   [`build_distributed::build_distributed`] +
//!   [`query_distributed::query_distributed`] directly under
//!   `run_cluster`.
//!
//! All querying is **exact**: results are verified bit-identical to brute
//! force throughout the test suite (`BoundMode::Exact`, the default).
//!
//! ## The local query hot path
//!
//! Three layers make the single-node path fast (see `BENCH_PR1.json` for
//! measurements against the pre-optimization reference):
//!
//! * **Fused scan-and-offer leaf kernel**
//!   ([`local_tree::PackedLeaves::scan_and_offer`]) — squared distances
//!   are computed dimension-major over the lane-padded bucket layout and
//!   compared against the candidate heap's bound *in-register*; the heap
//!   is touched only for surviving lanes. No intermediate distance
//!   buffer, no second pass. Runtime dispatch selects an AVX2
//!   `std::arch` implementation when the CPU supports it (probed once per
//!   process; `PANDA_NO_AVX2=1` forces the portable kernel) with a
//!   portable unrolled fallback, both specialized for the paper's
//!   dimensionalities (2/3/10/15) and bit-identical to the scalar
//!   reference — no FMA, same accumulation order.
//! * **Zero-copy traversal stack** ([`local_tree::QueryWorkspace`]) — the
//!   Arya–Mount side-offset state lives in **one** array per workspace;
//!   stack entries carry a 20-byte `(dim, offset, undo-checkpoint)`
//!   record instead of a 64-byte side-array copy, and popping rewinds an
//!   undo log to restore the exact path state. Workspaces are fully
//!   reusable across queries and trees.
//! * **Locality-aware batching** ([`knn::KnnIndex::query_session`]) — a
//!   batch can be executed in Morton (Z-order) order
//!   ([`config::QueryOrder`], or per-request via
//!   [`engine::QueryRequest::with_order`]) so consecutive queries share
//!   tree paths and warm leaf buckets, dispatched in contiguous chunks
//!   with a minimum chunk length; results land in a flat CSR
//!   [`engine::NeighborTable`] in input order — workers fill chunk-local
//!   arenas that are spliced, so the hot path allocates no per-query
//!   `Vec`.
//!
//! The distributed query pipeline and the baselines inherit the kernel
//! through [`local_tree::LocalKdTree::query_into`]. Kernel-level work is
//! observable via [`counters::QueryCounters::leaf_kernel_calls`] and
//! [`counters::QueryCounters::kernel_blocks_pruned`].
//!
//! ```
//! use panda_core::knn::KnnIndex;
//! use panda_core::{PointSet, TreeConfig};
//!
//! // four points on a line
//! let points = PointSet::from_coords(1, vec![0.0, 1.0, 2.0, 10.0])?;
//! let index = KnnIndex::build(&points, &TreeConfig::default())?;
//! let nearest = index.query(&[1.2], 2)?;
//! assert_eq!(nearest[0].id, 1); // x = 1.0
//! assert_eq!(nearest[1].id, 2); // x = 2.0
//! # Ok::<(), panda_core::PandaError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build_distributed;
pub mod checksum;
pub mod classify;
pub mod config;
pub mod counters;
pub mod engine;
pub mod error;
pub mod faultpoint;
pub mod global_tree;
pub mod heap;
pub mod hist;
pub mod knn;
pub mod local_tree;
pub mod morton;
pub mod partition;
pub mod point;
pub mod query_distributed;
pub mod radius;
pub mod rng;
pub mod split;
pub mod timers;

pub use config::{
    BoundMode, DistConfig, HistScan, QueryConfig, QueryOrder, SplitDimStrategy, SplitValueStrategy,
    TreeConfig,
};
pub use counters::{BuildCounters, QueryCounters};
pub use engine::{NeighborTable, NnBackend, QueryRequest, QueryResponse, ShardedIndex};
pub use error::{PandaError, Result};
pub use heap::{KnnHeap, Neighbor};
pub use local_tree::{LocalKdTree, QueryWorkspace, TreeStats};
pub use point::{BoundingBox, PointSet, MAX_DIMS};
