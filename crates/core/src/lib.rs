//! # panda-core — distributed kd-tree construction and exact KNN querying
//!
//! Rust reproduction of the PANDA algorithm (Patwary et al., *"PANDA:
//! Extreme Scale Parallel K-Nearest Neighbor on Distributed
//! Architectures"*, IPDPS 2016): a two-level (global + local) kd-tree with
//! sampled-histogram median splits, variance-based split dimensions,
//! SIMD-packed leaf buckets, and a batched, pipelined distributed query
//! protocol with radius-based remote pruning.
//!
//! * Single-node usage: [`knn::KnnIndex`].
//! * Distributed usage (over the `panda-comm` simulated cluster):
//!   [`build_distributed::build_distributed`] +
//!   [`query_distributed::query_distributed`].
//!
//! All querying is **exact**: results are verified bit-identical to brute
//! force throughout the test suite (`BoundMode::Exact`, the default).
//!
//! ```
//! use panda_core::knn::KnnIndex;
//! use panda_core::{PointSet, TreeConfig};
//!
//! // four points on a line
//! let points = PointSet::from_coords(1, vec![0.0, 1.0, 2.0, 10.0])?;
//! let index = KnnIndex::build(&points, &TreeConfig::default())?;
//! let nearest = index.query(&[1.2], 2)?;
//! assert_eq!(nearest[0].id, 1); // x = 1.0
//! assert_eq!(nearest[1].id, 2); // x = 2.0
//! # Ok::<(), panda_core::PandaError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build_distributed;
pub mod classify;
pub mod config;
pub mod counters;
pub mod error;
pub mod global_tree;
pub mod heap;
pub mod hist;
pub mod knn;
pub mod local_tree;
pub mod partition;
pub mod point;
pub mod query_distributed;
pub mod radius;
pub mod rng;
pub mod split;
pub mod timers;

pub use config::{
    BoundMode, DistConfig, HistScan, QueryConfig, SplitDimStrategy, SplitValueStrategy, TreeConfig,
};
pub use counters::{BuildCounters, QueryCounters};
pub use error::{PandaError, Result};
pub use heap::{KnnHeap, Neighbor};
pub use local_tree::{LocalKdTree, QueryWorkspace, TreeStats};
pub use point::{BoundingBox, PointSet, MAX_DIMS};
