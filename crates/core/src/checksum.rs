//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) for durable-format
//! integrity checks.
//!
//! Used by the `.pnda` dataset format (whole-file checksum) and the
//! mutable store's write-ahead log (per-record checksum). The table is
//! built at compile time; throughput is a non-issue next to the disk
//! writes these checksums guard.

/// Streaming CRC-32 state. Feed bytes with [`update`](Self::update),
/// read the digest with [`finalize`](Self::finalize).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

impl Crc32 {
    /// A fresh digest.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The digest over everything absorbed so far. The state is not
    /// consumed; more bytes may still be absorbed afterwards.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"length-prefixed, CRC-checksummed records";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_the_digest() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            data[i] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), base, "bit flip at byte {i} undetected");
            data[i] ^= 1 << (i % 8);
        }
    }
}
