//! Index-array partitioning used at every tree level.
//!
//! Within a shared-memory node the shuffle stage "only involves moving the
//! index, not the points themselves" (§III-A(ii)) — these routines permute
//! a `u32` index array over an immutable [`PointSet`].

use crate::point::PointSet;

/// Partition `idx` in place so entries with coordinate `≤ split` along
/// `dim` precede the rest. Returns the boundary (count of the left part).
/// Not stable; O(n) swaps.
pub fn partition_in_place(ps: &PointSet, idx: &mut [u32], dim: usize, split: f32) -> usize {
    let mut l = 0usize;
    let mut r = idx.len();
    while l < r {
        if ps.coord(idx[l] as usize, dim) <= split {
            l += 1;
        } else {
            r -= 1;
            idx.swap(l, r);
        }
    }
    l
}

/// Stable partition through a scratch buffer (used by the parallel build
/// path where deterministic output order simplifies reasoning).
pub fn partition_stable(
    ps: &PointSet,
    idx: &mut [u32],
    dim: usize,
    split: f32,
    scratch: &mut Vec<u32>,
) -> usize {
    scratch.clear();
    scratch.reserve(idx.len());
    let mut left = 0usize;
    for &i in idx.iter() {
        if ps.coord(i as usize, dim) <= split {
            left += 1;
        }
    }
    // scatter: left run then right run, preserving relative order
    scratch.resize(idx.len(), 0);
    let mut li = 0usize;
    let mut ri = left;
    for &i in idx.iter() {
        if ps.coord(i as usize, dim) <= split {
            scratch[li] = i;
            li += 1;
        } else {
            scratch[ri] = i;
            ri += 1;
        }
    }
    idx.copy_from_slice(scratch);
    left
}

/// Exact-median fallback: reorder `idx` so position `mid` holds the median
/// under `(coordinate, id)` ordering; everything before is `≤` it and
/// everything after is `≥` it. Returns the split coordinate at `mid`.
///
/// Used when the sampled histogram degenerates (heavily duplicated data,
/// e.g. the co-located Daya Bay records) and for small segments where an
/// exact median is cheaper than sampling.
pub fn partition_by_count(ps: &PointSet, idx: &mut [u32], dim: usize, mid: usize) -> f32 {
    debug_assert!(mid < idx.len());
    idx.select_nth_unstable_by(mid, |&a, &b| {
        let va = ps.coord(a as usize, dim);
        let vb = ps.coord(b as usize, dim);
        va.partial_cmp(&vb)
            .expect("finite coordinates")
            .then_with(|| ps.id(a as usize).cmp(&ps.id(b as usize)))
    });
    ps.coord(idx[mid] as usize, dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitRng;

    fn make_ps(values: &[f32]) -> PointSet {
        PointSet::from_coords(1, values.to_vec()).unwrap()
    }

    fn check_partition(ps: &PointSet, idx: &[u32], dim: usize, split: f32, left: usize) {
        for (pos, &i) in idx.iter().enumerate() {
            let v = ps.coord(i as usize, dim);
            if pos < left {
                assert!(v <= split, "pos {pos} value {v} split {split}");
            } else {
                assert!(v > split, "pos {pos} value {v} split {split}");
            }
        }
    }

    #[test]
    fn in_place_partitions_correctly() {
        let ps = make_ps(&[5.0, 1.0, 3.0, 8.0, 2.0, 9.0, 3.0]);
        let mut idx: Vec<u32> = (0..7).collect();
        let left = partition_in_place(&ps, &mut idx, 0, 3.0);
        assert_eq!(left, 4); // 1,3,2,3 are ≤ 3
        check_partition(&ps, &idx, 0, 3.0, left);
        // permutation preserved
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<u32>>());
    }

    #[test]
    fn stable_partition_preserves_relative_order() {
        let ps = make_ps(&[5.0, 1.0, 3.0, 8.0, 2.0, 9.0, 3.0]);
        let mut idx: Vec<u32> = (0..7).collect();
        let mut scratch = Vec::new();
        let left = partition_stable(&ps, &mut idx, 0, 3.0, &mut scratch);
        assert_eq!(left, 4);
        assert_eq!(&idx[..left], &[1, 2, 4, 6]); // original order among ≤3
        assert_eq!(&idx[left..], &[0, 3, 5]);
    }

    #[test]
    fn stable_and_in_place_agree_on_boundary() {
        let mut rng = SplitRng::new(11);
        for n in [1usize, 2, 17, 256, 1000] {
            let values: Vec<f32> = (0..n).map(|_| (rng.next_f64() * 100.0) as f32).collect();
            let ps = make_ps(&values);
            let split = 37.5f32;
            let mut a: Vec<u32> = (0..n as u32).collect();
            let mut b = a.clone();
            let mut scratch = Vec::new();
            let la = partition_in_place(&ps, &mut a, 0, split);
            let lb = partition_stable(&ps, &mut b, 0, split, &mut scratch);
            assert_eq!(la, lb, "n={n}");
            check_partition(&ps, &a, 0, split, la);
            check_partition(&ps, &b, 0, split, lb);
        }
    }

    #[test]
    fn extreme_splits() {
        let ps = make_ps(&[1.0, 2.0, 3.0]);
        let mut idx: Vec<u32> = (0..3).collect();
        assert_eq!(partition_in_place(&ps, &mut idx, 0, 0.0), 0);
        assert_eq!(partition_in_place(&ps, &mut idx, 0, 10.0), 3);
        assert_eq!(partition_in_place(&ps, &mut idx, 0, 1.0), 1); // boundary inclusive left
    }

    #[test]
    fn empty_and_singleton() {
        let ps = make_ps(&[4.0]);
        let mut empty: Vec<u32> = vec![];
        assert_eq!(partition_in_place(&ps, &mut empty, 0, 1.0), 0);
        let mut one = vec![0u32];
        assert_eq!(partition_in_place(&ps, &mut one, 0, 4.0), 1);
    }

    #[test]
    fn by_count_median_splits_duplicates() {
        // all identical values: only the (value, id) tie-break separates
        let ps = make_ps(&[7.0; 10]);
        let mut idx: Vec<u32> = (0..10).collect();
        let v = partition_by_count(&ps, &mut idx, 0, 5);
        assert_eq!(v, 7.0);
        // ids below position 5 must be the five smallest ids
        let mut lo: Vec<u32> = idx[..5].to_vec();
        lo.sort_unstable();
        assert_eq!(lo, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn by_count_median_on_random_data() {
        let mut rng = SplitRng::new(3);
        let values: Vec<f32> = (0..101).map(|_| (rng.next_f64() * 50.0) as f32).collect();
        let ps = make_ps(&values);
        let mut idx: Vec<u32> = (0..101).collect();
        let v = partition_by_count(&ps, &mut idx, 0, 50);
        let below = idx[..50]
            .iter()
            .filter(|&&i| ps.coord(i as usize, 0) <= v)
            .count();
        assert_eq!(below, 50, "left side all ≤ median value");
        let above = idx[51..]
            .iter()
            .filter(|&&i| ps.coord(i as usize, 0) >= v)
            .count();
        assert_eq!(above, 50, "right side all ≥ median value");
    }

    #[test]
    fn partition_on_higher_dim() {
        let ps = PointSet::from_coords(
            3,
            vec![
                0.0, 9.0, 0.0, //
                0.0, 1.0, 0.0, //
                0.0, 5.0, 0.0, //
            ],
        )
        .unwrap();
        let mut idx: Vec<u32> = (0..3).collect();
        let left = partition_in_place(&ps, &mut idx, 1, 4.0);
        assert_eq!(left, 1);
        assert_eq!(idx[0], 1);
    }
}
