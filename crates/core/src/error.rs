//! Error type for the PANDA core library.

use std::fmt;
use std::time::Duration;

use panda_comm::CommError;

/// Errors reported by tree construction and querying APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum PandaError {
    /// A point coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Index of the offending point.
        point: usize,
        /// Dimension of the offending coordinate.
        dim: usize,
    },
    /// Dimensionality out of the supported range `1..=MAX_DIMS`.
    BadDims {
        /// The requested dimensionality.
        dims: usize,
    },
    /// Coordinate buffer length is not a multiple of `dims`.
    RaggedCoordinates {
        /// Buffer length supplied.
        len: usize,
        /// Dimensionality supplied.
        dims: usize,
    },
    /// `ids` and coordinate buffers disagree on the number of points.
    IdCountMismatch {
        /// Number of points implied by coordinates.
        points: usize,
        /// Number of ids supplied.
        ids: usize,
    },
    /// `k` must be at least 1.
    ZeroK,
    /// Query dimensionality differs from the indexed points.
    DimsMismatch {
        /// Dimensionality of the index.
        expected: usize,
        /// Dimensionality of the query.
        got: usize,
    },
    /// Point-count mismatch between two sets that must align (e.g. the
    /// point set handed to `knn_graph` vs. the indexed points).
    LenMismatch {
        /// Number of points expected.
        expected: usize,
        /// Number of points supplied.
        got: usize,
    },
    /// Operation requires a non-empty point set.
    EmptyPointSet,
    /// A search radius was NaN, infinite, negative, or zero. A radius
    /// limit must be a positive finite number; use *no* radius (e.g.
    /// [`crate::engine::QueryRequest`] without `with_radius`) for an
    /// unbounded KNN search.
    BadRadius {
        /// The rejected radius value.
        radius: f32,
    },
    /// A configuration value was invalid.
    BadConfig(String),
    /// An I/O error (dataset persistence).
    Io(String),
    /// A durable file (dataset, snapshot, or WAL header) failed its
    /// integrity checks: bad magic, unsupported version, truncation, or
    /// a checksum mismatch. Unlike a torn WAL *tail* (which recovery
    /// silently truncates — it holds only unacknowledged writes), a
    /// corrupt snapshot or header means acknowledged-durable data is
    /// unreadable, so it must surface instead of being papered over.
    Corrupt {
        /// Path of the unreadable file.
        path: String,
        /// What check failed.
        detail: String,
    },
    /// A query service's bounded submission queue is full and its
    /// overflow policy rejects rather than blocks. Retry later, raise
    /// the queue capacity, or switch the service to the blocking policy.
    Overloaded {
        /// Queued query points at the time of rejection.
        depth: usize,
        /// Configured queue capacity (query points).
        capacity: usize,
    },
    /// The query service was shut down; no further submissions are
    /// accepted (tickets issued before shutdown still resolve).
    ServiceStopped,
    /// A backend panicked while executing a service batch. The service
    /// stays up (the panic is contained to the batch); the message
    /// carries whatever context the panic payload offered.
    BackendPanicked(String),
    /// The query's deadline elapsed before the scheduler could execute
    /// it; the query was shed unexecuted (see
    /// [`crate::engine::QueryRequest::with_deadline`]).
    DeadlineExceeded {
        /// The deadline the submission carried (relative to submit time).
        deadline: Duration,
        /// How long the query had actually waited when it was shed.
        waited: Duration,
    },
    /// The client cancelled the submission before execution; its queue
    /// slot was reclaimed and the query never ran.
    Cancelled,
    /// A communication-layer failure (stalled peer, exhausted retries)
    /// surfaced through a distributed query instead of aborting the run.
    Comm(CommError),
    /// An insert supplied a global id that is already live in a mutable
    /// index. Ids are the identity deletions and updates address, so a
    /// live duplicate would make results ambiguous; `remove` the old
    /// point first to update it.
    DuplicateId {
        /// The already-live id.
        id: u64,
    },
    /// An armed fault point fired (test harness only — see
    /// [`crate::faultpoint`]). Never produced in production runs.
    FaultInjected {
        /// Name of the fault point that fired.
        point: String,
    },
}

impl fmt::Display for PandaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PandaError::NonFiniteCoordinate { point, dim } => {
                write!(
                    f,
                    "point {point} has a non-finite coordinate in dimension {dim}"
                )
            }
            PandaError::BadDims { dims } => write!(
                f,
                "dimensionality {dims} unsupported (must be 1..={})",
                crate::point::MAX_DIMS
            ),
            PandaError::RaggedCoordinates { len, dims } => {
                write!(
                    f,
                    "coordinate buffer of length {len} is not a multiple of dims={dims}"
                )
            }
            PandaError::IdCountMismatch { points, ids } => {
                write!(f, "{points} points but {ids} ids supplied")
            }
            PandaError::ZeroK => write!(f, "k must be at least 1"),
            PandaError::DimsMismatch { expected, got } => {
                write!(f, "query has {got} dimensions, index has {expected}")
            }
            PandaError::LenMismatch { expected, got } => {
                write!(f, "point set has {got} points, expected {expected}")
            }
            PandaError::EmptyPointSet => write!(f, "operation requires a non-empty point set"),
            PandaError::BadRadius { radius } => write!(
                f,
                "search radius must be a positive finite number, got {radius} \
                 (omit the radius for an unbounded KNN search)"
            ),
            PandaError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PandaError::Io(msg) => write!(f, "i/o error: {msg}"),
            PandaError::Corrupt { path, detail } => {
                write!(f, "corrupt file {path:?}: {detail}")
            }
            PandaError::Overloaded { depth, capacity } => write!(
                f,
                "service queue overloaded ({depth} queries queued, capacity {capacity}); \
                 retry later or raise the capacity"
            ),
            PandaError::ServiceStopped => {
                write!(f, "query service was shut down; submissions are closed")
            }
            PandaError::BackendPanicked(msg) => {
                write!(f, "backend panicked while executing a service batch: {msg}")
            }
            PandaError::DeadlineExceeded { deadline, waited } => write!(
                f,
                "query deadline of {deadline:?} exceeded (waited {waited:?}); \
                 the query was shed before execution"
            ),
            PandaError::Cancelled => {
                write!(f, "submission was cancelled before execution")
            }
            PandaError::Comm(e) => write!(f, "communication failure: {e}"),
            PandaError::DuplicateId { id } => write!(
                f,
                "point id {id} is already live in the index; remove it before re-inserting"
            ),
            PandaError::FaultInjected { point } => {
                write!(f, "injected fault fired at point {point:?}")
            }
        }
    }
}

impl std::error::Error for PandaError {}

impl From<std::io::Error> for PandaError {
    fn from(e: std::io::Error) -> Self {
        PandaError::Io(e.to_string())
    }
}

impl From<CommError> for PandaError {
    fn from(e: CommError) -> Self {
        PandaError::Comm(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PandaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_the_payload() {
        assert!(PandaError::NonFiniteCoordinate { point: 7, dim: 2 }
            .to_string()
            .contains("point 7"));
        assert!(PandaError::BadDims { dims: 99 }.to_string().contains("99"));
        assert!(PandaError::DimsMismatch {
            expected: 3,
            got: 10
        }
        .to_string()
        .contains("10"));
        let e = PandaError::LenMismatch {
            expected: 50,
            got: 10,
        }
        .to_string();
        assert!(e.contains("50") && e.contains("10"));
    }

    #[test]
    fn io_conversion() {
        let e: PandaError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, PandaError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn comm_conversion_preserves_the_typed_error() {
        let inner = CommError::Timeout {
            rank: 2,
            src: 0,
            tag: 0x8000_0000_0000_0004,
            attempts: 3,
        };
        let e: PandaError = inner.clone().into();
        assert_eq!(e, PandaError::Comm(inner));
        assert!(e.to_string().contains("timed out"), "{e}");
    }

    #[test]
    fn robustness_variants_display_their_context() {
        let e = PandaError::DeadlineExceeded {
            deadline: Duration::from_millis(5),
            waited: Duration::from_millis(9),
        };
        assert!(e.to_string().contains("5ms"), "{e}");
        assert!(e.to_string().contains("shed"), "{e}");
        assert!(PandaError::Cancelled.to_string().contains("cancelled"));
        let e = PandaError::DuplicateId { id: 42 };
        assert!(e.to_string().contains("42"), "{e}");
        let e = PandaError::FaultInjected {
            point: "service.drain".into(),
        };
        assert!(e.to_string().contains("service.drain"), "{e}");
        let e = PandaError::Corrupt {
            path: "/tmp/snap.pnda".into(),
            detail: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("snap.pnda"), "{e}");
        assert!(e.to_string().contains("checksum"), "{e}");
    }
}
