//! Sampled non-uniform histogram for approximate median selection
//! (§III-A1 of the paper).
//!
//! A small sample of coordinate values becomes the (non-uniform) interval
//! boundaries; all points are then binned against those boundaries and the
//! split point is the boundary whose cumulative count is closest to the
//! target quantile. Two binning kernels are provided:
//!
//! * [`SampledHistogram::bin_binary`] — branchy binary search;
//! * [`SampledHistogram::bin_scan`] — the paper's optimization: every 32nd
//!   boundary is pulled into a *sub-interval* array scanned linearly (a
//!   SIMD-friendly, branch-predictable loop), then only the identified
//!   32-wide range of the full array is scanned. The paper credits this
//!   with up to 42% faster local construction.
//!
//! Both kernels implement the same function `bin(v) = #{boundaries < v}`,
//! verified against each other by unit and property tests.

use crate::config::HistScan;

/// Stride of the sub-interval acceleration array (paper: every 32nd point).
pub const SUB_STRIDE: usize = 32;

/// Branch-free `#{a ∈ xs : a < v}` — a comparison-sum in the form LLVM
/// auto-vectorizes best (cmpps + psubd on x86).
///
/// Reproduction note: on the 2013-era cores the paper targeted, this scan
/// beat a (branch-missing) binary search by up to 42%; on modern cores a
/// well-compiled binary search is branchless (cmov) and wins back — see
/// `panda-bench --bin ablation_hist` for the measured-vs-modeled story.
#[inline(always)]
fn count_below(xs: &[f32], v: f32) -> usize {
    xs.iter().map(|&a| (a < v) as u32).sum::<u32>() as usize
}

/// Sorted sample boundaries plus the sub-interval acceleration array.
#[derive(Clone, Debug)]
pub struct SampledHistogram {
    intervals: Vec<f32>,
    sub: Vec<f32>,
}

/// Outcome of a quantile split over a histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitDecision {
    /// Chosen split value (points with `v ≤ value` go left).
    pub value: f32,
    /// Number of counted values that go left.
    pub left_count: u64,
    /// Total number of counted values.
    pub total: u64,
    /// True when the split fails to separate (everything on one side) —
    /// callers must fall back to a count-based split.
    pub degenerate: bool,
}

impl SampledHistogram {
    /// Build from sample values (sorted internally; duplicates kept, they
    /// simply create zero-width bins).
    pub fn from_samples(mut samples: Vec<f32>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample values"));
        let sub = samples
            .chunks_exact(SUB_STRIDE)
            .map(|c| c[SUB_STRIDE - 1])
            .collect();
        Self {
            intervals: samples,
            sub,
        }
    }

    /// Number of interval boundaries.
    #[inline]
    pub fn n_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Number of bins (`n_intervals + 1`).
    #[inline]
    pub fn n_bins(&self) -> usize {
        self.intervals.len() + 1
    }

    /// The sorted boundary values.
    pub fn intervals(&self) -> &[f32] {
        &self.intervals
    }

    /// Bin index via binary search: `#{boundaries < v}` ∈ `0..n_bins`.
    #[inline]
    pub fn bin_binary(&self, v: f32) -> usize {
        self.intervals.partition_point(|&a| a < v)
    }

    /// Bin index via the two-level sub-interval scan. Produces exactly the
    /// same index as [`Self::bin_binary`].
    #[inline]
    pub fn bin_scan(&self, v: f32) -> usize {
        // Level 1: count full 32-blocks entirely below v. Both loops are
        // branch-free comparison sums over contiguous f32, written with
        // fixed-width lanes so the compiler vectorizes them (this is the
        // paper's "scanned using SIMD").
        let blocks = count_below(&self.sub, v);
        // Level 2: scan the one partial block.
        let start = blocks * SUB_STRIDE;
        let end = (start + SUB_STRIDE).min(self.intervals.len());
        start + count_below(&self.intervals[start..end], v)
    }

    /// Bin `v` with the selected kernel.
    #[inline]
    pub fn bin(&self, v: f32, scan: HistScan) -> usize {
        match scan {
            HistScan::Binary => self.bin_binary(v),
            HistScan::SubInterval => self.bin_scan(v),
        }
    }

    /// Accumulate counts for a stream of values into `counts`
    /// (`counts.len() == n_bins`).
    pub fn count_into(
        &self,
        values: impl Iterator<Item = f32>,
        counts: &mut [u64],
        scan: HistScan,
    ) {
        debug_assert_eq!(counts.len(), self.n_bins());
        match scan {
            HistScan::Binary => {
                for v in values {
                    counts[self.bin_binary(v)] += 1;
                }
            }
            HistScan::SubInterval => {
                for v in values {
                    counts[self.bin_scan(v)] += 1;
                }
            }
        }
    }

    /// Fresh count vector for a stream of values.
    pub fn count(&self, values: impl Iterator<Item = f32>, scan: HistScan) -> Vec<u64> {
        let mut counts = vec![0u64; self.n_bins()];
        self.count_into(values, &mut counts, scan);
        counts
    }

    /// Pick the boundary whose cumulative count is closest to
    /// `target_fraction` of the total.
    ///
    /// `counts` may be the *global* (all-reduced) histogram — this is how
    /// every rank deterministically agrees on the global split.
    pub fn split_at_quantile(&self, counts: &[u64], target_fraction: f64) -> SplitDecision {
        debug_assert_eq!(counts.len(), self.n_bins());
        let total: u64 = counts.iter().sum();
        if self.intervals.is_empty() || total == 0 {
            return SplitDecision {
                value: 0.0,
                left_count: 0,
                total,
                degenerate: true,
            };
        }
        let target = target_fraction * total as f64;
        let mut best_j = 0usize;
        let mut best_err = f64::INFINITY;
        let mut cum = 0u64;
        // cum after bin j = #{v ≤ intervals[j]}
        for (j, &cnt) in counts.iter().enumerate().take(self.intervals.len()) {
            cum += cnt;
            let err = (cum as f64 - target).abs();
            if err < best_err {
                best_err = err;
                best_j = j;
            }
        }
        // left_count for the chosen boundary
        let left_count: u64 = counts[..=best_j].iter().sum();
        let degenerate = left_count == 0 || left_count == total;
        SplitDecision {
            value: self.intervals[best_j],
            left_count,
            total,
            degenerate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(vals: &[f32]) -> SampledHistogram {
        SampledHistogram::from_samples(vals.to_vec())
    }

    #[test]
    fn bin_semantics_boundaries() {
        let h = hist(&[1.0, 2.0, 3.0]);
        assert_eq!(h.n_bins(), 4);
        assert_eq!(h.bin_binary(0.5), 0);
        assert_eq!(h.bin_binary(1.0), 0); // boundaries < v: 1.0 is not < 1.0
        assert_eq!(h.bin_binary(1.5), 1);
        assert_eq!(h.bin_binary(3.0), 2);
        assert_eq!(h.bin_binary(99.0), 3);
    }

    #[test]
    fn scan_matches_binary_small() {
        let h = hist(&[1.0, 2.0, 2.0, 3.0, 10.0]);
        for v in [-1.0f32, 1.0, 1.5, 2.0, 2.5, 3.0, 9.9, 10.0, 11.0] {
            assert_eq!(h.bin_scan(v), h.bin_binary(v), "v={v}");
        }
    }

    #[test]
    fn scan_matches_binary_large_with_duplicates() {
        // > SUB_STRIDE boundaries incl. runs of duplicates, so both levels
        // of the scan and the tail block are exercised.
        let mut samples = Vec::new();
        for i in 0..200 {
            samples.push((i / 3) as f32); // duplicates every 3
        }
        let h = hist(&samples);
        assert!(!h.sub.is_empty());
        let mut probe = samples.clone();
        probe.extend([-5.0, 0.5, 33.33, 66.0, 67.0, 1e9]);
        for v in probe {
            assert_eq!(h.bin_scan(v), h.bin_binary(v), "v={v}");
        }
    }

    #[test]
    fn counts_partition_all_values() {
        let h = hist(&[0.0, 5.0, 10.0]);
        let values = [-3.0f32, 0.0, 1.0, 5.0, 5.5, 10.0, 20.0];
        for scan in [HistScan::Binary, HistScan::SubInterval] {
            let counts = h.count(values.iter().copied(), scan);
            assert_eq!(counts.iter().sum::<u64>(), values.len() as u64);
            assert_eq!(counts, vec![2, 2, 2, 1]); // ≤0 | (0,5] | (5,10] | >10
        }
    }

    #[test]
    fn median_split_is_balanced_on_uniform_data() {
        let values: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        // 100 evenly spread samples
        let samples: Vec<f32> = (0..100).map(|i| (i * 10) as f32).collect();
        let h = SampledHistogram::from_samples(samples);
        let counts = h.count(values.iter().copied(), HistScan::SubInterval);
        let d = h.split_at_quantile(&counts, 0.5);
        assert!(!d.degenerate);
        let frac = d.left_count as f64 / d.total as f64;
        assert!((frac - 0.5).abs() < 0.02, "left fraction {frac}");
        // left_count must be exactly the number of values ≤ split
        let exact = values.iter().filter(|&&v| v <= d.value).count() as u64;
        assert_eq!(d.left_count, exact);
    }

    #[test]
    fn quantile_targets_other_fractions() {
        let values: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let samples: Vec<f32> = (0..200).map(|i| (i * 5) as f32).collect();
        let h = SampledHistogram::from_samples(samples);
        let counts = h.count(values.iter().copied(), HistScan::Binary);
        for f in [0.25, 0.75, 0.125] {
            let d = h.split_at_quantile(&counts, f);
            let frac = d.left_count as f64 / d.total as f64;
            assert!((frac - f).abs() < 0.02, "target {f} got {frac}");
        }
    }

    #[test]
    fn all_identical_values_degenerate() {
        let h = hist(&[7.0; 64]);
        let counts = h.count(std::iter::repeat_n(7.0, 100), HistScan::SubInterval);
        let d = h.split_at_quantile(&counts, 0.5);
        assert!(d.degenerate);
        assert_eq!(d.total, 100);
    }

    #[test]
    fn empty_histogram_degenerate() {
        let h = hist(&[]);
        assert_eq!(h.n_bins(), 1);
        let counts = h.count([1.0f32, 2.0].into_iter(), HistScan::Binary);
        assert_eq!(counts, vec![2]);
        assert!(h.split_at_quantile(&counts, 0.5).degenerate);
    }

    #[test]
    fn skewed_distribution_still_near_median() {
        // exponential-ish skew: sampled boundaries adapt to density
        let values: Vec<f32> = (0..10_000).map(|i| ((i as f32) / 100.0).exp()).collect();
        let samples: Vec<f32> = (0..1024)
            .map(|i| values[(i * 9767) % values.len()])
            .collect();
        let h = SampledHistogram::from_samples(samples);
        let counts = h.count(values.iter().copied(), HistScan::SubInterval);
        let d = h.split_at_quantile(&counts, 0.5);
        let frac = d.left_count as f64 / d.total as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "left fraction {frac} on skewed data"
        );
    }
}
