//! Morton (Z-order) curve keys for locality-aware query scheduling.
//!
//! Sorting a query batch along a space-filling curve makes consecutive
//! queries spatially adjacent, so they traverse mostly the same tree path
//! and re-touch the same leaf buckets while those are still cached. The
//! batch engine ([`crate::knn::KnnIndex::query_session`]) uses this behind
//! the [`crate::config::QueryOrder::Morton`] knob; results are always
//! scattered back to input order, so the reordering is invisible in the
//! API — it is purely a constant-factor play.

use crate::point::{PointSet, MAX_DIMS};

/// Morton key of one point: each coordinate is quantized to
/// `⌊63 / dims⌋` bits (capped at 21) against the bounding box `lo`/`scale`
/// and the bit planes are interleaved MSB-first.
#[inline]
pub fn morton_key(p: &[f32], lo: &[f32], scale: &[f64], bits: u32) -> u64 {
    let dims = p.len();
    debug_assert!(dims <= MAX_DIMS);
    let mut cells = [0u64; MAX_DIMS];
    let max_cell = (1u64 << bits) - 1;
    for d in 0..dims {
        let c = ((p[d] - lo[d]) as f64 * scale[d]) as u64;
        cells[d] = c.min(max_cell);
    }
    let mut key = 0u64;
    for b in (0..bits).rev() {
        for &cell in cells.iter().take(dims) {
            key = (key << 1) | ((cell >> b) & 1);
        }
    }
    key
}

/// Execution schedule visiting `queries` in Morton order: a permutation of
/// `0..queries.len()` (deterministic; key ties break by input index).
pub fn morton_schedule(queries: &PointSet) -> Vec<u32> {
    morton_schedule_coords(queries.dims(), queries.coords())
}

/// [`morton_schedule`] over a flat coordinate buffer (`coords.len()` must
/// be a multiple of `dims`). The distributed query engine routes queries
/// as flat `f32` streams; this variant orders them without materializing
/// a [`PointSet`].
pub fn morton_schedule_coords(dims: usize, coords: &[f32]) -> Vec<u32> {
    debug_assert!((1..=MAX_DIMS).contains(&dims));
    debug_assert_eq!(coords.len() % dims, 0);
    let n = coords.len() / dims;
    if n == 0 {
        return Vec::new();
    }
    let mut lo = vec![f32::INFINITY; dims];
    let mut hi = vec![f32::NEG_INFINITY; dims];
    for p in coords.chunks_exact(dims) {
        for d in 0..dims {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let bits = (63 / dims as u32).clamp(1, 21);
    let scale: Vec<f64> = (0..dims)
        .map(|d| {
            let ext = (hi[d] - lo[d]) as f64;
            if ext > 0.0 {
                ((1u64 << bits) - 1) as f64 / ext
            } else {
                0.0
            }
        })
        .collect();
    let mut keyed: Vec<(u64, u32)> = coords
        .chunks_exact(dims)
        .enumerate()
        .map(|(i, p)| (morton_key(p, &lo, &scale, bits), i as u32))
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(dims: usize, coords: Vec<f32>) -> PointSet {
        PointSet::from_coords(dims, coords).unwrap()
    }

    #[test]
    fn schedule_is_a_permutation() {
        let q = ps(3, (0..300).map(|i| ((i * 37) % 100) as f32).collect());
        let mut s = morton_schedule(&q);
        assert_eq!(s.len(), 100);
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn nearby_points_are_adjacent_in_schedule() {
        // two tight clusters far apart: the schedule must not interleave them
        let mut coords = Vec::new();
        for i in 0..8 {
            coords.extend([i as f32 * 0.01, 0.0]); // cluster A near origin
        }
        for i in 0..8 {
            coords.extend([100.0 + i as f32 * 0.01, 100.0]); // cluster B
        }
        let q = ps(2, coords);
        let s = morton_schedule(&q);
        let first_half: Vec<u32> = s[..8].to_vec();
        let all_a = first_half.iter().all(|&i| i < 8);
        let all_b = first_half.iter().all(|&i| i >= 8);
        assert!(all_a || all_b, "clusters interleaved: {s:?}");
    }

    #[test]
    fn degenerate_inputs() {
        // empty
        assert!(morton_schedule(&PointSet::new(2).unwrap()).is_empty());
        // all-identical points: ties break by index, schedule is identity
        let q = ps(2, [1.0f32, 2.0].repeat(5).to_vec());
        assert_eq!(morton_schedule(&q), vec![0, 1, 2, 3, 4]);
        // single point
        let q = ps(3, vec![1.0, 2.0, 3.0]);
        assert_eq!(morton_schedule(&q), vec![0]);
    }

    #[test]
    fn keys_order_along_the_curve_in_1d() {
        // in 1-D, Morton order is plain coordinate order
        let q = ps(1, vec![5.0, 1.0, 9.0, 3.0]);
        assert_eq!(morton_schedule(&q), vec![1, 3, 0, 2]);
    }

    #[test]
    fn coords_variant_matches_pointset_schedule() {
        let q = ps(3, (0..300).map(|i| ((i * 37) % 100) as f32).collect());
        assert_eq!(morton_schedule(&q), morton_schedule_coords(3, q.coords()));
        // empty buffer
        assert!(morton_schedule_coords(2, &[]).is_empty());
    }

    #[test]
    fn high_dims_still_fit_in_64_bits() {
        let q = ps(16, (0..160).map(|i| (i % 13) as f32).collect());
        let s = morton_schedule(&q);
        assert_eq!(s.len(), 10);
    }
}
