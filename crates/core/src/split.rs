//! Split-dimension and split-value selection (§III-A1).

use crate::config::{HistScan, SplitDimStrategy};
use crate::counters::BuildCounters;
use crate::hist::{SampledHistogram, SplitDecision};
use crate::point::{PointSet, MAX_DIMS};
use crate::rng::SplitRng;

/// Choose the split dimension for the segment `idx` of `ps`.
pub fn choose_dim(
    ps: &PointSet,
    idx: &[u32],
    strategy: SplitDimStrategy,
    depth: usize,
    rng: &mut SplitRng,
    counters: &mut BuildCounters,
) -> usize {
    debug_assert!(!idx.is_empty());
    let dims = ps.dims();
    if dims == 1 {
        return 0;
    }
    match strategy {
        SplitDimStrategy::RoundRobin => depth % dims,
        SplitDimStrategy::MaxExtent => {
            let mut lo = [f32::INFINITY; MAX_DIMS];
            let mut hi = [f32::NEG_INFINITY; MAX_DIMS];
            for &i in idx {
                let p = ps.point(i as usize);
                for d in 0..dims {
                    lo[d] = lo[d].min(p[d]);
                    hi[d] = hi[d].max(p[d]);
                }
            }
            counters.extent_ops += (idx.len() * dims) as u64;
            argmax_f32(&(0..dims).map(|d| hi[d] - lo[d]).collect::<Vec<_>>())
        }
        SplitDimStrategy::MaxVariance { sample } => {
            let positions = rng.sample_with_replacement(idx.len(), sample.max(2));
            counters.sampled += positions.len() as u64;
            counters.variance_ops += (positions.len() * dims) as u64;
            let n = positions.len() as f64;
            let mut sum = [0.0f64; MAX_DIMS];
            let mut sumsq = [0.0f64; MAX_DIMS];
            for &pos in &positions {
                let p = ps.point(idx[pos as usize] as usize);
                for d in 0..dims {
                    let v = p[d] as f64;
                    sum[d] += v;
                    sumsq[d] += v * v;
                }
            }
            let vars: Vec<f32> = (0..dims)
                .map(|d| ((sumsq[d] - sum[d] * sum[d] / n) / n).max(0.0) as f32)
                .collect();
            argmax_f32(&vars)
        }
    }
}

/// Sample `samples` values of `idx` along `dim`, build the non-uniform
/// histogram, count the full segment, and pick the boundary closest to the
/// median (or an arbitrary `target` quantile — the global tree uses
/// unequal targets for non-power-of-two rank groups).
#[allow(clippy::too_many_arguments)]
pub fn sampled_split_value(
    ps: &PointSet,
    idx: &[u32],
    dim: usize,
    samples: usize,
    target: f64,
    scan: HistScan,
    rng: &mut SplitRng,
    counters: &mut BuildCounters,
) -> SplitDecision {
    let positions = rng.sample_with_replacement(idx.len(), samples.max(2));
    counters.sampled += positions.len() as u64;
    let sample_vals: Vec<f32> = positions
        .iter()
        .map(|&p| ps.coord(idx[p as usize] as usize, dim))
        .collect();
    let hist = SampledHistogram::from_samples(sample_vals);
    let counts = hist.count(idx.iter().map(|&i| ps.coord(i as usize, dim)), scan);
    counters.hist_binned += idx.len() as u64;
    hist.split_at_quantile(&counts, target)
}

/// FLANN's split-value heuristic (§V-B2): the mean of the first 100 points
/// along the dimension. Cheap and crude; kept for the comparison ablation.
pub fn mean_first_100(ps: &PointSet, idx: &[u32], dim: usize) -> f32 {
    let n = idx.len().min(100);
    debug_assert!(n > 0);
    let sum: f64 = idx[..n]
        .iter()
        .map(|&i| ps.coord(i as usize, dim) as f64)
        .sum();
    (sum / n as f64) as f32
}

fn argmax_f32(vals: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (d, &v) in vals.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitDimStrategy as S;

    /// 2-D points: dim 0 spans [0,100], dim 1 spans [0,1].
    fn anisotropic(n: usize) -> PointSet {
        let mut rng = SplitRng::new(99);
        let mut coords = Vec::with_capacity(n * 2);
        for _ in 0..n {
            coords.push((rng.next_f64() * 100.0) as f32);
            coords.push(rng.next_f64() as f32);
        }
        PointSet::from_coords(2, coords).unwrap()
    }

    #[test]
    fn variance_picks_the_wide_dimension() {
        let ps = anisotropic(2000);
        let idx: Vec<u32> = (0..2000).collect();
        let mut rng = SplitRng::new(1);
        let mut c = BuildCounters::default();
        let d = choose_dim(
            &ps,
            &idx,
            S::MaxVariance { sample: 512 },
            0,
            &mut rng,
            &mut c,
        );
        assert_eq!(d, 0);
        assert!(c.sampled >= 512);
        assert!(c.variance_ops >= 1024);
    }

    #[test]
    fn extent_picks_the_wide_dimension() {
        let ps = anisotropic(500);
        let idx: Vec<u32> = (0..500).collect();
        let mut rng = SplitRng::new(1);
        let mut c = BuildCounters::default();
        let d = choose_dim(&ps, &idx, S::MaxExtent, 0, &mut rng, &mut c);
        assert_eq!(d, 0);
        assert_eq!(c.extent_ops, 1000);
    }

    #[test]
    fn extent_vs_variance_can_disagree() {
        // dim 0: all mass at 0 with one outlier at 500 → extent 500 but
        // variance ≈ 500²/1000 = 250; dim 1: uniform [0,100] → extent
        // ~100 but variance ≈ 833. Extent picks dim 0, variance dim 1.
        let mut coords = Vec::new();
        let mut rng = SplitRng::new(5);
        for i in 0..1000 {
            coords.push(if i == 0 { 500.0 } else { 0.0 });
            coords.push((rng.next_f64() * 100.0) as f32);
        }
        let ps = PointSet::from_coords(2, coords).unwrap();
        let idx: Vec<u32> = (0..1000).collect();
        let mut c = BuildCounters::default();
        let e = choose_dim(&ps, &idx, S::MaxExtent, 0, &mut SplitRng::new(1), &mut c);
        let v = choose_dim(
            &ps,
            &idx,
            S::MaxVariance { sample: 1000 },
            0,
            &mut SplitRng::new(1),
            &mut c,
        );
        assert_eq!(e, 0, "extent sees the outlier");
        assert_eq!(v, 1, "variance ignores the outlier");
    }

    #[test]
    fn round_robin_cycles_with_depth() {
        let ps = anisotropic(10);
        let idx: Vec<u32> = (0..10).collect();
        let mut rng = SplitRng::new(1);
        let mut c = BuildCounters::default();
        assert_eq!(choose_dim(&ps, &idx, S::RoundRobin, 0, &mut rng, &mut c), 0);
        assert_eq!(choose_dim(&ps, &idx, S::RoundRobin, 1, &mut rng, &mut c), 1);
        assert_eq!(choose_dim(&ps, &idx, S::RoundRobin, 2, &mut rng, &mut c), 0);
    }

    #[test]
    fn one_dim_short_circuits() {
        let ps = PointSet::from_coords(1, vec![1.0, 2.0, 3.0]).unwrap();
        let idx: Vec<u32> = (0..3).collect();
        let mut c = BuildCounters::default();
        let d = choose_dim(
            &ps,
            &idx,
            S::MaxVariance { sample: 8 },
            0,
            &mut SplitRng::new(1),
            &mut c,
        );
        assert_eq!(d, 0);
    }

    #[test]
    fn sampled_split_near_median() {
        let ps = anisotropic(5000);
        let idx: Vec<u32> = (0..5000).collect();
        let mut rng = SplitRng::new(2);
        let mut c = BuildCounters::default();
        let d = sampled_split_value(
            &ps,
            &idx,
            0,
            512,
            0.5,
            HistScan::SubInterval,
            &mut rng,
            &mut c,
        );
        assert!(!d.degenerate);
        let frac = d.left_count as f64 / d.total as f64;
        assert!((frac - 0.5).abs() < 0.06, "left fraction {frac}");
        assert_eq!(c.hist_binned, 5000);
        // left_count must agree with the predicate `v ≤ split`
        let exact = idx
            .iter()
            .filter(|&&i| ps.coord(i as usize, 0) <= d.value)
            .count() as u64;
        assert_eq!(exact, d.left_count);
    }

    #[test]
    fn sampled_split_degenerates_on_constant_data() {
        let ps = PointSet::from_coords(1, vec![3.0; 500]).unwrap();
        let idx: Vec<u32> = (0..500).collect();
        let mut rng = SplitRng::new(2);
        let mut c = BuildCounters::default();
        let d = sampled_split_value(&ps, &idx, 0, 64, 0.5, HistScan::Binary, &mut rng, &mut c);
        assert!(d.degenerate);
    }

    #[test]
    fn unequal_target_fraction() {
        let ps = anisotropic(4000);
        let idx: Vec<u32> = (0..4000).collect();
        let mut rng = SplitRng::new(7);
        let mut c = BuildCounters::default();
        let d = sampled_split_value(
            &ps,
            &idx,
            0,
            1024,
            0.25,
            HistScan::SubInterval,
            &mut rng,
            &mut c,
        );
        let frac = d.left_count as f64 / d.total as f64;
        assert!((frac - 0.25).abs() < 0.05, "left fraction {frac}");
    }

    #[test]
    fn mean_first_100_matches_manual() {
        let ps = PointSet::from_coords(1, (0..200).map(|i| i as f32).collect()).unwrap();
        let idx: Vec<u32> = (0..200).collect();
        let m = mean_first_100(&ps, &idx, 0);
        assert!((m - 49.5).abs() < 1e-4);
        // fewer than 100 points: averages what's there
        let m2 = mean_first_100(&ps, &idx[..10], 0);
        assert!((m2 - 4.5).abs() < 1e-4);
    }
}
