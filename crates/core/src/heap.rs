//! Bounded max-heap tracking the k nearest candidates (the heap `H` of
//! Algorithm 1 in the paper).
//!
//! Distances are kept **squared** throughout the hot path; the square root
//! is taken only when results are surfaced. The heap also carries the
//! current search bound `r'²`: before it fills, the bound is the caller's
//! initial radius (∞ for plain KNN, the owner's `r'` for remote KNN); once
//! full it is the largest distance held. Offers use strict `<`, so an
//! equal-distance candidate never displaces an earlier one — this keeps
//! tie handling deterministic and identical to the brute-force reference.

/// One nearest-neighbor candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Squared Euclidean distance to the query.
    pub dist_sq: f32,
    /// Global id of the data point.
    pub id: u64,
}

impl Neighbor {
    /// Euclidean distance (square root of the stored squared distance).
    #[inline]
    pub fn dist(&self) -> f32 {
        self.dist_sq.sqrt()
    }
}

/// Array-backed bounded max-heap over [`Neighbor`]s ordered by `dist_sq`.
#[derive(Clone, Debug)]
pub struct KnnHeap {
    k: usize,
    bound_sq: f32,
    items: Vec<Neighbor>,
}

impl KnnHeap {
    /// Heap for the `k` nearest neighbors with an unbounded initial radius.
    pub fn new(k: usize) -> Self {
        Self::with_radius_sq(k, f32::INFINITY)
    }

    /// Heap with an initial search bound `r'²` (radius-limited KNN; used by
    /// remote queries which carry the owner's bound).
    pub fn with_radius_sq(k: usize, radius_sq: f32) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            bound_sq: radius_sq,
            items: Vec::with_capacity(k),
        }
    }

    /// Capacity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no candidate is held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when `k` candidates are held.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.k
    }

    /// Current squared search bound `r'²`: any point at squared distance
    /// `≥ bound_sq()` can be pruned.
    #[inline]
    pub fn bound_sq(&self) -> f32 {
        self.bound_sq
    }

    /// Offer a candidate; returns true if it was kept. Strict `<` against
    /// the current bound.
    ///
    /// A NaN distance is rejected (debug builds assert): were it admitted,
    /// it would poison `bound_sq` — every later comparison against a NaN
    /// bound is false, so all pruning would silently switch off and
    /// [`Self::into_sorted`] would panic on the unordered distance. An
    /// infinite distance (finite coordinates whose squared distance
    /// overflows `f32`) is rejected by the ordinary bound comparison,
    /// since the bound never exceeds `+∞`.
    #[inline]
    pub fn offer(&mut self, dist_sq: f32, id: u64) -> bool {
        debug_assert!(
            !dist_sq.is_nan(),
            "NaN distance offered to KnnHeap (id {id})"
        );
        // `!(a < b)` rather than `a >= b`: NaN fails every ordered
        // comparison, so the negated form also rejects NaN in release
        // builds where the assert above compiles out.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(dist_sq < self.bound_sq) {
            return false;
        }
        if self.items.len() < self.k {
            self.items.push(Neighbor { dist_sq, id });
            self.sift_up(self.items.len() - 1);
            if self.items.len() == self.k {
                self.bound_sq = self.bound_sq.min(self.items[0].dist_sq);
            }
        } else {
            self.items[0] = Neighbor { dist_sq, id };
            self.sift_down(0);
            self.bound_sq = self.items[0].dist_sq;
        }
        true
    }

    /// Largest held distance (the heap top), if any candidate is held.
    pub fn max_dist_sq(&self) -> Option<f32> {
        self.items.first().map(|n| n.dist_sq)
    }

    /// Reset in place for a new query with capacity `k` and initial bound
    /// `radius_sq`, keeping the item buffer's allocation. This is what
    /// lets the batch engine reuse **one** heap per worker chunk instead
    /// of allocating one per query.
    #[inline]
    pub fn reset(&mut self, k: usize, radius_sq: f32) {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
        self.bound_sq = radius_sq;
        self.items.clear();
        self.items.reserve(k);
    }

    /// Drain into `out`, appended in ascending distance (ties by id),
    /// leaving the heap empty but with its buffer intact. The sorted
    /// order is identical to [`Self::into_sorted`]; this variant exists
    /// so chunk-local result arenas can be filled without a per-query
    /// `Vec` allocation.
    pub fn append_sorted_into(&mut self, out: &mut Vec<Neighbor>) {
        // unstable sort is fine: (dist_sq, id) is a total order over the
        // held items (ids are unique), so the result is deterministic.
        self.items.sort_unstable_by(|a, b| {
            a.dist_sq
                .partial_cmp(&b.dist_sq)
                .expect("finite distances")
                .then(a.id.cmp(&b.id))
        });
        out.append(&mut self.items);
    }

    /// Drain into a vector sorted by ascending distance (ties by id for
    /// determinism).
    pub fn into_sorted(mut self) -> Vec<Neighbor> {
        self.items.sort_by(|a, b| {
            a.dist_sq
                .partial_cmp(&b.dist_sq)
                .expect("finite distances")
                .then(a.id.cmp(&b.id))
        });
        self.items
    }

    /// Iterate the held candidates in heap order (no particular sort).
    pub fn iter(&self) -> impl Iterator<Item = &Neighbor> {
        self.items.iter()
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].dist_sq > self.items[parent].dist_sq {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.items.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < n && self.items[l].dist_sq > self.items[largest].dist_sq {
                largest = l;
            }
            if r < n && self.items[r].dist_sq > self.items[largest].dist_sq {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.items.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_smallest() {
        let mut h = KnnHeap::new(3);
        for (i, d) in [9.0f32, 1.0, 5.0, 3.0, 7.0, 2.0].iter().enumerate() {
            h.offer(*d, i as u64);
        }
        let out = h.into_sorted();
        let dists: Vec<f32> = out.iter().map(|n| n.dist_sq).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
        assert_eq!(out[0].id, 1);
    }

    #[test]
    fn bound_shrinks_as_heap_fills() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.bound_sq(), f32::INFINITY);
        h.offer(4.0, 0);
        assert_eq!(h.bound_sq(), f32::INFINITY); // not full yet
        h.offer(9.0, 1);
        assert_eq!(h.bound_sq(), 9.0); // full: bound = max held
        h.offer(1.0, 2);
        assert_eq!(h.bound_sq(), 4.0);
        assert!(!h.offer(4.0, 3)); // strict <: equal is rejected
        assert!(h.offer(3.9, 4));
    }

    #[test]
    fn initial_radius_prunes_before_full() {
        let mut h = KnnHeap::with_radius_sq(3, 2.0);
        assert!(!h.offer(2.0, 0)); // == radius: rejected (strict)
        assert!(!h.offer(5.0, 1));
        assert!(h.offer(1.0, 2));
        assert_eq!(h.len(), 1);
        // bound stays at the radius until the heap fills
        assert_eq!(h.bound_sq(), 2.0);
    }

    #[test]
    fn radius_tighter_than_kth_is_kept_after_fill() {
        // Initial radius 1.0; three candidates below it. After filling, the
        // bound must be min(radius, kth) = kth here since all < radius.
        let mut h = KnnHeap::with_radius_sq(2, 1.0);
        h.offer(0.9, 0);
        h.offer(0.5, 1);
        assert_eq!(h.bound_sq(), 0.9);
        // And if k-th dist were above radius, bound stays at radius:
        let mut h2 = KnnHeap::with_radius_sq(2, 1.0);
        h2.offer(0.2, 0);
        h2.offer(0.999, 1);
        assert!(h2.bound_sq() <= 1.0);
    }

    #[test]
    fn equal_distances_keep_first_arrival() {
        let mut h = KnnHeap::new(1);
        assert!(h.offer(5.0, 100));
        assert!(!h.offer(5.0, 200)); // tie: first stays
        let out = h.into_sorted();
        assert_eq!(out[0].id, 100);
    }

    #[test]
    fn into_sorted_is_ascending_with_id_ties() {
        let mut h = KnnHeap::new(4);
        h.offer(2.0, 7);
        h.offer(1.0, 9);
        h.offer(2.0, 3);
        h.offer(0.5, 1);
        let out = h.into_sorted();
        let pairs: Vec<(f32, u64)> = out.iter().map(|n| (n.dist_sq, n.id)).collect();
        assert_eq!(pairs, vec![(0.5, 1), (1.0, 9), (2.0, 3), (2.0, 7)]);
    }

    #[test]
    fn matches_naive_reference_on_random_streams() {
        // xorshift-ish deterministic pseudo-random stream
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32 * 100.0
        };
        for k in [1usize, 2, 5, 16] {
            let mut h = KnnHeap::new(k);
            let mut all = Vec::new();
            for id in 0..200u64 {
                let d = next();
                all.push((d, id));
                h.offer(d, id);
            }
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let expect: Vec<f32> = all.iter().take(k).map(|p| p.0).collect();
            let got: Vec<f32> = h.into_sorted().iter().map(|n| n.dist_sq).collect();
            assert_eq!(got, expect, "k={k}");
        }
    }

    #[test]
    fn neighbor_dist_is_sqrt() {
        let n = Neighbor {
            dist_sq: 9.0,
            id: 0,
        };
        assert_eq!(n.dist(), 3.0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = KnnHeap::new(0);
    }

    /// Finite coordinates can still square-overflow to `+∞` (e.g. two
    /// points at ±3e38 in one dimension): the ordinary bound comparison
    /// must reject it even while the heap is unbounded, and sorting must
    /// not panic afterwards.
    #[test]
    fn infinite_distance_is_rejected_not_poisoning() {
        let mut h = KnnHeap::new(2);
        assert!(!h.offer(f32::INFINITY, 0)); // ∞ ≥ ∞ bound: rejected
        assert!(h.offer(1.0, 1));
        assert!(!h.offer(f32::INFINITY, 2));
        assert!(h.offer(2.0, 3));
        assert_eq!(h.bound_sq(), 2.0);
        assert!(!h.offer(f32::INFINITY, 4));
        let out = h.into_sorted(); // must not panic on unordered values
        let ids: Vec<u64> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    /// Release builds must reject NaN outright instead of letting it
    /// poison the bound (debug builds assert instead — see below).
    #[cfg(not(debug_assertions))]
    #[test]
    fn nan_distance_is_rejected_in_release() {
        let mut h = KnnHeap::new(2);
        assert!(!h.offer(f32::NAN, 0));
        assert!(h.offer(1.0, 1));
        assert!(h.offer(2.0, 2));
        assert!(!h.offer(f32::NAN, 3));
        // the bound is still the real k-th distance, so pruning works
        assert_eq!(h.bound_sq(), 2.0);
        assert!(!h.offer(3.0, 4));
        let out = h.into_sorted(); // no "finite distances" panic
        assert_eq!(out.len(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "NaN distance offered")]
    fn nan_distance_asserts_in_debug() {
        let mut h = KnnHeap::new(2);
        h.offer(f32::NAN, 0);
    }

    #[test]
    fn fewer_than_k_available() {
        let mut h = KnnHeap::new(10);
        h.offer(1.0, 1);
        h.offer(2.0, 2);
        assert_eq!(h.len(), 2);
        assert!(!h.is_full());
        assert_eq!(h.into_sorted().len(), 2);
    }
}
