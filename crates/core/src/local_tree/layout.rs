//! SIMD-packed leaf storage (§III-A(iv)).
//!
//! Once bucket membership is fixed, coordinates are copied into a layout
//! where the query-time exhaustive scan is a branch-free vectorizable
//! stream: buckets are contiguous, within a bucket the data is
//! dimension-major, and each bucket is padded to a multiple of [`LANE`]
//! positions. Padding coordinates are `+∞`, so padded positions produce an
//! infinite distance and can never enter the candidate heap — the scan
//! needs no tail handling at all.

/// Vector lane count the layout pads to (8 × f32 = one AVX2 register).
pub const LANE: usize = 8;

/// Round `n` up to a multiple of [`LANE`].
#[inline]
pub(crate) fn padded(n: usize) -> usize {
    n.div_ceil(LANE) * LANE
}

/// Bucket-major packed coordinates and ids.
#[derive(Clone, Debug, Default)]
pub struct PackedLeaves {
    dims: usize,
    /// Per bucket: `cap × dims` floats, dimension-major within the bucket.
    coords: Vec<f32>,
    /// Padded point ids (`u64::MAX` marks padding).
    ids: Vec<u64>,
}

impl PackedLeaves {
    /// Empty storage for `dims`-dimensional buckets.
    pub fn new(dims: usize) -> Self {
        Self { dims, coords: Vec::new(), ids: Vec::new() }
    }

    /// Pre-allocate for `n_points` (estimates padding at full buckets).
    pub fn reserve(&mut self, n_points: usize) {
        self.coords.reserve(padded(n_points) * self.dims);
        self.ids.reserve(padded(n_points));
    }

    /// Append one bucket from `(coords_of, id_of)` accessors over `n`
    /// member points. Returns the bucket's padded base index.
    pub fn push_leaf(
        &mut self,
        n: usize,
        coord_of: impl Fn(usize, usize) -> f32, // (member, dim) -> coordinate
        id_of: impl Fn(usize) -> u64,
    ) -> u32 {
        debug_assert!(n > 0);
        let base = self.ids.len();
        let cap = padded(n);
        for d in 0..self.dims {
            for i in 0..cap {
                self.coords.push(if i < n { coord_of(i, d) } else { f32::INFINITY });
            }
        }
        for i in 0..cap {
            self.ids.push(if i < n { id_of(i) } else { u64::MAX });
        }
        base as u32
    }

    /// Padded ids array.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Coordinate of member `i` (0-based within the bucket) along `dim`
    /// for the bucket at padded base `base` with capacity `cap`.
    /// Used by invariant checks and by code that needs to read points back
    /// out of the packed layout (e.g. per-rank bbox computation).
    #[inline]
    pub fn member_coord(&self, base: usize, cap: usize, i: usize, dim: usize) -> f32 {
        debug_assert!(i < cap);
        self.coords[base * self.dims + dim * cap + i]
    }

    /// Distance kernel: squared Euclidean distances from `q` to every
    /// padded position of the bucket at `base` with capacity `cap`,
    /// written into `out[..cap]`. Padded slots yield `+∞`.
    #[inline]
    pub fn distances(&self, base: usize, cap: usize, q: &[f32], out: &mut Vec<f32>) {
        let dims = self.dims;
        out.clear();
        out.resize(cap, 0.0);
        let block = &self.coords[base * dims..base * dims + cap * dims];
        match dims {
            3 => {
                let (xs, rest) = block.split_at(cap);
                let (ys, zs) = rest.split_at(cap);
                let (qx, qy, qz) = (q[0], q[1], q[2]);
                for i in 0..cap {
                    let dx = qx - xs[i];
                    let dy = qy - ys[i];
                    let dz = qz - zs[i];
                    out[i] = dx * dx + dy * dy + dz * dz;
                }
            }
            2 => {
                let (xs, ys) = block.split_at(cap);
                let (qx, qy) = (q[0], q[1]);
                for i in 0..cap {
                    let dx = qx - xs[i];
                    let dy = qy - ys[i];
                    out[i] = dx * dx + dy * dy;
                }
            }
            _ => {
                for (d, &qd) in q.iter().enumerate().take(dims) {
                    let row = &block[d * cap..(d + 1) * cap];
                    for i in 0..cap {
                        let diff = qd - row[i];
                        out[i] += diff * diff;
                    }
                }
            }
        }
    }

    /// Resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.coords.len() * 4 + self.ids.len() * 8
    }

    /// Total padded positions stored.
    pub fn padded_len(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack_one(dims: usize, pts: &[Vec<f32>]) -> (PackedLeaves, u32, usize) {
        let mut pl = PackedLeaves::new(dims);
        let base = pl.push_leaf(pts.len(), |i, d| pts[i][d], |i| i as u64 * 10);
        let cap = padded(pts.len());
        (pl, base, cap)
    }

    #[test]
    fn padding_rounds_to_lane() {
        assert_eq!(padded(1), LANE);
        assert_eq!(padded(8), 8);
        assert_eq!(padded(9), 16);
        assert_eq!(padded(32), 32);
        assert_eq!(padded(33), 40);
    }

    #[test]
    fn pack_and_ids() {
        let pts = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let (pl, base, cap) = pack_one(2, &pts);
        assert_eq!(base, 0);
        assert_eq!(cap, 8);
        assert_eq!(pl.padded_len(), 8);
        assert_eq!(&pl.ids()[..3], &[0, 10, 20]);
        assert!(pl.ids()[3..].iter().all(|&i| i == u64::MAX));
    }

    #[test]
    fn distances_match_manual_and_padding_is_infinite() {
        let pts = vec![vec![0.0, 0.0], vec![3.0, 4.0]];
        let (pl, base, cap) = pack_one(2, &pts);
        let mut out = Vec::new();
        pl.distances(base as usize, cap, &[0.0, 0.0], &mut out);
        assert_eq!(out.len(), cap);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 25.0);
        assert!(out[2..].iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn kernels_agree_across_dims() {
        // the specialized 2-D/3-D kernels must match the generic one
        for dims in [2usize, 3, 5, 10, 15] {
            let n = 13;
            let pts: Vec<Vec<f32>> = (0..n)
                .map(|i| (0..dims).map(|d| (i * 7 + d * 3) as f32 * 0.25).collect())
                .collect();
            let (pl, base, cap) = pack_one(dims, &pts);
            let q: Vec<f32> = (0..dims).map(|d| d as f32 * 0.5 + 1.0).collect();
            let mut out = Vec::new();
            pl.distances(base as usize, cap, &q, &mut out);
            for (i, p) in pts.iter().enumerate() {
                let manual: f32 = p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                assert!((out[i] - manual).abs() < 1e-4, "dims={dims} i={i}");
            }
        }
    }

    #[test]
    fn multiple_buckets_are_contiguous() {
        let mut pl = PackedLeaves::new(3);
        let b1 = pl.push_leaf(5, |i, d| (i + d) as f32, |i| i as u64);
        let b2 = pl.push_leaf(9, |i, d| (i * d) as f32, |i| 100 + i as u64);
        assert_eq!(b1, 0);
        assert_eq!(b2 as usize, padded(5));
        assert_eq!(pl.padded_len(), padded(5) + padded(9));
        // second bucket distances are self-consistent
        let mut out = Vec::new();
        pl.distances(b2 as usize, padded(9), &[0.0, 0.0, 0.0], &mut out);
        // member 2 of bucket 2 is (0, 2, 4): dist² = 20
        assert_eq!(out[2], 20.0);
    }

    #[test]
    fn memory_bytes_counts_padding() {
        let mut pl = PackedLeaves::new(2);
        pl.push_leaf(1, |_, _| 0.0, |_| 0);
        assert_eq!(pl.memory_bytes(), LANE * 2 * 4 + LANE * 8);
    }
}
