//! SIMD-packed leaf storage and the fused scan-and-offer kernel
//! (§III-A(iv)).
//!
//! Once bucket membership is fixed, coordinates are copied into a layout
//! where the query-time exhaustive scan is a branch-free vectorizable
//! stream: buckets are contiguous, within a bucket the data is
//! dimension-major, and each bucket is padded to a multiple of [`LANE`]
//! positions. Padding coordinates are `+∞`, so padded positions produce an
//! infinite distance and can never enter the candidate heap — the scan
//! needs no tail handling at all.
//!
//! The hot entry point is [`PackedLeaves::scan_and_offer`]: it computes
//! squared distances dimension-major **and** compares them against the
//! candidate heap's current bound in the same pass, touching the heap only
//! for lanes that survive the in-register comparison. There is no
//! intermediate distance buffer and no second pass. Two implementations
//! sit behind runtime dispatch:
//!
//! * an AVX2 `std::arch` kernel (8 × f32 per step, `vcmpps` + movemask
//!   bound test), selected once per process when the CPU supports it;
//! * a portable unrolled kernel over `[f32; LANE]` blocks that LLVM
//!   auto-vectorizes, used everywhere else (and directly testable).
//!
//! Both paths accumulate per point in dimension order with plain
//! sub/mul/add (no FMA), so results are **bit-identical** to the scalar
//! reference `distances()` and to brute force — exactness tests compare
//! them exactly. Specialized instantiations exist for the paper's
//! dimensionalities (2/3/10/15) via const generics; other dims take the
//! dynamic path.

use crate::heap::KnnHeap;

/// Vector lane count the layout pads to (8 × f32 = one AVX2 register).
pub const LANE: usize = 8;

/// What one fused leaf scan did (kernel-level stats for the counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Heap offers that were accepted.
    pub accepted: u32,
    /// [`LANE`]-wide blocks where no lane beat the bound — pruned entirely
    /// in-register, without touching the heap.
    pub pruned_blocks: u32,
}

/// Runtime AVX2 capability, probed once per process.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        0 => {
            // set to anything but "" or "0" to force the portable kernel
            let opted_out = match std::env::var_os("PANDA_NO_AVX2") {
                Some(v) => !v.is_empty() && v != "0",
                None => false,
            };
            let has = std::is_x86_feature_detected!("avx2") && !opted_out;
            STATE.store(if has { 2 } else { 1 }, Ordering::Relaxed);
            has
        }
        v => v == 2,
    }
}

/// Round `n` up to a multiple of [`LANE`].
#[inline]
pub(crate) fn padded(n: usize) -> usize {
    n.div_ceil(LANE) * LANE
}

/// Bucket-major packed coordinates and ids.
#[derive(Clone, Debug, Default)]
pub struct PackedLeaves {
    dims: usize,
    /// Per bucket: `cap × dims` floats, dimension-major within the bucket.
    coords: Vec<f32>,
    /// Padded point ids (`u64::MAX` marks padding).
    ids: Vec<u64>,
}

impl PackedLeaves {
    /// Empty storage for `dims`-dimensional buckets.
    pub fn new(dims: usize) -> Self {
        Self {
            dims,
            coords: Vec::new(),
            ids: Vec::new(),
        }
    }

    /// Pre-allocate for `n_points` (estimates padding at full buckets).
    pub fn reserve(&mut self, n_points: usize) {
        self.coords.reserve(padded(n_points) * self.dims);
        self.ids.reserve(padded(n_points));
    }

    /// Append one bucket from `(coords_of, id_of)` accessors over `n`
    /// member points. Returns the bucket's padded base index.
    pub fn push_leaf(
        &mut self,
        n: usize,
        coord_of: impl Fn(usize, usize) -> f32, // (member, dim) -> coordinate
        id_of: impl Fn(usize) -> u64,
    ) -> u32 {
        debug_assert!(n > 0);
        let base = self.ids.len();
        let cap = padded(n);
        for d in 0..self.dims {
            for i in 0..cap {
                self.coords
                    .push(if i < n { coord_of(i, d) } else { f32::INFINITY });
            }
        }
        for i in 0..cap {
            self.ids.push(if i < n { id_of(i) } else { u64::MAX });
        }
        base as u32
    }

    /// Padded ids array.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Coordinate of member `i` (0-based within the bucket) along `dim`
    /// for the bucket at padded base `base` with capacity `cap`.
    /// Used by invariant checks and by code that needs to read points back
    /// out of the packed layout (e.g. per-rank bbox computation).
    #[inline]
    pub fn member_coord(&self, base: usize, cap: usize, i: usize, dim: usize) -> f32 {
        debug_assert!(i < cap);
        self.coords[base * self.dims + dim * cap + i]
    }

    /// Distance kernel: squared Euclidean distances from `q` to every
    /// padded position of the bucket at `base` with capacity `cap`,
    /// written into `out[..cap]`. Padded slots yield `+∞`.
    #[inline]
    pub fn distances(&self, base: usize, cap: usize, q: &[f32], out: &mut Vec<f32>) {
        let dims = self.dims;
        out.clear();
        out.resize(cap, 0.0);
        let block = &self.coords[base * dims..base * dims + cap * dims];
        match dims {
            3 => {
                let (xs, rest) = block.split_at(cap);
                let (ys, zs) = rest.split_at(cap);
                let (qx, qy, qz) = (q[0], q[1], q[2]);
                for i in 0..cap {
                    let dx = qx - xs[i];
                    let dy = qy - ys[i];
                    let dz = qz - zs[i];
                    out[i] = dx * dx + dy * dy + dz * dz;
                }
            }
            2 => {
                let (xs, ys) = block.split_at(cap);
                let (qx, qy) = (q[0], q[1]);
                for i in 0..cap {
                    let dx = qx - xs[i];
                    let dy = qy - ys[i];
                    out[i] = dx * dx + dy * dy;
                }
            }
            _ => {
                for (d, &qd) in q.iter().enumerate().take(dims) {
                    let row = &block[d * cap..(d + 1) * cap];
                    for i in 0..cap {
                        let diff = qd - row[i];
                        out[i] += diff * diff;
                    }
                }
            }
        }
    }

    /// Fused scan: compute squared distances from `q` to every position of
    /// the bucket at `base`/`cap` and offer survivors to `heap`, in one
    /// pass with no intermediate buffer. Runtime-dispatches to AVX2 when
    /// available, else the portable unrolled kernel. Bit-identical to
    /// `distances()` + a scalar offer loop.
    #[inline]
    pub fn scan_and_offer(
        &self,
        base: usize,
        cap: usize,
        q: &[f32],
        heap: &mut KnnHeap,
    ) -> ScanStats {
        debug_assert_eq!(cap % LANE, 0);
        debug_assert!(q.len() >= self.dims);
        // The AVX2 kernel's broadcast scratch is sized by MAX_DIMS; wider
        // layouts (PackedLeaves::new is unvalidated) take the portable
        // path on every CPU rather than panicking only on AVX2 hosts.
        #[cfg(target_arch = "x86_64")]
        if self.dims <= crate::point::MAX_DIMS && avx2_available() {
            let dims = self.dims;
            let block = &self.coords[base * dims..base * dims + cap * dims];
            let ids = &self.ids[base..base + cap];
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { avx2::scan(block, ids, cap, dims, q, heap) };
        }
        self.scan_portable(base, cap, q, heap)
    }

    /// The portable fused kernel, callable directly (tests and benches
    /// compare it against both the AVX2 path and the scalar reference).
    #[inline]
    pub fn scan_portable(
        &self,
        base: usize,
        cap: usize,
        q: &[f32],
        heap: &mut KnnHeap,
    ) -> ScanStats {
        let dims = self.dims;
        let block = &self.coords[base * dims..base * dims + cap * dims];
        let ids = &self.ids[base..base + cap];
        match dims {
            2 => portable::scan_impl::<2>(block, ids, cap, 2, q, heap),
            3 => portable::scan_impl::<3>(block, ids, cap, 3, q, heap),
            10 => portable::scan_impl::<10>(block, ids, cap, 10, q, heap),
            15 => portable::scan_impl::<15>(block, ids, cap, 15, q, heap),
            _ => portable::scan_impl::<0>(block, ids, cap, dims, q, heap),
        }
    }

    /// Fused fixed-radius scan: append every position of the bucket at
    /// `base`/`cap` strictly within `r_sq` of `q` to `out`, one pass, no
    /// intermediate buffer (the radius-search analogue of
    /// [`Self::scan_and_offer`]; the bound is fixed so the block loop
    /// auto-vectorizes without needing the AVX2 path).
    pub fn scan_and_collect(
        &self,
        base: usize,
        cap: usize,
        q: &[f32],
        r_sq: f32,
        out: &mut Vec<crate::heap::Neighbor>,
    ) -> ScanStats {
        debug_assert_eq!(cap % LANE, 0);
        let dims = self.dims;
        let block = &self.coords[base * dims..base * dims + cap * dims];
        let ids = &self.ids[base..base + cap];
        match dims {
            2 => portable::collect_impl::<2>(block, ids, cap, 2, q, r_sq, out),
            3 => portable::collect_impl::<3>(block, ids, cap, 3, q, r_sq, out),
            10 => portable::collect_impl::<10>(block, ids, cap, 10, q, r_sq, out),
            15 => portable::collect_impl::<15>(block, ids, cap, 15, q, r_sq, out),
            _ => portable::collect_impl::<0>(block, ids, cap, dims, q, r_sq, out),
        }
    }

    /// Resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.coords.len() * 4 + self.ids.len() * 8
    }

    /// Total padded positions stored.
    pub fn padded_len(&self) -> usize {
        self.ids.len()
    }
}

/// Portable unrolled kernel: `[f32; LANE]` blocks, accumulate in
/// dimension order, scalar bound test per block. LLVM vectorizes the
/// inner loops; semantics are identical to the AVX2 path.
mod portable {
    use super::{ScanStats, LANE};
    use crate::heap::KnnHeap;

    #[inline]
    fn offer_block(
        acc: &[f32; LANE],
        ids: &[u64],
        j: usize,
        heap: &mut KnnHeap,
        stats: &mut ScanStats,
    ) {
        let bound = heap.bound_sq();
        let mut any = false;
        for &d in acc {
            any |= d < bound;
        }
        if !any {
            stats.pruned_blocks += 1;
            return;
        }
        for (i, &d) in acc.iter().enumerate() {
            // offer() re-checks against the (possibly tightened) bound
            if d < heap.bound_sq() && heap.offer(d, ids[j + i]) {
                stats.accepted += 1;
            }
        }
    }

    /// One [`LANE`]-wide block of squared distances, accumulated in
    /// dimension order — the single source of truth for the portable
    /// accumulation (KNN and radius kernels both call this, so the
    /// bit-exactness guarantee cannot diverge between them). `D = 0`
    /// means a dynamic trip count.
    #[inline(always)]
    fn acc_block<const D: usize>(
        block: &[f32],
        cap: usize,
        j: usize,
        dims: usize,
        q: &[f32],
    ) -> [f32; LANE] {
        let dims = if D > 0 { D } else { dims };
        let mut acc = [0.0f32; LANE];
        for (d, &qd) in q.iter().enumerate().take(dims) {
            let row = &block[d * cap + j..d * cap + j + LANE];
            for i in 0..LANE {
                let diff = qd - row[i];
                acc[i] += diff * diff;
            }
        }
        acc
    }

    #[inline]
    pub(super) fn scan_impl<const D: usize>(
        block: &[f32],
        ids: &[u64],
        cap: usize,
        dims: usize,
        q: &[f32],
        heap: &mut KnnHeap,
    ) -> ScanStats {
        let mut stats = ScanStats::default();
        let mut j = 0;
        while j < cap {
            let acc = acc_block::<D>(block, cap, j, dims, q);
            offer_block(&acc, ids, j, heap, &mut stats);
            j += LANE;
        }
        stats
    }

    #[inline]
    pub(super) fn collect_impl<const D: usize>(
        block: &[f32],
        ids: &[u64],
        cap: usize,
        dims: usize,
        q: &[f32],
        r_sq: f32,
        out: &mut Vec<crate::heap::Neighbor>,
    ) -> ScanStats {
        let mut stats = ScanStats::default();
        let mut j = 0;
        while j < cap {
            let acc = acc_block::<D>(block, cap, j, dims, q);
            let mut any = false;
            for &d in &acc {
                any |= d < r_sq;
            }
            if any {
                for (i, &d) in acc.iter().enumerate() {
                    if d < r_sq {
                        out.push(crate::heap::Neighbor {
                            dist_sq: d,
                            id: ids[j + i],
                        });
                        stats.accepted += 1;
                    }
                }
            } else {
                stats.pruned_blocks += 1;
            }
            j += LANE;
        }
        stats
    }
}

/// AVX2 kernel: one 8-lane register per block, `vcmpps` against the
/// broadcast heap bound, movemask to find survivors. No FMA — plain
/// sub/mul/add keeps results bit-identical to the scalar reference.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{ScanStats, LANE};
    use crate::heap::KnnHeap;
    use crate::point::MAX_DIMS;
    use std::arch::x86_64::*;

    /// Dispatch over the paper's dimensionalities; `D = 0` means dynamic.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan(
        block: &[f32],
        ids: &[u64],
        cap: usize,
        dims: usize,
        q: &[f32],
        heap: &mut KnnHeap,
    ) -> ScanStats {
        match dims {
            2 => scan_impl::<2>(block, ids, cap, 2, q, heap),
            3 => scan_impl::<3>(block, ids, cap, 3, q, heap),
            10 => scan_impl::<10>(block, ids, cap, 10, q, heap),
            15 => scan_impl::<15>(block, ids, cap, 15, q, heap),
            _ => scan_impl::<0>(block, ids, cap, dims, q, heap),
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime; `block` must
    /// hold `cap * dims` floats and `ids` at least `cap` entries.
    #[target_feature(enable = "avx2")]
    unsafe fn scan_impl<const D: usize>(
        block: &[f32],
        ids: &[u64],
        cap: usize,
        dims: usize,
        q: &[f32],
        heap: &mut KnnHeap,
    ) -> ScanStats {
        let dims = if D > 0 { D } else { dims };
        debug_assert!(dims <= MAX_DIMS);
        debug_assert!(block.len() >= cap * dims);
        let mut qv = [_mm256_setzero_ps(); MAX_DIMS];
        for d in 0..dims {
            qv[d] = _mm256_set1_ps(q[d]);
        }
        let mut stats = ScanStats::default();
        let base = block.as_ptr();
        let mut j = 0;
        while j < cap {
            let mut acc = _mm256_setzero_ps();
            // When D > 0 the trip count is a constant and LLVM fully
            // unrolls this loop.
            for (d, &qd) in qv.iter().enumerate().take(dims) {
                let x = _mm256_loadu_ps(base.add(d * cap + j));
                let diff = _mm256_sub_ps(qd, x);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
            }
            let bound = _mm256_set1_ps(heap.bound_sq());
            let lt = _mm256_cmp_ps::<_CMP_LT_OQ>(acc, bound);
            let mut mask = _mm256_movemask_ps(lt) as u32;
            if mask == 0 {
                stats.pruned_blocks += 1;
            } else {
                let mut buf = [0.0f32; LANE];
                _mm256_storeu_ps(buf.as_mut_ptr(), acc);
                // lanes in ascending index order — same tie-breaking as
                // the scalar scan
                while mask != 0 {
                    let i = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    if heap.offer(buf[i], ids[j + i]) {
                        stats.accepted += 1;
                    }
                }
            }
            j += LANE;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack_one(dims: usize, pts: &[Vec<f32>]) -> (PackedLeaves, u32, usize) {
        let mut pl = PackedLeaves::new(dims);
        let base = pl.push_leaf(pts.len(), |i, d| pts[i][d], |i| i as u64 * 10);
        let cap = padded(pts.len());
        (pl, base, cap)
    }

    #[test]
    fn padding_rounds_to_lane() {
        assert_eq!(padded(1), LANE);
        assert_eq!(padded(8), 8);
        assert_eq!(padded(9), 16);
        assert_eq!(padded(32), 32);
        assert_eq!(padded(33), 40);
    }

    #[test]
    fn pack_and_ids() {
        let pts = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let (pl, base, cap) = pack_one(2, &pts);
        assert_eq!(base, 0);
        assert_eq!(cap, 8);
        assert_eq!(pl.padded_len(), 8);
        assert_eq!(&pl.ids()[..3], &[0, 10, 20]);
        assert!(pl.ids()[3..].iter().all(|&i| i == u64::MAX));
    }

    #[test]
    fn distances_match_manual_and_padding_is_infinite() {
        let pts = vec![vec![0.0, 0.0], vec![3.0, 4.0]];
        let (pl, base, cap) = pack_one(2, &pts);
        let mut out = Vec::new();
        pl.distances(base as usize, cap, &[0.0, 0.0], &mut out);
        assert_eq!(out.len(), cap);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 25.0);
        assert!(out[2..].iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn kernels_agree_across_dims() {
        // the specialized 2-D/3-D kernels must match the generic one
        for dims in [2usize, 3, 5, 10, 15] {
            let n = 13;
            let pts: Vec<Vec<f32>> = (0..n)
                .map(|i| (0..dims).map(|d| (i * 7 + d * 3) as f32 * 0.25).collect())
                .collect();
            let (pl, base, cap) = pack_one(dims, &pts);
            let q: Vec<f32> = (0..dims).map(|d| d as f32 * 0.5 + 1.0).collect();
            let mut out = Vec::new();
            pl.distances(base as usize, cap, &q, &mut out);
            for (i, p) in pts.iter().enumerate() {
                let manual: f32 = p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                assert!((out[i] - manual).abs() < 1e-4, "dims={dims} i={i}");
            }
        }
    }

    #[test]
    fn multiple_buckets_are_contiguous() {
        let mut pl = PackedLeaves::new(3);
        let b1 = pl.push_leaf(5, |i, d| (i + d) as f32, |i| i as u64);
        let b2 = pl.push_leaf(9, |i, d| (i * d) as f32, |i| 100 + i as u64);
        assert_eq!(b1, 0);
        assert_eq!(b2 as usize, padded(5));
        assert_eq!(pl.padded_len(), padded(5) + padded(9));
        // second bucket distances are self-consistent
        let mut out = Vec::new();
        pl.distances(b2 as usize, padded(9), &[0.0, 0.0, 0.0], &mut out);
        // member 2 of bucket 2 is (0, 2, 4): dist² = 20
        assert_eq!(out[2], 20.0);
    }

    #[test]
    fn memory_bytes_counts_padding() {
        let mut pl = PackedLeaves::new(2);
        pl.push_leaf(1, |_, _| 0.0, |_| 0);
        assert_eq!(pl.memory_bytes(), LANE * 2 * 4 + LANE * 8);
    }

    /// Reference implementation of scan_and_offer: the two-pass scalar
    /// kernel (`distances()` + offer loop).
    fn scalar_scan(
        pl: &PackedLeaves,
        base: usize,
        cap: usize,
        q: &[f32],
        heap: &mut KnnHeap,
    ) -> u32 {
        let mut out = Vec::new();
        pl.distances(base, cap, q, &mut out);
        let ids = &pl.ids()[base..base + cap];
        let mut accepted = 0;
        for i in 0..cap {
            if out[i] < heap.bound_sq() && heap.offer(out[i], ids[i]) {
                accepted += 1;
            }
        }
        accepted
    }

    #[test]
    fn fused_kernels_bit_identical_to_scalar_reference() {
        for dims in 1..=16usize {
            for n in [1usize, 7, 8, 9, 27, 32] {
                let pts: Vec<Vec<f32>> = (0..n)
                    .map(|i| {
                        (0..dims)
                            .map(|d| ((i * 13 + d * 7) % 31) as f32 * 0.37 - 4.0)
                            .collect()
                    })
                    .collect();
                let (pl, base, cap) = pack_one(dims, &pts);
                for k in [1usize, 3, 64] {
                    let q: Vec<f32> = (0..dims).map(|d| (d as f32) * 0.71 - 1.0).collect();
                    let mut h_ref = KnnHeap::new(k);
                    let mut h_auto = KnnHeap::new(k);
                    let mut h_port = KnnHeap::new(k);
                    let a_ref = scalar_scan(&pl, base as usize, cap, &q, &mut h_ref);
                    let s_auto = pl.scan_and_offer(base as usize, cap, &q, &mut h_auto);
                    let s_port = pl.scan_portable(base as usize, cap, &q, &mut h_port);
                    assert_eq!(a_ref, s_auto.accepted, "dims={dims} n={n} k={k}");
                    assert_eq!(a_ref, s_port.accepted, "dims={dims} n={n} k={k}");
                    let r: Vec<(f32, u64)> = h_ref
                        .into_sorted()
                        .iter()
                        .map(|x| (x.dist_sq, x.id))
                        .collect();
                    let a: Vec<(f32, u64)> = h_auto
                        .into_sorted()
                        .iter()
                        .map(|x| (x.dist_sq, x.id))
                        .collect();
                    let p: Vec<(f32, u64)> = h_port
                        .into_sorted()
                        .iter()
                        .map(|x| (x.dist_sq, x.id))
                        .collect();
                    assert_eq!(r, a, "avx2 dims={dims} n={n} k={k}");
                    assert_eq!(r, p, "portable dims={dims} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn fused_kernel_respects_preseeded_bound_and_counts_pruned_blocks() {
        // all points far from q, tight radius: every block prunes in-register
        let pts: Vec<Vec<f32>> = (0..32).map(|i| vec![100.0 + i as f32, 100.0]).collect();
        let (pl, base, cap) = pack_one(2, &pts);
        let mut heap = KnnHeap::with_radius_sq(4, 1.0);
        let stats = pl.scan_and_offer(base as usize, cap, &[0.0, 0.0], &mut heap);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.pruned_blocks as usize, cap / LANE);
        assert!(heap.is_empty());
    }

    #[test]
    fn dims_beyond_max_take_the_portable_path_on_any_cpu() {
        // PackedLeaves::new is unvalidated; a 20-D layout must behave the
        // same (and not panic) whether or not the host has AVX2
        let dims = 20;
        let pts: Vec<Vec<f32>> = (0..9)
            .map(|i| (0..dims).map(|d| (i * dims + d) as f32 * 0.5).collect())
            .collect();
        let (pl, base, cap) = pack_one(dims, &pts);
        let q: Vec<f32> = (0..dims).map(|d| d as f32).collect();
        let mut h_auto = KnnHeap::new(3);
        let mut h_ref = KnnHeap::new(3);
        pl.scan_and_offer(base as usize, cap, &q, &mut h_auto);
        scalar_scan(&pl, base as usize, cap, &q, &mut h_ref);
        let a: Vec<(f32, u64)> = h_auto
            .into_sorted()
            .iter()
            .map(|n| (n.dist_sq, n.id))
            .collect();
        let r: Vec<(f32, u64)> = h_ref
            .into_sorted()
            .iter()
            .map(|n| (n.dist_sq, n.id))
            .collect();
        assert_eq!(a, r);
    }

    #[test]
    fn fused_kernel_ties_keep_first_arrival() {
        // duplicate coordinates: strict-< means the earliest id wins
        let pts: Vec<Vec<f32>> = (0..12).map(|_| vec![1.0, 2.0, 3.0]).collect();
        let (pl, base, cap) = pack_one(3, &pts);
        let mut h_fused = KnnHeap::new(4);
        let mut h_ref = KnnHeap::new(4);
        pl.scan_and_offer(base as usize, cap, &[1.0, 2.0, 3.0], &mut h_fused);
        scalar_scan(&pl, base as usize, cap, &[1.0, 2.0, 3.0], &mut h_ref);
        let f: Vec<u64> = h_fused.into_sorted().iter().map(|n| n.id).collect();
        let r: Vec<u64> = h_ref.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(f, r);
        assert_eq!(f, vec![0, 10, 20, 30]);
    }
}
