//! Local KNN traversal — Algorithm 1 of the paper.
//!
//! Iterative traversal with an explicit stack and a bounded candidate heap.
//! Two lower-bound modes (see [`BoundMode`]):
//!
//! * `Exact` — per-dimension side-distance replacement (Arya–Mount): the
//!   workspace keeps **one** live side-offset array for the whole
//!   traversal; crossing a split plane *replaces* the offset along that
//!   dimension and records a `(dim, old value)` undo entry. Popping a
//!   stack entry rewinds the undo log to that entry's checkpoint, so the
//!   live array always equals the path state of the node being expanded —
//!   without copying a `[f32; MAX_DIMS]` per stack push. The resulting
//!   bound equals the true query↔cell distance, so pruning can never
//!   discard a true neighbor.
//! * `PaperScalar` — the accumulation exactly as printed in Algorithm 1
//!   (`d' ← √(d·d + d'·d')`), which over-estimates when a dimension
//!   repeats along a path. Kept for the fidelity ablation.
//!
//! Leaf buckets go through the fused scan-and-offer kernel
//! ([`super::PackedLeaves::scan_and_offer`]): distances are computed and
//! compared against the heap bound in one pass, with no intermediate
//! distance buffer.

use crate::config::BoundMode;
use crate::counters::QueryCounters;
use crate::error::{PandaError, Result};
use crate::heap::{KnnHeap, Neighbor};
use crate::point::MAX_DIMS;

use super::layout::padded;
use super::LocalKdTree;

/// Reusable per-thread scratch for traversals: the stack, the single live
/// side-offset array, and its undo log. No allocation per query once the
/// vectors have grown; reusing one workspace across a whole batch is the
/// intended pattern.
#[derive(Clone, Debug, Default)]
pub struct QueryWorkspace {
    pub(crate) stack: Vec<Entry>,
    /// Live signed offsets of the query to the current path's cell, one
    /// per dimension (Arya–Mount incremental bound state).
    pub(crate) side: [f32; MAX_DIMS],
    /// Undo log of `(dim, previous value)` side mutations.
    pub(crate) undo: Vec<(u32, f32)>,
}

/// Sentinel for "this entry does not modify the side array".
pub(crate) const NO_APPLY: u32 = u32::MAX;

/// One pending subtree visit (20 bytes — the seed carried a 64-byte side
/// array copy per entry).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Entry {
    pub(crate) node: u32,
    pub(crate) lb_sq: f32,
    /// Undo-log length when this entry was pushed: popping rewinds to it.
    pub(crate) undo_len: u32,
    /// Dimension whose side offset this entry replaces (far children), or
    /// [`NO_APPLY`] (near children: the path state is unchanged).
    pub(crate) apply_dim: u32,
    /// New side offset along `apply_dim`.
    pub(crate) apply_off: f32,
}

impl QueryWorkspace {
    /// Fresh workspace.
    pub fn new() -> Self {
        Self {
            stack: Vec::with_capacity(128),
            side: [0.0; MAX_DIMS],
            undo: Vec::with_capacity(64),
        }
    }

    /// Reset for a new query (cheap: clears the stack/log, zeroes the
    /// live side array).
    #[inline]
    pub(crate) fn reset(&mut self, dims: usize) {
        self.stack.clear();
        self.undo.clear();
        self.side[..dims].fill(0.0);
    }

    /// Rewind the live side array to `entry`'s checkpoint, then apply its
    /// own side mutation (if any). After this the live array equals the
    /// root→entry path state exactly.
    #[inline]
    pub(crate) fn restore_path(&mut self, e: &Entry) {
        while self.undo.len() > e.undo_len as usize {
            let (d, v) = self.undo.pop().expect("undo log underflow");
            self.side[d as usize] = v;
        }
        if e.apply_dim != NO_APPLY {
            let d = e.apply_dim as usize;
            self.undo.push((e.apply_dim, self.side[d]));
            self.side[d] = e.apply_off;
        }
    }
}

impl LocalKdTree {
    /// Find the `k` nearest neighbors of `q` (ascending distance).
    /// Convenience wrapper over [`Self::query_into`].
    pub fn query(&self, q: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        self.query_radius(q, k, f32::INFINITY)
    }

    /// `k` nearest neighbors within `radius` (Euclidean, exclusive bound).
    pub fn query_radius(&self, q: &[f32], k: usize, radius: f32) -> Result<Vec<Neighbor>> {
        if k == 0 {
            return Err(PandaError::ZeroK);
        }
        if q.len() != self.dims {
            return Err(PandaError::DimsMismatch {
                expected: self.dims,
                got: q.len(),
            });
        }
        let radius_sq = if radius.is_finite() {
            radius * radius
        } else {
            f32::INFINITY
        };
        let mut heap = KnnHeap::with_radius_sq(k, radius_sq);
        let mut ws = QueryWorkspace::new();
        let mut counters = QueryCounters::default();
        self.query_into(q, &mut heap, BoundMode::Exact, &mut ws, &mut counters);
        Ok(heap.into_sorted())
    }

    /// Core traversal: refine `heap` with the nearest points of this tree.
    ///
    /// The heap may arrive pre-seeded with an initial radius (remote
    /// queries carry the owner's `r'`) — the traversal then prunes against
    /// it from the start (§III-B step 4).
    ///
    /// The caller guarantees `q.len() == self.dims()`.
    pub fn query_into(
        &self,
        q: &[f32],
        heap: &mut KnnHeap,
        mode: BoundMode,
        ws: &mut QueryWorkspace,
        counters: &mut QueryCounters,
    ) {
        debug_assert_eq!(q.len(), self.dims);
        counters.queries += 1;
        if self.nodes.is_empty() {
            return;
        }
        ws.reset(self.dims);
        ws.stack.push(Entry {
            node: 0,
            lb_sq: 0.0,
            undo_len: 0,
            apply_dim: NO_APPLY,
            apply_off: 0.0,
        });

        while let Some(e) = ws.stack.pop() {
            // The bound may have tightened since this entry was pushed.
            // Pruned entries are dropped without touching the side state:
            // the next expanded entry rewinds to its own checkpoint anyway.
            if e.lb_sq >= heap.bound_sq() {
                continue;
            }
            let node = self.nodes[e.node as usize];
            counters.nodes_visited += 1;
            if node.is_leaf() {
                // Leaves never read the side array — skip the restore.
                counters.leaves_scanned += 1;
                let base = node.a as usize;
                let n = node.b as usize;
                let cap = padded(n);
                let stats = self.leaves.scan_and_offer(base, cap, q, heap);
                counters.points_scanned += cap as u64;
                counters.leaf_kernel_calls += 1;
                counters.kernel_blocks_pruned += stats.pruned_blocks as u64;
                counters.heap_ops += stats.accepted as u64;
            } else {
                ws.restore_path(&e);
                let dim = node.split_dim as usize;
                let off = q[dim] - node.split_val;
                let (near, far) = if off <= 0.0 {
                    (node.a, node.b)
                } else {
                    (node.b, node.a)
                };
                let far_lb = match mode {
                    BoundMode::Exact => {
                        let old = ws.side[dim];
                        e.lb_sq - old * old + off * off
                    }
                    BoundMode::PaperScalar => e.lb_sq + off * off,
                };
                let undo_len = ws.undo.len() as u32;
                if far_lb < heap.bound_sq() {
                    ws.stack.push(Entry {
                        node: far,
                        lb_sq: far_lb,
                        undo_len,
                        apply_dim: dim as u32,
                        apply_off: off,
                    });
                }
                // Near child pushed last so it is explored first — this is
                // what makes the bound shrink early (paper §III-C). Its
                // path state is the current one, unchanged.
                ws.stack.push(Entry {
                    node: near,
                    lb_sq: e.lb_sq,
                    undo_len,
                    apply_dim: NO_APPLY,
                    apply_off: 0.0,
                });
            }
        }
    }
}

impl LocalKdTree {
    /// Reference traversal kept for differential testing and benchmarking:
    /// the pre-optimization implementation with a full `[f32; MAX_DIMS]`
    /// side-array copy on every stack push and a two-pass leaf scan
    /// (`distances()` into a buffer, then a scalar offer loop). Produces
    /// results bit-identical to [`Self::query_into`]; the perf harness
    /// (`bench_pr1`, the kernels bench) measures the fused hot path
    /// against this.
    pub fn query_into_reference(
        &self,
        q: &[f32],
        heap: &mut KnnHeap,
        mode: BoundMode,
        counters: &mut QueryCounters,
    ) {
        debug_assert_eq!(q.len(), self.dims);
        counters.queries += 1;
        if self.nodes.is_empty() {
            return;
        }
        struct RefEntry {
            node: u32,
            lb_sq: f32,
            side: [f32; MAX_DIMS],
        }
        let mut dists: Vec<f32> = Vec::new();
        let mut stack: Vec<RefEntry> = vec![RefEntry {
            node: 0,
            lb_sq: 0.0,
            side: [0.0; MAX_DIMS],
        }];
        while let Some(e) = stack.pop() {
            if e.lb_sq >= heap.bound_sq() {
                continue;
            }
            let node = self.nodes[e.node as usize];
            counters.nodes_visited += 1;
            if node.is_leaf() {
                counters.leaves_scanned += 1;
                let base = node.a as usize;
                let cap = padded(node.b as usize);
                self.leaves.distances(base, cap, q, &mut dists);
                counters.points_scanned += cap as u64;
                let ids = &self.leaves.ids()[base..base + cap];
                for i in 0..cap {
                    let d = dists[i];
                    if d < heap.bound_sq() && heap.offer(d, ids[i]) {
                        counters.heap_ops += 1;
                    }
                }
            } else {
                let dim = node.split_dim as usize;
                let off = q[dim] - node.split_val;
                let (near, far) = if off <= 0.0 {
                    (node.a, node.b)
                } else {
                    (node.b, node.a)
                };
                let far_lb = match mode {
                    BoundMode::Exact => {
                        let old = e.side[dim];
                        e.lb_sq - old * old + off * off
                    }
                    BoundMode::PaperScalar => e.lb_sq + off * off,
                };
                if far_lb < heap.bound_sq() {
                    let mut side = e.side;
                    side[dim] = off;
                    stack.push(RefEntry {
                        node: far,
                        lb_sq: far_lb,
                        side,
                    });
                }
                stack.push(RefEntry {
                    node: near,
                    lb_sq: e.lb_sq,
                    side: e.side,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::local_tree::tests::{brute_knn, random_points};
    use crate::point::PointSet;
    use crate::rng::SplitRng;

    fn check_matches_brute(ps: &PointSet, tree: &LocalKdTree, q: &[f32], k: usize) {
        let got: Vec<f32> = tree
            .query(q, k)
            .unwrap()
            .iter()
            .map(|n| n.dist_sq)
            .collect();
        let expect: Vec<f32> = brute_knn(ps, q, k).iter().map(|p| p.0).collect();
        assert_eq!(got, expect, "k={k} q={q:?}");
    }

    #[test]
    fn exact_against_brute_force_3d() {
        let ps = random_points(4000, 3, 21);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let mut rng = SplitRng::new(99);
        for _ in 0..50 {
            let q: Vec<f32> = (0..3).map(|_| (rng.next_f64() * 10.0) as f32).collect();
            for k in [1, 5, 17] {
                check_matches_brute(&ps, &tree, &q, k);
            }
        }
    }

    #[test]
    fn exact_against_brute_force_high_dims() {
        for dims in [2usize, 10, 15] {
            let ps = random_points(1500, dims, 31 + dims as u64);
            let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
            let mut rng = SplitRng::new(7);
            for _ in 0..20 {
                let q: Vec<f32> = (0..dims).map(|_| (rng.next_f64() * 10.0) as f32).collect();
                check_matches_brute(&ps, &tree, &q, 5);
            }
        }
    }

    #[test]
    fn queries_far_outside_the_domain() {
        let ps = random_points(2000, 3, 5);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        for q in [[-100.0f32, -100.0, -100.0], [1e6, 0.0, 0.0]] {
            check_matches_brute(&ps, &tree, &q, 3);
        }
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let ps = random_points(10, 3, 5);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let res = tree.query(&[0.0; 3], 50).unwrap();
        assert_eq!(res.len(), 10);
        // sorted ascending
        for w in res.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq);
        }
    }

    #[test]
    fn radius_limits_results() {
        // grid of points at integer coordinates on a line
        let ps = PointSet::from_coords(1, (0..100).map(|i| i as f32).collect()).unwrap();
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let res = tree.query_radius(&[50.2], 10, 2.0).unwrap();
        // strictly within distance 2.0 of 50.2: 49, 50, 51, 52
        assert_eq!(res.len(), 4);
        assert!(res.iter().all(|n| n.dist() < 2.0));
        // and the same query unrestricted returns 10
        assert_eq!(tree.query(&[50.2], 10).unwrap().len(), 10);
    }

    #[test]
    fn query_on_dataset_points_returns_self_first() {
        let ps = random_points(500, 3, 77);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        for i in [0usize, 123, 499] {
            let q = ps.point(i).to_vec();
            let res = tree.query(&q, 1).unwrap();
            assert_eq!(res[0].dist_sq, 0.0);
        }
    }

    #[test]
    fn validates_inputs() {
        let ps = random_points(100, 3, 1);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        assert!(matches!(tree.query(&[0.0; 3], 0), Err(PandaError::ZeroK)));
        assert!(matches!(
            tree.query(&[0.0; 2], 1),
            Err(PandaError::DimsMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn paper_scalar_bound_visits_no_more_nodes_than_exact() {
        // The scalar bound is never smaller than the exact bound, so it can
        // only prune *more* (that is exactly why it can be wrong).
        let ps = random_points(3000, 3, 13);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let mut rng = SplitRng::new(3);
        let mut exact_nodes = 0u64;
        let mut scalar_nodes = 0u64;
        for _ in 0..30 {
            let q: Vec<f32> = (0..3).map(|_| (rng.next_f64() * 10.0) as f32).collect();
            for (mode, acc) in [
                (BoundMode::Exact, &mut exact_nodes),
                (BoundMode::PaperScalar, &mut scalar_nodes),
            ] {
                let mut heap = KnnHeap::new(5);
                let mut ws = QueryWorkspace::new();
                let mut c = QueryCounters::default();
                tree.query_into(&q, &mut heap, mode, &mut ws, &mut c);
                *acc += c.nodes_visited;
            }
        }
        // (Not a strict theorem — a mis-pruned true neighbor can keep the
        // heap bound looser — but on uniform data the aggregate holds with
        // a generous margin.)
        assert!(
            scalar_nodes <= exact_nodes + exact_nodes / 10 + 32,
            "scalar {scalar_nodes} vs exact {exact_nodes}"
        );
    }

    #[test]
    fn counters_reflect_traversal() {
        let ps = random_points(5000, 3, 17);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let mut heap = KnnHeap::new(5);
        let mut ws = QueryWorkspace::new();
        let mut c = QueryCounters::default();
        tree.query_into(
            &[5.0, 5.0, 5.0],
            &mut heap,
            BoundMode::Exact,
            &mut ws,
            &mut c,
        );
        assert_eq!(c.queries, 1);
        assert!(c.nodes_visited > 0);
        assert!(c.leaves_scanned > 0);
        assert!(c.points_scanned >= c.leaves_scanned * 8);
        assert!(c.heap_ops >= 5);
        // pruning must be effective: nowhere near the full ~5000/32 leaves
        let total_leaves = tree.stats().n_leaves as u64;
        assert!(
            c.leaves_scanned < total_leaves / 2,
            "scanned {} of {total_leaves} leaves",
            c.leaves_scanned
        );
    }

    #[test]
    fn pre_seeded_radius_prunes_remote_style() {
        let ps = random_points(5000, 3, 19);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let q = [5.0f32, 5.0, 5.0];
        // owner pass: get true k-th distance
        let full = tree.query(&q, 5).unwrap();
        let r_sq = full[4].dist_sq;
        // remote pass with the owner's bound: must scan far fewer leaves
        let mut c_full = QueryCounters::default();
        let mut c_seeded = QueryCounters::default();
        let mut ws = QueryWorkspace::new();
        let mut h1 = KnnHeap::new(5);
        tree.query_into(&q, &mut h1, BoundMode::Exact, &mut ws, &mut c_full);
        let mut h2 = KnnHeap::with_radius_sq(5, r_sq);
        tree.query_into(&q, &mut h2, BoundMode::Exact, &mut ws, &mut c_seeded);
        assert!(c_seeded.leaves_scanned <= c_full.leaves_scanned);
        // seeded results are a subset: strictly closer than r'
        assert!(h2.into_sorted().iter().all(|n| n.dist_sq < r_sq));
    }

    #[test]
    fn fused_traversal_matches_reference_traversal() {
        // The optimized path (undo-log stack + fused kernel) must be
        // indistinguishable from the seed implementation: same results,
        // same nodes visited, same leaves scanned, same accepted offers.
        for dims in [2usize, 3, 10, 15] {
            let ps = random_points(3000, dims, 101 + dims as u64);
            let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
            let mut rng = SplitRng::new(55);
            for _ in 0..20 {
                let q: Vec<f32> = (0..dims)
                    .map(|_| (rng.next_f64() * 12.0 - 1.0) as f32)
                    .collect();
                for mode in [BoundMode::Exact, BoundMode::PaperScalar] {
                    let mut h_new = KnnHeap::new(7);
                    let mut h_ref = KnnHeap::new(7);
                    let mut ws = QueryWorkspace::new();
                    let mut c_new = QueryCounters::default();
                    let mut c_ref = QueryCounters::default();
                    tree.query_into(&q, &mut h_new, mode, &mut ws, &mut c_new);
                    tree.query_into_reference(&q, &mut h_ref, mode, &mut c_ref);
                    let a: Vec<(f32, u64)> = h_new
                        .into_sorted()
                        .iter()
                        .map(|n| (n.dist_sq, n.id))
                        .collect();
                    let b: Vec<(f32, u64)> = h_ref
                        .into_sorted()
                        .iter()
                        .map(|n| (n.dist_sq, n.id))
                        .collect();
                    assert_eq!(a, b, "dims={dims} mode={mode:?}");
                    assert_eq!(c_new.nodes_visited, c_ref.nodes_visited);
                    assert_eq!(c_new.leaves_scanned, c_ref.leaves_scanned);
                    assert_eq!(c_new.points_scanned, c_ref.points_scanned);
                    assert_eq!(c_new.heap_ops, c_ref.heap_ops);
                }
            }
        }
    }

    #[test]
    fn workspace_is_reusable_across_queries_and_trees() {
        // one workspace driven across many queries and two different trees
        // must behave exactly like a fresh workspace each time
        let ps_a = random_points(2000, 3, 61);
        let ps_b = random_points(1500, 5, 62);
        let tree_a = LocalKdTree::build(&ps_a, &TreeConfig::default()).unwrap();
        let tree_b = LocalKdTree::build(&ps_b, &TreeConfig::default()).unwrap();
        let mut shared = QueryWorkspace::new();
        let mut rng = SplitRng::new(63);
        for i in 0..30 {
            let (dims, tree, ps): (usize, &LocalKdTree, &PointSet) = if i % 2 == 0 {
                (3, &tree_a, &ps_a)
            } else {
                (5, &tree_b, &ps_b)
            };
            let q: Vec<f32> = (0..dims).map(|_| (rng.next_f64() * 10.0) as f32).collect();
            let mut h_shared = KnnHeap::new(4);
            let mut h_fresh = KnnHeap::new(4);
            let mut c1 = QueryCounters::default();
            let mut c2 = QueryCounters::default();
            tree.query_into(&q, &mut h_shared, BoundMode::Exact, &mut shared, &mut c1);
            let mut fresh = QueryWorkspace::new();
            tree.query_into(&q, &mut h_fresh, BoundMode::Exact, &mut fresh, &mut c2);
            let a: Vec<(f32, u64)> = h_shared
                .into_sorted()
                .iter()
                .map(|n| (n.dist_sq, n.id))
                .collect();
            let b: Vec<(f32, u64)> = h_fresh
                .into_sorted()
                .iter()
                .map(|n| (n.dist_sq, n.id))
                .collect();
            assert_eq!(a, b, "iteration {i}");
            let expect: Vec<(f32, u64)> = brute_knn(ps, &q, 4);
            assert_eq!(a, expect, "iteration {i} vs brute");
        }
    }

    #[test]
    fn duplicate_heavy_data_is_exact() {
        // Daya-Bay-like co-location: many identical records
        let mut coords = Vec::new();
        let mut rng = SplitRng::new(4);
        for i in 0..2000 {
            if i % 4 == 0 {
                coords.extend_from_slice(&[1.0f32, 2.0, 3.0]); // co-located cluster
            } else {
                coords.extend([
                    (rng.next_f64() * 4.0) as f32,
                    (rng.next_f64() * 4.0) as f32,
                    (rng.next_f64() * 4.0) as f32,
                ]);
            }
        }
        let ps = PointSet::from_coords(3, coords).unwrap();
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        for k in [1usize, 5, 40] {
            let got: Vec<f32> = tree
                .query(&[1.0, 2.0, 3.0], k)
                .unwrap()
                .iter()
                .map(|n| n.dist_sq)
                .collect();
            let expect: Vec<f32> = brute_knn(&ps, &[1.0, 2.0, 3.0], k)
                .iter()
                .map(|p| p.0)
                .collect();
            assert_eq!(got, expect, "k={k}");
        }
    }
}
