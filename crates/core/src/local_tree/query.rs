//! Local KNN traversal — Algorithm 1 of the paper.
//!
//! Iterative traversal with an explicit stack and a bounded candidate heap.
//! Two lower-bound modes (see [`BoundMode`]):
//!
//! * `Exact` — per-dimension side-distance replacement (Arya–Mount): each
//!   stack entry carries the signed offset of the query to its cell along
//!   every dimension; crossing a split plane *replaces* the offset along
//!   that dimension. The resulting bound equals the true query↔cell
//!   distance, so pruning can never discard a true neighbor.
//! * `PaperScalar` — the accumulation exactly as printed in Algorithm 1
//!   (`d' ← √(d·d + d'·d')`), which over-estimates when a dimension
//!   repeats along a path. Kept for the fidelity ablation.

use crate::config::BoundMode;
use crate::counters::QueryCounters;
use crate::error::{PandaError, Result};
use crate::heap::{KnnHeap, Neighbor};
use crate::point::MAX_DIMS;

use super::layout::padded;
use super::LocalKdTree;

/// Reusable per-thread scratch for traversals (no allocation per query).
#[derive(Clone, Debug, Default)]
pub struct QueryWorkspace {
    stack: Vec<Entry>,
    dists: Vec<f32>,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    node: u32,
    lb_sq: f32,
    side: [f32; MAX_DIMS],
}

impl QueryWorkspace {
    /// Fresh workspace.
    pub fn new() -> Self {
        Self { stack: Vec::with_capacity(128), dists: Vec::with_capacity(64) }
    }
}

impl LocalKdTree {
    /// Find the `k` nearest neighbors of `q` (ascending distance).
    /// Convenience wrapper over [`Self::query_into`].
    pub fn query(&self, q: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        self.query_radius(q, k, f32::INFINITY)
    }

    /// `k` nearest neighbors within `radius` (Euclidean, exclusive bound).
    pub fn query_radius(&self, q: &[f32], k: usize, radius: f32) -> Result<Vec<Neighbor>> {
        if k == 0 {
            return Err(PandaError::ZeroK);
        }
        if q.len() != self.dims {
            return Err(PandaError::DimsMismatch { expected: self.dims, got: q.len() });
        }
        let radius_sq = if radius.is_finite() { radius * radius } else { f32::INFINITY };
        let mut heap = KnnHeap::with_radius_sq(k, radius_sq);
        let mut ws = QueryWorkspace::new();
        let mut counters = QueryCounters::default();
        self.query_into(q, &mut heap, BoundMode::Exact, &mut ws, &mut counters);
        Ok(heap.into_sorted())
    }

    /// Core traversal: refine `heap` with the nearest points of this tree.
    ///
    /// The heap may arrive pre-seeded with an initial radius (remote
    /// queries carry the owner's `r'`) — the traversal then prunes against
    /// it from the start (§III-B step 4).
    ///
    /// The caller guarantees `q.len() == self.dims()`.
    pub fn query_into(
        &self,
        q: &[f32],
        heap: &mut KnnHeap,
        mode: BoundMode,
        ws: &mut QueryWorkspace,
        counters: &mut QueryCounters,
    ) {
        debug_assert_eq!(q.len(), self.dims);
        counters.queries += 1;
        if self.nodes.is_empty() {
            return;
        }
        ws.stack.clear();
        ws.stack.push(Entry { node: 0, lb_sq: 0.0, side: [0.0; MAX_DIMS] });

        while let Some(e) = ws.stack.pop() {
            // The bound may have tightened since this entry was pushed.
            if e.lb_sq >= heap.bound_sq() {
                continue;
            }
            let node = self.nodes[e.node as usize];
            counters.nodes_visited += 1;
            if node.is_leaf() {
                counters.leaves_scanned += 1;
                let base = node.a as usize;
                let n = node.b as usize;
                let cap = padded(n);
                self.leaves.distances(base, cap, q, &mut ws.dists);
                counters.points_scanned += cap as u64;
                let ids = &self.leaves.ids()[base..base + cap];
                for i in 0..cap {
                    let d = ws.dists[i];
                    // Padded slots are +∞ and fail this test.
                    if d < heap.bound_sq() && heap.offer(d, ids[i]) {
                        counters.heap_ops += 1;
                    }
                }
            } else {
                let dim = node.split_dim as usize;
                let off = q[dim] - node.split_val;
                let (near, far) = if off <= 0.0 { (node.a, node.b) } else { (node.b, node.a) };
                let far_lb = match mode {
                    BoundMode::Exact => {
                        let old = e.side[dim];
                        e.lb_sq - old * old + off * off
                    }
                    BoundMode::PaperScalar => e.lb_sq + off * off,
                };
                if far_lb < heap.bound_sq() {
                    let mut side = e.side;
                    side[dim] = off;
                    ws.stack.push(Entry { node: far, lb_sq: far_lb, side });
                }
                // Near child pushed last so it is explored first — this is
                // what makes the bound shrink early (paper §III-C).
                ws.stack.push(Entry { node: near, lb_sq: e.lb_sq, side: e.side });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::local_tree::tests::{brute_knn, random_points};
    use crate::point::PointSet;
    use crate::rng::SplitRng;

    fn check_matches_brute(ps: &PointSet, tree: &LocalKdTree, q: &[f32], k: usize) {
        let got: Vec<f32> = tree.query(q, k).unwrap().iter().map(|n| n.dist_sq).collect();
        let expect: Vec<f32> = brute_knn(ps, q, k).iter().map(|p| p.0).collect();
        assert_eq!(got, expect, "k={k} q={q:?}");
    }

    #[test]
    fn exact_against_brute_force_3d() {
        let ps = random_points(4000, 3, 21);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let mut rng = SplitRng::new(99);
        for _ in 0..50 {
            let q: Vec<f32> = (0..3).map(|_| (rng.next_f64() * 10.0) as f32).collect();
            for k in [1, 5, 17] {
                check_matches_brute(&ps, &tree, &q, k);
            }
        }
    }

    #[test]
    fn exact_against_brute_force_high_dims() {
        for dims in [2usize, 10, 15] {
            let ps = random_points(1500, dims, 31 + dims as u64);
            let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
            let mut rng = SplitRng::new(7);
            for _ in 0..20 {
                let q: Vec<f32> = (0..dims).map(|_| (rng.next_f64() * 10.0) as f32).collect();
                check_matches_brute(&ps, &tree, &q, 5);
            }
        }
    }

    #[test]
    fn queries_far_outside_the_domain() {
        let ps = random_points(2000, 3, 5);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        for q in [[-100.0f32, -100.0, -100.0], [1e6, 0.0, 0.0]] {
            check_matches_brute(&ps, &tree, &q, 3);
        }
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let ps = random_points(10, 3, 5);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let res = tree.query(&[0.0; 3], 50).unwrap();
        assert_eq!(res.len(), 10);
        // sorted ascending
        for w in res.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq);
        }
    }

    #[test]
    fn radius_limits_results() {
        // grid of points at integer coordinates on a line
        let ps = PointSet::from_coords(1, (0..100).map(|i| i as f32).collect()).unwrap();
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let res = tree.query_radius(&[50.2], 10, 2.0).unwrap();
        // strictly within distance 2.0 of 50.2: 49, 50, 51, 52
        assert_eq!(res.len(), 4);
        assert!(res.iter().all(|n| n.dist() < 2.0));
        // and the same query unrestricted returns 10
        assert_eq!(tree.query(&[50.2], 10).unwrap().len(), 10);
    }

    #[test]
    fn query_on_dataset_points_returns_self_first() {
        let ps = random_points(500, 3, 77);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        for i in [0usize, 123, 499] {
            let q = ps.point(i).to_vec();
            let res = tree.query(&q, 1).unwrap();
            assert_eq!(res[0].dist_sq, 0.0);
        }
    }

    #[test]
    fn validates_inputs() {
        let ps = random_points(100, 3, 1);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        assert!(matches!(tree.query(&[0.0; 3], 0), Err(PandaError::ZeroK)));
        assert!(matches!(
            tree.query(&[0.0; 2], 1),
            Err(PandaError::DimsMismatch { expected: 3, got: 2 })
        ));
    }

    #[test]
    fn paper_scalar_bound_visits_no_more_nodes_than_exact() {
        // The scalar bound is never smaller than the exact bound, so it can
        // only prune *more* (that is exactly why it can be wrong).
        let ps = random_points(3000, 3, 13);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let mut rng = SplitRng::new(3);
        let mut exact_nodes = 0u64;
        let mut scalar_nodes = 0u64;
        for _ in 0..30 {
            let q: Vec<f32> = (0..3).map(|_| (rng.next_f64() * 10.0) as f32).collect();
            for (mode, acc) in [
                (BoundMode::Exact, &mut exact_nodes),
                (BoundMode::PaperScalar, &mut scalar_nodes),
            ] {
                let mut heap = KnnHeap::new(5);
                let mut ws = QueryWorkspace::new();
                let mut c = QueryCounters::default();
                tree.query_into(&q, &mut heap, mode, &mut ws, &mut c);
                *acc += c.nodes_visited;
            }
        }
        // (Not a strict theorem — a mis-pruned true neighbor can keep the
        // heap bound looser — but on uniform data the aggregate holds with
        // a generous margin.)
        assert!(
            scalar_nodes <= exact_nodes + exact_nodes / 10 + 32,
            "scalar {scalar_nodes} vs exact {exact_nodes}"
        );
    }

    #[test]
    fn counters_reflect_traversal() {
        let ps = random_points(5000, 3, 17);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let mut heap = KnnHeap::new(5);
        let mut ws = QueryWorkspace::new();
        let mut c = QueryCounters::default();
        tree.query_into(&[5.0, 5.0, 5.0], &mut heap, BoundMode::Exact, &mut ws, &mut c);
        assert_eq!(c.queries, 1);
        assert!(c.nodes_visited > 0);
        assert!(c.leaves_scanned > 0);
        assert!(c.points_scanned >= c.leaves_scanned * 8);
        assert!(c.heap_ops >= 5);
        // pruning must be effective: nowhere near the full ~5000/32 leaves
        let total_leaves = tree.stats().n_leaves as u64;
        assert!(
            c.leaves_scanned < total_leaves / 2,
            "scanned {} of {total_leaves} leaves",
            c.leaves_scanned
        );
    }

    #[test]
    fn pre_seeded_radius_prunes_remote_style() {
        let ps = random_points(5000, 3, 19);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let q = [5.0f32, 5.0, 5.0];
        // owner pass: get true k-th distance
        let full = tree.query(&q, 5).unwrap();
        let r_sq = full[4].dist_sq;
        // remote pass with the owner's bound: must scan far fewer leaves
        let mut c_full = QueryCounters::default();
        let mut c_seeded = QueryCounters::default();
        let mut ws = QueryWorkspace::new();
        let mut h1 = KnnHeap::new(5);
        tree.query_into(&q, &mut h1, BoundMode::Exact, &mut ws, &mut c_full);
        let mut h2 = KnnHeap::with_radius_sq(5, r_sq);
        tree.query_into(&q, &mut h2, BoundMode::Exact, &mut ws, &mut c_seeded);
        assert!(c_seeded.leaves_scanned <= c_full.leaves_scanned);
        // seeded results are a subset: strictly closer than r'
        assert!(h2.into_sorted().iter().all(|n| n.dist_sq < r_sq));
    }

    #[test]
    fn duplicate_heavy_data_is_exact() {
        // Daya-Bay-like co-location: many identical records
        let mut coords = Vec::new();
        let mut rng = SplitRng::new(4);
        for i in 0..2000 {
            if i % 4 == 0 {
                coords.extend_from_slice(&[1.0f32, 2.0, 3.0]); // co-located cluster
            } else {
                coords.extend([
                    (rng.next_f64() * 4.0) as f32,
                    (rng.next_f64() * 4.0) as f32,
                    (rng.next_f64() * 4.0) as f32,
                ]);
            }
        }
        let ps = PointSet::from_coords(3, coords).unwrap();
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        for k in [1usize, 5, 40] {
            let got: Vec<f32> =
                tree.query(&[1.0, 2.0, 3.0], k).unwrap().iter().map(|n| n.dist_sq).collect();
            let expect: Vec<f32> =
                brute_knn(&ps, &[1.0, 2.0, 3.0], k).iter().map(|p| p.0).collect();
            assert_eq!(got, expect, "k={k}");
        }
    }
}
