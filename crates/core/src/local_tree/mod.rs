//! The per-rank ("local") kd-tree: array-node layout, SIMD-packed leaf
//! buckets, three-phase construction, and the Algorithm-1 query traversal.
//!
//! Construction mirrors §III-A of the paper:
//!
//! 1. **Data-parallel levels** — breadth-first; split/shuffle of every open
//!    segment is parallelized over points until there are
//!    `threads × data_parallel_factor` independent segments.
//! 2. **Thread-parallel subtrees** — each remaining segment becomes a
//!    depth-first sequential subtree build; subtrees are scheduled over
//!    threads (longest-processing-time order in the simulated-time model).
//! 3. **SIMD packing** — leaf bucket coordinates are copied into a
//!    bucket-major, dimension-major, lane-padded layout so the query-time
//!    exhaustive bucket scan is a pure vectorizable stream.

mod build;
mod layout;
mod query;

pub use build::LocalBuildModel;
pub use layout::{PackedLeaves, ScanStats, LANE};
pub use query::QueryWorkspace;

pub(crate) use layout::padded as padded_len;
pub(crate) use query::{Entry as TraversalEntry, NO_APPLY};

use crate::config::TreeConfig;
use crate::counters::BuildCounters;
use crate::error::Result;
use crate::point::PointSet;

/// Sentinel in `Node::split_dim` marking a leaf.
pub(crate) const LEAF: u32 = u32::MAX;

/// One tree node (16 bytes).
///
/// Internal: `a`/`b` are left/right child indices.
/// Leaf: `a` is the padded base index into [`PackedLeaves`], `b` the point
/// count (capacity is `b` rounded up to [`LANE`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Node {
    pub split_dim: u32,
    pub split_val: f32,
    pub a: u32,
    pub b: u32,
}

impl Node {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.split_dim == LEAF
    }
}

/// Structural statistics of a built tree.
#[derive(Clone, Debug, Default)]
pub struct TreeStats {
    /// Points indexed.
    pub n_points: usize,
    /// Leaf count.
    pub n_leaves: usize,
    /// Internal node count.
    pub n_internal: usize,
    /// Maximum leaf depth (root = 0).
    pub max_depth: usize,
    /// Mean points per leaf.
    pub mean_leaf_fill: f64,
    /// Histogram-scan variant the tree was built with (cost-model input).
    pub hist_scan: crate::config::HistScan,
    /// Aggregate construction work counters.
    pub counters: BuildCounters,
    /// Per-phase construction work (drives the modeled breakdown).
    pub phases: BuildPhases,
}

/// Work performed in each construction phase.
#[derive(Clone, Debug, Default)]
pub struct BuildPhases {
    /// Counters for the breadth-first data-parallel levels.
    pub data_parallel: BuildCounters,
    /// Counters for the depth-first thread-parallel subtree builds (total).
    pub thread_parallel: BuildCounters,
    /// Per-subtree counters (for the LPT thread-schedule model).
    pub subtrees: Vec<BuildCounters>,
    /// Counters for the SIMD packing pass.
    pub packing: BuildCounters,
    /// Number of breadth-first levels executed.
    pub dp_levels: usize,
}

/// A kd-tree over one rank's points.
///
/// Build with [`LocalKdTree::build`]; query with
/// [`LocalKdTree::query`] / [`LocalKdTree::query_into`].
#[derive(Clone, Debug)]
pub struct LocalKdTree {
    pub(crate) dims: usize,
    pub(crate) nodes: Vec<Node>,
    pub(crate) leaves: PackedLeaves,
    stats: TreeStats,
}

impl LocalKdTree {
    /// Build a tree over `points` with the given configuration.
    ///
    /// An empty point set produces a valid empty tree (queries return
    /// nothing) — distributed cells can legitimately be empty.
    pub fn build(points: &PointSet, cfg: &TreeConfig) -> Result<LocalKdTree> {
        build::build(points, cfg)
    }

    /// Dimensionality of the indexed points.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.stats.n_points
    }

    /// True when the tree indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stats.n_points == 0
    }

    /// Structural statistics and construction work counters.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Approximate resident bytes (nodes + packed leaves).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>() + self.leaves.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SplitDimStrategy, SplitValueStrategy, TreeConfig};
    use crate::heap::KnnHeap;
    use crate::rng::SplitRng;

    pub(crate) fn random_points(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut rng = SplitRng::new(seed);
        let coords: Vec<f32> = (0..n * dims)
            .map(|_| (rng.next_f64() * 10.0) as f32)
            .collect();
        PointSet::from_coords(dims, coords).unwrap()
    }

    /// Brute-force reference: k smallest (dist_sq, id), ties by first-come
    /// (same as the heap's strict-< rule, scanning in id order).
    pub(crate) fn brute_knn(ps: &PointSet, q: &[f32], k: usize) -> Vec<(f32, u64)> {
        let mut h = KnnHeap::new(k);
        for i in 0..ps.len() {
            h.offer(ps.dist_sq_to(q, i), ps.id(i));
        }
        h.into_sorted().iter().map(|n| (n.dist_sq, n.id)).collect()
    }

    #[test]
    fn every_point_lands_in_exactly_one_leaf() {
        let ps = random_points(5000, 3, 1);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let mut seen = vec![0u32; ps.len()];
        let mut leaf_points = 0usize;
        for node in &tree.nodes {
            if node.is_leaf() {
                leaf_points += node.b as usize;
                for i in 0..node.b as usize {
                    let id = tree.leaves.ids()[node.a as usize + i];
                    seen[id as usize] += 1;
                }
            }
        }
        assert_eq!(leaf_points, ps.len());
        assert!(
            seen.iter().all(|&c| c == 1),
            "each point in exactly one leaf"
        );
    }

    #[test]
    fn leaf_sizes_respect_bucket_limit() {
        for bucket in [1usize, 4, 32, 100] {
            let ps = random_points(2000, 2, 2);
            let cfg = TreeConfig::default().with_bucket_size(bucket);
            let tree = LocalKdTree::build(&ps, &cfg).unwrap();
            for node in &tree.nodes {
                if node.is_leaf() {
                    assert!(node.b as usize <= bucket, "bucket {bucket}");
                    assert!(node.b > 0, "no empty leaves");
                }
            }
        }
    }

    #[test]
    fn split_planes_are_consistent() {
        // Every point in the left subtree has coord ≤ split_val; right > …
        // except count-based splits where both sides may touch the value.
        // The universally valid invariant: left max ≤ split ≤ right min
        // cannot hold with count splits either (left max == split == right
        // min). Check the relaxed invariant left ≤ split ≤ right.
        let ps = random_points(3000, 3, 3);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();

        // gather (base, cap, member) triples under each node
        fn collect(tree: &LocalKdTree, node: u32, out: &mut Vec<(usize, usize, usize)>) {
            let n = tree.nodes[node as usize];
            if n.is_leaf() {
                let cap = layout::padded(n.b as usize);
                for i in 0..n.b as usize {
                    out.push((n.a as usize, cap, i));
                }
            } else {
                collect(tree, n.a, out);
                collect(tree, n.b, out);
            }
        }

        for (i, n) in tree.nodes.iter().enumerate() {
            if n.is_leaf() {
                continue;
            }
            let dim = n.split_dim as usize;
            let mut left = Vec::new();
            let mut right = Vec::new();
            collect(&tree, n.a, &mut left);
            collect(&tree, n.b, &mut right);
            assert!(
                !left.is_empty() && !right.is_empty(),
                "node {i} has empty child"
            );
            for &(base, cap, m) in &left {
                let v = tree.leaves.member_coord(base, cap, m, dim);
                assert!(v <= n.split_val, "left violates plane at node {i}");
            }
            for &(base, cap, m) in &right {
                let v = tree.leaves.member_coord(base, cap, m, dim);
                assert!(v >= n.split_val, "right violates plane at node {i}");
            }
        }
    }

    #[test]
    fn stats_are_coherent() {
        let ps = random_points(4096, 3, 4);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        let s = tree.stats();
        assert_eq!(s.n_points, 4096);
        assert_eq!(s.n_leaves + s.n_internal, tree.nodes.len());
        assert_eq!(s.n_leaves, s.n_internal + 1, "full binary tree");
        assert!(
            s.max_depth >= 7,
            "4096/32 needs ≥ 7 levels, got {}",
            s.max_depth
        );
        assert!(s.max_depth < 40);
        assert!(s.mean_leaf_fill > 0.0 && s.mean_leaf_fill <= 32.0);
        assert!(s.counters.nodes_created as usize == tree.nodes.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let ps = random_points(2000, 3, 5);
        let cfg = TreeConfig::default();
        let a = LocalKdTree::build(&ps, &cfg).unwrap();
        let b = LocalKdTree::build(&ps, &cfg).unwrap();
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.split_dim, y.split_dim);
            assert_eq!(x.split_val, y.split_val);
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
        }
    }

    #[test]
    fn all_identical_points_terminate() {
        let ps = PointSet::from_coords(3, [1.5f32, 2.5, 3.5].repeat(500)).unwrap();
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        assert_eq!(tree.len(), 500);
        // querying must find exactly k of them at the same distance
        let res = tree.query(&[1.5, 2.5, 3.5], 5).unwrap();
        assert_eq!(res.len(), 5);
        assert!(res.iter().all(|n| n.dist_sq == 0.0));
    }

    #[test]
    fn empty_and_tiny_trees() {
        let ps = PointSet::new(3).unwrap();
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        assert!(tree.is_empty());
        assert!(tree.query(&[0.0, 0.0, 0.0], 3).unwrap().is_empty());

        let one = random_points(1, 3, 6);
        let tree = LocalKdTree::build(&one, &TreeConfig::default()).unwrap();
        assert_eq!(tree.len(), 1);
        let r = tree.query(&[0.0; 3], 5).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn strategies_all_build_valid_trees() {
        let ps = random_points(3000, 4, 7);
        for split_dim in [
            SplitDimStrategy::MaxVariance { sample: 256 },
            SplitDimStrategy::MaxExtent,
            SplitDimStrategy::RoundRobin,
        ] {
            for split_value in [
                SplitValueStrategy::SampledHistogram { samples: 256 },
                SplitValueStrategy::ExactMedian,
                SplitValueStrategy::MeanFirst100,
            ] {
                let cfg = TreeConfig {
                    split_dim,
                    split_value,
                    ..TreeConfig::default()
                };
                let tree = LocalKdTree::build(&ps, &cfg).unwrap();
                assert_eq!(tree.len(), 3000, "{split_dim:?}/{split_value:?}");
                let got = tree.query(&[5.0, 5.0, 5.0, 5.0], 3).unwrap();
                let expect = brute_knn(&ps, &[5.0, 5.0, 5.0, 5.0], 3);
                let g: Vec<f32> = got.iter().map(|n| n.dist_sq).collect();
                let e: Vec<f32> = expect.iter().map(|p| p.0).collect();
                assert_eq!(g, e, "{split_dim:?}/{split_value:?}");
            }
        }
    }

    #[test]
    fn parallel_build_is_exact_too() {
        let ps = random_points(20_000, 3, 8);
        let cfg = TreeConfig::default().with_parallel(true).with_threads(2);
        let tree = LocalKdTree::build(&ps, &cfg).unwrap();
        assert_eq!(tree.len(), 20_000);
        for qi in 0..25 {
            let q = ps.point(qi * 700 % ps.len()).to_vec();
            let got: Vec<f32> = tree
                .query(&q, 7)
                .unwrap()
                .iter()
                .map(|n| n.dist_sq)
                .collect();
            let expect: Vec<f32> = brute_knn(&ps, &q, 7).iter().map(|p| p.0).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let ps = random_points(1000, 3, 9);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        assert!(tree.memory_bytes() > 1000 * 3 * 4);
    }
}
