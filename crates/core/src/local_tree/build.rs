//! Three-phase local kd-tree construction (§III-A(ii)–(iv)).

use rayon::prelude::*;

use panda_comm::CostModel;

use crate::config::{SplitValueStrategy, TreeConfig};
use crate::counters::BuildCounters;
use crate::error::Result;
use crate::partition::{partition_by_count, partition_in_place};
use crate::point::PointSet;
use crate::rng::SplitRng;
use crate::split::{choose_dim, mean_first_100, sampled_split_value};

use super::layout::{padded, PackedLeaves};
use super::{BuildPhases, LocalKdTree, Node, TreeStats, LEAF};

/// Beyond this depth the builder forces exact-median splits, bounding tree
/// depth even under adversarial sampled splits.
const MAX_SAMPLED_DEPTH: usize = 64;

/// An open range of the index permutation awaiting splitting.
#[derive(Clone, Copy, Debug)]
struct Segment {
    node: u32,
    start: usize,
    len: usize,
    depth: usize,
}

enum SplitOutcome {
    Leaf,
    Split {
        dim: usize,
        value: f32,
        left_len: usize,
    },
}

/// Split one segment in place; shared by both construction phases.
fn split_segment(
    ps: &PointSet,
    cfg: &TreeConfig,
    idx_seg: &mut [u32],
    depth: usize,
    global_start: usize,
    counters: &mut BuildCounters,
) -> SplitOutcome {
    let len = idx_seg.len();
    if len <= cfg.bucket_size {
        return SplitOutcome::Leaf;
    }
    // Deterministic per-segment stream: independent of thread schedule.
    let mut rng = SplitRng::new(
        cfg.seed
            ^ (global_start as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ (depth as u64).wrapping_mul(0xC2B2AE3D27D4EB4F),
    );
    let dim = choose_dim(ps, idx_seg, cfg.split_dim, depth, &mut rng, counters);

    let exact = |idx_seg: &mut [u32], counters: &mut BuildCounters| {
        let mid = len / 2;
        let value = partition_by_count(ps, idx_seg, dim, mid);
        counters.median_selects += len as u64;
        SplitOutcome::Split {
            dim,
            value,
            left_len: mid,
        }
    };

    let force_exact = depth >= MAX_SAMPLED_DEPTH
        || len <= cfg.exact_median_below
        || matches!(cfg.split_value, SplitValueStrategy::ExactMedian);
    if force_exact {
        return exact(idx_seg, counters);
    }

    match cfg.split_value {
        SplitValueStrategy::SampledHistogram { samples } => {
            let d = sampled_split_value(
                ps,
                idx_seg,
                dim,
                samples,
                0.5,
                cfg.hist_scan,
                &mut rng,
                counters,
            );
            if d.degenerate {
                return exact(idx_seg, counters);
            }
            let left = partition_in_place(ps, idx_seg, dim, d.value);
            counters.partition_ops += len as u64;
            debug_assert_eq!(left as u64, d.left_count, "histogram/partition disagree");
            SplitOutcome::Split {
                dim,
                value: d.value,
                left_len: left,
            }
        }
        SplitValueStrategy::MeanFirst100 => {
            let value = mean_first_100(ps, idx_seg, dim);
            let left = partition_in_place(ps, idx_seg, dim, value);
            counters.partition_ops += len as u64;
            if left == 0 || left == len {
                return exact(idx_seg, counters);
            }
            SplitOutcome::Split {
                dim,
                value,
                left_len: left,
            }
        }
        SplitValueStrategy::ExactMedian => unreachable!("handled by force_exact"),
    }
}

/// Carve `idx` into one disjoint mutable slice per segment (segments are
/// non-overlapping and sorted by `start`).
fn carve<'a>(mut idx: &'a mut [u32], segments: &[Segment]) -> Vec<&'a mut [u32]> {
    let mut out = Vec::with_capacity(segments.len());
    let mut offset = 0usize;
    for seg in segments {
        debug_assert!(seg.start >= offset, "segments must be sorted and disjoint");
        let (_gap, rest) = idx.split_at_mut(seg.start - offset);
        let (slice, rest) = rest.split_at_mut(seg.len);
        out.push(slice);
        idx = rest;
        offset = seg.start + seg.len;
    }
    out
}

struct SubtreeResult {
    arena: Vec<Node>,
    counters: BuildCounters,
}

/// Depth-first sequential subtree build into a local arena (root last).
fn build_subtree(
    ps: &PointSet,
    cfg: &TreeConfig,
    idx_seg: &mut [u32],
    global_start: usize,
    depth: usize,
) -> SubtreeResult {
    let mut arena = Vec::new();
    let mut counters = BuildCounters::default();
    rec(
        ps,
        cfg,
        &mut arena,
        idx_seg,
        global_start,
        depth,
        &mut counters,
    );
    counters.nodes_created += arena.len() as u64;
    return SubtreeResult { arena, counters };

    fn rec(
        ps: &PointSet,
        cfg: &TreeConfig,
        arena: &mut Vec<Node>,
        idx_seg: &mut [u32],
        global_start: usize,
        depth: usize,
        counters: &mut BuildCounters,
    ) -> u32 {
        match split_segment(ps, cfg, idx_seg, depth, global_start, counters) {
            SplitOutcome::Leaf => {
                arena.push(Node {
                    split_dim: LEAF,
                    split_val: 0.0,
                    a: global_start as u32,
                    b: idx_seg.len() as u32,
                });
            }
            SplitOutcome::Split {
                dim,
                value,
                left_len,
            } => {
                let (l, r) = idx_seg.split_at_mut(left_len);
                let li = rec(ps, cfg, arena, l, global_start, depth + 1, counters);
                let ri = rec(
                    ps,
                    cfg,
                    arena,
                    r,
                    global_start + left_len,
                    depth + 1,
                    counters,
                );
                arena.push(Node {
                    split_dim: dim as u32,
                    split_val: value,
                    a: li,
                    b: ri,
                });
            }
        }
        (arena.len() - 1) as u32
    }
}

/// Build a local kd-tree (see [`LocalKdTree::build`]).
pub(super) fn build(ps: &PointSet, cfg: &TreeConfig) -> Result<LocalKdTree> {
    cfg.validate()?;
    let n = ps.len();
    let dims = ps.dims();

    let mut stats = TreeStats {
        n_points: n,
        hist_scan: cfg.hist_scan,
        ..TreeStats::default()
    };
    if n == 0 {
        return Ok(LocalKdTree {
            dims,
            nodes: Vec::new(),
            leaves: PackedLeaves::new(dims),
            stats,
        });
    }

    let mut idx: Vec<u32> = (0..n as u32).collect();
    let mut nodes: Vec<Node> = Vec::with_capacity(2 * (n / cfg.bucket_size.max(1) + 1));
    nodes.push(Node {
        split_dim: LEAF,
        split_val: 0.0,
        a: 0,
        b: n as u32,
    }); // root placeholder

    let mut phases = BuildPhases::default();
    let stop_at = cfg.threads.max(1) * cfg.data_parallel_factor;

    // ---- Phase A: breadth-first data-parallel levels -------------------
    let mut open = vec![Segment {
        node: 0,
        start: 0,
        len: n,
        depth: 0,
    }];
    while !open.is_empty() && open.len() < stop_at {
        phases.dp_levels += 1;
        let results: Vec<(SplitOutcome, BuildCounters)> = {
            let slices = carve(&mut idx, &open);
            let work = |(slice, seg): (&mut [u32], &Segment)| {
                let mut c = BuildCounters::default();
                let outcome = split_segment(ps, cfg, slice, seg.depth, seg.start, &mut c);
                (outcome, c)
            };
            if cfg.parallel {
                slices
                    .into_par_iter()
                    .zip(open.par_iter())
                    .map(work)
                    .collect()
            } else {
                slices.into_iter().zip(open.iter()).map(work).collect()
            }
        };

        let mut next = Vec::with_capacity(open.len() * 2);
        for (seg, (outcome, c)) in open.iter().zip(results) {
            phases.data_parallel.add(&c);
            match outcome {
                SplitOutcome::Leaf => {
                    nodes[seg.node as usize] = Node {
                        split_dim: LEAF,
                        split_val: 0.0,
                        a: seg.start as u32,
                        b: seg.len as u32,
                    };
                }
                SplitOutcome::Split {
                    dim,
                    value,
                    left_len,
                } => {
                    let l = nodes.len() as u32;
                    nodes.push(Node {
                        split_dim: LEAF,
                        split_val: 0.0,
                        a: 0,
                        b: 0,
                    });
                    let r = nodes.len() as u32;
                    nodes.push(Node {
                        split_dim: LEAF,
                        split_val: 0.0,
                        a: 0,
                        b: 0,
                    });
                    phases.data_parallel.nodes_created += 2;
                    nodes[seg.node as usize] = Node {
                        split_dim: dim as u32,
                        split_val: value,
                        a: l,
                        b: r,
                    };
                    let children = [
                        (l, seg.start, left_len),
                        (r, seg.start + left_len, seg.len - left_len),
                    ];
                    for (child, start, len) in children {
                        if len <= cfg.bucket_size {
                            nodes[child as usize] = Node {
                                split_dim: LEAF,
                                split_val: 0.0,
                                a: start as u32,
                                b: len as u32,
                            };
                        } else {
                            next.push(Segment {
                                node: child,
                                start,
                                len,
                                depth: seg.depth + 1,
                            });
                        }
                    }
                }
            }
        }
        open = next;
    }
    phases.data_parallel.nodes_created += 1; // the root node itself

    // ---- Phase B: thread-parallel depth-first subtrees ------------------
    let subtree_results: Vec<SubtreeResult> = {
        let slices = carve(&mut idx, &open);
        let work = |(slice, seg): (&mut [u32], &Segment)| {
            build_subtree(ps, cfg, slice, seg.start, seg.depth)
        };
        if cfg.parallel {
            slices
                .into_par_iter()
                .zip(open.par_iter())
                .map(work)
                .collect()
        } else {
            slices.into_iter().zip(open.iter()).map(work).collect()
        }
    };
    for (seg, sub) in open.iter().zip(subtree_results) {
        phases.thread_parallel.add(&sub.counters);
        phases.subtrees.push(sub.counters);
        // Merge arena: non-root nodes are appended with offset fixup; the
        // arena root replaces the placeholder at seg.node. Post-order
        // construction guarantees children precede parents and nothing
        // references the root.
        let offset = nodes.len() as u32;
        let root_local = (sub.arena.len() - 1) as u32;
        let fix = |child: u32| -> u32 {
            debug_assert!(child < root_local);
            child + offset
        };
        for (i, node) in sub.arena.iter().enumerate() {
            let fixed = if node.is_leaf() {
                *node
            } else {
                Node {
                    a: fix(node.a),
                    b: fix(node.b),
                    ..*node
                }
            };
            if i as u32 == root_local {
                nodes[seg.node as usize] = fixed;
            } else {
                nodes.push(fixed);
            }
        }
    }

    // ---- Phase C: SIMD packing + stats ----------------------------------
    let mut leaves = PackedLeaves::new(dims);
    leaves.reserve(n);
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    let mut leaf_fill_total = 0u64;
    while let Some((ni, depth)) = stack.pop() {
        stats.max_depth = stats.max_depth.max(depth);
        let node = nodes[ni as usize];
        if node.is_leaf() {
            stats.n_leaves += 1;
            leaf_fill_total += node.b as u64;
            let start = node.a as usize;
            let cnt = node.b as usize;
            let base = leaves.push_leaf(
                cnt,
                |i, d| ps.coord(idx[start + i] as usize, d),
                |i| ps.id(idx[start + i] as usize),
            );
            nodes[ni as usize].a = base;
            phases.packing.pack_coords += (padded(cnt) * dims) as u64;
        } else {
            stats.n_internal += 1;
            stack.push((node.b, depth + 1));
            stack.push((node.a, depth + 1));
        }
    }
    debug_assert_eq!(leaf_fill_total as usize, n);
    stats.mean_leaf_fill = leaf_fill_total as f64 / stats.n_leaves.max(1) as f64;

    let mut total = BuildCounters::default();
    total.add(&phases.data_parallel);
    total.add(&phases.thread_parallel);
    total.add(&phases.packing);
    total.nodes_created = nodes.len() as u64;
    stats.counters = total;
    stats.phases = phases;

    Ok(LocalKdTree {
        dims,
        nodes,
        leaves,
        stats,
    })
}

/// Longest-processing-time makespan of `costs` over `threads` workers —
/// the schedule model for the thread-parallel subtree phase.
pub fn lpt_makespan(costs: &[f64], threads: usize) -> f64 {
    let threads = threads.max(1);
    let mut sorted: Vec<f64> = costs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite costs"));
    let mut loads = vec![0.0f64; threads];
    for c in sorted {
        // assign to the least-loaded worker
        let (mi, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .expect("threads >= 1");
        loads[mi] += c;
    }
    loads.into_iter().fold(0.0, f64::max)
}

/// Modeled wall-seconds per construction phase under a cost model's thread
/// pool (used by the simulated cluster and the single-node scaling bench).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LocalBuildModel {
    /// Breadth-first data-parallel levels.
    pub data_parallel: f64,
    /// Thread-parallel subtree phase (LPT schedule makespan).
    pub thread_parallel: f64,
    /// SIMD packing pass.
    pub packing: f64,
}

impl LocalBuildModel {
    /// Total modeled construction seconds.
    pub fn total(&self) -> f64 {
        self.data_parallel + self.thread_parallel + self.packing
    }
}

impl LocalKdTree {
    /// Model the per-phase construction times under `cost`'s thread pool,
    /// at an explicit thread count (pass `cost.thread.threads` for the
    /// configured pool).
    pub fn modeled_build_at(&self, cost: &CostModel, threads: usize, smt: bool) -> LocalBuildModel {
        let ph = &self.stats().phases;
        let scan = self.stats().hist_scan;
        let dims = self.dims();
        let dp_cpu = ph.data_parallel.cpu_seconds(&cost.ops, scan);
        let dp =
            cost.thread
                .parallel_time_at(dp_cpu, ph.data_parallel.mem_bytes(dims), threads, smt);
        let sub_costs: Vec<f64> = ph
            .subtrees
            .iter()
            .map(|c| c.cpu_seconds(&cost.ops, scan))
            .collect();
        let tp_cpu = lpt_makespan(&sub_costs, threads);
        let tp_mem = ph.thread_parallel.mem_bytes(dims);
        let tp = tp_cpu.max(cost.thread.parallel_time_at(0.0, tp_mem, threads, smt));
        let pack_cpu = ph.packing.cpu_seconds(&cost.ops, scan);
        let pack = cost
            .thread
            .parallel_time_at(pack_cpu, ph.packing.mem_bytes(dims), threads, smt);
        LocalBuildModel {
            data_parallel: dp,
            thread_parallel: tp,
            packing: pack,
        }
    }

    /// [`Self::modeled_build_at`] with the model's configured thread pool.
    pub fn modeled_build(&self, cost: &CostModel) -> LocalBuildModel {
        self.modeled_build_at(cost, cost.thread.threads, cost.thread.smt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_basic_properties() {
        assert_eq!(lpt_makespan(&[], 4), 0.0);
        assert_eq!(lpt_makespan(&[5.0], 4), 5.0);
        // perfect split
        assert_eq!(lpt_makespan(&[3.0, 3.0, 3.0, 3.0], 4), 3.0);
        // single thread = sum
        assert!((lpt_makespan(&[1.0, 2.0, 3.0], 1) - 6.0).abs() < 1e-12);
        // makespan is at least max item and at least mean load
        let costs = [9.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let m = lpt_makespan(&costs, 3);
        assert!(m >= 9.0);
        assert!(m <= 14.0);
        assert_eq!(m, 9.0); // LPT puts the 9 alone
    }

    #[test]
    fn lpt_monotonic_in_threads() {
        let costs: Vec<f64> = (1..50).map(|i| (i % 7 + 1) as f64).collect();
        let mut prev = f64::INFINITY;
        for t in 1..=8 {
            let m = lpt_makespan(&costs, t);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn modeled_build_shrinks_with_threads() {
        use crate::config::TreeConfig;
        use crate::local_tree::tests::random_points;
        let ps = random_points(30_000, 3, 42);
        let cfg = TreeConfig {
            threads: 24,
            ..TreeConfig::default()
        };
        let tree = LocalKdTree::build(&ps, &cfg).unwrap();
        let cost = CostModel::default();
        let t1 = tree.modeled_build_at(&cost, 1, false).total();
        let t24 = tree.modeled_build_at(&cost, 24, false).total();
        assert!(t1 > 0.0);
        let speedup = t1 / t24;
        assert!(
            (8.0..=24.0).contains(&speedup),
            "24-thread modeled construction speedup {speedup}"
        );
    }

    #[test]
    fn phases_account_for_all_work() {
        use crate::config::TreeConfig;
        use crate::local_tree::tests::random_points;
        let ps = random_points(10_000, 3, 1);
        let cfg = TreeConfig {
            threads: 4,
            ..TreeConfig::default()
        };
        let tree = LocalKdTree::build(&ps, &cfg).unwrap();
        let s = tree.stats();
        // every point is packed exactly once (plus padding)
        assert!(s.phases.packing.pack_coords >= (10_000 * 3) as u64);
        // subtree counters sum to the thread-parallel totals
        let mut sum = BuildCounters::default();
        for c in &s.phases.subtrees {
            sum.add(c);
        }
        assert_eq!(sum.hist_binned, s.phases.thread_parallel.hist_binned);
        assert_eq!(sum.median_selects, s.phases.thread_parallel.median_selects);
        // with threads=4 & factor 10 the DP phase must have run ≥ 1 level
        assert!(s.phases.dp_levels >= 1);
        assert!(!s.phases.subtrees.is_empty());
    }
}
