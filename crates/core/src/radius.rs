//! Fixed-radius neighbor search — the "easier problem" the paper
//! contrasts KNN against (§I, discussing BD-CATS \[11\]).
//!
//! With a fixed radius there is no `r'` refinement loop: the set of ranks
//! to consult is known the moment the query arrives, so the distributed
//! protocol is a single scatter/gather. Provided both as a local-tree
//! method and as a distributed operation; the `halo_finder` example and
//! the strategy discussions use it.

use panda_comm::{Comm, ReduceOp};

use crate::build_distributed::DistKdTree;
use crate::counters::QueryCounters;
use crate::engine::NeighborTable;
use crate::error::{PandaError, Result};
use crate::heap::Neighbor;
use crate::local_tree::{LocalKdTree, QueryWorkspace, TraversalEntry, NO_APPLY};
use crate::point::PointSet;

impl LocalKdTree {
    /// **All** points strictly within `radius` of `q` (no k cap),
    /// ascending by distance. Exact.
    pub fn query_radius_all(&self, q: &[f32], radius: f32) -> Result<Vec<Neighbor>> {
        if radius.is_nan() || radius <= 0.0 {
            return Err(PandaError::BadConfig("radius must be positive".into()));
        }
        if q.len() != self.dims() {
            return Err(PandaError::DimsMismatch {
                expected: self.dims(),
                got: q.len(),
            });
        }
        let mut out = Vec::new();
        let mut ws = QueryWorkspace::new();
        let mut counters = QueryCounters::default();
        self.radius_into(q, radius * radius, &mut out, &mut ws, &mut counters);
        out.sort_by(|a, b| {
            a.dist_sq
                .partial_cmp(&b.dist_sq)
                .expect("finite")
                .then(a.id.cmp(&b.id))
        });
        Ok(out)
    }

    /// Core fixed-radius traversal (appends unsorted matches). Shares the
    /// undo-log side-state machinery ([`QueryWorkspace::restore_path`])
    /// with the KNN traversal; the only difference is the fixed bound —
    /// the radius never tightens, so no re-check on pop is needed.
    pub(crate) fn radius_into(
        &self,
        q: &[f32],
        r_sq: f32,
        out: &mut Vec<Neighbor>,
        ws: &mut QueryWorkspace,
        counters: &mut QueryCounters,
    ) {
        counters.queries += 1;
        if self.nodes.is_empty() {
            return;
        }
        ws.reset(self.dims());
        ws.stack.push(TraversalEntry {
            node: 0,
            lb_sq: 0.0,
            undo_len: 0,
            apply_dim: NO_APPLY,
            apply_off: 0.0,
        });
        while let Some(e) = ws.stack.pop() {
            let node = self.nodes[e.node as usize];
            counters.nodes_visited += 1;
            if node.is_leaf() {
                // Leaves never read the side array — skip the restore.
                counters.leaves_scanned += 1;
                let base = node.a as usize;
                let cap = crate::local_tree::padded_len(node.b as usize);
                let stats = self.leaves.scan_and_collect(base, cap, q, r_sq, out);
                counters.points_scanned += cap as u64;
                counters.leaf_kernel_calls += 1;
                counters.kernel_blocks_pruned += stats.pruned_blocks as u64;
                counters.heap_ops += stats.accepted as u64;
            } else {
                ws.restore_path(&e);
                let dim = node.split_dim as usize;
                let off = q[dim] - node.split_val;
                let (near, far) = if off <= 0.0 {
                    (node.a, node.b)
                } else {
                    (node.b, node.a)
                };
                let old = ws.side[dim];
                let far_lb = e.lb_sq - old * old + off * off;
                let checkpoint = ws.undo.len() as u32;
                if far_lb < r_sq {
                    ws.stack.push(TraversalEntry {
                        node: far,
                        lb_sq: far_lb,
                        undo_len: checkpoint,
                        apply_dim: dim as u32,
                        apply_off: off,
                    });
                }
                ws.stack.push(TraversalEntry {
                    node: near,
                    lb_sq: e.lb_sq,
                    undo_len: checkpoint,
                    apply_dim: NO_APPLY,
                    apply_off: 0.0,
                });
            }
        }
    }
}

/// Distributed fixed-radius search (SPMD): every rank passes its own
/// queries; each gets, per query, **all** dataset points strictly within
/// `radius`, ascending by distance.
///
/// Results come back as a flat CSR [`NeighborTable`] (row `i` answers
/// `queries.point(i)`), assembled in place via
/// [`NeighborTable::with_row_counts`] + [`NeighborTable::row_mut`] —
/// the same arena-building path as the batched and distributed KNN
/// engines, with no nested `Vec<Vec<Neighbor>>` intermediate.
pub fn radius_search_distributed(
    comm: &mut Comm,
    tree: &DistKdTree,
    queries: &PointSet,
    radius: f32,
) -> Result<NeighborTable> {
    if radius.is_nan() || radius <= 0.0 {
        return Err(PandaError::BadConfig("radius must be positive".into()));
    }
    let dims = tree.global.dims();
    if !queries.is_empty() && queries.dims() != dims {
        return Err(PandaError::DimsMismatch {
            expected: dims,
            got: queries.dims(),
        });
    }
    queries.validate()?;
    let p = comm.size();
    let me = comm.rank();
    let r_sq = radius * radius;
    let mut counters = QueryCounters::default();

    // One shot: the radius is fixed, so the target ranks are known
    // immediately — send each query to *every* rank whose region
    // intersects the ball (including our own share of the work).
    let mut coord_sends: Vec<Vec<f32>> = (0..p).map(|_| Vec::new()).collect();
    let mut qid_sends: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
    let mut targets = Vec::new();
    for i in 0..queries.len() {
        let q = queries.point(i);
        targets.clear();
        tree.global
            .ranks_in_ball(q, r_sq, true, &mut targets, &mut counters);
        for &r in &targets {
            coord_sends[r].extend_from_slice(q);
            qid_sends[r].push(((me as u64) << 32) | i as u64);
        }
    }
    let coords_in = comm.world().alltoallv(coord_sends);
    let qids_in = comm.world().alltoallv(qid_sends);

    // Serve everything we received; candidates go straight back.
    let mut meta_sends: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
    let mut dist_sends: Vec<Vec<f32>> = (0..p).map(|_| Vec::new()).collect();
    let mut hits = Vec::new();
    let mut ws = QueryWorkspace::new();
    for (src, (coords, qids)) in coords_in.iter().zip(&qids_in).enumerate() {
        for (j, &rq) in qids.iter().enumerate() {
            let q = &coords[j * dims..(j + 1) * dims];
            hits.clear();
            tree.local
                .radius_into(q, r_sq, &mut hits, &mut ws, &mut counters);
            for h in &hits {
                meta_sends[src].push(rq);
                meta_sends[src].push(h.id);
                dist_sends[src].push(h.dist_sq);
            }
        }
    }
    let cost = *comm.cost();
    comm.work_parallel(
        counters.cpu_seconds(&cost.ops, dims),
        counters.mem_bytes(dims),
    );
    let meta_in = comm.world().alltoallv(meta_sends);
    let dist_in = comm.world().alltoallv(dist_sends);

    // Assemble CSR in place: count each local query's hits across all
    // response streams, allocate the table once, then write every hit
    // directly into its final row.
    let mut row_counts = vec![0u32; queries.len()];
    for meta in &meta_in {
        for pair in meta.chunks_exact(2) {
            row_counts[(pair[0] & 0xFFFF_FFFF) as usize] += 1;
        }
    }
    let mut table = NeighborTable::with_row_counts(&row_counts)?;
    let mut written = vec![0u32; queries.len()];
    for (meta, dists) in meta_in.iter().zip(&dist_in) {
        for (pair, &d) in meta.chunks_exact(2).zip(dists) {
            let idx = (pair[0] & 0xFFFF_FFFF) as usize;
            table.row_mut(idx)[written[idx] as usize] = Neighbor {
                dist_sq: d,
                id: pair[1],
            };
            written[idx] += 1;
        }
    }
    debug_assert_eq!(written, row_counts);
    for i in 0..queries.len() {
        table.row_mut(i).sort_by(|a, b| {
            a.dist_sq
                .partial_cmp(&b.dist_sq)
                .expect("finite")
                .then(a.id.cmp(&b.id))
        });
    }
    // sanity: total candidate volume is globally conserved
    let _total = comm.world().allreduce_u64(counters.heap_ops, ReduceOp::Sum);
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_distributed::build_distributed;
    use crate::config::{DistConfig, TreeConfig};
    use crate::rng::SplitRng;
    use panda_comm::{run_cluster, ClusterConfig};

    fn random_ps(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut rng = SplitRng::new(seed);
        PointSet::from_coords(
            dims,
            (0..n * dims)
                .map(|_| (rng.next_f64() * 10.0) as f32)
                .collect(),
        )
        .unwrap()
    }

    fn brute_radius(ps: &PointSet, q: &[f32], r: f32) -> Vec<(f32, u64)> {
        let mut out: Vec<(f32, u64)> = (0..ps.len())
            .filter_map(|i| {
                let d = ps.dist_sq_to(q, i);
                (d < r * r).then_some((d, ps.id(i)))
            })
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        out
    }

    #[test]
    fn local_radius_matches_brute() {
        let ps = random_ps(3000, 3, 1);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        for (qseed, r) in [(2u64, 0.5f32), (3, 1.5), (4, 5.0)] {
            let qs = random_ps(1, 3, qseed * 97);
            let q = qs.point(0);
            let got: Vec<(f32, u64)> = tree
                .query_radius_all(q, r)
                .unwrap()
                .iter()
                .map(|n| (n.dist_sq, n.id))
                .collect();
            assert_eq!(got, brute_radius(&ps, q, r), "r={r}");
        }
    }

    #[test]
    fn local_radius_validates() {
        let ps = random_ps(100, 3, 5);
        let tree = LocalKdTree::build(&ps, &TreeConfig::default()).unwrap();
        assert!(tree.query_radius_all(&[0.0; 3], 0.0).is_err());
        assert!(tree.query_radius_all(&[0.0; 3], -1.0).is_err());
        assert!(tree.query_radius_all(&[0.0; 2], 1.0).is_err());
    }

    #[test]
    fn distributed_radius_matches_brute() {
        let all = random_ps(2000, 3, 6);
        let queries = random_ps(30, 3, 7);
        let radius = 1.2f32;
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mut mine = PointSet::new(3).unwrap();
            for i in (comm.rank()..all.len()).step_by(comm.size()) {
                mine.push(all.point(i), all.id(i));
            }
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let mut myq = PointSet::new(3).unwrap();
            for i in (comm.rank()..queries.len()).step_by(comm.size()) {
                myq.push(queries.point(i), queries.id(i));
            }
            let res = radius_search_distributed(comm, &tree, &myq, radius).unwrap();
            assert_eq!(res.len(), myq.len());
            (0..myq.len())
                .map(|i| {
                    (
                        myq.point(i).to_vec(),
                        res.row(i)
                            .iter()
                            .map(|n| (n.dist_sq, n.id))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        });
        let mut checked = 0;
        for o in &out {
            for (q, got) in &o.result {
                assert_eq!(got, &brute_radius(&all, q, radius));
                checked += 1;
            }
        }
        assert_eq!(checked, queries.len());
    }

    #[test]
    fn distributed_radius_empty_results_far_away() {
        let all = random_ps(500, 3, 8);
        let out = run_cluster(&ClusterConfig::new(3), |comm| {
            let mut mine = PointSet::new(3).unwrap();
            for i in (comm.rank()..all.len()).step_by(comm.size()) {
                mine.push(all.point(i), all.id(i));
            }
            let tree = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let myq = if comm.rank() == 0 {
                PointSet::from_coords(3, vec![1000.0, 1000.0, 1000.0]).unwrap()
            } else {
                PointSet::new(3).unwrap()
            };
            radius_search_distributed(comm, &tree, &myq, 0.5).unwrap()
        });
        assert!(out[0].result.row(0).is_empty());
    }
}
