//! Distributed kd-tree construction (§III-A of the paper).
//!
//! Recursive rank-group halving. For each group `lo..hi`:
//!
//! 1. **Split dimension** — per-dim moment sums over a per-rank sample,
//!    all-reduced within the group; maximum-variance dimension wins
//!    (strategy configurable, §III-A1).
//! 2. **Split value** — every rank samples `m` values (paper: 256) along
//!    the dimension; samples are all-gathered and become the non-uniform
//!    histogram boundaries; every rank bins all its points; the counts are
//!    all-reduced; all ranks deterministically pick the boundary closest
//!    to the target quantile (`|left group| / |group|`, which handles
//!    non-power-of-two rank counts).
//! 3. **Redistribution** — each rank partitions its points against the
//!    split value and the group exchanges them (balanced slot assignment +
//!    `alltoallv`) so the left half of the ranks holds exactly the left
//!    half of space.
//!
//! Degenerate data (everything equal along the chosen dimension — the
//! co-located Daya Bay records at scale) falls back to the
//! next-best dimension; if every dimension is degenerate the split keeps
//! the plane at the constant value and the right half legitimately ends
//! up empty (a spatial partition cannot separate identical points).
//!
//! After the loop every rank builds its local tree; the global tree is
//! assembled on every rank from the all-gathered path decisions.

use panda_comm::{Comm, ReduceOp};

use crate::config::{DistConfig, HistScan, SplitDimStrategy};
use crate::counters::BuildCounters;
use crate::error::Result;
use crate::global_tree::{group_mid, GlobalKdTree, GlobalSplit};
use crate::hist::SampledHistogram;
use crate::local_tree::LocalKdTree;
use crate::point::{BoundingBox, PointSet};
use crate::rng::SplitRng;
use crate::timers::BuildBreakdown;

/// The distributed kd-tree owned by one rank: the replicated global tree
/// plus this rank's local tree and points.
#[derive(Clone, Debug)]
pub struct DistKdTree {
    /// Replicated rank-domain BSP.
    pub global: GlobalKdTree,
    /// This rank's local tree.
    pub local: LocalKdTree,
    /// This rank's points after redistribution.
    pub points: PointSet,
    /// Per-phase construction times (virtual seconds, this rank).
    pub breakdown: BuildBreakdown,
    /// Global-phase work counters (local-phase counters live in
    /// `local.stats()`).
    pub counters: BuildCounters,
}

/// Charge build-side work counters to the rank's virtual clock.
fn charge(comm: &mut Comm, c: &BuildCounters, dims: usize, scan: HistScan) {
    let cost = *comm.cost();
    comm.work_parallel(c.cpu_seconds(&cost.ops, scan), c.mem_bytes(dims));
}

/// Per-dimension variance of the group's data, estimated from per-rank
/// samples and all-reduced moments. Returns variances (empty ranks
/// contribute nothing).
fn group_variances(
    comm: &mut Comm,
    lo: usize,
    hi: usize,
    ps: &PointSet,
    sample: usize,
    rng: &mut SplitRng,
    counters: &mut BuildCounters,
) -> Vec<f64> {
    let dims = ps.dims();
    // layout: [count, sum_0.., sumsq_0..]
    let mut moments = vec![0.0f64; 1 + 2 * dims];
    if !ps.is_empty() {
        let positions = rng.sample_with_replacement(ps.len(), sample.max(2));
        counters.sampled += positions.len() as u64;
        counters.variance_ops += (positions.len() * dims) as u64;
        moments[0] = positions.len() as f64;
        for &i in &positions {
            let p = ps.point(i as usize);
            for d in 0..dims {
                moments[1 + d] += p[d] as f64;
                moments[1 + dims + d] += (p[d] as f64) * (p[d] as f64);
            }
        }
    }
    let total = comm.group(lo, hi).allreduce_vec_f64(moments, ReduceOp::Sum);
    let n = total[0].max(1.0);
    (0..dims)
        .map(|d| {
            let mean = total[1 + d] / n;
            (total[1 + dims + d] / n - mean * mean).max(0.0)
        })
        .collect()
}

/// Group extents per dimension (for the MaxExtent strategy).
fn group_extents(comm: &mut Comm, lo: usize, hi: usize, ps: &PointSet) -> Vec<f64> {
    let dims = ps.dims();
    let (mut los, mut his) = (vec![f64::INFINITY; dims], vec![f64::NEG_INFINITY; dims]);
    for i in 0..ps.len() {
        let p = ps.point(i);
        for d in 0..dims {
            los[d] = los[d].min(p[d] as f64);
            his[d] = his[d].max(p[d] as f64);
        }
    }
    let glo = comm.group(lo, hi).allreduce_vec_f64(los, ReduceOp::Min);
    let ghi = comm.group(lo, hi).allreduce_vec_f64(his, ReduceOp::Max);
    glo.iter()
        .zip(&ghi)
        .map(|(a, b)| (b - a).max(0.0))
        .collect()
}

/// One group-level split decision: (dim, value, my left count). All ranks
/// of the group return identical `(dim, value)`.
#[allow(clippy::too_many_arguments)]
fn decide_split(
    comm: &mut Comm,
    lo: usize,
    hi: usize,
    ps: &PointSet,
    cfg: &DistConfig,
    level: usize,
    rng: &mut SplitRng,
    counters: &mut BuildCounters,
) -> (usize, f32) {
    let dims = ps.dims();
    let frac = (group_mid(lo, hi) - lo) as f64 / (hi - lo) as f64;

    // Rank dimensions by the configured criterion (best first) so we can
    // fall back to the next dimension on degenerate splits.
    let scores: Vec<f64> = match cfg.local.split_dim {
        SplitDimStrategy::MaxVariance { sample } => {
            group_variances(comm, lo, hi, ps, sample, rng, counters)
        }
        SplitDimStrategy::MaxExtent => group_extents(comm, lo, hi, ps),
        SplitDimStrategy::RoundRobin => (0..dims)
            .map(|d| if d == level % dims { 1.0 } else { 0.0 })
            .collect(),
    };
    let mut order: Vec<usize> = (0..dims).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));

    let mut fallback: Option<(usize, f32)> = None;
    for &dim in &order {
        // Sample m values along dim; gather to group histogram boundaries.
        let m = cfg.global_samples_per_rank;
        let mine: Vec<f32> = if ps.is_empty() {
            Vec::new()
        } else {
            let positions = rng.sample_with_replacement(ps.len(), m);
            counters.sampled += positions.len() as u64;
            positions
                .iter()
                .map(|&i| ps.coord(i as usize, dim))
                .collect()
        };
        let gathered = comm.group(lo, hi).allgather(mine);
        let samples: Vec<f32> = gathered.into_iter().flatten().collect();
        counters.sampled += samples.len() as u64; // histogram assembly cost
        let hist = SampledHistogram::from_samples(samples);
        let local_counts = hist.count((0..ps.len()).map(|i| ps.coord(i, dim)), cfg.local.hist_scan);
        counters.hist_binned += ps.len() as u64;
        let global_counts = comm
            .group(lo, hi)
            .allreduce_vec_u64(local_counts, ReduceOp::Sum);
        let decision = hist.split_at_quantile(&global_counts, frac);
        if !decision.degenerate {
            return (dim, decision.value);
        }
        if fallback.is_none() {
            fallback = Some((dim, decision.value));
        }
    }
    // Every dimension degenerate: identical points — keep the plane; the
    // right half will be empty, which is spatially honest.
    fallback.expect("at least one dimension")
}

/// Balanced slot ranges: destination `j` of `dests` owns
/// `total/dests (+1 for j < total%dests)` consecutive global slots.
/// Returns the `(dest, start_within_my_block, len)` pieces of my block
/// `[off, off+cnt)`.
pub(crate) fn slot_assignments(
    total: u64,
    dests: usize,
    off: u64,
    cnt: u64,
) -> Vec<(usize, u64, u64)> {
    debug_assert!(off + cnt <= total);
    let mut out = Vec::new();
    if cnt == 0 || dests == 0 {
        return out;
    }
    let base = total / dests as u64;
    let rem = total % dests as u64;
    let mut slot_start = 0u64;
    for j in 0..dests {
        let slot_len = base + u64::from((j as u64) < rem);
        let slot_end = slot_start + slot_len;
        let s = off.max(slot_start);
        let e = (off + cnt).min(slot_end);
        if s < e {
            out.push((j, s - off, e - s));
        }
        slot_start = slot_end;
        if slot_start >= off + cnt {
            break;
        }
    }
    out
}

/// Exchange one side's points within the group so the destination ranks
/// end up with balanced, contiguous slices of the side's global order.
/// `members` are the indices of my points belonging to this side.
#[allow(clippy::too_many_arguments)]
fn exchange_side(
    comm: &mut Comm,
    lo: usize,
    hi: usize,
    dest_lo: usize,
    dest_hi: usize,
    ps: &PointSet,
    members: &[u32],
    out: &mut PointSet,
) {
    let dims = ps.dims();
    let g = hi - lo;
    // global offset of my block in the side's rank-major order
    let counts = comm.group(lo, hi).allgather(vec![members.len() as u64]);
    let me_rel = comm.rank() - lo;
    let off: u64 = counts[..me_rel].iter().map(|c| c[0]).sum();
    let total: u64 = counts.iter().map(|c| c[0]).sum();
    let dests = dest_hi - dest_lo;

    let mut coord_sends: Vec<Vec<f32>> = (0..g).map(|_| Vec::new()).collect();
    let mut id_sends: Vec<Vec<u64>> = (0..g).map(|_| Vec::new()).collect();
    for (dest, start, len) in slot_assignments(total, dests, off, members.len() as u64) {
        let dest_rel = dest_lo + dest - lo;
        let coords = &mut coord_sends[dest_rel];
        let ids = &mut id_sends[dest_rel];
        coords.reserve(len as usize * dims);
        ids.reserve(len as usize);
        for &i in &members[start as usize..(start + len) as usize] {
            coords.extend_from_slice(ps.point(i as usize));
            ids.push(ps.id(i as usize));
        }
    }
    let coords_in = comm.group(lo, hi).alltoallv(coord_sends);
    let ids_in = comm.group(lo, hi).alltoallv(id_sends);
    for (cs, is) in coords_in.into_iter().zip(ids_in) {
        debug_assert_eq!(cs.len(), is.len() * dims);
        out.extend_trusted(&cs, &is);
    }
}

/// Build the distributed kd-tree. SPMD: call on every rank with that
/// rank's share of the points (any distribution; ids must be globally
/// unique). Returns each rank's [`DistKdTree`].
pub fn build_distributed(
    comm: &mut Comm,
    points: PointSet,
    cfg: &DistConfig,
) -> Result<DistKdTree> {
    cfg.validate()?;
    points.validate()?;
    let p = comm.size();
    let dims = points.dims();
    // All ranks must agree on dimensionality (a rank with an empty set
    // still carries dims in its PointSet).
    let dmax = comm.world().allreduce_u64(dims as u64, ReduceOp::Max);
    let dmin = comm.world().allreduce_u64(dims as u64, ReduceOp::Min);
    if dmax != dmin {
        return Err(crate::error::PandaError::DimsMismatch {
            expected: dmax as usize,
            got: dims,
        });
    }

    let mut breakdown = BuildBreakdown::default();
    let mut counters = BuildCounters::default();
    let mut rng = SplitRng::new(cfg.local.seed ^ 0xD15C0_u64);
    let scan = cfg.local.hist_scan;

    let mut my = points;
    let mut my_splits: Vec<GlobalSplit> = Vec::new();
    let (mut lo, mut hi) = (0usize, p);
    let mut level = 0usize;

    while hi - lo > 1 {
        // ---- global split decision -----------------------------------
        let t0 = comm.now();
        let mut level_counters = BuildCounters::default();
        // deterministic per-(group, level) stream, identical on all ranks
        // of the group for the shared decisions; per-rank divergence is
        // fine for sampling (only the reduced outcome must agree).
        let mut level_rng = rng.fork((level as u64) << 32 | lo as u64);
        let (dim, value) = decide_split(
            comm,
            lo,
            hi,
            &my,
            cfg,
            level,
            &mut level_rng,
            &mut level_counters,
        );
        charge(comm, &level_counters, dims, scan);
        counters.add(&level_counters);
        my_splits.push(GlobalSplit { lo, hi, dim, value });
        breakdown.global_tree += comm.now() - t0;

        // ---- redistribution -------------------------------------------
        let t0 = comm.now();
        let mut part_counters = BuildCounters::default();
        let mut left_members: Vec<u32> = Vec::new();
        let mut right_members: Vec<u32> = Vec::new();
        for i in 0..my.len() {
            if my.coord(i, dim) <= value {
                left_members.push(i as u32);
            } else {
                right_members.push(i as u32);
            }
        }
        part_counters.partition_ops += my.len() as u64;
        charge(comm, &part_counters, dims, scan);
        counters.add(&part_counters);

        let mid = group_mid(lo, hi);
        // Everyone participates in both exchanges (they are group-wide
        // collectives); each rank keeps only its own side's result.
        let mut left_out = PointSet::new(dims)?;
        let mut right_out = PointSet::new(dims)?;
        exchange_side(comm, lo, hi, lo, mid, &my, &left_members, &mut left_out);
        exchange_side(comm, lo, hi, mid, hi, &my, &right_members, &mut right_out);
        let me = comm.rank();
        my = if me < mid { left_out } else { right_out };
        breakdown.redistribute += comm.now() - t0;

        if me < mid {
            hi = mid;
        } else {
            lo = mid;
        }
        level += 1;
    }

    // ---- assemble the replicated global tree --------------------------
    let t0 = comm.now();
    let gathered = comm.world().allgather(my_splits);
    let mut flat: Vec<GlobalSplit> = Vec::new();
    {
        let mut seen = std::collections::HashMap::new();
        for s in gathered.into_iter().flatten() {
            match seen.entry((s.lo, s.hi)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(s);
                    flat.push(s);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let prev: &GlobalSplit = e.get();
                    debug_assert_eq!(
                        (prev.dim, prev.value),
                        (s.dim, s.value),
                        "ranks disagreed on split for group {}..{}",
                        s.lo,
                        s.hi
                    );
                }
            }
        }
    }
    let mut global = GlobalKdTree::from_splits(dims, p, &flat);
    if cfg.gather_rank_bboxes {
        let bb = my
            .bounding_box()
            .unwrap_or_else(|| BoundingBox::empty(dims));
        let boxes = comm.world().allgather(vec![bb]);
        global.set_rank_bboxes(boxes.into_iter().map(|mut v| v.remove(0)).collect());
    }
    breakdown.global_tree += comm.now() - t0;

    // ---- local tree ----------------------------------------------------
    // Real execution is rank-sequential; intra-rank threading is charged
    // through the modeled thread pool (see DESIGN.md §2).
    let local_cfg = crate::config::TreeConfig {
        parallel: false,
        ..cfg.local
    };
    let local = LocalKdTree::build(&my, &local_cfg)?;
    let model = local.modeled_build(comm.cost());
    comm.advance_time(model.total());
    breakdown.local_data_parallel = model.data_parallel;
    breakdown.local_thread_parallel = model.thread_parallel;
    breakdown.packing = model.packing;

    Ok(DistKdTree {
        global,
        local,
        points: my,
        breakdown,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_comm::{run_cluster, ClusterConfig};

    fn scatter(ps: &PointSet, rank: usize, p: usize) -> PointSet {
        // round-robin deal so every rank starts with an arbitrary subset
        let mut mine = PointSet::new(ps.dims()).unwrap();
        for i in (rank..ps.len()).step_by(p) {
            mine.push(ps.point(i), ps.id(i));
        }
        mine
    }

    fn random_ps(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut rng = SplitRng::new(seed);
        PointSet::from_coords(
            dims,
            (0..n * dims)
                .map(|_| (rng.next_f64() * 10.0) as f32)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn slot_assignment_covers_and_balances() {
        // total 10 over 3 dests: slots 4/3/3
        assert_eq!(
            slot_assignments(10, 3, 0, 10),
            vec![(0, 0, 4), (1, 4, 3), (2, 7, 3)]
        );
        // a block spanning one boundary
        assert_eq!(slot_assignments(10, 3, 3, 3), vec![(0, 0, 1), (1, 1, 2)]);
        // empty block
        assert!(slot_assignments(10, 3, 5, 0).is_empty());
        // full block to one dest
        assert_eq!(slot_assignments(4, 1, 1, 2), vec![(0, 0, 2)]);
    }

    #[test]
    fn redistribution_conserves_and_balances_points() {
        for p in [2usize, 3, 4, 8] {
            let all = random_ps(4000, 3, 42);
            let cfg = ClusterConfig::new(p);
            let out = run_cluster(&cfg, |comm| {
                let mine = scatter(&all, comm.rank(), comm.size());
                let t = build_distributed(comm, mine, &DistConfig::default()).unwrap();
                (t.points.ids().to_vec(), t.local.len())
            });
            // conservation: exactly the original ids, once each
            let mut ids: Vec<u64> = out.iter().flat_map(|o| o.result.0.clone()).collect();
            ids.sort_unstable();
            assert_eq!(ids.len(), 4000, "p={p}");
            ids.dedup();
            assert_eq!(ids.len(), 4000, "p={p}: duplicated or lost points");
            // balance: within 30% of even (sampled medians are approximate)
            let sizes: Vec<usize> = out.iter().map(|o| o.result.1).collect();
            let even = 4000 / p;
            for s in &sizes {
                assert!(
                    (*s as f64) > 0.6 * even as f64 && (*s as f64) < 1.6 * even as f64,
                    "p={p} sizes={sizes:?}"
                );
            }
        }
    }

    #[test]
    fn cells_partition_space() {
        // every redistributed point must map back to its own rank via the
        // global tree's owner lookup
        let all = random_ps(2000, 3, 7);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let t = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            let mut c = crate::counters::QueryCounters::default();
            let mut wrong = 0usize;
            for i in 0..t.points.len() {
                if t.global.owner(t.points.point(i), &mut c) != comm.rank() {
                    wrong += 1;
                }
            }
            (wrong, t.points.len())
        });
        for o in &out {
            assert_eq!(o.result.0, 0, "rank {} owns foreign points", o.rank);
            assert!(o.result.1 > 0);
        }
    }

    #[test]
    fn single_rank_build_works() {
        let all = random_ps(500, 3, 1);
        let out = run_cluster(&ClusterConfig::new(1), |comm| {
            let t = build_distributed(comm, all.clone(), &DistConfig::default()).unwrap();
            (t.local.len(), t.global.ranks())
        });
        assert_eq!(out[0].result, (500, 1));
    }

    #[test]
    fn identical_points_terminate_with_empty_right_ranks() {
        // 600 identical points scattered across ranks:
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            // re-id so ids stay globally unique after scatter
            let mut mine = PointSet::new(3).unwrap();
            for i in (comm.rank()..600).step_by(comm.size()) {
                mine.push(&[1.0, 2.0, 3.0], i as u64);
            }
            let t = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            t.points.len()
        });
        let total: usize = out.iter().map(|o| o.result).sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn breakdown_phases_are_recorded() {
        let all = random_ps(3000, 3, 9);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = scatter(&all, comm.rank(), comm.size());
            let t = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            t.breakdown
        });
        for o in &out {
            assert!(o.result.global_tree > 0.0);
            assert!(o.result.redistribute > 0.0);
            assert!(o.result.local_thread_parallel > 0.0 || o.result.local_data_parallel > 0.0);
            assert!(o.result.packing > 0.0);
            assert!(o.result.total() > 0.0);
        }
    }

    #[test]
    fn empty_rank_input_is_fine() {
        // all points start on rank 0
        let all = random_ps(1000, 2, 3);
        let out = run_cluster(&ClusterConfig::new(4), |comm| {
            let mine = if comm.rank() == 0 {
                all.clone()
            } else {
                PointSet::new(2).unwrap()
            };
            let t = build_distributed(comm, mine, &DistConfig::default()).unwrap();
            t.points.len()
        });
        let total: usize = out.iter().map(|o| o.result).sum();
        assert_eq!(total, 1000);
        // redistribution must have spread them out
        assert!(
            out.iter().all(|o| o.result > 100),
            "{:?}",
            out.iter().map(|o| o.result).collect::<Vec<_>>()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let all = random_ps(1500, 3, 11);
        let run = || {
            run_cluster(&ClusterConfig::new(4), |comm| {
                let mine = scatter(&all, comm.rank(), comm.size());
                let t = build_distributed(comm, mine, &DistConfig::default()).unwrap();
                let mut ids = t.points.ids().to_vec();
                ids.sort_unstable();
                (ids, comm.now())
            })
            .into_iter()
            .map(|o| o.result)
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
