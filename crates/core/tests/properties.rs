//! Property-based tests on the core data structures, via public API only.

use proptest::prelude::*;

use panda_core::config::HistScan;
use panda_core::hist::SampledHistogram;
use panda_core::partition::{partition_by_count, partition_in_place, partition_stable};
use panda_core::{KnnHeap, PointSet};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The two binning kernels implement the same function, for any
    /// boundaries and probes (duplicates and exact hits included).
    #[test]
    fn hist_scan_equals_binary(
        mut samples in proptest::collection::vec(-1000i32..1000, 0..300),
        probes in proptest::collection::vec(-1100i32..1100, 1..100),
    ) {
        let boundaries: Vec<f32> = samples.drain(..).map(|v| v as f32 * 0.5).collect();
        let h = SampledHistogram::from_samples(boundaries);
        for p in probes {
            let v = p as f32 * 0.5;
            prop_assert_eq!(h.bin_scan(v), h.bin_binary(v), "v={}", v);
        }
    }

    /// Histogram counts partition the input: all bins sum to n, and the
    /// quantile split's `left_count` equals the number of values ≤ split.
    #[test]
    fn hist_counts_partition(
        samples in proptest::collection::vec(-100i32..100, 2..200),
        values in proptest::collection::vec(-120i32..120, 1..300),
        target in 0.05f64..0.95,
    ) {
        let boundaries: Vec<f32> = samples.iter().map(|&v| v as f32).collect();
        let h = SampledHistogram::from_samples(boundaries);
        let vals: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        let counts = h.count(vals.iter().copied(), HistScan::SubInterval);
        prop_assert_eq!(counts.iter().sum::<u64>(), vals.len() as u64);
        let d = h.split_at_quantile(&counts, target);
        let exact = vals.iter().filter(|&&v| v <= d.value).count() as u64;
        prop_assert_eq!(d.left_count, exact);
        prop_assert_eq!(d.total, vals.len() as u64);
        prop_assert_eq!(d.degenerate, d.left_count == 0 || d.left_count == d.total);
    }

    /// Partition routines agree on the boundary, preserve the index
    /// permutation, and satisfy the predicate on both sides.
    #[test]
    fn partitions_agree_and_are_valid(
        values in proptest::collection::vec(-50i32..50, 1..300),
        split in -60i32..60,
    ) {
        let coords: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        let ps = PointSet::from_coords(1, coords).unwrap();
        let split = split as f32;
        let n = ps.len();
        let mut a: Vec<u32> = (0..n as u32).collect();
        let mut b = a.clone();
        let mut scratch = Vec::new();
        let la = partition_in_place(&ps, &mut a, 0, split);
        let lb = partition_stable(&ps, &mut b, 0, split, &mut scratch);
        prop_assert_eq!(la, lb);
        for (pos, &i) in a.iter().enumerate() {
            let v = ps.coord(i as usize, 0);
            prop_assert_eq!(pos < la, v <= split);
        }
        let mut sorted = a.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }

    /// Exact-median selection: position `mid` splits by (value, id) order.
    #[test]
    fn median_select_orders_sides(
        values in proptest::collection::vec(-20i32..20, 2..200),
    ) {
        let coords: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        let ps = PointSet::from_coords(1, coords).unwrap();
        let n = ps.len();
        let mid = n / 2;
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let v = partition_by_count(&ps, &mut idx, 0, mid);
        for &i in &idx[..mid] {
            prop_assert!(ps.coord(i as usize, 0) <= v);
        }
        for &i in &idx[mid..] {
            prop_assert!(ps.coord(i as usize, 0) >= v);
        }
    }

    /// KnnHeap equals a sort-based top-k with strict-< semantics, for any
    /// stream (duplicates included), any k, any initial radius.
    #[test]
    fn heap_equals_sorted_topk(
        dists in proptest::collection::vec(0u32..50, 1..200),
        k in 1usize..20,
        radius_sq in prop::option::of(1u32..40),
    ) {
        let r_sq = radius_sq.map(|r| r as f32).unwrap_or(f32::INFINITY);
        let mut heap = KnnHeap::with_radius_sq(k, r_sq);
        for (id, &d) in dists.iter().enumerate() {
            heap.offer(d as f32, id as u64);
        }
        let got: Vec<f32> = heap.into_sorted().iter().map(|n| n.dist_sq).collect();
        // reference: values strictly below the radius, k smallest
        let mut reference: Vec<f32> =
            dists.iter().map(|&d| d as f32).filter(|&d| d < r_sq).collect();
        reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
        reference.truncate(k);
        prop_assert_eq!(got, reference);
    }

    /// Bounding boxes: min_dist_sq is 0 inside, positive outside, and
    /// never exceeds the true distance to any contained point.
    #[test]
    fn bbox_lower_bound_law(
        pts in proptest::collection::vec((-50i32..50, -50i32..50), 1..60),
        q in (-80i32..80, -80i32..80),
    ) {
        let mut coords = Vec::new();
        for (x, y) in &pts {
            coords.push(*x as f32);
            coords.push(*y as f32);
        }
        let ps = PointSet::from_coords(2, coords).unwrap();
        let bb = ps.bounding_box().unwrap();
        let q = [q.0 as f32, q.1 as f32];
        let lb = bb.min_dist_sq(&q);
        for i in 0..ps.len() {
            prop_assert!(lb <= ps.dist_sq_to(&q, i) + 1e-3);
        }
        if bb.contains(&q) {
            prop_assert_eq!(lb, 0.0);
        }
    }
}
