//! Property-based tests on the core data structures, via public API only.

use proptest::prelude::*;

use panda_core::config::HistScan;
use panda_core::engine::{NeighborTable, QueryRequest};
use panda_core::hist::SampledHistogram;
use panda_core::knn::KnnIndex;
use panda_core::local_tree::{PackedLeaves, LANE};
use panda_core::partition::{partition_by_count, partition_in_place, partition_stable};
use panda_core::{KnnHeap, Neighbor, PointSet, TreeConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The two binning kernels implement the same function, for any
    /// boundaries and probes (duplicates and exact hits included).
    #[test]
    fn hist_scan_equals_binary(
        mut samples in proptest::collection::vec(-1000i32..1000, 0..300),
        probes in proptest::collection::vec(-1100i32..1100, 1..100),
    ) {
        let boundaries: Vec<f32> = samples.drain(..).map(|v| v as f32 * 0.5).collect();
        let h = SampledHistogram::from_samples(boundaries);
        for p in probes {
            let v = p as f32 * 0.5;
            prop_assert_eq!(h.bin_scan(v), h.bin_binary(v), "v={}", v);
        }
    }

    /// Histogram counts partition the input: all bins sum to n, and the
    /// quantile split's `left_count` equals the number of values ≤ split.
    #[test]
    fn hist_counts_partition(
        samples in proptest::collection::vec(-100i32..100, 2..200),
        values in proptest::collection::vec(-120i32..120, 1..300),
        target in 0.05f64..0.95,
    ) {
        let boundaries: Vec<f32> = samples.iter().map(|&v| v as f32).collect();
        let h = SampledHistogram::from_samples(boundaries);
        let vals: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        let counts = h.count(vals.iter().copied(), HistScan::SubInterval);
        prop_assert_eq!(counts.iter().sum::<u64>(), vals.len() as u64);
        let d = h.split_at_quantile(&counts, target);
        let exact = vals.iter().filter(|&&v| v <= d.value).count() as u64;
        prop_assert_eq!(d.left_count, exact);
        prop_assert_eq!(d.total, vals.len() as u64);
        prop_assert_eq!(d.degenerate, d.left_count == 0 || d.left_count == d.total);
    }

    /// Partition routines agree on the boundary, preserve the index
    /// permutation, and satisfy the predicate on both sides.
    #[test]
    fn partitions_agree_and_are_valid(
        values in proptest::collection::vec(-50i32..50, 1..300),
        split in -60i32..60,
    ) {
        let coords: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        let ps = PointSet::from_coords(1, coords).unwrap();
        let split = split as f32;
        let n = ps.len();
        let mut a: Vec<u32> = (0..n as u32).collect();
        let mut b = a.clone();
        let mut scratch = Vec::new();
        let la = partition_in_place(&ps, &mut a, 0, split);
        let lb = partition_stable(&ps, &mut b, 0, split, &mut scratch);
        prop_assert_eq!(la, lb);
        for (pos, &i) in a.iter().enumerate() {
            let v = ps.coord(i as usize, 0);
            prop_assert_eq!(pos < la, v <= split);
        }
        let mut sorted = a.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }

    /// Exact-median selection: position `mid` splits by (value, id) order.
    #[test]
    fn median_select_orders_sides(
        values in proptest::collection::vec(-20i32..20, 2..200),
    ) {
        let coords: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        let ps = PointSet::from_coords(1, coords).unwrap();
        let n = ps.len();
        let mid = n / 2;
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let v = partition_by_count(&ps, &mut idx, 0, mid);
        for &i in &idx[..mid] {
            prop_assert!(ps.coord(i as usize, 0) <= v);
        }
        for &i in &idx[mid..] {
            prop_assert!(ps.coord(i as usize, 0) >= v);
        }
    }

    /// KnnHeap equals a sort-based top-k with strict-< semantics, for any
    /// stream (duplicates included), any k, any initial radius.
    #[test]
    fn heap_equals_sorted_topk(
        dists in proptest::collection::vec(0u32..50, 1..200),
        k in 1usize..20,
        radius_sq in prop::option::of(1u32..40),
    ) {
        let r_sq = radius_sq.map(|r| r as f32).unwrap_or(f32::INFINITY);
        let mut heap = KnnHeap::with_radius_sq(k, r_sq);
        for (id, &d) in dists.iter().enumerate() {
            heap.offer(d as f32, id as u64);
        }
        let got: Vec<f32> = heap.into_sorted().iter().map(|n| n.dist_sq).collect();
        // reference: values strictly below the radius, k smallest
        let mut reference: Vec<f32> =
            dists.iter().map(|&d| d as f32).filter(|&d| d < r_sq).collect();
        reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
        reference.truncate(k);
        prop_assert_eq!(got, reference);
    }

    /// The fused scan-and-offer kernel (both the runtime-dispatched and
    /// the forced-portable paths) returns exactly the same neighbor sets
    /// as the scalar reference (`distances()` + offer loop) for every
    /// dimensionality 1..=16, padded and unpadded bucket sizes, k ∈
    /// {1, 8, 64}, and queries far outside the data domain — i.e. no
    /// FP-reassociation regressions in result sets, bit for bit.
    #[test]
    fn fused_kernel_equals_scalar_reference(
        dims in 1usize..=16,
        // n % LANE == 0 (unpadded) and n % LANE != 0 (padded) both occur
        n in 1usize..=96,
        grid in proptest::collection::vec(-40i32..40, 96 * 16),
        qsel in 0usize..3,
        qseed in 0u64..1000,
    ) {
        let mut pl = PackedLeaves::new(dims);
        let coord = |i: usize, d: usize| grid[(i * dims + d) % grid.len()] as f32 * 0.25;
        let base = pl.push_leaf(n, coord, |i| i as u64) as usize;
        let cap = n.div_ceil(LANE) * LANE;

        // near query / lattice query / far-outside query
        let q: Vec<f32> = match qsel {
            0 => (0..dims).map(|d| coord(qseed as usize % n, d)).collect(),
            1 => (0..dims).map(|d| ((qseed + d as u64) % 19) as f32 - 9.0).collect(),
            _ => (0..dims).map(|d| 1.0e5 + (qseed + d as u64) as f32).collect(),
        };

        for k in [1usize, 8, 64] {
            let mut h_ref = KnnHeap::new(k);
            let mut h_auto = KnnHeap::new(k);
            let mut h_port = KnnHeap::new(k);

            // scalar reference: two-pass distances + offer loop
            let mut dists = Vec::new();
            pl.distances(base, cap, &q, &mut dists);
            let mut accepted_ref = 0u32;
            for (i, &d) in dists.iter().enumerate() {
                if d < h_ref.bound_sq() && h_ref.offer(d, pl.ids()[base + i]) {
                    accepted_ref += 1;
                }
            }

            let s_auto = pl.scan_and_offer(base, cap, &q, &mut h_auto);
            let s_port = pl.scan_portable(base, cap, &q, &mut h_port);
            prop_assert_eq!(s_auto.accepted, accepted_ref);
            prop_assert_eq!(s_port.accepted, accepted_ref);

            let r: Vec<(f32, u64)> =
                h_ref.into_sorted().iter().map(|x| (x.dist_sq, x.id)).collect();
            let a: Vec<(f32, u64)> =
                h_auto.into_sorted().iter().map(|x| (x.dist_sq, x.id)).collect();
            let p: Vec<(f32, u64)> =
                h_port.into_sorted().iter().map(|x| (x.dist_sq, x.id)).collect();
            prop_assert_eq!(&r, &a, "auto path dims={} n={} k={}", dims, n, k);
            prop_assert_eq!(&r, &p, "portable path dims={} n={} k={}", dims, n, k);
        }
    }

    /// Bounding boxes: min_dist_sq is 0 inside, positive outside, and
    /// never exceeds the true distance to any contained point.
    #[test]
    fn bbox_lower_bound_law(
        pts in proptest::collection::vec((-50i32..50, -50i32..50), 1..60),
        q in (-80i32..80, -80i32..80),
    ) {
        let mut coords = Vec::new();
        for (x, y) in &pts {
            coords.push(*x as f32);
            coords.push(*y as f32);
        }
        let ps = PointSet::from_coords(2, coords).unwrap();
        let bb = ps.bounding_box().unwrap();
        let q = [q.0 as f32, q.1 as f32];
        let lb = bb.min_dist_sq(&q);
        for i in 0..ps.len() {
            prop_assert!(lb <= ps.dist_sq_to(&q, i) + 1e-3);
        }
        if bb.contains(&q) {
            prop_assert_eq!(lb, 0.0);
        }
    }
}

/// Random point set on a coarse lattice (duplicates are the hard case).
fn lattice_points(max_n: usize, max_dims: usize) -> impl Strategy<Value = PointSet> {
    (1..=max_dims, 1..=max_n).prop_flat_map(move |(dims, n)| {
        proptest::collection::vec(-8i32..8, n * dims).prop_map(move |grid| {
            let coords: Vec<f32> = grid.iter().map(|&g| g as f32 * 0.25).collect();
            PointSet::from_coords(dims, coords).expect("valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// CSR `NeighborTable` structural invariants, and bit-for-bit
    /// agreement between the batched session path and the single-query
    /// reference path, for arbitrary data, k, radius, and parallelism.
    #[test]
    fn csr_table_matches_single_query_path(
        ps in lattice_points(250, 4),
        k in 1usize..10,
        radius in proptest::option::of(0.1f32..4.0),
        parallel in proptest::sample::select(vec![false, true]),
        qseed in 0u64..500,
    ) {
        let idx = KnnIndex::build(&ps, &TreeConfig::default().with_threads(2)).unwrap();
        let dims = ps.dims();
        let mut queries = PointSet::new(dims).unwrap();
        queries.push(ps.point((qseed as usize) % ps.len()), 0);
        queries.push(
            &(0..dims).map(|d| ((qseed + d as u64) % 7) as f32 - 3.0).collect::<Vec<_>>(),
            1,
        );
        queries.push(&vec![50.0; dims], 2);

        let mut req = QueryRequest::knn(&queries, k).with_parallel(parallel);
        if let Some(r) = radius {
            req = req.with_radius(r);
        }
        let res = idx.query_session(&req).unwrap();
        let table = &res.neighbors;

        // --- structural invariants -----------------------------------
        prop_assert_eq!(table.len(), queries.len());
        let offs = table.offsets();
        prop_assert_eq!(offs.len(), table.len() + 1);
        prop_assert_eq!(offs[0], 0);
        prop_assert!(offs.windows(2).all(|w| w[0] <= w[1]), "offsets monotone");
        prop_assert_eq!(*offs.last().unwrap() as usize, table.arena().len());
        prop_assert_eq!(table.total_neighbors(), table.arena().len());
        // a rebuilt table from the raw parts must validate
        prop_assert!(
            NeighborTable::from_parts(offs.to_vec(), table.arena().to_vec()).is_ok()
        );

        // --- bit-for-bit vs the single-query reference path ----------
        if radius.is_none() {
            let nested: Vec<Vec<Neighbor>> = (0..queries.len())
                .map(|i| idx.query(queries.point(i), k).unwrap())
                .collect();
            prop_assert_eq!(table.to_nested(), nested.clone(), "CSR rows == single-query rows");
            // per-row slice accessors agree with the reference rows
            for (i, row) in nested.iter().enumerate() {
                prop_assert_eq!(table.row(i), row.as_slice());
                prop_assert_eq!(table.get(i).unwrap(), row.as_slice());
                prop_assert_eq!(&table[i], row.as_slice());
            }
            prop_assert!(table.get(table.len()).is_none());
        } else {
            // radius rows: ascending, strictly inside r², per-query match
            let r_sq = radius.unwrap() * radius.unwrap();
            for (i, row) in table.iter().enumerate() {
                prop_assert!(row.iter().all(|n| n.dist_sq < r_sq));
                let single = idx
                    .query_radius(queries.point(i), k, radius.unwrap())
                    .unwrap();
                prop_assert_eq!(row, single.as_slice());
            }
        }

        // iterator and rows agree
        let iter_rows: Vec<&[Neighbor]> = table.iter().collect();
        prop_assert_eq!(iter_rows.len(), table.len());
        for (i, row) in iter_rows.iter().enumerate() {
            prop_assert_eq!(*row, table.row(i));
        }
    }
}
