//! Retry policy for fallible exchanges.
//!
//! A stalled peer and a dead peer look identical from one receive: the
//! timeout fires. The difference is what happens on the *next* attempt —
//! a straggler's message eventually arrives, a dead rank's never does. A
//! [`RetryPolicy`] encodes that distinction as bounded receive attempts
//! with deterministic jittered exponential backoff between them, so the
//! fallible collectives ([`crate::Group::try_alltoallv`]) mask transient
//! stalls and surface hard failures as [`crate::CommError::Timeout`].

use std::time::Duration;

/// Bounded-attempt retry schedule with deterministic jittered backoff.
///
/// Attempt `i` (1-based) waits the communicator's `recv_timeout`; between
/// attempts the receiver sleeps `min(base_backoff · 2^(i-1), max_backoff)`
/// scaled by a jitter factor in `[0.5, 1.0)` derived from `jitter_seed`
/// and the attempt counter — deterministic for a given seed, so simulated
/// runs stay reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total receive attempts before a [`crate::CommError::Timeout`]
    /// surfaces (≥ 1; 1 disables retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling (pre-jitter).
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, then the typed error.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Set the attempt bound (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Set the base (first) backoff; later backoffs double from it.
    #[must_use]
    pub fn with_base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Set the backoff ceiling.
    #[must_use]
    pub fn with_max_backoff(mut self, max: Duration) -> Self {
        self.max_backoff = max;
        self
    }

    /// Set the jitter seed (runs with equal seeds back off identically).
    #[must_use]
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The sleep before retry number `attempt` (1 = the first *re*try),
    /// salted by `salt` (callers pass e.g. the waiting rank) so
    /// co-waiting ranks don't thunder in lockstep.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        // splitmix64 over (seed, attempt, salt): jitter factor in [0.5, 1.0)
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add(salt.wrapping_mul(0xbf58476d1ce4e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let frac = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        raw.mul_f64(frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 1..=10 {
            let a = p.backoff(attempt, 3);
            let b = p.backoff(attempt, 3);
            assert_eq!(a, b, "same inputs, same backoff");
            assert!(a <= p.max_backoff, "capped at max_backoff");
        }
        // jitter keeps at least half the nominal delay
        assert!(p.backoff(1, 0) >= p.base_backoff / 2);
    }

    #[test]
    fn backoff_grows_then_saturates() {
        let p = RetryPolicy::default()
            .with_base_backoff(Duration::from_millis(1))
            .with_max_backoff(Duration::from_millis(8));
        // pre-jitter schedule: 1, 2, 4, 8, 8, ... — compare upper bounds
        assert!(p.backoff(1, 0) <= Duration::from_millis(1));
        assert!(p.backoff(4, 0) <= Duration::from_millis(8));
        assert!(p.backoff(9, 0) <= Duration::from_millis(8));
    }

    #[test]
    fn salt_desynchronizes_ranks() {
        let p = RetryPolicy::default();
        assert_ne!(p.backoff(1, 0), p.backoff(1, 1));
    }

    #[test]
    fn builders_and_clamps() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(RetryPolicy::default().with_max_attempts(0).max_attempts, 1);
        let p = RetryPolicy::default()
            .with_jitter_seed(7)
            .with_base_backoff(Duration::from_micros(100))
            .with_max_backoff(Duration::from_millis(1));
        assert_eq!(p.jitter_seed, 7);
        assert!(p.backoff(1, 0) <= Duration::from_micros(100));
    }
}
