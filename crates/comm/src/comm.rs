//! The per-rank communicator handle.
//!
//! A [`Comm`] is handed to each rank closure by [`crate::run_cluster`]. It
//! provides point-to-point messaging, access to collectives (through
//! [`Comm::world`] / [`Comm::group`]), and — because this is a simulator —
//! the *work accounting* interface ([`Comm::work_parallel`],
//! [`Comm::work_serial`]) through which the algorithm charges counted
//! compute to its virtual clock.

use std::collections::HashMap;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::clock::{ClockSummary, VirtualClock};
use crate::cost::CostModel;
use crate::error::CommError;
use crate::group::Group;
use crate::mailbox::{Envelope, PendingStore};
use crate::retry::RetryPolicy;
use crate::stats::CommStats;

/// Message tag. The top bit is reserved for collective traffic; user tags
/// must stay below [`Comm::MAX_USER_TAG`].
pub type Tag = u64;

/// The communicator handle owned by one rank for the duration of a cluster
/// run. Not `Clone`: exactly one per rank, mirroring rank-private MPI state.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    pending: PendingStore,
    pub(crate) clock: VirtualClock,
    pub(crate) cost: CostModel,
    pub(crate) stats: CommStats,
    pub(crate) coll_seq: HashMap<(usize, usize), u64>,
    pub(crate) coll_seq_base: u64,
    timeout: Duration,
    retry: RetryPolicy,
}

impl Comm {
    /// Largest tag available to user point-to-point traffic.
    pub const MAX_USER_TAG: Tag = (1 << 62) - 1;

    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Envelope>>,
        inbox: Receiver<Envelope>,
        cost: CostModel,
        timeout: Duration,
        retry: RetryPolicy,
    ) -> Self {
        Self {
            rank,
            size,
            senders,
            inbox,
            pending: PendingStore::new(),
            clock: VirtualClock::new(),
            cost,
            stats: CommStats::new(),
            coll_seq: HashMap::new(),
            coll_seq_base: 0,
            timeout,
            retry,
        }
    }

    /// This rank's index in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model the cluster was configured with.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Snapshot of this rank's virtual clock.
    pub fn clock(&self) -> ClockSummary {
        self.clock.summary()
    }

    /// Snapshot of this rank's communication counters.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// The per-attempt blocking-receive timeout this rank was configured
    /// with (see [`crate::ClusterConfig::with_timeout`]).
    #[inline]
    pub fn recv_timeout(&self) -> Duration {
        self.timeout
    }

    /// The retry policy applied by the fallible collectives (see
    /// [`crate::ClusterConfig::with_retry`]).
    #[inline]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Number of messages parked in this rank's pending store (arrived but
    /// not yet matched by a receive). Useful for asserting that an aborted
    /// exchange did not leak mailbox state.
    pub fn pending_messages(&mut self) -> usize {
        self.drain_inbox();
        self.pending.len()
    }

    /// Abandon all in-flight exchange state after a failed collective.
    ///
    /// An aborted collective leaves ranks with diverged collective
    /// sequence numbers and possibly-parked stale envelopes; reusing the
    /// communicator would cross-match old traffic with new. `quiesce`
    /// drains and discards everything parked or queued, then jumps every
    /// group's collective sequence into a fresh tag region derived from
    /// `epoch` — call it **on every rank with the same epoch** (e.g. a
    /// count of recovery rounds) before issuing new collectives.
    pub fn quiesce(&mut self, epoch: u64) {
        self.drain_inbox();
        self.pending.clear();
        self.coll_seq.clear();
        // 27-bit seq space; reserve a 2^20-wide region per epoch (epochs
        // cycle mod 128, far beyond any realistic recovery count).
        self.coll_seq_base = (epoch & 0x7f) << 20;
    }

    // ------------------------------------------------------------------
    // Work accounting
    // ------------------------------------------------------------------

    /// Charge a parallel compute section: `cpu_seconds` of single-thread
    /// work plus `mem_bytes` streamed from memory, executed by the modeled
    /// per-rank thread pool (see [`crate::ThreadModel`]).
    #[inline]
    pub fn work_parallel(&mut self, cpu_seconds: f64, mem_bytes: f64) {
        let dt = self.cost.thread.parallel_time(cpu_seconds, mem_bytes);
        self.clock.advance_compute(dt);
    }

    /// Charge a serial compute section (runs on one thread regardless of
    /// the modeled pool).
    #[inline]
    pub fn work_serial(&mut self, cpu_seconds: f64) {
        self.clock.advance_compute(cpu_seconds);
    }

    /// Charge a pre-computed wall-time duration (used when the caller has
    /// already applied its own schedule, e.g. LPT over subtree builds).
    #[inline]
    pub fn advance_time(&mut self, seconds: f64) {
        self.clock.advance_compute(seconds);
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send a vector payload to `dst` with `tag`. Never blocks (unbounded
    /// mailboxes). Panics if `dst` is out of range, the tag intrudes on the
    /// collective tag space, or the destination rank has died.
    pub fn send_vec<T: Send + 'static>(&mut self, dst: usize, tag: Tag, data: Vec<T>) {
        assert!(
            tag <= Self::MAX_USER_TAG,
            "tag {tag:#x} is reserved for collectives"
        );
        let bytes = (std::mem::size_of::<T>() * data.len()) as u64;
        self.post(dst, tag, bytes, Box::new(data));
        self.stats.sent_msgs += 1;
        self.stats.sent_bytes += bytes;
        self.clock.advance_comm(self.cost.net.send_overhead);
    }

    /// Blocking receive of a vector payload from `src` with `tag`.
    /// Synchronizes the virtual clock to the modeled arrival time.
    ///
    /// # Panics
    /// On payload type mismatch (SPMD programming error) or timeout
    /// (deadlock) — mirroring an MPI abort.
    pub fn recv_vec<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> Vec<T> {
        assert!(
            tag <= Self::MAX_USER_TAG,
            "tag {tag:#x} is reserved for collectives"
        );
        let env = self.recv_env(src, tag);
        self.finish_p2p_recv(env)
    }

    /// Non-blocking receive from `src`: returns `None` if no matching
    /// message has arrived yet. Does not advance the clock on `None`
    /// (polling is free in virtual time; real pipelines poll too).
    pub fn try_recv_vec<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> Option<Vec<T>> {
        self.drain_inbox();
        let env = self.pending.pop(src, tag)?;
        Some(self.finish_p2p_recv(env))
    }

    /// Non-blocking receive of a matching message from *any* source.
    /// Returns `(src, payload)`.
    pub fn try_recv_any<T: Send + 'static>(&mut self, tag: Tag) -> Option<(usize, Vec<T>)> {
        self.drain_inbox();
        let env = self.pending.pop_any(tag)?;
        let src = env.src;
        Some((src, self.finish_p2p_recv(env)))
    }

    /// Sub-communicator over world ranks `lo..hi` (this rank must belong).
    /// Collectives run relative to the group.
    pub fn group(&mut self, lo: usize, hi: usize) -> Group<'_> {
        Group::new(self, lo, hi)
    }

    /// The whole-cluster group.
    pub fn world(&mut self) -> Group<'_> {
        let size = self.size;
        Group::new(self, 0, size)
    }

    // ------------------------------------------------------------------
    // Convenience world-level collectives (thin wrappers)
    // ------------------------------------------------------------------

    /// World barrier.
    pub fn barrier(&mut self) {
        self.world().barrier();
    }

    /// World all-reduce sum of one `u64`.
    pub fn allreduce_sum(&mut self, v: u64) -> u64 {
        self.world()
            .allreduce_u64(v, crate::collectives::ReduceOp::Sum)
    }

    // ------------------------------------------------------------------
    // Internals shared with `collectives`
    // ------------------------------------------------------------------

    pub(crate) fn post(
        &mut self,
        dst: usize,
        tag: Tag,
        bytes: u64,
        payload: Box<dyn std::any::Any + Send>,
    ) {
        assert!(
            dst < self.size,
            "destination rank {dst} out of range (size {})",
            self.size
        );
        let env = Envelope {
            src: self.rank,
            tag,
            vtime: self.clock.now(),
            bytes,
            payload,
        };
        if self.senders[dst].send(env).is_err() {
            panic!(
                "rank {}: send to rank {dst} failed — peer has shut down",
                self.rank
            );
        }
    }

    /// Blocking envelope receive with no clock side effects (collectives
    /// apply their own timing model).
    ///
    /// # Panics
    /// On timeout or peer death — the infallible collectives mirror an MPI
    /// abort. The fallible paths use [`Comm::try_recv_env_retry`] instead.
    pub(crate) fn recv_env(&mut self, src: usize, tag: Tag) -> Envelope {
        match self.try_recv_env_once(src, tag) {
            Ok(env) => env,
            Err(CommError::Timeout { .. }) => panic!(
                "rank {}: receive from rank {src} (tag {tag:#x}) timed out after {:?} — \
                 likely deadlock ({} messages parked)",
                self.rank,
                self.timeout,
                self.pending.len(),
            ),
            Err(e) => panic!("{e}"),
        }
    }

    /// One bounded receive attempt: wait up to the configured timeout for
    /// a matching envelope, parking non-matching arrivals. No clock side
    /// effects, no panic — timeout and peer death come back typed.
    pub(crate) fn try_recv_env_once(&mut self, src: usize, tag: Tag) -> crate::Result<Envelope> {
        if let Some(env) = self.pending.pop(src, tag) {
            return Ok(env);
        }
        loop {
            match self.inbox.recv_timeout(self.timeout) {
                Ok(env) => {
                    if env.src == src && env.tag == tag {
                        return Ok(env);
                    }
                    self.pending.push(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::Timeout {
                        rank: self.rank,
                        src,
                        tag,
                        attempts: 1,
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerFailure(format!(
                        "rank {}: all peers disconnected while waiting for rank {src}",
                        self.rank
                    )))
                }
            }
        }
    }

    /// Bounded-retry envelope receive: applies the configured
    /// [`RetryPolicy`] on timeout (counted in `stats.recv_retries`,
    /// jittered backoff between attempts) before surfacing
    /// [`CommError::Timeout`] with the attempt total.
    pub(crate) fn try_recv_env_retry(&mut self, src: usize, tag: Tag) -> crate::Result<Envelope> {
        let max = self.retry.max_attempts.max(1);
        let mut attempt = 1u32;
        loop {
            match self.try_recv_env_once(src, tag) {
                Ok(env) => return Ok(env),
                Err(CommError::Timeout { .. }) if attempt < max => {
                    self.stats.recv_retries += 1;
                    std::thread::sleep(self.retry.backoff(attempt, self.rank as u64));
                    attempt += 1;
                }
                Err(CommError::Timeout { rank, src, tag, .. }) => {
                    return Err(CommError::Timeout {
                        rank,
                        src,
                        tag,
                        attempts: attempt,
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn drain_inbox(&mut self) {
        while let Ok(env) = self.inbox.try_recv() {
            self.pending.push(env);
        }
    }

    fn finish_p2p_recv<T: Send + 'static>(&mut self, env: Envelope) -> Vec<T> {
        let arrival = env.vtime + self.cost.net.p2p(env.bytes);
        self.clock.sync_to(arrival);
        self.stats.recv_msgs += 1;
        self.stats.recv_bytes += env.bytes;
        let src = env.src;
        let tag = env.tag;
        match env.payload.downcast::<Vec<T>>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "rank {}: message from rank {src} (tag {tag:#x}) had unexpected payload type \
                 (expected Vec<{}>)",
                self.rank,
                std::any::type_name::<T>()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{run_cluster, ClusterConfig};

    #[test]
    fn ring_send_recv() {
        let cfg = ClusterConfig::new(4);
        let out = run_cluster(&cfg, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send_vec(next, 1, vec![c.rank() as u32]);
            let got = c.recv_vec::<u32>(prev, 1);
            got[0]
        });
        for o in &out {
            assert_eq!(o.result as usize, (o.rank + out.len() - 1) % out.len());
        }
    }

    #[test]
    fn recv_synchronizes_virtual_clock() {
        let cfg = ClusterConfig::new(2);
        let out = run_cluster(&cfg, |c| {
            if c.rank() == 0 {
                c.work_serial(1.0); // rank 0 computes for 1 virtual second
                c.send_vec(1, 3, vec![0u8; 100]);
            } else {
                let _ = c.recv_vec::<u8>(0, 3);
            }
            c.now()
        });
        // Rank 1 must have been dragged past rank 0's send time.
        assert!(out[1].result > 1.0, "rank1 time {}", out[1].result);
        assert!(out[1].clock.wait > 0.9);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let cfg = ClusterConfig::new(2);
        let out = run_cluster(&cfg, |c| {
            if c.rank() == 0 {
                c.send_vec(1, 10, vec![1u32]);
                c.send_vec(1, 20, vec![2u32]);
                0
            } else {
                // receive in the opposite order of sending
                let b = c.recv_vec::<u32>(0, 20);
                let a = c.recv_vec::<u32>(0, 10);
                (a[0] * 10 + b[0]) as i32
            }
        });
        assert_eq!(out[1].result, 12);
    }

    #[test]
    fn try_recv_returns_none_before_arrival() {
        let cfg = ClusterConfig::new(2);
        let out = run_cluster(&cfg, |c| {
            if c.rank() == 0 {
                // Don't send until rank 1 has polled (rendezvous via tag 2).
                let _ = c.recv_vec::<u8>(1, 2);
                c.send_vec(1, 1, vec![42u8]);
                true
            } else {
                let early = c.try_recv_vec::<u8>(0, 1).is_none();
                c.send_vec(0, 2, Vec::<u8>::new());
                // spin until the message shows up
                let mut got = None;
                while got.is_none() {
                    got = c.try_recv_vec::<u8>(0, 1);
                    std::thread::yield_now();
                }
                early && got.unwrap() == vec![42]
            }
        });
        assert!(out[0].result && out[1].result);
    }

    #[test]
    fn try_recv_any_reports_source() {
        let cfg = ClusterConfig::new(3);
        let out = run_cluster(&cfg, |c| {
            if c.rank() == 0 {
                let mut seen = Vec::new();
                while seen.len() < 2 {
                    if let Some((src, v)) = c.try_recv_any::<u32>(5) {
                        seen.push((src, v[0]));
                    } else {
                        std::thread::yield_now();
                    }
                }
                seen.sort();
                assert_eq!(seen, vec![(1, 100), (2, 200)]);
                true
            } else {
                c.send_vec(0, 5, vec![c.rank() as u32 * 100]);
                true
            }
        });
        assert!(out.iter().all(|o| o.result));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let cfg = ClusterConfig::new(2);
        let out = run_cluster(&cfg, |c| {
            if c.rank() == 0 {
                c.send_vec(1, 1, vec![0u64; 10]); // 80 bytes
            } else {
                let _ = c.recv_vec::<u64>(0, 1);
            }
            c.stats()
        });
        assert_eq!(out[0].stats.sent_msgs, 1);
        assert_eq!(out[0].stats.sent_bytes, 80);
        assert_eq!(out[1].stats.recv_msgs, 1);
        assert_eq!(out[1].stats.recv_bytes, 80);
    }

    #[test]
    #[should_panic(expected = "reserved for collectives")]
    fn reserved_tags_rejected() {
        let cfg = ClusterConfig::new(1);
        run_cluster(&cfg, |c| {
            c.send_vec(0, u64::MAX, vec![0u8]);
        });
    }

    #[test]
    fn work_accounting_feeds_clock() {
        let cfg = ClusterConfig::new(1);
        let out = run_cluster(&cfg, |c| {
            c.work_serial(2.0);
            c.work_parallel(24.0, 0.0); // ≈1s at 24-way Amdahl on Edison profile
            c.now()
        });
        let t = out[0].result;
        assert!(t > 3.0 && t < 3.5, "virtual time {t}");
        assert!(out[0].clock.compute == t);
    }
}
