//! Per-rank virtual time.
//!
//! Each rank advances its own clock: compute sections add modeled compute
//! seconds, message receipt synchronizes the receiver forward to the
//! sender's send time plus transfer cost, and collectives synchronize the
//! whole group. Because every advance is derived from deterministic
//! operation counts, simulated timings are reproducible run-to-run.

/// Immutable snapshot of a rank's virtual clock, returned to the driver
/// when a cluster run finishes (see [`crate::RankOutcome`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClockSummary {
    /// Current virtual time in seconds since the rank started.
    pub now: f64,
    /// Seconds attributed to computation.
    pub compute: f64,
    /// Seconds attributed to communication transfer costs.
    pub comm: f64,
    /// Seconds spent waiting on peers (synchronization skew).
    pub wait: f64,
}

/// A rank-local virtual clock (LogP-style accounting).
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: f64,
    compute: f64,
    comm: f64,
    wait: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time (seconds).
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by `dt` seconds of computation. `dt` must be finite and
    /// non-negative; negative or NaN advances indicate a cost-model bug and
    /// panic in debug builds (clamped to zero in release).
    #[inline]
    pub fn advance_compute(&mut self, dt: f64) {
        debug_assert!(dt.is_finite() && dt >= 0.0, "bad compute advance: {dt}");
        let dt = dt.max(0.0);
        self.now += dt;
        self.compute += dt;
    }

    /// Advance by `dt` seconds of communication (transfer/overhead cost).
    #[inline]
    pub fn advance_comm(&mut self, dt: f64) {
        debug_assert!(dt.is_finite() && dt >= 0.0, "bad comm advance: {dt}");
        let dt = dt.max(0.0);
        self.now += dt;
        self.comm += dt;
    }

    /// Synchronize forward to absolute virtual time `t` (no-op if `t` is in
    /// the past). The skipped interval is accounted as waiting.
    #[inline]
    pub fn sync_to(&mut self, t: f64) {
        if t > self.now {
            self.wait += t - self.now;
            self.now = t;
        }
    }

    /// Snapshot the clock.
    pub fn summary(&self) -> ClockSummary {
        ClockSummary {
            now: self.now,
            compute: self.compute,
            comm: self.comm,
            wait: self.wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.summary(), ClockSummary::default());
    }

    #[test]
    fn compute_and_comm_accumulate_separately() {
        let mut c = VirtualClock::new();
        c.advance_compute(1.5);
        c.advance_comm(0.5);
        c.advance_compute(1.0);
        let s = c.summary();
        assert_eq!(s.now, 3.0);
        assert_eq!(s.compute, 2.5);
        assert_eq!(s.comm, 0.5);
        assert_eq!(s.wait, 0.0);
    }

    #[test]
    fn sync_forward_counts_wait() {
        let mut c = VirtualClock::new();
        c.advance_compute(1.0);
        c.sync_to(4.0);
        let s = c.summary();
        assert_eq!(s.now, 4.0);
        assert_eq!(s.wait, 3.0);
    }

    #[test]
    fn sync_backward_is_noop() {
        let mut c = VirtualClock::new();
        c.advance_compute(5.0);
        c.sync_to(2.0);
        assert_eq!(c.now(), 5.0);
        assert_eq!(c.summary().wait, 0.0);
    }

    #[test]
    fn monotonic_under_any_sequence() {
        let mut c = VirtualClock::new();
        let mut prev = 0.0;
        for i in 0..100 {
            match i % 3 {
                0 => c.advance_compute(0.1),
                1 => c.advance_comm(0.01),
                _ => c.sync_to(prev - 1.0), // backward sync: no-op
            }
            assert!(c.now() >= prev);
            prev = c.now();
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "bad compute advance")]
    fn negative_advance_panics_in_debug() {
        VirtualClock::new().advance_compute(-1.0);
    }
}
