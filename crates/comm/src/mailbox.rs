//! Message envelopes and per-rank pending stores.
//!
//! Every rank owns one unbounded MPSC inbox. Messages that arrive while the
//! rank is waiting for a *different* `(src, tag)` pair are parked in a
//! [`PendingStore`] so that tag matching never loses or reorders messages
//! (FIFO per `(src, tag)` stream, matching MPI's non-overtaking guarantee).

use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// A message in flight: payload plus simulation metadata.
pub(crate) struct Envelope {
    /// World rank of the sender.
    pub src: usize,
    /// User or collective tag.
    pub tag: u64,
    /// Sender's virtual clock when the message was posted.
    pub vtime: f64,
    /// Modeled payload size in bytes.
    pub bytes: u64,
    /// The actual value (moved, not serialized — we are in-process).
    pub payload: Box<dyn Any + Send>,
}

/// Holds messages that arrived before a matching receive was posted.
#[derive(Default)]
pub(crate) struct PendingStore {
    queues: HashMap<(usize, u64), VecDeque<Envelope>>,
    len: usize,
}

impl PendingStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Park an envelope.
    pub fn push(&mut self, env: Envelope) {
        self.queues
            .entry((env.src, env.tag))
            .or_default()
            .push_back(env);
        self.len += 1;
    }

    /// Oldest parked envelope from `src` with `tag`, if any.
    pub fn pop(&mut self, src: usize, tag: u64) -> Option<Envelope> {
        let q = self.queues.get_mut(&(src, tag))?;
        let env = q.pop_front();
        if env.is_some() {
            self.len -= 1;
        }
        if q.is_empty() {
            self.queues.remove(&(src, tag));
        }
        env
    }

    /// Oldest parked envelope with `tag` from *any* source. Scans the key
    /// set — fine because the number of distinct live `(src, tag)` pairs is
    /// small (bounded by ranks × active tags). Picks the lowest source rank
    /// for determinism.
    pub fn pop_any(&mut self, tag: u64) -> Option<Envelope> {
        let src = self
            .queues
            .keys()
            .filter(|(_, t)| *t == tag)
            .map(|(s, _)| *s)
            .min()?;
        self.pop(src, tag)
    }

    /// Number of parked envelopes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Discard every parked envelope (post-abort quiesce).
    pub fn clear(&mut self) {
        self.queues.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: u64, val: u32) -> Envelope {
        Envelope {
            src,
            tag,
            vtime: 0.0,
            bytes: 4,
            payload: Box::new(vec![val]),
        }
    }

    fn val(e: Envelope) -> u32 {
        e.payload.downcast::<Vec<u32>>().unwrap()[0]
    }

    #[test]
    fn fifo_per_stream() {
        let mut p = PendingStore::new();
        p.push(env(1, 7, 10));
        p.push(env(1, 7, 11));
        p.push(env(2, 7, 20));
        assert_eq!(p.len(), 3);
        assert_eq!(val(p.pop(1, 7).unwrap()), 10);
        assert_eq!(val(p.pop(1, 7).unwrap()), 11);
        assert!(p.pop(1, 7).is_none());
        assert_eq!(val(p.pop(2, 7).unwrap()), 20);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn tags_do_not_cross_match() {
        let mut p = PendingStore::new();
        p.push(env(1, 7, 10));
        assert!(p.pop(1, 8).is_none());
        assert!(p.pop(2, 7).is_none());
        assert_eq!(val(p.pop(1, 7).unwrap()), 10);
    }

    #[test]
    fn pop_any_prefers_lowest_source() {
        let mut p = PendingStore::new();
        p.push(env(5, 9, 50));
        p.push(env(2, 9, 20));
        p.push(env(2, 3, 99));
        assert_eq!(val(p.pop_any(9).unwrap()), 20);
        assert_eq!(val(p.pop_any(9).unwrap()), 50);
        assert!(p.pop_any(9).is_none());
        assert_eq!(p.len(), 1); // the tag-3 message is untouched
    }
}
