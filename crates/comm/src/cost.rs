//! Cost model mapping counted work and message bytes to virtual seconds.
//!
//! The simulated cluster executes the real algorithm on real data; only the
//! conversion *(operation counts, bytes) → seconds* is modeled. Three layers:
//!
//! * [`NetworkCosts`] — LogP-style `α + β·bytes` per message, log-tree
//!   collectives (Cray-Aries-shaped defaults).
//! * [`ThreadModel`] — intra-rank thread scaling: Amdahl CPU term plus a
//!   memory-concurrency term that reproduces the paper's observation that
//!   querying is memory-bound (8.8–12.2× on 24 cores, another 1.5–1.7× from
//!   SMT) while construction scales near-linearly (17–20×).
//! * [`ComputeCosts`] — per-operation costs (distance FLOPs, node visits,
//!   histogram binning, partitioning, packing...). Defaults are derived
//!   from microbenchmarks (`panda-bench --bin calibrate`) and scaled per
//!   machine profile.
//!
//! Presets: [`MachineProfile::EdisonNode`] (2×12-core Xeon E5-2695v2,
//! DDR3-1866, Aries), [`MachineProfile::KnlNode`] (68-core Xeon Phi,
//! MCDRAM), [`MachineProfile::Laptop`] (host-calibrated).

/// Per-message/byte network costs (LogP-ish).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkCosts {
    /// One-way message latency in seconds (the LogP `L + 2o` lump).
    pub alpha: f64,
    /// Seconds per byte (inverse injection bandwidth per rank).
    pub beta: f64,
    /// CPU-side overhead charged to the sender per message (LogP `o`).
    pub send_overhead: f64,
}

impl NetworkCosts {
    /// Transfer cost for a single point-to-point message of `bytes`.
    #[inline]
    pub fn p2p(&self, bytes: u64) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Cost of a log-tree collective over `group` ranks moving `bytes`
    /// through the bottleneck rank.
    #[inline]
    pub fn collective(&self, group: usize, bytes: u64) -> f64 {
        let stages = log2_ceil(group.max(1)) as f64;
        self.alpha * stages + self.beta * bytes as f64
    }
}

/// `ceil(log2(n))` for `n ≥ 1`; 0 for `n ≤ 1`.
#[inline]
pub fn log2_ceil(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Intra-rank thread scaling model.
///
/// Two regimes, taking the max:
///
/// * CPU: `cpu_seconds / amdahl_speedup(threads)`;
/// * Memory: `bytes / achieved_bandwidth(threads, smt)` where achieved
///   bandwidth grows linearly with thread count (`bw_per_thread`) up to a
///   concurrency-limited fraction of socket peak — a higher fraction with
///   SMT, which is exactly the effect the paper reports for querying.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThreadModel {
    /// Modeled physical threads per rank.
    pub threads: usize,
    /// Whether SMT (2 logical threads per core) is modeled.
    pub smt: bool,
    /// Amdahl serial fraction for parallelized compute sections.
    pub amdahl_serial: f64,
    /// Memory bandwidth one thread can extract (bytes/s), latency-bound.
    pub bw_per_thread: f64,
    /// Socket peak memory bandwidth (bytes/s).
    pub peak_bw: f64,
    /// Fraction of peak achievable without SMT (outstanding-miss limited).
    pub util_nosmt: f64,
    /// Fraction of peak achievable with SMT.
    pub util_smt: f64,
    /// Per-logical-thread bandwidth scale when SMT siblings share a core.
    pub smt_per_thread_scale: f64,
    /// Small CPU-side speedup from SMT (superscalar slack).
    pub smt_cpu_gain: f64,
}

impl ThreadModel {
    /// Amdahl speedup at `t` threads with this model's serial fraction.
    #[inline]
    pub fn amdahl_speedup(&self, t: usize) -> f64 {
        let t = t.max(1) as f64;
        t / (1.0 + self.amdahl_serial * (t - 1.0))
    }

    /// Achieved memory bandwidth (bytes/s) at the configured thread count.
    pub fn achieved_bandwidth(&self) -> f64 {
        self.achieved_bandwidth_at(self.threads, self.smt)
    }

    /// Achieved memory bandwidth for an explicit `(threads, smt)` point —
    /// used by the single-node scaling benches to sweep thread counts.
    pub fn achieved_bandwidth_at(&self, threads: usize, smt: bool) -> f64 {
        let threads = threads.max(1) as f64;
        let (logical, per_thread, util) = if smt {
            (
                threads * 2.0,
                self.bw_per_thread * self.smt_per_thread_scale,
                self.util_smt,
            )
        } else {
            (threads, self.bw_per_thread, self.util_nosmt)
        };
        (logical * per_thread).min(self.peak_bw * util)
    }

    /// Modeled wall seconds for a parallel section that costs
    /// `cpu_seconds` on one thread and streams `mem_bytes` from memory.
    pub fn parallel_time(&self, cpu_seconds: f64, mem_bytes: f64) -> f64 {
        self.parallel_time_at(cpu_seconds, mem_bytes, self.threads, self.smt)
    }

    /// As [`Self::parallel_time`] for an explicit `(threads, smt)` point.
    pub fn parallel_time_at(
        &self,
        cpu_seconds: f64,
        mem_bytes: f64,
        threads: usize,
        smt: bool,
    ) -> f64 {
        let cpu_gain = if smt { self.smt_cpu_gain } else { 1.0 };
        let t_cpu = cpu_seconds / (self.amdahl_speedup(threads) * cpu_gain);
        let t_mem = mem_bytes / self.achieved_bandwidth_at(threads, smt);
        t_cpu.max(t_mem)
    }
}

/// Per-operation compute costs in seconds (single thread).
///
/// Each field corresponds to one instrumented inner loop of the PANDA
/// algorithm; the algorithm reports *counts* and the model converts them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComputeCosts {
    /// Per (point · dimension) in a packed-bucket distance scan (vectorized).
    pub dist: f64,
    /// Per internal tree node visited during traversal.
    pub node_visit: f64,
    /// Per bounded-heap push/replace.
    pub heap_op: f64,
    /// Per point binned into the sampled histogram via binary search.
    pub hist_binary: f64,
    /// Per point binned via the sub-interval SIMD scan (paper §III-A1).
    pub hist_scan: f64,
    /// Per point compared/moved during an index partition.
    pub partition: f64,
    /// Per coordinate copied during SIMD packing.
    pub pack: f64,
    /// Per (sample · dimension) during variance estimation.
    pub variance: f64,
    /// Per point drawn when sampling.
    pub sample: f64,
    /// Per global-tree level per query during owner lookup.
    pub owner_level: f64,
    /// Per candidate considered during the final top-k merge.
    pub merge: f64,
}

impl ComputeCosts {
    /// Uniformly scale all per-op costs (used to derive slow-core profiles).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            dist: self.dist * factor,
            node_visit: self.node_visit * factor,
            heap_op: self.heap_op * factor,
            hist_binary: self.hist_binary * factor,
            hist_scan: self.hist_scan * factor,
            partition: self.partition * factor,
            pack: self.pack * factor,
            variance: self.variance * factor,
            sample: self.sample * factor,
            owner_level: self.owner_level * factor,
            merge: self.merge * factor,
        }
    }

    /// Baseline per-op costs for a ~2.4 GHz Ivy Bridge core (Edison),
    /// cross-checked against the `calibrate` microbenchmarks.
    pub fn ivy_bridge() -> Self {
        Self {
            dist: 0.35e-9,
            node_visit: 6.0e-9,
            heap_op: 12.0e-9,
            hist_binary: 14.0e-9,
            hist_scan: 8.0e-9,
            partition: 4.0e-9,
            pack: 0.9e-9,
            variance: 1.6e-9,
            sample: 4.0e-9,
            owner_level: 5.0e-9,
            merge: 15.0e-9,
        }
    }
}

/// Named machine presets for the experiments in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineProfile {
    /// Edison Cray XC30 compute node: 2×12-core Xeon E5-2695v2 @2.4 GHz,
    /// 64 GB DDR3-1866, Aries interconnect (§IV-A of the paper).
    EdisonNode,
    /// Intel Xeon Phi (Knights Landing) node: 68 cores @1.4 GHz, MCDRAM
    /// (§V-D of the paper).
    KnlNode,
    /// The host this reproduction runs on (constants refreshed by
    /// `panda-bench --bin calibrate`).
    Laptop,
}

impl MachineProfile {
    /// Build the full cost model for this profile.
    pub fn cost_model(self) -> CostModel {
        match self {
            MachineProfile::EdisonNode => CostModel {
                net: NetworkCosts {
                    alpha: 1.4e-6,
                    beta: 1.0 / 10.0e9,
                    send_overhead: 0.3e-6,
                },
                thread: ThreadModel {
                    threads: 24,
                    smt: false,
                    amdahl_serial: 0.012,
                    bw_per_thread: 4.5e9,
                    peak_bw: 85.0e9,
                    util_nosmt: 0.52,
                    util_smt: 0.78,
                    smt_per_thread_scale: 0.65,
                    smt_cpu_gain: 1.08,
                },
                ops: ComputeCosts::ivy_bridge(),
            },
            MachineProfile::KnlNode => CostModel {
                net: NetworkCosts {
                    alpha: 1.6e-6,
                    beta: 1.0 / 12.0e9,
                    send_overhead: 0.4e-6,
                },
                thread: ThreadModel {
                    threads: 68,
                    smt: true,
                    amdahl_serial: 0.004,
                    // Silvermont-class cores extract little memory-level
                    // parallelism each; even with MCDRAM the *irregular*
                    // access of tree traversal lands well under peak
                    // (calibrated against the paper's Fig. 8(a) KNL
                    // vs Titan Z ratios of 1.7–3.1×).
                    bw_per_thread: 1.4e9,
                    peak_bw: 380.0e9,
                    util_nosmt: 0.22,
                    util_smt: 0.34,
                    smt_per_thread_scale: 0.70,
                    smt_cpu_gain: 1.25,
                },
                // Slower scalar core (~1.4 GHz, in-order-ish front end) but
                // wide AVX-512 vectors: scalar-dominated ops cost ~2.1×,
                // the vector distance kernel is slightly cheaper.
                ops: {
                    let mut c = ComputeCosts::ivy_bridge().scaled(2.1);
                    c.dist = 0.28e-9;
                    c.pack = 0.8e-9;
                    c
                },
            },
            MachineProfile::Laptop => CostModel {
                net: NetworkCosts {
                    alpha: 0.8e-6,
                    beta: 1.0 / 16.0e9,
                    send_overhead: 0.2e-6,
                },
                thread: ThreadModel {
                    threads: 2,
                    smt: false,
                    amdahl_serial: 0.015,
                    bw_per_thread: 6.0e9,
                    peak_bw: 30.0e9,
                    util_nosmt: 0.60,
                    util_smt: 0.80,
                    smt_per_thread_scale: 0.65,
                    smt_cpu_gain: 1.08,
                },
                ops: ComputeCosts::ivy_bridge().scaled(0.8),
            },
        }
    }
}

/// Complete cost model: network + threads + per-op compute costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Network (inter-rank) costs.
    pub net: NetworkCosts,
    /// Intra-rank thread scaling model.
    pub thread: ThreadModel,
    /// Per-operation compute costs.
    pub ops: ComputeCosts,
}

impl Default for CostModel {
    fn default() -> Self {
        MachineProfile::EdisonNode.cost_model()
    }
}

impl CostModel {
    /// Model with a different per-rank thread count (used for sweeps).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.thread.threads = threads.max(1);
        self
    }

    /// Model with SMT toggled.
    pub fn with_smt(mut self, smt: bool) -> Self {
        self.thread.smt = smt;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn p2p_cost_is_affine_in_bytes() {
        let n = NetworkCosts {
            alpha: 1e-6,
            beta: 1e-9,
            send_overhead: 0.0,
        };
        assert!((n.p2p(0) - 1e-6).abs() < 1e-15);
        assert!((n.p2p(1000) - (1e-6 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn collective_cost_grows_logarithmically() {
        let n = NetworkCosts {
            alpha: 1e-6,
            beta: 0.0,
            send_overhead: 0.0,
        };
        assert_eq!(n.collective(1, 0), 0.0);
        assert!((n.collective(8, 0) - 3e-6).abs() < 1e-15);
        assert!(n.collective(1024, 0) > n.collective(8, 0));
    }

    #[test]
    fn edison_construction_scaling_matches_paper_band() {
        // Paper Fig. 6(a): 17–20× construction speedup on 24 cores.
        let m = MachineProfile::EdisonNode.cost_model().thread;
        let s = m.amdahl_speedup(24);
        assert!((17.0..=21.0).contains(&s), "got {s}");
    }

    #[test]
    fn edison_query_scaling_matches_paper_band() {
        // Paper Fig. 6(b): 8.8–12.2× query speedup on 24 cores (memory
        // bound), with a further 1.5–1.7× from SMT on 3-D data.
        let m = MachineProfile::EdisonNode.cost_model().thread;
        // Memory-dominated section: cpu small, bytes large.
        let t1 = m.parallel_time_at(1e-3, 1.0e9, 1, false);
        let t24 = m.parallel_time_at(1e-3, 1.0e9, 24, false);
        let s = t1 / t24;
        assert!((8.0..=13.0).contains(&s), "24-core query speedup {s}");
        let t24smt = m.parallel_time_at(1e-3, 1.0e9, 24, true);
        let g = t24 / t24smt;
        assert!((1.3..=1.8).contains(&g), "SMT gain {g}");
    }

    #[test]
    fn bandwidth_is_monotonic_in_threads() {
        let m = MachineProfile::EdisonNode.cost_model().thread;
        let mut prev = 0.0;
        for t in 1..=24 {
            let bw = m.achieved_bandwidth_at(t, false);
            assert!(bw >= prev);
            prev = bw;
        }
        assert!(prev <= m.peak_bw);
    }

    #[test]
    fn parallel_time_monotonic_in_work() {
        let m = MachineProfile::EdisonNode.cost_model().thread;
        assert!(m.parallel_time(2.0, 0.0) > m.parallel_time(1.0, 0.0));
        assert!(m.parallel_time(0.0, 2e9) > m.parallel_time(0.0, 1e9));
        assert!(m.parallel_time(0.0, 0.0) == 0.0);
    }

    #[test]
    fn hist_scan_is_cheaper_than_binary() {
        // §III-A1: the sub-interval scan beats binary search by up to 42%.
        for p in [
            MachineProfile::EdisonNode,
            MachineProfile::KnlNode,
            MachineProfile::Laptop,
        ] {
            let ops = p.cost_model().ops;
            assert!(ops.hist_scan < ops.hist_binary, "{p:?}");
        }
    }

    #[test]
    fn scaled_costs_scale_every_field() {
        let c = ComputeCosts::ivy_bridge();
        let d = c.scaled(2.0);
        assert!((d.dist - 2.0 * c.dist).abs() < 1e-18);
        assert!((d.merge - 2.0 * c.merge).abs() < 1e-18);
    }

    #[test]
    fn profiles_are_distinct() {
        let e = MachineProfile::EdisonNode.cost_model();
        let k = MachineProfile::KnlNode.cost_model();
        assert_ne!(e.thread.threads, k.thread.threads);
        assert!(k.thread.peak_bw > e.thread.peak_bw); // MCDRAM
    }

    #[test]
    fn with_threads_and_smt_builders() {
        let m = CostModel::default().with_threads(7).with_smt(true);
        assert_eq!(m.thread.threads, 7);
        assert!(m.thread.smt);
        assert_eq!(CostModel::default().with_threads(0).thread.threads, 1);
    }
}
