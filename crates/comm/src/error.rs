//! Error type for the communication substrate.

use std::fmt;

/// Errors surfaced by the simulated runtime.
///
/// Most misuse (deadlock, type confusion on a tag) is a programming error in
/// SPMD code; we surface them as typed errors where recovery is plausible
/// and panic with context where it is not (mirroring how MPI aborts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A blocking receive exhausted the configured timeout (including
    /// every retry the [`crate::RetryPolicy`] allowed). Indicates either
    /// a dead/stalled peer or mismatched send/recv sequences (deadlock).
    Timeout {
        /// Rank that was waiting.
        rank: usize,
        /// Source rank the receive was posted against.
        src: usize,
        /// Tag the receive was posted against.
        tag: u64,
        /// Receive attempts made before giving up (≥ 1).
        attempts: u32,
    },
    /// A message payload did not have the type the receiver asked for.
    TypeMismatch {
        /// Rank that performed the receive.
        rank: usize,
        /// Source of the offending message.
        src: usize,
        /// Tag of the offending message.
        tag: u64,
    },
    /// Rank index out of range for the communicator/group.
    InvalidRank {
        /// The offending rank index.
        rank: usize,
        /// Size of the communicator it was used with.
        size: usize,
    },
    /// A cluster was configured with zero ranks.
    EmptyCluster,
    /// A peer rank panicked; the cluster run was torn down.
    PeerFailure(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout {
                rank,
                src,
                tag,
                attempts,
            } => write!(
                f,
                "rank {rank}: receive from rank {src} (tag {tag:#x}) timed out \
                 after {attempts} attempt(s) — stalled peer or deadlock"
            ),
            CommError::TypeMismatch { rank, src, tag } => write!(
                f,
                "rank {rank}: message from rank {src} (tag {tag:#x}) had unexpected payload type"
            ),
            CommError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank index {rank} out of range for communicator of size {size}"
                )
            }
            CommError::EmptyCluster => write!(f, "cluster must have at least one rank"),
            CommError::PeerFailure(msg) => write!(f, "peer rank failed: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CommError::Timeout {
            rank: 3,
            src: 1,
            tag: 0xff,
            attempts: 2,
        };
        let s = e.to_string();
        assert!(s.contains("rank 3"));
        assert!(s.contains("timed out"));
        assert!(s.contains("2 attempt"));

        let e = CommError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CommError::EmptyCluster, CommError::EmptyCluster);
        assert_ne!(
            CommError::EmptyCluster,
            CommError::InvalidRank { rank: 0, size: 0 }
        );
    }
}
