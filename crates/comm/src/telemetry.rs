//! Bridge from per-rank [`CommStats`] into the shared `panda_obs`
//! metrics registry.
//!
//! Each rank's [`Comm`](crate::Comm) endpoint accumulates plain-field
//! counters inline (no atomics on the message hot path). A [`CommMeter`]
//! owns a private baseline of the last published [`CommStats`] and a set
//! of shared `comm.*` counters; calling [`CommMeter::publish`] adds the
//! delta since the previous publish, so many ranks (e.g. every shard
//! worker) can feed the same registry counters without double counting.

use crate::stats::CommStats;
use panda_obs::{Counter, Registry};

/// Names of the registry counters a [`CommMeter`] publishes into.
pub const COMM_COUNTER_NAMES: [&str; 8] = [
    "comm.sent_msgs",
    "comm.sent_bytes",
    "comm.recv_msgs",
    "comm.recv_bytes",
    "comm.collectives",
    "comm.collective_bytes_out",
    "comm.collective_bytes_in",
    "comm.recv_retries",
];

/// Delta-publishes one rank's [`CommStats`] into shared `comm.*`
/// registry counters.
#[derive(Clone, Debug)]
pub struct CommMeter {
    sent_msgs: Counter,
    sent_bytes: Counter,
    recv_msgs: Counter,
    recv_bytes: Counter,
    collectives: Counter,
    collective_bytes_out: Counter,
    collective_bytes_in: Counter,
    recv_retries: Counter,
    last: CommStats,
}

impl CommMeter {
    /// Meter publishing into `reg`'s `comm.*` counters (get-or-register,
    /// so meters on different ranks share the same cells).
    #[must_use]
    pub fn new(reg: &Registry) -> Self {
        CommMeter {
            sent_msgs: reg.counter("comm.sent_msgs"),
            sent_bytes: reg.counter("comm.sent_bytes"),
            recv_msgs: reg.counter("comm.recv_msgs"),
            recv_bytes: reg.counter("comm.recv_bytes"),
            collectives: reg.counter("comm.collectives"),
            collective_bytes_out: reg.counter("comm.collective_bytes_out"),
            collective_bytes_in: reg.counter("comm.collective_bytes_in"),
            recv_retries: reg.counter("comm.recv_retries"),
            last: CommStats::default(),
        }
    }

    /// Publish the growth of `now` since the last publish.
    ///
    /// `now` must come from the same monotonically growing endpoint each
    /// time (a fresh endpoint means a fresh meter).
    pub fn publish(&mut self, now: &CommStats) {
        let d = now.since(&self.last);
        self.last = *now;
        if d.sent_msgs > 0 {
            self.sent_msgs.add(d.sent_msgs);
        }
        if d.sent_bytes > 0 {
            self.sent_bytes.add(d.sent_bytes);
        }
        if d.recv_msgs > 0 {
            self.recv_msgs.add(d.recv_msgs);
        }
        if d.recv_bytes > 0 {
            self.recv_bytes.add(d.recv_bytes);
        }
        if d.collectives > 0 {
            self.collectives.add(d.collectives);
        }
        if d.collective_bytes_out > 0 {
            self.collective_bytes_out.add(d.collective_bytes_out);
        }
        if d.collective_bytes_in > 0 {
            self.collective_bytes_in.add(d.collective_bytes_in);
        }
        if d.recv_retries > 0 {
            self.recv_retries.add(d.recv_retries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(sent_msgs: u64, sent_bytes: u64) -> CommStats {
        CommStats {
            sent_msgs,
            sent_bytes,
            ..CommStats::default()
        }
    }

    #[test]
    fn publishes_deltas_not_totals() {
        let reg = Registry::new();
        let mut m = CommMeter::new(&reg);
        m.publish(&stats(3, 100));
        m.publish(&stats(5, 160));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("comm.sent_msgs"), Some(5));
        assert_eq!(snap.counter("comm.sent_bytes"), Some(160));
    }

    #[test]
    fn many_meters_share_counters() {
        let reg = Registry::new();
        let mut a = CommMeter::new(&reg);
        let mut b = CommMeter::new(&reg);
        a.publish(&stats(2, 20));
        b.publish(&stats(7, 70));
        a.publish(&stats(3, 30));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("comm.sent_msgs"), Some(10));
        assert_eq!(snap.counter("comm.sent_bytes"), Some(100));
    }
}
