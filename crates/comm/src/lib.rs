//! # panda-comm — simulated distributed message-passing runtime
//!
//! PANDA (Patwary et al., IPDPS 2016) was evaluated on the Edison Cray XC30
//! with MPI across ~50,000 cores. This crate is the substitute substrate: an
//! in-process cluster where **each rank is an OS thread** owning private
//! data, and where point-to-point messages and MPI-style collectives move
//! *real values* between ranks over channels.
//!
//! Two things make it a *simulator* rather than a toy:
//!
//! 1. **Virtual clocks.** Every rank carries a [`clock::VirtualClock`].
//!    Compute sections advance it by *counted work* converted to seconds
//!    through a calibrated [`cost::CostModel`]; communication advances it
//!    through a LogP-style `α + β·bytes` model with log-tree collectives.
//!    Because the inputs to the clock are deterministic operation counts
//!    (not wall time), simulated timings are reproducible and independent
//!    of host load or oversubscription.
//! 2. **Full accounting.** Per-rank message/byte/collective counters
//!    ([`stats::CommStats`]) expose the communication volume arguments the
//!    paper makes (e.g. global-tree vs per-node local-tree query traffic).
//!
//! The algorithm built on top (see `panda-core`) therefore runs *exactly* —
//! results are bit-identical to a sequential computation — while the
//! reported times scale the way a real distributed memory machine would.
//!
//! ## Quick example
//!
//! ```
//! use panda_comm::{ClusterConfig, run_cluster};
//!
//! let cfg = ClusterConfig::new(4);
//! let outcomes = run_cluster(&cfg, |comm| {
//!     // every rank contributes its rank id; allreduce sums them
//!     comm.allreduce_sum(comm.rank() as u64)
//! });
//! for o in &outcomes {
//!     assert_eq!(o.result, 0 + 1 + 2 + 3);
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod cluster;
pub mod collectives;
pub mod comm;
pub mod cost;
pub mod error;
pub mod group;
pub(crate) mod mailbox;
pub mod retry;
pub mod stats;
pub mod telemetry;

pub use clock::{ClockSummary, VirtualClock};
pub use cluster::{make_endpoints, makespan, run_cluster, total_stats, ClusterConfig, RankOutcome};
pub use collectives::ReduceOp;
pub use comm::{Comm, Tag};
pub use cost::{log2_ceil, ComputeCosts, CostModel, MachineProfile, NetworkCosts, ThreadModel};
pub use error::CommError;
pub use group::Group;
pub use retry::RetryPolicy;
pub use stats::CommStats;
pub use telemetry::CommMeter;

/// Convenience alias: result type used throughout the crate.
pub type Result<T> = std::result::Result<T, CommError>;
