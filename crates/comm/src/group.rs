//! Sub-communicators over contiguous rank ranges.
//!
//! PANDA's global kd-tree construction recursively halves the set of ranks;
//! at every level each half runs its own collectives *concurrently* with
//! the other half. A [`Group`] scopes collectives to a contiguous world-rank
//! range `lo..hi` and keeps an independent collective sequence number per
//! range so concurrent groups can never cross-match messages.

use crate::comm::{Comm, Tag};

/// Collective operation kinds (encoded in the collective tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum CollKind {
    Barrier = 0,
    Broadcast = 1,
    Gather = 2,
    /// Also carries the reduce/scan collectives (they are allgather-based).
    AllGather = 3,
    AllToAllV = 4,
}

/// A borrowed view of a [`Comm`] restricted to world ranks `lo..hi`.
///
/// All rank arguments and return positions are *relative* to the group
/// (`0..size()`); [`Group::world_rank`] converts back.
pub struct Group<'a> {
    pub(crate) comm: &'a mut Comm,
    lo: usize,
    hi: usize,
}

impl<'a> Group<'a> {
    pub(crate) fn new(comm: &'a mut Comm, lo: usize, hi: usize) -> Self {
        assert!(
            lo < hi && hi <= comm.size(),
            "invalid group range {lo}..{hi}"
        );
        let r = comm.rank();
        assert!(
            (lo..hi).contains(&r),
            "rank {r} is not a member of group {lo}..{hi}"
        );
        Self { comm, lo, hi }
    }

    /// Number of ranks in the group.
    #[inline]
    pub fn size(&self) -> usize {
        self.hi - self.lo
    }

    /// This rank's index relative to the group.
    #[inline]
    pub fn rank(&self) -> usize {
        self.comm.rank() - self.lo
    }

    /// First world rank of the group.
    #[inline]
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// One past the last world rank of the group.
    #[inline]
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Convert a group-relative rank to a world rank.
    #[inline]
    pub fn world_rank(&self, rel: usize) -> usize {
        debug_assert!(rel < self.size());
        self.lo + rel
    }

    /// Underlying communicator (for clock/cost access inside collectives).
    #[inline]
    pub fn comm(&mut self) -> &mut Comm {
        self.comm
    }

    /// Allocate the tag for the next collective of `kind` in this group.
    ///
    /// Layout (bit 63 = collective flag):
    /// `[63: flag][47..63: lo][31..47: hi][4..31: seq][0..4: kind]`.
    /// `lo`/`hi` disambiguate concurrent sibling groups; `seq` (per range,
    /// wrapping at 2^27) disambiguates successive collectives; `kind`
    /// catches SPMD divergence bugs (a barrier meeting a broadcast).
    pub(crate) fn coll_tag(&mut self, kind: CollKind) -> Tag {
        assert!(
            self.lo < (1 << 16) && self.hi <= (1 << 16),
            "group range too large for tag encoding"
        );
        let base = self.comm.coll_seq_base;
        let seq = self.comm.coll_seq.entry((self.lo, self.hi)).or_insert(base);
        let s = *seq & ((1 << 27) - 1);
        *seq = seq.wrapping_add(1);
        (1 << 63) | ((self.lo as u64) << 47) | ((self.hi as u64) << 31) | (s << 4) | kind as u64
    }
}

#[cfg(test)]
mod tests {
    use crate::{run_cluster, ClusterConfig};

    #[test]
    fn group_geometry() {
        let cfg = ClusterConfig::new(6);
        let out = run_cluster(&cfg, |c| {
            let r = c.rank();
            let (lo, hi) = if r < 2 { (0, 2) } else { (2, 6) };
            let g = c.group(lo, hi);
            (g.size(), g.rank(), g.world_rank(g.rank()))
        });
        assert_eq!(out[0].result, (2, 0, 0));
        assert_eq!(out[1].result, (2, 1, 1));
        assert_eq!(out[2].result, (4, 0, 2));
        assert_eq!(out[5].result, (4, 3, 5));
    }

    #[test]
    fn sibling_groups_run_collectives_concurrently() {
        // Two halves each allreduce independently; results must not mix.
        let cfg = ClusterConfig::new(8);
        let out = run_cluster(&cfg, |c| {
            let half = c.size() / 2;
            let (lo, hi) = if c.rank() < half {
                (0, half)
            } else {
                (half, c.size())
            };
            let mut g = c.group(lo, hi);
            g.allreduce_u64(1, crate::collectives::ReduceOp::Sum)
        });
        assert!(out.iter().all(|o| o.result == 4));
    }

    #[test]
    fn nested_regrouping_like_global_tree_build() {
        // Recursively halve 8 ranks; at each level sum ranks within group.
        let cfg = ClusterConfig::new(8);
        let out = run_cluster(&cfg, |c| {
            let mut lo = 0;
            let mut hi = c.size();
            let mut sums = Vec::new();
            while hi - lo > 1 {
                let v = c.rank() as u64;
                let s = {
                    let mut g = c.group(lo, hi);
                    g.allreduce_u64(v, crate::collectives::ReduceOp::Sum)
                };
                sums.push(s);
                let mid = lo + (hi - lo) / 2;
                if c.rank() < mid {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            sums
        });
        assert_eq!(out[0].result, vec![28, 6, 1]); // 0..8, 0..4, 0..2
        assert_eq!(out[7].result, vec![28, 22, 13]); // 0..8, 4..8, 6..8
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn non_member_group_panics() {
        let cfg = ClusterConfig::new(2);
        run_cluster(&cfg, |c| {
            if c.rank() == 0 {
                let _ = c.group(1, 2); // rank 0 is not in 1..2
            } else {
                let _ = c.group(1, 2);
            }
        });
    }
}
