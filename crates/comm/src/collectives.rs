//! MPI-style collectives over a [`Group`].
//!
//! Transport moves real values through the in-process mailboxes (star
//! pattern through the involved ranks). *Timing* is charged from a model of
//! an efficient implementation — log-tree latency plus bandwidth terms —
//! and *stats* count the logical payload each rank contributed/received,
//! so neither depends on the internal transport pattern.
//!
//! All collectives must be entered by every rank of the group in the same
//! order (SPMD discipline); the tag encoding in [`crate::group`] turns
//! violations into loud mismatches rather than silent corruption.

use crate::cost::log2_ceil;
use crate::group::{CollKind, Group};

/// Reduction operators for the scalar/vector all-reduce collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of contributions.
    Sum,
    /// Minimum contribution.
    Min,
    /// Maximum contribution.
    Max,
}

impl ReduceOp {
    fn fold_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    fn fold_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

impl Group<'_> {
    /// Synchronize all ranks of the group. On exit every rank's virtual
    /// clock is at `max(entry times) + α·⌈log₂ g⌉`.
    pub fn barrier(&mut self) {
        let g = self.size();
        if g == 1 {
            self.comm().stats.collectives += 1;
            return;
        }
        let tag = self.coll_tag(CollKind::Barrier);
        let me = self.rank();
        for j in 0..g {
            if j != me {
                let dst = self.world_rank(j);
                self.comm.post(dst, tag, 0, Box::new(Vec::<u8>::new()));
            }
        }
        let mut max_vt = self.comm.now();
        for j in 0..g {
            if j != me {
                let src = self.world_rank(j);
                let env = self.comm.recv_env(src, tag);
                max_vt = max_vt.max(env.vtime);
            }
        }
        let alpha = self.comm.cost.net.alpha;
        self.comm.clock.sync_to(max_vt);
        self.comm.clock.advance_comm(alpha * log2_ceil(g) as f64);
        self.comm.stats.collectives += 1;
    }

    /// Broadcast a vector from group-relative `root` to all ranks.
    /// `data` must be `Some` exactly on the root.
    pub fn broadcast<T: Clone + Send + 'static>(
        &mut self,
        root: usize,
        data: Option<Vec<T>>,
    ) -> Vec<T> {
        assert!(root < self.size(), "broadcast root {root} out of range");
        let g = self.size();
        let me = self.rank();
        self.comm.stats.collectives += 1;
        if g == 1 {
            return data.expect("broadcast root must supply data");
        }
        let tag = self.coll_tag(CollKind::Broadcast);
        if me == root {
            let data = data.expect("broadcast root must supply data");
            let bytes = (std::mem::size_of::<T>() * data.len()) as u64;
            for j in 0..g {
                if j != me {
                    let dst = self.world_rank(j);
                    self.comm.post(dst, tag, bytes, Box::new(data.clone()));
                }
            }
            self.comm.stats.collective_bytes_out += bytes;
            let cost = self.comm.cost.net.collective(g, bytes);
            self.comm.clock.advance_comm(cost);
            data
        } else {
            assert!(data.is_none(), "non-root rank passed data to broadcast");
            let src = self.world_rank(root);
            let env = self.comm.recv_env(src, tag);
            let cost = self.comm.cost.net.collective(g, env.bytes);
            let arrival = env.vtime + cost;
            self.comm.clock.sync_to(arrival);
            self.comm.stats.collective_bytes_in += env.bytes;
            *env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
                panic!(
                    "broadcast payload type mismatch at rank {}",
                    self.comm.rank()
                )
            })
        }
    }

    /// Gather every rank's vector at group-relative `root`. Returns
    /// `Some(vec_per_rank)` on the root, `None` elsewhere.
    pub fn gather<T: Send + 'static>(&mut self, root: usize, mine: Vec<T>) -> Option<Vec<Vec<T>>> {
        assert!(root < self.size(), "gather root {root} out of range");
        let g = self.size();
        let me = self.rank();
        self.comm.stats.collectives += 1;
        let bytes = (std::mem::size_of::<T>() * mine.len()) as u64;
        if g == 1 {
            return Some(vec![mine]);
        }
        let tag = self.coll_tag(CollKind::Gather);
        if me == root {
            let mut out: Vec<Option<Vec<T>>> = (0..g).map(|_| None).collect();
            out[me] = Some(mine);
            let mut max_vt = self.comm.now();
            let mut total_in = 0;
            #[allow(clippy::needless_range_loop)] // j is a group rank, not just an index
            for j in 0..g {
                if j != me {
                    let src = self.world_rank(j);
                    let env = self.comm.recv_env(src, tag);
                    max_vt = max_vt.max(env.vtime);
                    total_in += env.bytes;
                    out[j] = Some(*env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
                        panic!("gather payload type mismatch at rank {}", self.comm.rank())
                    }));
                }
            }
            let cost = self.comm.cost.net.collective(g, total_in);
            self.comm.clock.sync_to(max_vt);
            self.comm.clock.advance_comm(cost);
            self.comm.stats.collective_bytes_in += total_in;
            Some(out.into_iter().map(|o| o.expect("gather slot")).collect())
        } else {
            let dst = self.world_rank(root);
            self.comm.post(dst, tag, bytes, Box::new(mine));
            self.comm.stats.collective_bytes_out += bytes;
            let overhead = self.comm.cost.net.send_overhead;
            self.comm.clock.advance_comm(overhead);
            None
        }
    }

    /// All ranks receive every rank's vector (indexed by group-relative
    /// rank). Naturally supports variable lengths (allgatherv).
    pub fn allgather<T: Clone + Send + 'static>(&mut self, mine: Vec<T>) -> Vec<Vec<T>> {
        let g = self.size();
        let me = self.rank();
        self.comm.stats.collectives += 1;
        if g == 1 {
            return vec![mine];
        }
        let tag = self.coll_tag(CollKind::AllGather);
        let bytes = (std::mem::size_of::<T>() * mine.len()) as u64;
        for j in 0..g {
            if j != me {
                let dst = self.world_rank(j);
                self.comm.post(dst, tag, bytes, Box::new(mine.clone()));
            }
        }
        self.comm.stats.collective_bytes_out += bytes;
        let mut out: Vec<Option<Vec<T>>> = (0..g).map(|_| None).collect();
        out[me] = Some(mine);
        let mut max_vt = self.comm.now();
        let mut total_in = 0;
        #[allow(clippy::needless_range_loop)] // j is a group rank, not just an index
        for j in 0..g {
            if j != me {
                let src = self.world_rank(j);
                let env = self.comm.recv_env(src, tag);
                max_vt = max_vt.max(env.vtime);
                total_in += env.bytes;
                out[j] = Some(*env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
                    panic!(
                        "allgather payload type mismatch at rank {}",
                        self.comm.rank()
                    )
                }));
            }
        }
        let cost = self.comm.cost.net.collective(g, total_in);
        self.comm.clock.sync_to(max_vt);
        self.comm.clock.advance_comm(cost);
        self.comm.stats.collective_bytes_in += total_in;
        out.into_iter()
            .map(|o| o.expect("allgather slot"))
            .collect()
    }

    /// Personalized all-to-all with per-destination vectors.
    /// `sends[j]` goes to group-relative rank `j`; returns `recvs[i]` from
    /// group-relative rank `i`. This is the workhorse of both point
    /// redistribution (construction) and query routing.
    ///
    /// # Panics
    /// On timeout (mirroring an MPI abort). Recoverable callers use
    /// [`Group::try_alltoallv`].
    pub fn alltoallv<T: Send + 'static>(&mut self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        // The panic message carries the typed error's Display, which
        // contains "timed out" — run_cluster relies on that marker to
        // separate symptom panics from the root cause.
        self.try_alltoallv(sends).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Group::alltoallv`]: a peer stalled past the configured
    /// receive timeout (after every retry the [`crate::RetryPolicy`]
    /// allows, with jittered backoff between attempts) surfaces as
    /// [`crate::CommError::Timeout`] instead of aborting the run.
    ///
    /// On error the exchange is torn: sends were already posted and some
    /// peer payloads may have been consumed, so the collective sequence
    /// numbers across ranks can no longer be trusted. Call
    /// [`crate::Comm::quiesce`] on every rank (same epoch) before reusing
    /// the communicator for further collectives.
    pub fn try_alltoallv<T: Send + 'static>(
        &mut self,
        mut sends: Vec<Vec<T>>,
    ) -> crate::Result<Vec<Vec<T>>> {
        let g = self.size();
        assert_eq!(
            sends.len(),
            g,
            "alltoallv needs one send vector per group rank"
        );
        let me = self.rank();
        self.comm.stats.collectives += 1;
        if g == 1 {
            return Ok(sends);
        }
        let tag = self.coll_tag(CollKind::AllToAllV);
        let elem = std::mem::size_of::<T>();
        let mut out_bytes: u64 = 0;
        // Keep own slice; ship the rest (reverse order so indices stay valid
        // under swap_remove-free draining; we just replace with empty).
        let mut own: Option<Vec<T>> = None;
        for (j, v) in sends.drain(..).enumerate() {
            if j == me {
                own = Some(v);
            } else {
                let bytes = (elem * v.len()) as u64;
                out_bytes += bytes;
                let dst = self.world_rank(j);
                self.comm.post(dst, tag, bytes, Box::new(v));
            }
        }
        self.comm.stats.collective_bytes_out += out_bytes;
        let mut out: Vec<Option<Vec<T>>> = (0..g).map(|_| None).collect();
        out[me] = own;
        let mut max_vt = self.comm.now();
        let mut in_bytes: u64 = 0;
        #[allow(clippy::needless_range_loop)] // j is a group rank, not just an index
        for j in 0..g {
            if j != me {
                let src = self.world_rank(j);
                let env = self.comm.try_recv_env_retry(src, tag)?;
                max_vt = max_vt.max(env.vtime);
                in_bytes += env.bytes;
                out[j] = Some(*env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
                    panic!(
                        "alltoallv payload type mismatch at rank {}",
                        self.comm.rank()
                    )
                }));
            }
        }
        // Cost: synchronizing exchange; the bottleneck rank pays for the
        // larger of its in/out volumes.
        let net = self.comm.cost.net;
        let cost = net.alpha * log2_ceil(g) as f64 + net.beta * in_bytes.max(out_bytes) as f64;
        self.comm.clock.sync_to(max_vt);
        self.comm.clock.advance_comm(cost);
        self.comm.stats.collective_bytes_in += in_bytes;
        Ok(out
            .into_iter()
            .map(|o| o.expect("alltoallv slot"))
            .collect())
    }

    /// Fallible [`Group::allgather`]: a stalled peer surfaces as
    /// [`crate::CommError::Timeout`] (after the retry schedule) instead of
    /// aborting the run. Same torn-exchange caveat as
    /// [`Group::try_alltoallv`]: on error, quiesce every rank before
    /// reusing the communicator for collectives.
    pub fn try_allgather<T: Clone + Send + 'static>(
        &mut self,
        mine: Vec<T>,
    ) -> crate::Result<Vec<Vec<T>>> {
        let g = self.size();
        let me = self.rank();
        self.comm.stats.collectives += 1;
        if g == 1 {
            return Ok(vec![mine]);
        }
        let tag = self.coll_tag(CollKind::AllGather);
        let bytes = (std::mem::size_of::<T>() * mine.len()) as u64;
        for j in 0..g {
            if j != me {
                let dst = self.world_rank(j);
                self.comm.post(dst, tag, bytes, Box::new(mine.clone()));
            }
        }
        self.comm.stats.collective_bytes_out += bytes;
        let mut out: Vec<Option<Vec<T>>> = (0..g).map(|_| None).collect();
        out[me] = Some(mine);
        let mut max_vt = self.comm.now();
        let mut total_in = 0;
        #[allow(clippy::needless_range_loop)] // j is a group rank, not just an index
        for j in 0..g {
            if j != me {
                let src = self.world_rank(j);
                let env = self.comm.try_recv_env_retry(src, tag)?;
                max_vt = max_vt.max(env.vtime);
                total_in += env.bytes;
                out[j] = Some(*env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
                    panic!(
                        "allgather payload type mismatch at rank {}",
                        self.comm.rank()
                    )
                }));
            }
        }
        let cost = self.comm.cost.net.collective(g, total_in);
        self.comm.clock.sync_to(max_vt);
        self.comm.clock.advance_comm(cost);
        self.comm.stats.collective_bytes_in += total_in;
        Ok(out
            .into_iter()
            .map(|o| o.expect("allgather slot"))
            .collect())
    }

    /// All-reduce one `u64`.
    pub fn allreduce_u64(&mut self, v: u64, op: ReduceOp) -> u64 {
        let all = self.allgather(vec![v]);
        all.iter()
            .map(|x| x[0])
            .reduce(|a, b| op.fold_u64(a, b))
            .expect("non-empty group")
    }

    /// Fallible [`Group::allreduce_u64`] built on [`Group::try_allgather`];
    /// timing and stats are identical to the infallible version.
    pub fn try_allreduce_u64(&mut self, v: u64, op: ReduceOp) -> crate::Result<u64> {
        let all = self.try_allgather(vec![v])?;
        Ok(all
            .iter()
            .map(|x| x[0])
            .reduce(|a, b| op.fold_u64(a, b))
            .expect("non-empty group"))
    }

    /// All-reduce one `f64`.
    pub fn allreduce_f64(&mut self, v: f64, op: ReduceOp) -> f64 {
        let all = self.allgather(vec![v]);
        all.iter()
            .map(|x| x[0])
            .reduce(|a, b| op.fold_f64(a, b))
            .expect("non-empty group")
    }

    /// Element-wise all-reduce of equal-length `u64` vectors (used for the
    /// global histogram of Section III-A1). Folds in ascending rank order,
    /// so the result is identical on every rank.
    ///
    /// Modeled as an efficient reduce+broadcast: `2·(α·⌈log₂ g⌉ + β·bytes)`
    /// per rank — the histogram vector grows with the group, so charging
    /// allgather volume here would (wrongly) penalize large groups
    /// quadratically.
    pub fn allreduce_vec_u64(&mut self, v: Vec<u64>, op: ReduceOp) -> Vec<u64> {
        self.allreduce_vec_impl(v, |acc, c| {
            assert_eq!(
                acc.len(),
                c.len(),
                "allreduce_vec length mismatch across ranks"
            );
            for (a, &x) in acc.iter_mut().zip(c) {
                *a = op.fold_u64(*a, x);
            }
        })
    }

    /// Element-wise all-reduce of equal-length `f64` vectors (variance /
    /// extent accumulation during split-dimension selection). Same cost
    /// model as [`Self::allreduce_vec_u64`].
    pub fn allreduce_vec_f64(&mut self, v: Vec<f64>, op: ReduceOp) -> Vec<f64> {
        self.allreduce_vec_impl(v, |acc, c| {
            assert_eq!(
                acc.len(),
                c.len(),
                "allreduce_vec length mismatch across ranks"
            );
            for (a, &x) in acc.iter_mut().zip(c) {
                *a = op.fold_f64(*a, x);
            }
        })
    }

    /// Shared reduce-to-root + broadcast transport with the recursive
    /// doubling cost model. `fold(acc, contribution)` must be commutative
    /// enough for rank-order folding (all our ops are).
    fn allreduce_vec_impl<T: Clone + Send + 'static>(
        &mut self,
        mine: Vec<T>,
        fold: impl Fn(&mut Vec<T>, &[T]),
    ) -> Vec<T> {
        let g = self.size();
        let me = self.rank();
        self.comm.stats.collectives += 1;
        let bytes = (std::mem::size_of::<T>() * mine.len()) as u64;
        if g == 1 {
            return mine;
        }
        let up = self.coll_tag(CollKind::AllGather);
        let down = self.coll_tag(CollKind::Broadcast);
        let net = self.comm.cost.net;
        let leg = net.alpha * log2_ceil(g) as f64 + net.beta * bytes as f64;
        self.comm.stats.collective_bytes_out += bytes;
        self.comm.stats.collective_bytes_in += bytes;
        if me == 0 {
            let mut acc = mine;
            let mut max_vt = self.comm.now();
            for j in 1..g {
                let src = self.world_rank(j);
                let env = self.comm.recv_env(src, up);
                max_vt = max_vt.max(env.vtime);
                let contrib = env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
                    panic!(
                        "allreduce payload type mismatch at rank {}",
                        self.comm.rank()
                    )
                });
                fold(&mut acc, &contrib);
            }
            self.comm.clock.sync_to(max_vt);
            self.comm.clock.advance_comm(leg); // reduction leg
            for j in 1..g {
                let dst = self.world_rank(j);
                self.comm.post(dst, down, bytes, Box::new(acc.clone()));
            }
            self.comm.clock.advance_comm(leg); // broadcast leg
            acc
        } else {
            let root = self.world_rank(0);
            self.comm.post(root, up, bytes, Box::new(mine));
            let env = self.comm.recv_env(root, down);
            // env.vtime already includes the root's two legs; charge the
            // downward propagation to this rank.
            self.comm.clock.sync_to(env.vtime);
            *env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
                panic!(
                    "allreduce payload type mismatch at rank {}",
                    self.comm.rank()
                )
            })
        }
    }

    /// Exclusive prefix sum of one `u64` across the group (rank 0 gets 0).
    /// Used to compute balanced destination slots during redistribution.
    pub fn exscan_sum_u64(&mut self, v: u64) -> u64 {
        let me = self.rank();
        let all = self.allgather(vec![v]);
        all[..me].iter().map(|x| x[0]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::ReduceOp;
    use crate::{run_cluster, ClusterConfig};

    fn cfg(p: usize) -> ClusterConfig {
        ClusterConfig::new(p)
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let out = run_cluster(&cfg(5), |c| {
            let data = if c.rank() == 2 {
                Some(vec![7u32, 8, 9])
            } else {
                None
            };
            c.world().broadcast(2, data)
        });
        assert!(out.iter().all(|o| o.result == vec![7, 8, 9]));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_cluster(&cfg(4), |c| {
            let mine = vec![c.rank() as u64; c.rank() + 1]; // variable lengths
            c.world().gather(0, mine)
        });
        let got = out[0].result.clone().expect("root gets data");
        assert_eq!(
            got,
            vec![vec![0], vec![1, 1], vec![2, 2, 2], vec![3, 3, 3, 3]]
        );
        assert!(out[1].result.is_none());
    }

    #[test]
    fn allgather_matches_on_all_ranks() {
        let out = run_cluster(&cfg(4), |c| {
            let mine = vec![c.rank() as u32 * 10];
            c.world().allgather(mine)
        });
        for o in &out {
            assert_eq!(o.result, vec![vec![0], vec![10], vec![20], vec![30]]);
        }
    }

    #[test]
    fn alltoallv_routes_and_conserves() {
        // rank r sends value r*10+j to rank j; j receives r*10+j from r.
        let out = run_cluster(&cfg(4), |c| {
            let r = c.rank() as u32;
            let sends: Vec<Vec<u32>> = (0..4).map(|j| vec![r * 10 + j]).collect();
            c.world().alltoallv(sends)
        });
        for (j, o) in out.iter().enumerate() {
            let expect: Vec<Vec<u32>> = (0..4u32).map(|r| vec![r * 10 + j as u32]).collect();
            assert_eq!(o.result, expect);
        }
    }

    #[test]
    fn alltoallv_empty_lanes_are_fine() {
        let out = run_cluster(&cfg(3), |c| {
            let mut sends: Vec<Vec<u64>> = vec![Vec::new(); 3];
            sends[0] = vec![c.rank() as u64]; // everyone sends only to rank 0
            c.world().alltoallv(sends)
        });
        assert_eq!(out[0].result, vec![vec![0], vec![1], vec![2]]);
        assert!(out[1].result.iter().all(|v| v.is_empty()));
    }

    #[test]
    fn allreduce_ops() {
        let out = run_cluster(&cfg(4), |c| {
            let v = (c.rank() + 1) as u64; // 1,2,3,4
            let s = c.world().allreduce_u64(v, ReduceOp::Sum);
            let mn = c.world().allreduce_u64(v, ReduceOp::Min);
            let mx = c.world().allreduce_u64(v, ReduceOp::Max);
            let f = c.world().allreduce_f64(v as f64 / 2.0, ReduceOp::Sum);
            (s, mn, mx, f)
        });
        for o in &out {
            assert_eq!(o.result.0, 10);
            assert_eq!(o.result.1, 1);
            assert_eq!(o.result.2, 4);
            assert!((o.result.3 - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn try_allreduce_matches_infallible() {
        let out = run_cluster(&cfg(4), |c| {
            let v = (c.rank() + 1) as u64;
            let mx = c.world().try_allreduce_u64(v, ReduceOp::Max).unwrap();
            let all = c.world().try_allgather(vec![v]).unwrap();
            (mx, all)
        });
        for o in &out {
            assert_eq!(o.result.0, 4);
            assert_eq!(o.result.1, vec![vec![1], vec![2], vec![3], vec![4]]);
        }
    }

    #[test]
    fn allreduce_vec_sums_elementwise() {
        let out = run_cluster(&cfg(3), |c| {
            let v = vec![c.rank() as u64, 1, 100];
            c.world().allreduce_vec_u64(v, ReduceOp::Sum)
        });
        for o in &out {
            assert_eq!(o.result, vec![3, 3, 300]);
        }
    }

    #[test]
    fn allreduce_vec_f64_min_max() {
        let out = run_cluster(&cfg(3), |c| {
            let v = vec![c.rank() as f64, -(c.rank() as f64)];
            let mn = c.world().allreduce_vec_f64(v.clone(), ReduceOp::Min);
            let mx = c.world().allreduce_vec_f64(v, ReduceOp::Max);
            (mn, mx)
        });
        for o in &out {
            assert_eq!(o.result.0, vec![0.0, -2.0]);
            assert_eq!(o.result.1, vec![2.0, 0.0]);
        }
    }

    #[test]
    fn exscan_is_exclusive_prefix() {
        let out = run_cluster(&cfg(5), |c| {
            let v = c.rank() as u64 + 1;
            c.world().exscan_sum_u64(v)
        });
        let expect = [0u64, 1, 3, 6, 10];
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.result, expect[i]);
        }
    }

    #[test]
    fn barrier_aligns_clocks() {
        let out = run_cluster(&cfg(3), |c| {
            c.work_serial(c.rank() as f64); // skewed compute: 0s, 1s, 2s
            c.barrier();
            c.now()
        });
        let t0 = out[0].result;
        for o in &out {
            assert!(
                (o.result - t0).abs() < 1e-9,
                "clocks diverged after barrier"
            );
        }
        assert!(t0 >= 2.0);
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let out = run_cluster(&cfg(1), |c| {
            c.barrier();
            let b = c.world().broadcast(0, Some(vec![1u8]));
            let g = c.world().allgather(vec![2u8]);
            let a = c.world().alltoallv(vec![vec![3u8]]);
            let r = c.world().allreduce_u64(9, ReduceOp::Sum);
            let e = c.world().exscan_sum_u64(5);
            (b, g, a, r, e)
        });
        let r = &out[0].result;
        assert_eq!(r.0, vec![1]);
        assert_eq!(r.1, vec![vec![2]]);
        assert_eq!(r.2, vec![vec![3]]);
        assert_eq!(r.3, 9);
        assert_eq!(r.4, 0);
    }

    #[test]
    fn collective_stats_accumulate() {
        let out = run_cluster(&cfg(2), |c| {
            let _ = c.world().allgather(vec![0u64; 8]); // 64 bytes each way
            c.stats()
        });
        for o in &out {
            assert_eq!(o.stats.collectives, 1);
            assert_eq!(o.stats.collective_bytes_out, 64);
            assert_eq!(o.stats.collective_bytes_in, 64);
        }
    }

    #[test]
    fn virtual_time_is_deterministic() {
        let run = || {
            run_cluster(&cfg(4), |c| {
                let mine = vec![c.rank() as u64; 1000];
                let _ = c.world().allgather(mine);
                c.work_parallel(0.01, 1e6);
                c.barrier();
                c.now()
            })
            .into_iter()
            .map(|o| o.result)
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
