//! Per-rank communication accounting.
//!
//! The paper's argument for the global-kd-tree strategy is a *traffic*
//! argument (a per-node-local-trees design transfers `P·k` candidates per
//! query and throws away all but `k`). These counters make that argument
//! measurable in the reproduction: every send, receive and collective is
//! tallied per rank and aggregated by the bench harness.

/// Message/byte counters for one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub sent_msgs: u64,
    /// Point-to-point payload bytes sent.
    pub sent_bytes: u64,
    /// Point-to-point messages received.
    pub recv_msgs: u64,
    /// Point-to-point payload bytes received.
    pub recv_bytes: u64,
    /// Collective operations entered (barrier/bcast/allgather/...).
    pub collectives: u64,
    /// Payload bytes this rank contributed to collectives.
    pub collective_bytes_out: u64,
    /// Payload bytes this rank received from collectives.
    pub collective_bytes_in: u64,
    /// Receive attempts that timed out and were retried under the
    /// configured [`crate::RetryPolicy`] (fallible collectives only).
    pub recv_retries: u64,
}

impl CommStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes that crossed this rank's boundary in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes + self.recv_bytes + self.collective_bytes_out + self.collective_bytes_in
    }

    /// Total message-like events (p2p messages + collectives).
    pub fn total_events(&self) -> u64 {
        self.sent_msgs + self.recv_msgs + self.collectives
    }

    /// Element-wise accumulate (used to aggregate over ranks or phases).
    pub fn merge(&mut self, other: &CommStats) {
        self.sent_msgs += other.sent_msgs;
        self.sent_bytes += other.sent_bytes;
        self.recv_msgs += other.recv_msgs;
        self.recv_bytes += other.recv_bytes;
        self.collectives += other.collectives;
        self.collective_bytes_out += other.collective_bytes_out;
        self.collective_bytes_in += other.collective_bytes_in;
        self.recv_retries += other.recv_retries;
    }

    /// Difference since an earlier snapshot (for per-phase accounting).
    /// Counters are monotonic, so all fields of `earlier` must be ≤ `self`.
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            sent_msgs: self.sent_msgs - earlier.sent_msgs,
            sent_bytes: self.sent_bytes - earlier.sent_bytes,
            recv_msgs: self.recv_msgs - earlier.recv_msgs,
            recv_bytes: self.recv_bytes - earlier.recv_bytes,
            collectives: self.collectives - earlier.collectives,
            collective_bytes_out: self.collective_bytes_out - earlier.collective_bytes_out,
            collective_bytes_in: self.collective_bytes_in - earlier.collective_bytes_in,
            recv_retries: self.recv_retries - earlier.recv_retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CommStats {
        CommStats {
            sent_msgs: 3,
            sent_bytes: 300,
            recv_msgs: 2,
            recv_bytes: 200,
            collectives: 5,
            collective_bytes_out: 50,
            collective_bytes_in: 70,
            recv_retries: 1,
        }
    }

    #[test]
    fn totals() {
        let s = sample();
        assert_eq!(s.total_bytes(), 300 + 200 + 50 + 70);
        assert_eq!(s.total_events(), 3 + 2 + 5);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.sent_msgs, 6);
        assert_eq!(a.collective_bytes_in, 140);
        assert_eq!(a.recv_retries, 2);
        assert_eq!(a.total_bytes(), 2 * sample().total_bytes());
    }

    #[test]
    fn since_is_inverse_of_merge() {
        let base = sample();
        let mut later = base;
        later.merge(&sample());
        assert_eq!(later.since(&base), base);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CommStats::new().total_bytes(), 0);
        assert_eq!(CommStats::new().total_events(), 0);
    }
}
