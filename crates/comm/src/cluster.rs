//! Cluster driver: spawn rank threads, collect outcomes.

use std::time::Duration;

use crossbeam::channel::unbounded;

use crate::clock::ClockSummary;
use crate::comm::Comm;
use crate::cost::{CostModel, MachineProfile};
use crate::mailbox::Envelope;
use crate::retry::RetryPolicy;
use crate::stats::CommStats;

/// Configuration for a simulated cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of ranks (each becomes one OS thread).
    pub ranks: usize,
    /// Cost model used for virtual-time accounting.
    pub cost: CostModel,
    /// Blocking-receive timeout; hitting it aborts the run with a deadlock
    /// diagnostic instead of hanging forever. The fallible collectives
    /// apply it per attempt, governed by `retry`.
    pub recv_timeout: Duration,
    /// Retry schedule for the fallible collectives (`try_alltoallv`):
    /// bounded attempts with jittered backoff before a typed
    /// [`crate::CommError::Timeout`] surfaces.
    pub retry: RetryPolicy,
}

impl ClusterConfig {
    /// Cluster of `ranks` ranks with the default (Edison-node) cost model.
    pub fn new(ranks: usize) -> Self {
        Self {
            ranks,
            cost: CostModel::default(),
            recv_timeout: Duration::from_secs(120),
            retry: RetryPolicy::default(),
        }
    }

    /// Replace the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Use a named machine profile's cost model.
    pub fn with_profile(mut self, profile: MachineProfile) -> Self {
        self.cost = profile.cost_model();
        self
    }

    /// Replace the deadlock-detection timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Replace the retry policy for fallible collectives.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// What one rank produced: the closure result plus simulation accounting.
#[derive(Clone, Debug)]
pub struct RankOutcome<R> {
    /// World rank.
    pub rank: usize,
    /// Value returned by the rank closure.
    pub result: R,
    /// Final virtual-clock snapshot.
    pub clock: ClockSummary,
    /// Final communication counters.
    pub stats: CommStats,
}

/// Run `f` once per rank on its own thread; block until all ranks finish.
/// Outcomes are returned in rank order.
///
/// If any rank panics, the panic is propagated to the caller after the
/// remaining ranks have been torn down (they abort on their next blocking
/// receive or at the timeout).
///
/// # Panics
/// If `cfg.ranks == 0`, or to propagate a rank panic.
pub fn run_cluster<R, F>(cfg: &ClusterConfig, f: F) -> Vec<RankOutcome<R>>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    assert!(cfg.ranks > 0, "cluster must have at least one rank");
    let p = cfg.ranks;

    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(rx);
    }

    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let cost = cfg.cost;
            let timeout = cfg.recv_timeout;
            let retry = cfg.retry;
            let handle = std::thread::Builder::new()
                .name(format!("panda-rank-{rank}"))
                .stack_size(8 << 20)
                .spawn_scoped(scope, move || {
                    let mut comm = Comm::new(rank, p, senders, rx, cost, timeout, retry);
                    let result = f(&mut comm);
                    RankOutcome {
                        rank,
                        result,
                        clock: comm.clock(),
                        stats: comm.stats(),
                    }
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }

        let mut outcomes = Vec::with_capacity(p);
        let mut panics = Vec::new();
        for h in handles {
            match h.join() {
                Ok(outcome) => outcomes.push(outcome),
                Err(payload) => panics.push(payload),
            }
        }
        if !panics.is_empty() {
            // A rank that dies makes its peers time out on their next
            // blocking receive; those timeout panics are symptoms. Prefer
            // propagating the root cause.
            let is_timeout = |p: &Box<dyn std::any::Any + Send>| {
                let msg = p
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| p.downcast_ref::<&str>().copied())
                    .unwrap_or("");
                msg.contains("timed out") || msg.contains("peer has shut down")
            };
            let idx = panics.iter().position(|p| !is_timeout(p)).unwrap_or(0);
            std::panic::resume_unwind(panics.swap_remove(idx));
        }
        outcomes
    })
}

/// Build the channel mesh of a `cfg.ranks`-endpoint cluster and return
/// every rank's communicator **without spawning threads**.
///
/// [`run_cluster`] owns the whole SPMD lifecycle: it spawns one closure
/// per rank and tears everything down when the closures return. Long-lived
/// owners — e.g. shard worker threads that each hold their endpoint for
/// the lifetime of an index — need the opposite: endpoints they can move
/// into threads they manage themselves. `Comm` is `Send`, so each element
/// of the returned vector (index = world rank) can migrate into its
/// worker; collectives work exactly as under `run_cluster`, including the
/// `recv_timeout`/`retry` deadlock detection from `cfg`.
///
/// Dropping an endpoint closes its mailbox; peers blocked on it surface
/// the usual timeout diagnostics rather than hanging.
///
/// # Panics
/// If `cfg.ranks == 0`.
pub fn make_endpoints(cfg: &ClusterConfig) -> Vec<Comm> {
    assert!(cfg.ranks > 0, "cluster must have at least one rank");
    let p = cfg.ranks;
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, rx)| {
            Comm::new(
                rank,
                p,
                senders.clone(),
                rx,
                cfg.cost,
                cfg.recv_timeout,
                cfg.retry,
            )
        })
        .collect()
}

/// Simulated makespan of a run: the maximum final virtual time over ranks.
pub fn makespan<R>(outcomes: &[RankOutcome<R>]) -> f64 {
    outcomes.iter().map(|o| o.clock.now).fold(0.0, f64::max)
}

/// Aggregate communication counters over all ranks.
pub fn total_stats<R>(outcomes: &[RankOutcome<R>]) -> CommStats {
    let mut acc = CommStats::new();
    for o in outcomes {
        acc.merge(&o.stats);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_are_in_rank_order() {
        let out = run_cluster(&ClusterConfig::new(5), |c| c.rank() * 2);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.rank, i);
            assert_eq!(o.result, i * 2);
        }
    }

    #[test]
    fn single_rank_cluster_works() {
        let out = run_cluster(&ClusterConfig::new(1), |c| {
            assert_eq!(c.size(), 1);
            "ok"
        });
        assert_eq!(out[0].result, "ok");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = run_cluster(&ClusterConfig::new(0), |_| ());
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn rank_panic_propagates() {
        let cfg = ClusterConfig::new(4).with_timeout(Duration::from_millis(500));
        let _ = run_cluster(&cfg, |c| {
            if c.rank() == 2 {
                panic!("rank 2 exploded");
            }
            // Other ranks block on a message that never comes; the timeout
            // tears them down so the panic can propagate.
            let _ = c.recv_vec::<u8>(2, 1);
        });
    }

    #[test]
    fn makespan_is_max_over_ranks() {
        let out = run_cluster(&ClusterConfig::new(3), |c| {
            c.work_serial(c.rank() as f64);
        });
        assert!((makespan(&out) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_stats_aggregates() {
        let out = run_cluster(&ClusterConfig::new(2), |c| {
            if c.rank() == 0 {
                c.send_vec(1, 1, vec![0u8; 10]);
            } else {
                let _ = c.recv_vec::<u8>(0, 1);
            }
        });
        let t = total_stats(&out);
        assert_eq!(t.sent_msgs, 1);
        assert_eq!(t.recv_msgs, 1);
        assert_eq!(t.sent_bytes, 10);
    }

    #[test]
    fn endpoints_collect_like_a_cluster() {
        // Endpoints moved into caller-managed threads behave exactly like
        // run_cluster ranks: collectives complete and agree.
        let endpoints = make_endpoints(&ClusterConfig::new(4));
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|mut comm| {
                std::thread::spawn(move || {
                    let mine = comm.rank() as u64 + 1;
                    let sum = comm
                        .world()
                        .allreduce_u64(mine, crate::collectives::ReduceOp::Sum);
                    (comm.rank(), sum)
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let (rank, sum) = h.join().expect("endpoint thread");
            assert_eq!(rank, i);
            assert_eq!(sum, 10);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_endpoints_rejected() {
        let _ = make_endpoints(&ClusterConfig::new(0));
    }

    #[test]
    fn many_ranks_smoke() {
        // More ranks than host cores: correctness must be unaffected.
        let out = run_cluster(&ClusterConfig::new(32), |c| {
            c.world()
                .allreduce_u64(1, crate::collectives::ReduceOp::Sum)
        });
        assert!(out.iter().all(|o| o.result == 32));
    }
}
