//! Property-based tests of the collective semantics: conservation,
//! ordering, agreement, and virtual-time laws under arbitrary payloads
//! and rank counts.

use proptest::prelude::*;

use panda_comm::{run_cluster, ClusterConfig, ReduceOp};

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// alltoallv conserves multisets and routes to the right lanes.
    #[test]
    fn alltoallv_conserves(
        ranks in 1usize..6,
        lens in proptest::collection::vec(0usize..17, 36),
    ) {
        let out = run_cluster(&ClusterConfig::new(ranks), |comm| {
            let me = comm.rank();
            let p = comm.size();
            // send lens[me*p + j] values tagged (me, j) to rank j
            let sends: Vec<Vec<u64>> = (0..p)
                .map(|j| {
                    let n = lens[(me * p + j) % lens.len()];
                    (0..n).map(|x| ((me as u64) << 32) | ((j as u64) << 16) | x as u64).collect()
                })
                .collect();
            let sent: usize = sends.iter().map(Vec::len).sum();
            let recvd = comm.world().alltoallv(sends);
            // every received value must be addressed to me, from the lane's rank
            for (src, lane) in recvd.iter().enumerate() {
                for &v in lane {
                    assert_eq!((v >> 32) as usize, src);
                    assert_eq!(((v >> 16) & 0xFFFF) as usize, me);
                }
            }
            (sent, recvd.iter().map(Vec::len).sum::<usize>())
        });
        let sent: usize = out.iter().map(|o| o.result.0).sum();
        let recvd: usize = out.iter().map(|o| o.result.1).sum();
        prop_assert_eq!(sent, recvd);
    }

    /// All reduction ops agree with a serial fold, on every rank.
    #[test]
    fn allreduce_agrees_with_serial(
        ranks in 1usize..7,
        values in proptest::collection::vec(0u64..1_000_000, 8),
    ) {
        let out = run_cluster(&ClusterConfig::new(ranks), |comm| {
            let v = values[comm.rank() % values.len()];
            let s = comm.world().allreduce_u64(v, ReduceOp::Sum);
            let mn = comm.world().allreduce_u64(v, ReduceOp::Min);
            let mx = comm.world().allreduce_u64(v, ReduceOp::Max);
            (v, s, mn, mx)
        });
        let contributions: Vec<u64> = out.iter().map(|o| o.result.0).collect();
        let sum: u64 = contributions.iter().sum();
        let min = *contributions.iter().min().unwrap();
        let max = *contributions.iter().max().unwrap();
        for o in &out {
            prop_assert_eq!(o.result.1, sum);
            prop_assert_eq!(o.result.2, min);
            prop_assert_eq!(o.result.3, max);
        }
    }

    /// Vector allreduce equals element-wise serial sums and agrees across
    /// ranks (the global-histogram correctness requirement).
    #[test]
    fn allreduce_vec_elementwise(
        ranks in 1usize..6,
        len in 1usize..50,
    ) {
        let out = run_cluster(&ClusterConfig::new(ranks), |comm| {
            let v: Vec<u64> = (0..len).map(|i| (comm.rank() * 1000 + i) as u64).collect();
            comm.world().allreduce_vec_u64(v, ReduceOp::Sum)
        });
        let expect: Vec<u64> = (0..len)
            .map(|i| (0..ranks).map(|r| (r * 1000 + i) as u64).sum())
            .collect();
        for o in &out {
            prop_assert_eq!(&o.result, &expect);
        }
    }

    /// Exclusive scan: rank r's result is the sum of contributions of
    /// ranks < r.
    #[test]
    fn exscan_prefix_law(
        ranks in 1usize..7,
        values in proptest::collection::vec(0u64..1000, 8),
    ) {
        let out = run_cluster(&ClusterConfig::new(ranks), |comm| {
            let v = values[comm.rank() % values.len()];
            (v, comm.world().exscan_sum_u64(v))
        });
        let mut prefix = 0u64;
        for o in &out {
            prop_assert_eq!(o.result.1, prefix);
            prefix += o.result.0;
        }
    }

    /// Virtual clocks never run backwards, and a barrier equalizes them.
    #[test]
    fn clock_laws(
        ranks in 1usize..6,
        works in proptest::collection::vec(0u64..100, 8),
    ) {
        let out = run_cluster(&ClusterConfig::new(ranks), |comm| {
            let t0 = comm.now();
            comm.work_serial(works[comm.rank() % works.len()] as f64 * 1e-6);
            let t1 = comm.now();
            assert!(t1 >= t0);
            comm.barrier();
            comm.now()
        });
        let t = out[0].result;
        for o in &out {
            prop_assert!((o.result - t).abs() < 1e-12, "clocks diverged after barrier");
        }
    }

    /// Broadcast delivers the root's exact payload everywhere, whatever
    /// the root.
    #[test]
    fn broadcast_from_any_root(
        ranks in 1usize..6,
        root_sel in 0usize..6,
        payload in proptest::collection::vec(any::<u32>(), 0..40),
    ) {
        let out = run_cluster(&ClusterConfig::new(ranks), |comm| {
            let root = root_sel % comm.size();
            let data = (comm.rank() == root).then(|| payload.clone());
            comm.world().broadcast(root, data)
        });
        for o in &out {
            prop_assert_eq!(&o.result, &payload);
        }
    }
}
