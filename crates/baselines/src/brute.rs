//! Exact brute-force KNN — the ground truth.
//!
//! Scans every point per query. Offers points in ascending id order, so
//! distance ties resolve identically to PANDA's strict-`<` heap rule —
//! which is what lets the test suite compare results bit-for-bit.

use panda_core::{KnnHeap, Neighbor, PandaError, PointSet, Result};
use rayon::prelude::*;

/// Brute-force scanner over a point set.
#[derive(Clone, Debug)]
pub struct BruteForce<'a> {
    points: &'a PointSet,
}

impl<'a> BruteForce<'a> {
    /// Wrap a point set (no preprocessing — that is the point).
    pub fn new(points: &'a PointSet) -> Self {
        Self { points }
    }

    /// `k` nearest neighbors of `q`, ascending distance.
    pub fn query(&self, q: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        self.query_radius(q, k, f32::INFINITY)
    }

    /// `k` nearest neighbors strictly within `radius`.
    pub fn query_radius(&self, q: &[f32], k: usize, radius: f32) -> Result<Vec<Neighbor>> {
        if k == 0 {
            return Err(PandaError::ZeroK);
        }
        if q.len() != self.points.dims() {
            return Err(PandaError::DimsMismatch {
                expected: self.points.dims(),
                got: q.len(),
            });
        }
        let r_sq = if radius.is_finite() {
            radius * radius
        } else {
            f32::INFINITY
        };
        let mut heap = KnnHeap::with_radius_sq(k, r_sq);
        for i in 0..self.points.len() {
            heap.offer(self.points.dist_sq_to(q, i), self.points.id(i));
        }
        Ok(heap.into_sorted())
    }

    /// Batched queries, optionally rayon-parallel over queries.
    pub fn query_batch(
        &self,
        queries: &PointSet,
        k: usize,
        parallel: bool,
    ) -> Result<Vec<Vec<Neighbor>>> {
        if queries.dims() != self.points.dims() {
            return Err(PandaError::DimsMismatch {
                expected: self.points.dims(),
                got: queries.dims(),
            });
        }
        if parallel {
            (0..queries.len())
                .into_par_iter()
                .map(|i| self.query(queries.point(i), k))
                .collect()
        } else {
            (0..queries.len())
                .map(|i| self.query(queries.point(i), k))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> PointSet {
        PointSet::from_coords(1, (0..n).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn finds_the_closest() {
        let ps = grid_1d(100);
        let bf = BruteForce::new(&ps);
        let r = bf.query(&[42.3], 3).unwrap();
        let ids: Vec<u64> = r.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![42, 43, 41]);
    }

    #[test]
    fn radius_limits() {
        let ps = grid_1d(100);
        let bf = BruteForce::new(&ps);
        let r = bf.query_radius(&[50.0], 10, 1.5).unwrap();
        // strictly within 1.5 of 50: 49, 50, 51
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn parallel_matches_sequential() {
        let ps = crate::tests_support::random_ps(2000, 3, 1);
        let qs = crate::tests_support::random_ps(50, 3, 2);
        let bf = BruteForce::new(&ps);
        let a = bf.query_batch(&qs, 5, false).unwrap();
        let b = bf.query_batch(&qs, 5, true).unwrap();
        for (x, y) in a.iter().zip(&b) {
            let dx: Vec<(u64, f32)> = x.iter().map(|n| (n.id, n.dist_sq)).collect();
            let dy: Vec<(u64, f32)> = y.iter().map(|n| (n.id, n.dist_sq)).collect();
            assert_eq!(dx, dy);
        }
    }

    #[test]
    fn validates() {
        let ps = grid_1d(10);
        let bf = BruteForce::new(&ps);
        assert!(matches!(bf.query(&[0.0], 0), Err(PandaError::ZeroK)));
        assert!(matches!(
            bf.query(&[0.0, 0.0], 1),
            Err(PandaError::DimsMismatch { .. })
        ));
    }
}
