//! Exact brute-force KNN — the ground truth.
//!
//! Scans every point per query. Offers points in ascending id order, so
//! distance ties resolve identically to PANDA's strict-`<` heap rule —
//! which is what lets the test suite compare results bit-for-bit.

use panda_core::engine::{NeighborTable, NnBackend, QueryRequest, QueryResponse};
use panda_core::{KnnHeap, Neighbor, PandaError, PointSet, QueryCounters, Result, TreeConfig};
use rayon::prelude::*;

/// Brute-force scanner over an owned copy of the point set.
#[derive(Clone, Debug)]
pub struct BruteForce {
    points: PointSet,
}

impl BruteForce {
    /// Copy the point set. The copy is the only cost: there is no
    /// acceleration structure to build — that is the point.
    pub fn new(points: &PointSet) -> Self {
        Self {
            points: points.clone(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `k` nearest neighbors of `q`, ascending distance.
    pub fn query(&self, q: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        self.query_radius(q, k, f32::INFINITY)
    }

    /// `k` nearest neighbors strictly within `radius`.
    pub fn query_radius(&self, q: &[f32], k: usize, radius: f32) -> Result<Vec<Neighbor>> {
        if k == 0 {
            return Err(PandaError::ZeroK);
        }
        if q.len() != self.points.dims() {
            return Err(PandaError::DimsMismatch {
                expected: self.points.dims(),
                got: q.len(),
            });
        }
        let r_sq = if radius.is_finite() {
            radius * radius
        } else {
            f32::INFINITY
        };
        let mut heap = KnnHeap::with_radius_sq(k, r_sq);
        for i in 0..self.points.len() {
            heap.offer(self.points.dist_sq_to(q, i), self.points.id(i));
        }
        Ok(heap.into_sorted())
    }
}

impl NnBackend for BruteForce {
    fn build(points: &PointSet, _cfg: &TreeConfig) -> Result<Self> {
        points.validate()?;
        Ok(BruteForce::new(points))
    }

    fn query(&self, req: &QueryRequest<'_>) -> Result<QueryResponse> {
        let t0 = std::time::Instant::now();
        req.validate()?;
        let queries = req.queries();
        if queries.dims() != self.points.dims() {
            return Err(PandaError::DimsMismatch {
                expected: self.points.dims(),
                got: queries.dims(),
            });
        }
        let (k, r_sq) = (req.k(), req.radius_sq());
        let run_one = |i: usize, c: &mut QueryCounters| {
            c.queries += 1;
            c.points_scanned += self.points.len() as u64;
            let mut heap = KnnHeap::with_radius_sq(k, r_sq);
            for j in 0..self.points.len() {
                if heap.offer(
                    self.points.dist_sq_to(queries.point(i), j),
                    self.points.id(j),
                ) {
                    c.heap_ops += 1;
                }
            }
            heap.into_sorted()
        };
        let mut counters = QueryCounters::default();
        let mut table = NeighborTable::with_capacity(queries.len(), k);
        if req.parallel().unwrap_or(false) {
            let rows: Vec<(Vec<Neighbor>, QueryCounters)> = (0..queries.len())
                .into_par_iter()
                .map(|i| {
                    let mut c = QueryCounters::default();
                    (run_one(i, &mut c), c)
                })
                .collect();
            for (row, c) in rows {
                counters.add(&c);
                table.push_row(&row);
            }
        } else {
            for i in 0..queries.len() {
                table.push_row(&run_one(i, &mut counters));
            }
        }
        Ok(QueryResponse::local(
            table,
            counters,
            t0.elapsed().as_secs_f64(),
        ))
    }

    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dims(&self) -> usize {
        self.points.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> PointSet {
        PointSet::from_coords(1, (0..n).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn finds_the_closest() {
        let ps = grid_1d(100);
        let bf = BruteForce::new(&ps);
        let r = bf.query(&[42.3], 3).unwrap();
        let ids: Vec<u64> = r.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![42, 43, 41]);
    }

    #[test]
    fn radius_limits() {
        let ps = grid_1d(100);
        let bf = BruteForce::new(&ps);
        let r = bf.query_radius(&[50.0], 10, 1.5).unwrap();
        // strictly within 1.5 of 50: 49, 50, 51
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn parallel_matches_sequential() {
        let ps = crate::tests_support::random_ps(2000, 3, 1);
        let qs = crate::tests_support::random_ps(50, 3, 2);
        let bf = BruteForce::new(&ps);
        let a = NnBackend::query(&bf, &QueryRequest::knn(&qs, 5)).unwrap();
        let b = NnBackend::query(&bf, &QueryRequest::knn(&qs, 5).with_parallel(true)).unwrap();
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.counters, b.counters);
        assert!(a.remote.is_none());
    }

    #[test]
    fn backend_trait_surface() {
        let ps = grid_1d(64);
        let backend: Box<dyn NnBackend> =
            Box::new(BruteForce::build(&ps, &TreeConfig::default()).unwrap());
        assert_eq!(backend.name(), "brute-force");
        assert_eq!(backend.len(), 64);
        assert_eq!(backend.dims(), 1);
        let qs = PointSet::from_coords(1, vec![10.2]).unwrap();
        let res = backend
            .query(&QueryRequest::knn(&qs, 2).with_radius(1.0))
            .unwrap();
        // strictly within 1.0 of 10.2: only 10 and 11
        let ids: Vec<u64> = res.neighbors.row(0).iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![10, 11]);
    }

    #[test]
    fn validates() {
        let ps = grid_1d(10);
        let bf = BruteForce::new(&ps);
        assert!(matches!(bf.query(&[0.0], 0), Err(PandaError::ZeroK)));
        assert!(matches!(
            bf.query(&[0.0, 0.0], 1),
            Err(PandaError::DimsMismatch { .. })
        ));
        let qs = PointSet::from_coords(1, vec![1.0]).unwrap();
        assert!(matches!(
            NnBackend::query(&bf, &QueryRequest::knn(&qs, 3).with_radius(-2.0)),
            Err(PandaError::BadRadius { .. })
        ));
    }
}
