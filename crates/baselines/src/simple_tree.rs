//! A classic single-threaded kd-tree parameterized by the split
//! heuristics the paper attributes to FLANN and ANN (§V-B2).
//!
//! Deliberately *not* PANDA: sequential construction, no sampled-histogram
//! medians, no SIMD-packed buckets (leaf scans walk the original
//! point-major array), no parallel levels. The Fig. 7 comparison measures
//! exactly these differences.

use panda_core::engine::{NeighborTable, QueryRequest, QueryResponse};
use panda_core::{
    BuildCounters, KnnHeap, Neighbor, PandaError, PointSet, QueryCounters, Result, MAX_DIMS,
};
use rayon::prelude::*;

/// Modeled slowdown of an unpacked, strided leaf scan relative to PANDA's
/// lane-padded dimension-major kernel (scalar loop + pointer chasing vs a
/// vectorized stream). Used when converting baseline query counters to
/// modeled time; the real 1-thread wall-clock comparisons do not use it.
pub const UNPACKED_DIST_PENALTY: f64 = 2.5;

/// Which library's heuristics to mimic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Heuristic {
    /// Variance over the first ≤100 points picks the dimension; the mean
    /// of those points is the split value; bucket size 10.
    FlannLike,
    /// Max-extent dimension; midpoint of the bounds as split value with
    /// ANN-style sliding when a side is empty; bucket size 1.
    AnnLike,
}

impl Heuristic {
    fn bucket(&self) -> usize {
        match self {
            Heuristic::FlannLike => 10,
            Heuristic::AnnLike => 1,
        }
    }
}

/// Depth cap: co-located points make midpoint splits loop; ANN's real
/// trees hit depth ~109 on the Daya Bay data (§V-B2), so cap past that.
const MAX_DEPTH: usize = 128;

const LEAF: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct SNode {
    dim: u32,
    val: f32,
    a: u32, // internal: left child; leaf: idx start
    b: u32, // internal: right child; leaf: idx end
}

/// Structural stats of a baseline tree.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimpleTreeStats {
    /// Maximum leaf depth.
    pub max_depth: usize,
    /// Node count.
    pub nodes: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Construction work counters (comparable to PANDA's).
    pub build: BuildCounters,
}

/// The shared implementation behind [`crate::FlannLikeTree`] and
/// [`crate::AnnLikeTree`].
#[derive(Clone, Debug)]
pub(crate) struct SimpleKdTree {
    points: PointSet,
    idx: Vec<u32>,
    nodes: Vec<SNode>,
    stats: SimpleTreeStats,
}

impl SimpleKdTree {
    pub fn build(points: &PointSet, heuristic: Heuristic) -> Result<Self> {
        points.validate()?;
        let n = points.len();
        let mut tree = SimpleKdTree {
            points: points.clone(),
            idx: (0..n as u32).collect(),
            nodes: Vec::new(),
            stats: SimpleTreeStats::default(),
        };
        if n > 0 {
            let mut idx = std::mem::take(&mut tree.idx);
            let root = tree.rec(&mut idx, 0, 0, heuristic);
            debug_assert_eq!(root, 0, "root is created first (pre-order)");
            tree.idx = idx;
        }
        tree.stats.nodes = tree.nodes.len();
        tree.stats.build.nodes_created = tree.nodes.len() as u64;
        Ok(tree)
    }

    fn rec(&mut self, idx: &mut [u32], offset: usize, depth: usize, h: Heuristic) -> u32 {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        let len = idx.len();
        if len <= h.bucket() || depth >= MAX_DEPTH {
            self.stats.leaves += 1;
            self.nodes.push(SNode {
                dim: LEAF,
                val: 0.0,
                a: offset as u32,
                b: (offset + len) as u32,
            });
            return (self.nodes.len() - 1) as u32;
        }
        let (dim, val, left_len) = self.choose_and_partition(idx, h);
        if left_len == 0 || left_len == len {
            // even sliding failed (all points identical): force a leaf
            self.stats.leaves += 1;
            self.nodes.push(SNode {
                dim: LEAF,
                val: 0.0,
                a: offset as u32,
                b: (offset + len) as u32,
            });
            return (self.nodes.len() - 1) as u32;
        }
        let me = self.nodes.len();
        self.nodes.push(SNode {
            dim: dim as u32,
            val,
            a: 0,
            b: 0,
        });
        let (l_idx, r_idx) = idx.split_at_mut(left_len);
        let l = self.rec(l_idx, offset, depth + 1, h);
        let r = self.rec(r_idx, offset + left_len, depth + 1, h);
        self.nodes[me].a = l;
        self.nodes[me].b = r;
        me as u32
    }

    /// Choose (dim, value) per heuristic and partition `idx` in place;
    /// returns (dim, value, left_len).
    fn choose_and_partition(&mut self, idx: &mut [u32], h: Heuristic) -> (usize, f32, usize) {
        let ps = &self.points;
        let dims = ps.dims();
        let len = idx.len();
        let (dim, mut val) = match h {
            Heuristic::FlannLike => {
                let sample = len.min(100);
                self.stats.build.sampled += sample as u64;
                self.stats.build.variance_ops += (sample * dims) as u64;
                let mut best = (0usize, f32::NEG_INFINITY);
                let mut mean_of_best = 0.0f32;
                for d in 0..dims {
                    let mut sum = 0.0f64;
                    let mut sumsq = 0.0f64;
                    for &i in &idx[..sample] {
                        let v = ps.coord(i as usize, d) as f64;
                        sum += v;
                        sumsq += v * v;
                    }
                    let mean = sum / sample as f64;
                    let var = (sumsq / sample as f64 - mean * mean).max(0.0) as f32;
                    if var > best.1 {
                        best = (d, var);
                        mean_of_best = mean as f32;
                    }
                }
                (best.0, mean_of_best)
            }
            Heuristic::AnnLike => {
                self.stats.build.extent_ops += (len * dims) as u64;
                let mut lo = [f32::INFINITY; MAX_DIMS];
                let mut hi = [f32::NEG_INFINITY; MAX_DIMS];
                for &i in idx.iter() {
                    let p = ps.point(i as usize);
                    for d in 0..dims {
                        lo[d] = lo[d].min(p[d]);
                        hi[d] = hi[d].max(p[d]);
                    }
                }
                let mut best = (0usize, f32::NEG_INFINITY);
                for d in 0..dims {
                    if hi[d] - lo[d] > best.1 {
                        best = (d, hi[d] - lo[d]);
                    }
                }
                (best.0, (lo[best.0] + hi[best.0]) * 0.5)
            }
        };

        self.stats.build.partition_ops += len as u64;
        let mut left = partition(ps, idx, dim, val);
        if left == 0 || left == len {
            // ANN's "sliding midpoint": move the plane to the nearest
            // actual coordinate so at least one point changes sides.
            let slide_to = if left == 0 {
                // everything > val: slide up to the min coordinate
                idx.iter()
                    .map(|&i| ps.coord(i as usize, dim))
                    .fold(f32::INFINITY, f32::min)
            } else {
                // everything ≤ val: slide down just below the max
                let max = idx
                    .iter()
                    .map(|&i| ps.coord(i as usize, dim))
                    .fold(f32::NEG_INFINITY, f32::max);
                // plane at the largest value *strictly below* max
                let below = idx
                    .iter()
                    .map(|&i| ps.coord(i as usize, dim))
                    .filter(|&v| v < max)
                    .fold(f32::NEG_INFINITY, f32::max);
                below
            };
            val = slide_to;
            self.stats.build.partition_ops += len as u64;
            left = partition(ps, idx, dim, val);
        }
        (dim, val, left)
    }

    pub fn stats(&self) -> &SimpleTreeStats {
        &self.stats
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn dims(&self) -> usize {
        self.points.dims()
    }

    pub fn query(&self, q: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        let mut c = QueryCounters::default();
        self.query_counted(q, k, &mut c)
    }

    pub fn query_counted(
        &self,
        q: &[f32],
        k: usize,
        counters: &mut QueryCounters,
    ) -> Result<Vec<Neighbor>> {
        self.query_counted_radius_sq(q, k, f32::INFINITY, counters)
    }

    /// [`Self::query_counted`] with an initial squared search bound
    /// (radius-limited kNN).
    pub fn query_counted_radius_sq(
        &self,
        q: &[f32],
        k: usize,
        radius_sq: f32,
        counters: &mut QueryCounters,
    ) -> Result<Vec<Neighbor>> {
        if k == 0 {
            return Err(PandaError::ZeroK);
        }
        if q.len() != self.dims() {
            return Err(PandaError::DimsMismatch {
                expected: self.dims(),
                got: q.len(),
            });
        }
        counters.queries += 1;
        let mut heap = KnnHeap::with_radius_sq(k, radius_sq);
        if self.nodes.is_empty() {
            return Ok(Vec::new());
        }
        // exact side-distance traversal (same bound as PANDA: the
        // comparison is about tree shape and layout, not correctness)
        let mut stack: Vec<(u32, f32, [f32; MAX_DIMS])> = vec![(0, 0.0, [0.0; MAX_DIMS])];
        while let Some((ni, lb, side)) = stack.pop() {
            if lb >= heap.bound_sq() {
                continue;
            }
            let n = self.nodes[ni as usize];
            counters.nodes_visited += 1;
            if n.dim == LEAF {
                counters.leaves_scanned += 1;
                for &i in &self.idx[n.a as usize..n.b as usize] {
                    counters.points_scanned += 1;
                    let d = self.points.dist_sq_to(q, i as usize);
                    if heap.offer(d, self.points.id(i as usize)) {
                        counters.heap_ops += 1;
                    }
                }
            } else {
                let dim = n.dim as usize;
                let off = q[dim] - n.val;
                let (near, far) = if off <= 0.0 { (n.a, n.b) } else { (n.b, n.a) };
                let old = side[dim];
                let far_lb = lb - old * old + off * off;
                if far_lb < heap.bound_sq() {
                    let mut fs = side;
                    fs[dim] = off;
                    stack.push((far, far_lb, fs));
                }
                stack.push((near, lb, side));
            }
        }
        Ok(heap.into_sorted())
    }

    /// Answer a session [`QueryRequest`] as a CSR [`QueryResponse`] —
    /// the shared `NnBackend` plumbing of both wrapper trees. `parallel`
    /// is the wrapper's decision (the paper parallelized FLANN's outer
    /// query loop but not ANN's).
    pub(crate) fn query_session(
        &self,
        req: &QueryRequest<'_>,
        parallel: bool,
    ) -> Result<QueryResponse> {
        let t0 = std::time::Instant::now();
        req.validate()?;
        let queries = req.queries();
        let (k, r_sq) = (req.k(), req.radius_sq());
        let mut counters = QueryCounters::default();
        let mut table = NeighborTable::with_capacity(queries.len(), k);
        if parallel {
            let rows: Vec<(Vec<Neighbor>, QueryCounters)> = (0..queries.len())
                .into_par_iter()
                .map(|i| {
                    let mut c = QueryCounters::default();
                    let r = self.query_counted_radius_sq(queries.point(i), k, r_sq, &mut c)?;
                    Ok::<_, PandaError>((r, c))
                })
                .collect::<Result<_>>()?;
            for (row, c) in rows {
                counters.add(&c);
                table.push_row(&row);
            }
        } else {
            for i in 0..queries.len() {
                let row = self.query_counted_radius_sq(queries.point(i), k, r_sq, &mut counters)?;
                table.push_row(&row);
            }
        }
        Ok(QueryResponse::local(
            table,
            counters,
            t0.elapsed().as_secs_f64(),
        ))
    }
}

fn partition(ps: &PointSet, idx: &mut [u32], dim: usize, val: f32) -> usize {
    let mut l = 0usize;
    let mut r = idx.len();
    while l < r {
        if ps.coord(idx[l] as usize, dim) <= val {
            l += 1;
        } else {
            r -= 1;
            idx.swap(l, r);
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::random_ps;

    fn brute(ps: &PointSet, q: &[f32], k: usize) -> Vec<f32> {
        let mut h = KnnHeap::new(k);
        for i in 0..ps.len() {
            h.offer(ps.dist_sq_to(q, i), ps.id(i));
        }
        h.into_sorted().iter().map(|n| n.dist_sq).collect()
    }

    #[test]
    fn both_heuristics_are_exact() {
        let ps = random_ps(3000, 3, 1);
        for h in [Heuristic::FlannLike, Heuristic::AnnLike] {
            let tree = SimpleKdTree::build(&ps, h).unwrap();
            for s in 0..20 {
                let qs = random_ps(1, 3, 100 + s);
                let q = qs.point(0);
                let got: Vec<f32> = tree
                    .query(q, 5)
                    .unwrap()
                    .iter()
                    .map(|n| n.dist_sq)
                    .collect();
                assert_eq!(got, brute(&ps, q, 5), "{h:?}");
            }
        }
    }

    #[test]
    fn ann_goes_deep_on_colocated_data() {
        // Exponential density gradient: most mass piles up near x = 0 with
        // a geometric tail to x = 10. A midpoint split of the point bounds
        // strips only the sparse tail each level, so depth grows ~linearly
        // — the mechanism behind the paper's ANN depth 109 vs FLANN 32 on
        // the heavily co-located Daya Bay data. Median-style splits stay
        // logarithmic.
        let mut ps = PointSet::new(3).unwrap();
        for i in 0..800u64 {
            let x = 10.0 * 0.93f32.powi((i % 400) as i32);
            let y = (i % 13) as f32 * 1e-3;
            let z = (i % 7) as f32 * 1e-3;
            ps.push(&[x, y, z], i);
        }
        let ann = SimpleKdTree::build(&ps, Heuristic::AnnLike).unwrap();
        let flann = SimpleKdTree::build(&ps, Heuristic::FlannLike).unwrap();
        assert!(
            ann.stats().max_depth > flann.stats().max_depth + 10,
            "ann depth {} vs flann {}",
            ann.stats().max_depth,
            flann.stats().max_depth
        );
        // still exact
        let q = [5.0f32, 5.0, 5.1];
        let a: Vec<f32> = ann
            .query(&q, 9)
            .unwrap()
            .iter()
            .map(|n| n.dist_sq)
            .collect();
        assert_eq!(a, brute(&ps, &q, 9));
    }

    #[test]
    fn identical_points_terminate() {
        let ps = PointSet::from_coords(2, [3.0f32, 4.0].repeat(500)).unwrap();
        for h in [Heuristic::FlannLike, Heuristic::AnnLike] {
            let tree = SimpleKdTree::build(&ps, h).unwrap();
            let r = tree.query(&[3.0, 4.0], 7).unwrap();
            assert_eq!(r.len(), 7);
            assert!(r.iter().all(|n| n.dist_sq == 0.0), "{h:?}");
        }
    }

    #[test]
    fn empty_and_tiny() {
        let ps = PointSet::new(3).unwrap();
        let tree = SimpleKdTree::build(&ps, Heuristic::FlannLike).unwrap();
        assert!(tree.query(&[0.0; 3], 3).unwrap().is_empty());
        let one = random_ps(1, 3, 3);
        let tree = SimpleKdTree::build(&one, Heuristic::AnnLike).unwrap();
        assert_eq!(tree.query(&[0.0; 3], 3).unwrap().len(), 1);
    }

    #[test]
    fn parallel_batch_matches() {
        let ps = random_ps(2000, 3, 4);
        let qs = random_ps(100, 3, 5);
        let tree = SimpleKdTree::build(&ps, Heuristic::FlannLike).unwrap();
        let req = QueryRequest::knn(&qs, 5);
        let a = tree.query_session(&req, false).unwrap();
        let b = tree.query_session(&req, true).unwrap();
        for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
            let dx: Vec<f32> = x.iter().map(|n| n.dist_sq).collect();
            let dy: Vec<f32> = y.iter().map(|n| n.dist_sq).collect();
            assert_eq!(dx, dy);
        }
        assert_eq!(a.counters, b.counters, "identical traversal counters");
    }

    #[test]
    fn counters_populate() {
        let ps = random_ps(5000, 3, 6);
        let tree = SimpleKdTree::build(&ps, Heuristic::FlannLike).unwrap();
        let s = tree.stats();
        assert!(s.nodes > 100);
        assert!(s.leaves > 50);
        assert!(s.build.partition_ops > 5000);
        let mut c = QueryCounters::default();
        tree.query_counted(&[5.0, 5.0, 5.0], 5, &mut c).unwrap();
        assert!(c.nodes_visited > 0 && c.points_scanned > 0);
    }
}
